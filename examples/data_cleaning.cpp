// Data cleaning: identify different representations of the same object —
// the paper's opening motivation. Records are token sets (e.g. words of a
// customer address); noisy duplicates share most but not all tokens. We
// estimate item frequencies from the data itself (Section 9), build the
// adversarial-mode index, and report duplicate clusters.

#include <cstdio>
#include <string>
#include <vector>

#include "core/similarity_join.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "util/random.h"

int main() {
  using namespace skewsearch;

  // Synthetic "records": a Zipfian token universe (few very common tokens
  // like street suffixes, many rare ones like surnames), 1500 base
  // records, 150 of which get a noisy duplicate with ~15% token churn.
  auto vocab = ZipfProbabilities(30000, 1.0, 0.4).value();
  auto dist = ScaleToAverageSize(vocab, 12.0).value();
  Rng rng(7);

  Dataset records;
  std::vector<std::pair<VectorId, VectorId>> truth;
  for (int i = 0; i < 1500; ++i) records.Add(dist.Sample(&rng));
  for (int i = 0; i < 150; ++i) {
    VectorId original = static_cast<VectorId>(rng.NextBounded(1500));
    std::vector<ItemId> ids;
    for (ItemId token : records.Get(original)) {
      if (rng.NextBernoulli(0.85)) ids.push_back(token);  // keep ~85%
    }
    while (rng.NextBernoulli(0.5)) {  // a couple of typo tokens
      ids.push_back(static_cast<ItemId>(rng.NextBounded(30000)));
    }
    VectorId dup = records.Add(SparseVector::FromIds(std::move(ids)));
    truth.push_back({original, dup});
  }
  (void)records.SetDimension(30000);
  std::printf("records: %zu (with %zu planted noisy duplicates)\n",
              records.size(), truth.size());

  // Estimate token frequencies from the corpus (no model knowledge).
  auto estimated = EstimateFrequencies(records);
  if (!estimated.ok()) {
    std::printf("estimate failed: %s\n",
                estimated.status().ToString().c_str());
    return 1;
  }

  // Self-join: all pairs with Braun-Blanquet similarity >= 0.6.
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.6;
  options.index.repetition_boost = 3.0;
  options.threshold = 0.6;
  JoinStats stats;
  auto pairs = SelfSimilarityJoin(records, *estimated, options, &stats);
  if (!pairs.ok()) {
    std::printf("join failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }

  size_t truth_found = 0;
  for (const auto& [original, dup] : truth) {
    for (const auto& pr : *pairs) {
      if ((pr.left == original && pr.right == dup) ||
          (pr.left == dup && pr.right == original)) {
        ++truth_found;
        break;
      }
    }
  }
  std::printf("join produced %zu candidate duplicate pairs "
              "(%zu candidates verified, %.2fs build + %.2fs probe)\n",
              pairs->size(), stats.verifications, stats.build_seconds,
              stats.probe_seconds);
  std::printf("planted duplicates recovered: %zu/%zu (%.0f%%)\n",
              truth_found, truth.size(),
              100.0 * static_cast<double>(truth_found) /
                  static_cast<double>(truth.size()));
  std::printf("example pairs:\n");
  for (size_t k = 0; k < std::min<size_t>(5, pairs->size()); ++k) {
    const auto& pr = (*pairs)[k];
    std::printf("  record %4u ~ record %4u  (similarity %.2f)\n", pr.left,
                pr.right, pr.similarity);
  }
  return 0;
}
