// The light bulb problem (Valiant): among n random vectors, one planted
// pair is alpha-correlated. Find it with the skew-adaptive index instead
// of the quadratic scan — the "probabilistic viewpoint" of the paper's
// introduction, on a *skewed* distribution where classic approaches cannot
// exploit the structure.

#include <cstdio>

#include "core/skewed_index.h"
#include "data/generators.h"
#include "sim/measures.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace skewsearch;

  const double alpha = 0.8;
  const size_t n = 4000;
  // Skewed universe: 80 common features + 40000 rare ones.
  auto dist = TwoBlockProbabilities(80, 0.3, 40000, 0.002).value();
  Rng rng(123);
  PlantedPairInstance instance = GeneratePlantedPair(dist, n, alpha, &rng);
  std::printf(
      "light bulb instance: n=%zu vectors, planted alpha=%.2f pair hidden "
      "at (%u, %u)\n",
      instance.data.size(), alpha, instance.first, instance.second);

  // Index once, then query every vector with itself — the planted partner
  // is the only other vector expected above the verification threshold.
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  Timer build_timer;
  Status status = index.Build(&instance.data, &dist, options);
  if (!status.ok()) {
    std::printf("build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("index built in %.2fs (%d repetitions)\n",
              build_timer.ElapsedSeconds(), index.repetitions());

  Timer hunt_timer;
  size_t candidates_touched = 0;
  VectorId found_a = 0, found_b = 0;
  bool found = false;
  for (VectorId id = 0; id < instance.data.size() && !found; ++id) {
    QueryStats stats;
    auto matches = index.QueryAll(instance.data.Get(id),
                                  index.verify_threshold(), &stats);
    candidates_touched += stats.candidates;
    for (const Match& m : matches) {
      if (m.id != id) {
        found = true;
        found_a = id;
        found_b = m.id;
        break;
      }
    }
  }
  double seconds = hunt_timer.ElapsedSeconds();

  if (found) {
    bool correct = (found_a == instance.first && found_b == instance.second) ||
                   (found_a == instance.second && found_b == instance.first);
    std::printf(
        "found pair (%u, %u) in %.2fs touching %zu candidates total "
        "(%.1f per probed vector) -> %s\n",
        found_a, found_b, seconds, candidates_touched,
        static_cast<double>(candidates_touched) / (found_a + 1),
        correct ? "CORRECT planted pair" : "a different qualifying pair");
    std::printf("pair similarity B = %.3f\n",
                BraunBlanquet(instance.data.Get(found_a),
                              instance.data.Get(found_b)));
    std::printf(
        "(brute force would have compared up to %zu vector pairs)\n",
        instance.data.size() * (instance.data.size() - 1) / 2);
  } else {
    std::printf("planted pair not found — rerun with a higher "
                "repetition_boost\n");
  }
  return found ? 0 : 1;
}
