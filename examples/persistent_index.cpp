// Production workflow: ingest data with arbitrary token ids, relabel by
// frequency (faster sampling / tighter layout), estimate the distribution
// from the data, build the index once, persist it, and reload it in a
// "fresh process" without paying the build again.

#include <cstdio>
#include <string>

#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "data/remap.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace skewsearch;

  // Ingest: a Zipfian vocabulary whose ids arrive in arbitrary order
  // (density scaled so sets are large enough for the theorems' regime).
  auto shaped = ScaleToAverageSize(
                    ZipfProbabilities(20000, 1.0, 0.4).value(), 45.0)
                    .value();
  std::vector<double> scattered_p = shaped.probabilities();
  Rng shuffle_rng(5);
  shuffle_rng.Shuffle(&scattered_p);
  auto scattered = ProductDistribution::Create(scattered_p).value();
  Rng rng(6);
  Dataset raw = GenerateDataset(scattered, 2000, &rng);
  std::printf("ingested %zu records; sampler sees %zu probability blocks\n",
              raw.size(), scattered.NumSamplingBlocks());

  // Normalize: relabel items by corpus frequency.
  ItemRemap remap = ItemRemap::ByFrequency(raw);
  Dataset data = remap.Apply(raw);
  auto dist = EstimateFrequencies(data).value();
  std::printf("after frequency remap: %zu blocks (ids now ordered by "
              "frequency)\n",
              dist.NumSamplingBlocks());

  // Build once, persist.
  const double alpha = 0.75;
  const std::string path = "/tmp/skewsearch_demo.skidx";
  {
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.build_threads = 2;
    Timer timer;
    if (Status s = index.Build(&data, &dist, options); !s.ok()) {
      std::printf("build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("built in %.2fs (%zu filter entries), saving...\n",
                timer.ElapsedSeconds(), index.build_stats().total_filters);
    if (Status s = index.Save(path); !s.ok()) {
      std::printf("save failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // "New process": reload and serve.
  SkewedPathIndex index;
  Timer load_timer;
  if (Status s = index.Load(path, &data, &dist); !s.ok()) {
    std::printf("load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("reloaded in %.3fs (vs rebuild)\n",
              load_timer.ElapsedSeconds());

  CorrelatedQuerySampler sampler(&dist, alpha);
  int found = 0;
  const int kQueries = 25;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
    auto hit = index.Query(q.span());
    found += (hit && hit->id == target);
  }
  std::printf("served %d queries from the reloaded index, recall %d/%d\n",
              kQueries, found, kQueries);
  std::remove(path.c_str());
  return 0;
}
