// Copyright 2026 The skewsearch Authors.
// Minimal walkthrough of the distributed all-pairs join: estimate the
// item frequencies from the data, plan a skew-aware key partition,
// hand each worker its posting slices, probe, and merge — printing the
// per-worker duplication stats along the way, and cross-checking the
// result against the single-process join.

#include <cstdio>

#include "core/similarity_join.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "util/random.h"

using namespace skewsearch;  // NOLINT

int main() {
  // A skewed dataset with planted near-duplicates.
  auto dist_model = ZipfProbabilities(/*d=*/5000, /*exponent=*/1.0,
                                      /*p_head=*/0.4);
  if (!dist_model.ok()) return 1;
  Rng rng(2026);
  Dataset data;
  for (int i = 0; i < 1200; ++i) data.Add(dist_model->Sample(&rng));
  for (int i = 0; i < 60; ++i) data.Add(data.GetVector(i * 11));
  if (!data.SetDimension(5000).ok()) return 1;

  // The paper's Section 9 move, via data/estimate.h: the planner (and
  // the index) can run off frequencies counted from the data itself.
  auto dist = EstimateFrequencies(data);
  if (!dist.ok()) return 1;

  DistributedJoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.8;
  options.threshold = 0.8;
  options.workers = 4;

  // Plan + build the workers (in a real deployment this is where each
  // worker machine receives its posting slices and referenced vectors).
  DistributedJoin join;
  Status built = join.Build(&data, &*dist, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  const PartitionPlan& plan = join.plan();
  std::printf("plan: %d workers, heavy threshold %zu postings, "
              "%zu heavy keys in %zu slices\n",
              plan.workers, plan.heavy_threshold, plan.num_heavy_keys(),
              plan.replicated_slices());

  // Probe with every vector and merge the per-worker pair streams.
  DistributedJoinStats stats;
  auto pairs = join.SelfJoin(&stats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("self-join at B >= %.2f: %zu pairs "
              "(%zu cross-worker duplicates merged away)\n",
              options.threshold, pairs->size(),
              stats.cross_worker_duplicates);
  std::printf("duplication factor %.2f (vectors shipped / dataset), "
              "probe fan-out %.2f workers per probe\n",
              stats.duplication_factor, stats.probe_fanout);
  std::printf("\n  worker  keys  entries  vectors  probes  pairs\n");
  for (const WorkerLoad& load : stats.workers) {
    std::printf("  %6d %5zu %8zu %8zu %7zu %6zu\n", load.worker, load.keys,
                load.entries, load.vectors, load.probes, load.pairs);
  }

  // The driver's contract: identical output to the single-process join.
  JoinOptions single;
  single.index = options.index;
  single.threshold = options.threshold;
  auto expected = SelfSimilarityJoin(data, *dist, single);
  if (!expected.ok()) return 1;
  bool identical = expected->size() == pairs->size();
  for (size_t i = 0; identical && i < pairs->size(); ++i) {
    identical = (*expected)[i].left == (*pairs)[i].left &&
                (*expected)[i].right == (*pairs)[i].right &&
                (*expected)[i].similarity == (*pairs)[i].similarity;
  }
  std::printf("\nidentical to the single-process join: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
