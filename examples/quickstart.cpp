// Quickstart: build the skew-adaptive index over vectors from a known
// skewed distribution and answer correlated queries.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

int main() {
  using namespace skewsearch;

  // 1. A skewed product distribution: 100 frequent dimensions (p = 0.25)
  //    and 20000 rare ones (p = 0.005). E|x| = 25 + 100 = 125.
  auto dist = TwoBlockProbabilities(100, 0.25, 20000, 0.005).value();

  // 2. Sample a dataset of n = 1000 vectors.
  Rng rng(/*seed=*/42);
  Dataset data = GenerateDataset(dist, 1000, &rng);
  std::printf("dataset: n=%zu, d=%zu, avg |x| = %.1f\n", data.size(),
              data.dimension(), data.AverageSize());

  // 3. Build the index for alpha-correlated queries.
  const double alpha = 0.7;
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  Status status = index.Build(&data, &dist, options);
  if (!status.ok()) {
    std::printf("build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("index: %d repetitions, %.1f filters/element, %.2f MB\n",
              index.repetitions(),
              index.build_stats().avg_filters_per_element,
              static_cast<double>(index.MemoryBytes()) / 1e6);

  // The analytic query exponent for this instance (Theorem 1).
  std::printf("analytic rho = %.3f (query cost ~ n^rho)\n",
              CorrelatedRho(dist, alpha).value());

  // 4. Issue queries correlated with stored vectors.
  CorrelatedQuerySampler sampler(&dist, alpha);
  int found = 0;
  const int kQueries = 20;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    SparseVector query = sampler.SampleCorrelated(data.Get(target), &rng);
    QueryStats stats;
    if (auto hit = index.Query(query.span(), &stats)) {
      ++found;
      std::printf(
          "query %2d -> vector %4u (similarity %.2f, %zu candidates "
          "touched)%s\n",
          t, hit->id, hit->similarity, stats.candidates,
          hit->id == target ? "" : "  [different but qualifying match]");
    } else {
      std::printf("query %2d -> no match above %.2f\n", t,
                  index.verify_threshold());
    }
  }
  std::printf("recall: %d/%d\n", found, kQueries);
  return 0;
}
