// Similarity join between two relations (the paper's "Similarity joins"
// application): R = incoming noisy product listings, S = catalog. The join
// pairs every listing with catalog entries above a similarity threshold,
// using index-probe semantics: preprocess S once in ~|S|^{1+rho}, then
// probe with each r in R at ~|S|^rho.

#include <cstdio>

#include "core/similarity_join.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "data/io.h"
#include "util/random.h"

int main() {
  using namespace skewsearch;

  // Catalog S: 3000 entries over a skewed attribute/token space.
  auto dist = TwoBlockProbabilities(120, 0.25, 25000, 0.004).value();
  Rng rng(99);
  Dataset catalog = GenerateDataset(dist, 3000, &rng);

  // Listings R: 400 noisy versions of random catalog entries (alpha-
  // correlated bit noise) plus 200 junk listings matching nothing.
  const double alpha = 0.8;
  CorrelatedQuerySampler noise(&dist, alpha);
  Dataset listings;
  std::vector<VectorId> truth;  // listing index -> catalog id (or -1)
  for (int i = 0; i < 400; ++i) {
    VectorId source = static_cast<VectorId>(rng.NextBounded(catalog.size()));
    listings.Add(noise.SampleCorrelated(catalog.Get(source), &rng));
    truth.push_back(source);
  }
  for (int i = 0; i < 200; ++i) {
    listings.Add(dist.Sample(&rng));
    truth.push_back(static_cast<VectorId>(-1));
  }
  (void)listings.SetDimension(dist.dimension());
  std::printf("catalog |S| = %zu, listings |R| = %zu (400 real + 200 junk)\n",
              catalog.size(), listings.size());

  JoinOptions options;
  options.index.mode = IndexMode::kCorrelated;
  options.index.alpha = alpha;
  options.index.repetition_boost = 2.5;
  JoinStats stats;
  auto result = SimilarityJoin(listings, catalog, dist, options, &stats);
  if (!result.ok()) {
    std::printf("join failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  size_t correct = 0, junk_hits = 0;
  for (const JoinPair& pr : *result) {
    if (truth[pr.left] == pr.right) {
      ++correct;
    } else if (truth[pr.left] == static_cast<VectorId>(-1)) {
      ++junk_hits;
    }
  }
  std::printf(
      "join: %zu pairs (build %.2fs, probe %.2fs, %zu candidates)\n",
      result->size(), stats.build_seconds, stats.probe_seconds,
      stats.candidates);
  std::printf("  real listings matched to their catalog entry: %zu/400\n",
              correct);
  std::printf("  junk listings matched to anything: %zu/200\n", junk_hits);
  std::printf("  per-probe candidate work: %.1f (vs %zu for a full scan)\n",
              static_cast<double>(stats.candidates) /
                  static_cast<double>(listings.size()),
              catalog.size());
  return 0;
}
