// Copyright 2026 The skewsearch Authors.
// Small numeric helpers shared across modules.

#ifndef SKEWSEARCH_UTIL_MATH_H_
#define SKEWSEARCH_UTIL_MATH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skewsearch {

/// \brief Streaming mean / variance (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return count_; }
  /// Sample mean (0 when empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Smallest / largest observation (+-inf when empty).
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Kahan-compensated sum of \p values.
double StableSum(const std::vector<double>& values);

/// log(exp(a) + exp(b)) computed without overflow.
double LogAdd(double log_a, double log_b);

/// Natural-log binomial coefficient ln C(n, k) via lgamma.
double LogBinomial(uint64_t n, uint64_t k);

/// \brief Ordinary least squares fit y = slope * x + intercept.
///
/// Returns false when fewer than two points or degenerate x. Used to fit
/// empirical exponents on log-log cost curves.
bool LinearFit(const std::vector<double>& x, const std::vector<double>& y,
               double* slope, double* intercept);

/// Pearson correlation coefficient of two equal-length samples
/// (0 when degenerate).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Two-sided Chernoff half-width: the epsilon such that a sum of
/// independent [0,1] variables with mean \p mu deviates by more than
/// epsilon*mu with probability at most \p delta. Used to derive test
/// tolerances from first principles.
double ChernoffHalfWidth(double mu, double delta);

/// Clamps \p x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_MATH_H_
