// Copyright 2026 The skewsearch Authors.
// A minimal Result<T> (value-or-Status), in the spirit of arrow::Result.

#ifndef SKEWSEARCH_UTIL_RESULT_H_
#define SKEWSEARCH_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace skewsearch {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result constructed from a value is OK; a Result constructed from a
/// non-OK Status carries that error. Accessing the value of an errored
/// Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding \p value.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an errored result from a non-OK \p status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// Returns true iff a value is present.
  bool ok() const { return status_.ok(); }

  /// Returns the status (OK when a value is present).
  const Status& status() const { return status_; }

  /// \name Value accessors; must only be called when ok().
  /// @{
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the value if present, otherwise \p fallback.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_RESULT_H_
