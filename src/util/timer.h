// Copyright 2026 The skewsearch Authors.
// Monotonic wall-clock timer used by the benchmark harness.

#ifndef SKEWSEARCH_UTIL_TIMER_H_
#define SKEWSEARCH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace skewsearch {

/// \brief Simple monotonic stopwatch.
///
/// Starts running on construction; Restart() resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the timer origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed nanoseconds since construction or last Restart(), as an
  /// integer tick count. Histogram recording uses this instead of the
  /// double-valued accessors so sub-microsecond spans keep their low
  /// bits instead of rounding toward zero.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_TIMER_H_
