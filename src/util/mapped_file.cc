#include "util/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace skewsearch {

namespace {

int AdviceFlag(MappedFile::Advice advice) {
  switch (advice) {
    case MappedFile::Advice::kRandom:
      return MADV_RANDOM;
    case MappedFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MappedFile::Advice::kWillNeed:
      return MADV_WILLNEED;
    case MappedFile::Advice::kNormal:
      break;
  }
  return MADV_NORMAL;
}

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// Reads the already-opened \p fd (size \p size) into \p out in full.
Status ReadWhole(int fd, const std::string& path, size_t size,
                 std::vector<uint8_t>* out) {
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    ssize_t got = ::pread(fd, out->data() + done, size - done,
                          static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("read of", path);
    }
    if (got == 0) {
      return Status::IOError("file '" + path + "' shrank while reading");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      heap_(std::move(other.heap_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    heap_ = std::move(other.heap_);
  }
  return *this;
}

MappedFile::~MappedFile() { Release(); }

void MappedFile::Release() {
  if (mapped_ && data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.clear();
  heap_.shrink_to_fit();
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  return Open(path, Options());
}

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    const Options& options) {
  if (options.force_heap && options.require_map) {
    return Status::InvalidArgument(
        "force_heap and require_map are mutually exclusive");
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("cannot stat", path);
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("'" + path + "' is not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);

  MappedFile file;
  if (size == 0) {
    ::close(fd);
    return file;  // valid empty view; mapped() reports false
  }

  if (!options.force_heap) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      ::close(fd);
      file.data_ = static_cast<const uint8_t*>(base);
      file.size_ = size;
      file.mapped_ = true;
      (void)file.Advise(options.advice);
      return file;
    }
    if (options.require_map) {
      Status status = ErrnoError("cannot mmap", path);
      ::close(fd);
      return status;
    }
  }

  // Heap fallback: same bytes, materialized. malloc'd storage is at
  // least 16-byte aligned, which satisfies every in-file section type
  // (u32/u64); the 64-byte section alignment is a cache-line layout
  // property, not a correctness requirement.
  Status read = ReadWhole(fd, path, size, &file.heap_);
  ::close(fd);
  if (!read.ok()) return read;
  file.data_ = file.heap_.data();
  file.size_ = size;
  file.mapped_ = false;
  return file;
}

Status MappedFile::Advise(Advice advice) const {
  if (!mapped_ || size_ == 0) return Status::OK();
  if (::madvise(const_cast<uint8_t*>(data_), size_, AdviceFlag(advice)) !=
      0) {
    return Status::IOError(std::string("madvise failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace skewsearch
