// Copyright 2026 The skewsearch Authors.
// Minimal leveled logger for library diagnostics. Benchmarks print their
// results directly; the logger is for warnings/progress only, so it stays
// deliberately tiny (no sinks, no formatting library).

#ifndef SKEWSEARCH_UTIL_LOGGING_H_
#define SKEWSEARCH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace skewsearch {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is actually emitted
/// (default kWarning, so library internals are quiet in tests).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Writes one formatted line to stderr if \p level passes the global filter.
void LogMessage(LogLevel level, const std::string& message);

/// RAII stream that emits on destruction; used by the SKEWSEARCH_LOG macro.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace skewsearch

/// Usage: SKEWSEARCH_LOG(kWarning) << "cap hit: " << count;
#define SKEWSEARCH_LOG(severity)                     \
  ::skewsearch::internal::LogStream(                 \
      ::skewsearch::LogLevel::severity)

#endif  // SKEWSEARCH_UTIL_LOGGING_H_
