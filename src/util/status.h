// Copyright 2026 The skewsearch Authors.
// RocksDB-style status object used for error handling throughout the
// library. Exceptions are not used on any hot path; fallible operations
// return a Status (or a Result<T>, see util/result.h).

#ifndef SKEWSEARCH_UTIL_STATUS_H_
#define SKEWSEARCH_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace skewsearch {

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries an error code plus a
/// human-readable message. Statuses are cheap to copy in the OK case.
///
/// Typical use:
/// \code
///   Status s = index.Build(dataset);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Error categories. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kIOError = 3,
    kAborted = 4,
    kNotSupported = 5,
    kInternal = 6,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// \name Factory functions for each error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  /// @}

  /// Returns true iff the status represents success.
  bool ok() const { return code_ == Code::kOk; }

  /// \name Category predicates.
  /// @{
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  /// @}

  /// Returns the error code.
  Code code() const { return code_; }

  /// Returns the error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// Renders the status as "<category>: <message>" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

}  // namespace skewsearch

/// Propagates a non-OK status to the caller; mirrors RocksDB / Arrow macros.
#define SKEWSEARCH_RETURN_NOT_OK(expr)            \
  do {                                            \
    ::skewsearch::Status _s = (expr);             \
    if (!_s.ok()) return _s;                      \
  } while (false)

#endif  // SKEWSEARCH_UTIL_STATUS_H_
