// Copyright 2026 The skewsearch Authors.
// Deterministic, fast pseudo-random number generation.
//
// The library never uses std::mt19937 on hot paths: xoshiro256** is both
// faster and has a cheap jump-free seeding procedure via SplitMix64, which
// matters because the index creates many independently-seeded streams (one
// per repetition). All randomness in skewsearch flows through Rng so that
// experiments are reproducible from a single 64-bit seed.

#ifndef SKEWSEARCH_UTIL_RANDOM_H_
#define SKEWSEARCH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skewsearch {

/// Advances a SplitMix64 state and returns the next output.
/// Used for seeding and as a cheap one-shot mixer.
uint64_t SplitMix64(uint64_t* state);

/// \brief xoshiro256** generator (Blackman & Vigna).
///
/// Passes BigCrush; 2^256-1 period. Seeded from a single 64-bit value via
/// SplitMix64 so distinct seeds give independent-looking streams.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniform random bits.
  uint64_t NextUint64();

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a uniform integer in [0, bound) (bound > 0), bias-free
  /// (Lemire's nearly-divisionless method with rejection).
  uint64_t NextBounded(uint64_t bound);

  /// Returns true with probability \p p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a geometric skip: the number of failures before the first
  /// success of a Bernoulli(p) sequence. Returns a large sentinel
  /// (> 2^62) when p <= 0. Used by the product-distribution sampler.
  uint64_t NextGeometricSkips(double p);

  /// Returns a standard normal via the polar method.
  double NextGaussian();

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives a fresh, independently-seeded child generator. Distinct calls
  /// produce distinct streams; used to hand one stream per repetition.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_RANDOM_H_
