#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace skewsearch {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_executed_++;
    }
  }
}

size_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int slots = num_threads();
  if (slots <= 1 || n <= grain) {
    fn(0, n, 0);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> parts;
  parts.reserve(static_cast<size_t>(slots));
  // One claiming loop per slot: slot ids stay unique among concurrently
  // running chunks, and the atomic cursor load-balances skewed items.
  for (int slot = 0; slot < slots; ++slot) {
    parts.push_back(Submit([n, grain, slot, &next, &fn] {
      for (;;) {
        const size_t begin = next.fetch_add(grain);
        if (begin >= n) return;
        fn(begin, std::min(n, begin + grain), slot);
      }
    }));
  }
  // Wait for every slot before rethrowing: the tasks reference the
  // stack-local `next`/`fn`, which must outlive all of them.
  std::exception_ptr first_error;
  for (auto& part : parts) {
    try {
      part.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace skewsearch
