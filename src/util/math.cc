#include "util/math.h"

#include <algorithm>
#include <cmath>

namespace skewsearch {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double StableSum(const std::vector<double>& values) {
  double sum = 0.0;
  double comp = 0.0;
  for (double v : values) {
    double y = v - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double LogAdd(double log_a, double log_b) {
  if (log_a < log_b) std::swap(log_a, log_b);
  if (log_b == -1e300) return log_a;
  return log_a + std::log1p(std::exp(log_b - log_a));
}

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -1e300;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

bool LinearFit(const std::vector<double>& x, const std::vector<double>& y,
               double* slope, double* intercept) {
  if (x.size() != y.size() || x.size() < 2) return false;
  double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return false;
  *slope = (n * sxy - sx * sy) / denom;
  *intercept = (sy - *slope * sx) / n;
  return true;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double v : x) sx.Add(v);
  for (double v : y) sy.Add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

double ChernoffHalfWidth(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0 || delta >= 1.0) return 1.0;
  // Pr[|S - mu| > eps*mu] <= 2 exp(-eps^2 mu / 3)  =>
  // eps = sqrt(3 ln(2/delta) / mu).
  return std::sqrt(3.0 * std::log(2.0 / delta) / mu);
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

}  // namespace skewsearch
