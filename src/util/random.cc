#include "util/random.h"

#include <cmath>
#include <limits>

namespace skewsearch {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding as recommended by the xoshiro authors; guarantees
  // the state is not all-zero.
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove bias.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextGeometricSkips(double p) {
  constexpr uint64_t kSentinel = uint64_t{1} << 63;
  if (p <= 0.0) return kSentinel;
  if (p >= 1.0) return 0;
  // Inversion: floor(ln U / ln(1-p)) has the geometric(p) distribution of
  // the number of failures before the first success.
  double u = NextDouble();
  // NextDouble() may return exactly 0; nudge into (0,1).
  if (u <= 0.0) u = 0x1.0p-53;
  double skips = std::floor(std::log(u) / std::log1p(-p));
  if (skips >= static_cast<double>(kSentinel)) return kSentinel;
  return static_cast<uint64_t>(skips);
}

double Rng::NextGaussian() {
  // Marsaglia polar method; discards the second variate for simplicity.
  while (true) {
    double u = 2.0 * NextDouble() - 1.0;
    double v = 2.0 * NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

Rng Rng::Fork() {
  // Two successive outputs give a fresh 64-bit seed; the SplitMix64 stage
  // in the constructor decorrelates parent and child streams.
  uint64_t seed = NextUint64() ^ Rotl(NextUint64(), 31);
  return Rng(seed);
}

}  // namespace skewsearch
