// Copyright 2026 The skewsearch Authors.
// A fixed-size worker pool for sharding embarrassingly parallel work
// (index builds, batch queries, benchmark sweeps).
//
// Tasks are closures executed FIFO by `num_threads` long-lived workers;
// ParallelFor layers dynamic chunk scheduling on top so skewed per-item
// costs (the whole point of this library) cannot leave workers idle
// behind one hot shard. Each ParallelFor worker gets a stable slot id in
// [0, num_threads), which callers use to index per-thread scratch
// buffers without locking.

#ifndef SKEWSEARCH_UTIL_THREAD_POOL_H_
#define SKEWSEARCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace skewsearch {

/// \brief Fixed-size FIFO thread pool.
///
/// Thread-safe: Submit/ParallelFor may be called concurrently from any
/// thread that is not itself a pool worker (a worker waiting on its own
/// pool would deadlock). Destruction drains already-queued tasks.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Joins all workers after finishing queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues \p fn and returns a future for its result. Exceptions
  /// propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs \p fn(begin, end, slot) over dynamically scheduled chunks of
  /// [0, n), blocking until every chunk is done. `slot` is in
  /// [0, num_threads) and is unique among concurrently running chunks,
  /// so it can index per-thread scratch state. \p grain is the chunk
  /// size (0 picks one). The first exception thrown by \p fn is
  /// rethrown. With one worker (or n <= grain) everything runs inline
  /// on the calling thread as fn(0, n, 0).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, int)>& fn);

  /// Total tasks fully executed by the workers (diagnostics/tests).
  size_t tasks_executed() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  size_t tasks_executed_ = 0;
  bool stop_ = false;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_THREAD_POOL_H_
