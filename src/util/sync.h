// Copyright 2026 The skewsearch Authors.
// Synchronization primitives for the sharded/online index layers.
//
// The online index keeps per-shard state in arrays, and under heavy
// mixed traffic the readers of shard i and the writers of shard i+1
// would otherwise ping-pong the same cache line between cores — so
// every primitive here is padded to a full destructive-interference
// span. The epoch/RCU manager (maintenance/epoch.h) builds its reader
// slots out of PaddedAtomicU64; writers of the dynamic index serialize
// on a PaddedMutex per shard while readers proceed wait-free against
// published immutable snapshots.

#ifndef SKEWSEARCH_UTIL_SYNC_H_
#define SKEWSEARCH_UTIL_SYNC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace skewsearch {

/// Destructive-interference span. Fixed at 64 (true for effectively all
/// x86-64 and most aarch64 parts) rather than taken from
/// std::hardware_destructive_interference_size, whose value is ABI-
/// unstable across compiler flags (GCC warns on any use of it).
inline constexpr size_t kCacheLineBytes = 64;

/// \brief A std::mutex padded to its own cache line.
///
/// Satisfies Lockable, so it works directly with std::lock_guard /
/// std::unique_lock. Neither movable nor copyable (like the mutex it
/// wraps); containers of shards therefore hold them behind stable
/// addresses (e.g. std::unique_ptr).
class alignas(kCacheLineBytes) PaddedMutex {
 public:
  PaddedMutex() = default;
  PaddedMutex(const PaddedMutex&) = delete;
  PaddedMutex& operator=(const PaddedMutex&) = delete;

  void lock() { mutex_.lock(); }
  bool try_lock() { return mutex_.try_lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// \brief A 64-bit atomic padded to its own cache line.
///
/// The building block of the epoch manager's reader-slot array: each
/// reader publishes its pinned epoch through one of these, and padding
/// keeps two readers pinning concurrently from sharing a line.
struct alignas(kCacheLineBytes) PaddedAtomicU64 {
  std::atomic<uint64_t> value{0};
};

/// RAII guard for PaddedMutex; the name makes call sites read as intent
/// ("MutexLock lock(shard.writer)").
using MutexLock = std::lock_guard<PaddedMutex>;

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_SYNC_H_
