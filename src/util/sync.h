// Copyright 2026 The skewsearch Authors.
// Synchronization helpers for the sharded/online index layers.
//
// The dynamic index keeps one reader-writer lock per shard. Those locks
// live in an array, and under heavy mixed traffic the readers of shard i
// and the writers of shard i+1 would otherwise ping-pong the same cache
// line between cores — so the lock is padded to a full destructive-
// interference span. Readers take the shared side only for the duration
// of one shard scan; writers (insert/remove/compaction) take the
// exclusive side of exactly one shard, which bounds the blocking any
// single mutation can cause.

#ifndef SKEWSEARCH_UTIL_SYNC_H_
#define SKEWSEARCH_UTIL_SYNC_H_

#include <cstddef>
#include <new>
#include <shared_mutex>

namespace skewsearch {

/// Destructive-interference span. Fixed at 64 (true for effectively all
/// x86-64 and most aarch64 parts) rather than taken from
/// std::hardware_destructive_interference_size, whose value is ABI-
/// unstable across compiler flags (GCC warns on any use of it).
inline constexpr size_t kCacheLineBytes = 64;

/// \brief A shared_mutex padded to its own cache line.
///
/// Satisfies SharedLockable, so it works directly with std::shared_lock /
/// std::unique_lock. Neither movable nor copyable (like the mutex it
/// wraps); containers of shards therefore hold them behind stable
/// addresses (e.g. std::unique_ptr).
class alignas(kCacheLineBytes) PaddedSharedMutex {
 public:
  PaddedSharedMutex() = default;
  PaddedSharedMutex(const PaddedSharedMutex&) = delete;
  PaddedSharedMutex& operator=(const PaddedSharedMutex&) = delete;

  void lock() { mutex_.lock(); }
  bool try_lock() { return mutex_.try_lock(); }
  void unlock() { mutex_.unlock(); }

  void lock_shared() { mutex_.lock_shared(); }
  bool try_lock_shared() { return mutex_.try_lock_shared(); }
  void unlock_shared() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII guards for the two sides of a PaddedSharedMutex; the names make
/// call sites read as intent ("ReaderLock lock(shard.mutex)").
using ReaderLock = std::shared_lock<PaddedSharedMutex>;
using WriterLock = std::unique_lock<PaddedSharedMutex>;

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_SYNC_H_
