#include "util/status.h"

namespace skewsearch {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "Invalid argument";
    case Status::Code::kNotFound:
      return "Not found";
    case Status::Code::kIOError:
      return "IO error";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kNotSupported:
      return "Not supported";
    case Status::Code::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace skewsearch
