// Copyright 2026 The skewsearch Authors.
// MappedFile: a read-only view of a whole file, preferably via mmap.
//
// The frozen-shard path (core/frozen_shard.h) wants a file's bytes
// addressable without copying them onto the heap: mmap gives zero-copy
// access, O(1) open time regardless of file size, and leaves residency
// and eviction to the OS page cache. Not every environment can mmap
// (exotic filesystems, locked-down containers, 32-bit address-space
// pressure), so Open falls back to reading the file into one heap
// buffer — the same span-shaped surface, just materialized — unless the
// caller forbids it. Callers that need to know which path they got (the
// mmap bench, the CLI's reporting) ask `mapped()`.

#ifndef SKEWSEARCH_UTIL_MAPPED_FILE_H_
#define SKEWSEARCH_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Read-only RAII mapping (or heap image) of one file.
///
/// Move-only; the destructor unmaps / frees. All accessors are const and
/// the bytes never change, so a MappedFile may be shared across threads.
class MappedFile {
 public:
  /// Access-pattern hints forwarded to madvise (no-ops on the heap
  /// fallback, where the buffer is already resident).
  enum class Advice {
    kNormal,      ///< no hint
    kRandom,      ///< expect point lookups (posting probes)
    kSequential,  ///< expect a linear scan (payload verification)
    kWillNeed,    ///< prefault soon (warm-up before a latency-sensitive run)
  };

  struct Options {
    /// Skip mmap entirely and read the file onto the heap. What the
    /// graceful-degradation tests force, and what callers on platforms
    /// they do not trust to mmap can pin.
    bool force_heap = false;

    /// Refuse the heap fallback: if mmap fails, Open fails. For callers
    /// whose whole point is the zero-copy mapping (the bench's mapped
    /// legs).
    bool require_map = false;

    /// Initial madvise hint for the mapping.
    Advice advice = Advice::kRandom;
  };

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Opens \p path read-only and maps (or reads) its entire contents.
  /// Empty files yield a valid zero-length mapping. Fails with IOError
  /// when the file cannot be opened/stat'ed, when mmap fails and the
  /// fallback is forbidden, or when require_map is set but mmap failed.
  static Result<MappedFile> Open(const std::string& path);
  static Result<MappedFile> Open(const std::string& path,
                                 const Options& options);

  /// The file's bytes. Valid until destruction/move-from.
  std::span<const uint8_t> bytes() const { return {data_, size_}; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes are an mmap'd view; false on the heap fallback
  /// (or a default-constructed instance).
  bool mapped() const { return mapped_; }

  /// Applies an access-pattern hint to the mapping. Harmless no-op on
  /// the heap fallback; a failing madvise is reported but never fatal
  /// (hints are advisory by definition).
  Status Advise(Advice advice) const;

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> heap_;  // owns the bytes on the fallback path
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_MAPPED_FILE_H_
