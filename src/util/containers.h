// Copyright 2026 The skewsearch Authors.
// Cache-friendly open-addressing hash containers for the posting hot
// paths, plus the PostingMap/PostingSet aliases that make the container
// choice a one-line seam.
//
// std::unordered_map buys its iterator/reference stability with one heap
// node per entry; every probe of a posting-path map therefore costs at
// least two dependent cache misses. The hot maps of this codebase (filter
// key -> posting offsets, candidate dedup sets, delta/tombstone
// registries) never rely on reference stability across mutations, so an
// open-addressing table with linear probing over one flat slot array is
// strictly better: one expected cache miss per probe, ~half the memory,
// trivially copyable slot storage. This mirrors the ska::flat_hash_map
// layout the SetSketchIndex exemplar uses, implemented locally so the
// repo stays dependency-free.
//
// Contracts (narrower than std::unordered_map — by design):
//   - Keys must be trivially copyable integers (hashed with a full
//     64-bit avalanche mix, so sequential VectorIds and structured
//     filter keys both spread well under power-of-two masking).
//   - Mutations invalidate iterators AND references (rehash moves slots;
//     erase back-shifts the probe window). Never mutate mid-iteration.
//   - Values must be default-constructible and movable.
//   - Iteration order is deterministic for a given insertion/erase
//     history but is NOT the insertion order; any output that must be
//     stable is sorted by the caller (as the Save paths already do).

#ifndef SKEWSEARCH_UTIL_CONTAINERS_H_
#define SKEWSEARCH_UTIL_CONTAINERS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace skewsearch {

/// Full-avalanche 64-bit mixer (splitmix64 finalizer). Every bit of the
/// input affects every bit of the output, which linear probing under a
/// power-of-two mask depends on.
struct FlatHash {
  size_t operator()(uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// \brief Open-addressing hash map: flat slot array, linear probing,
/// power-of-two capacity, backward-shift deletion (no tombstones).
///
/// Grows at 7/8 load. See the file comment for the (deliberately
/// narrowed) contracts relative to std::unordered_map.
template <typename K, typename V, typename Hash = FlatHash>
class FlatHashMap {
  static_assert(std::is_integral_v<K>,
                "FlatHashMap keys must be integers (see file comment)");

 public:
  /// Entry type exposed by iterators (`first` / `second`, like the std
  /// containers, so call sites and structured bindings port unchanged).
  struct value_type {
    K first;
    V second;
  };

  /// Forward iterator over occupied slots. Invalidated by any mutation.
  template <bool kConst>
  class Iter {
   public:
    using MapPtr = std::conditional_t<kConst, const FlatHashMap*,
                                      FlatHashMap*>;
    using Ref = std::conditional_t<kConst, const value_type&, value_type&>;
    using Ptr = std::conditional_t<kConst, const value_type*, value_type*>;

    Iter() = default;
    Iter(MapPtr map, size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }

    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

    /// Const iterators convert from mutable ones (std idiom).
    operator Iter<true>() const { return Iter<true>(map_, idx_, 0); }

   private:
    friend class FlatHashMap;
    template <bool>
    friend class Iter;
    Iter(MapPtr map, size_t idx, int /*raw*/) : map_(map), idx_(idx) {}
    void SkipEmpty() {
      while (map_ != nullptr && idx_ < map_->full_.size() &&
             !map_->full_[idx_]) {
        ++idx_;
      }
    }
    MapPtr map_ = nullptr;
    size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;
  FlatHashMap(const FlatHashMap&) = default;
  FlatHashMap(FlatHashMap&& other) noexcept { Swap(other); }
  FlatHashMap& operator=(const FlatHashMap&) = default;
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Clear();
      Swap(other);
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate heap usage in bytes (slot array + occupancy bitmap).
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(value_type) +
           full_.capacity() * sizeof(uint8_t);
  }

  /// Drops every entry but keeps the allocation (hot scratch reuse).
  void clear() {
    for (size_t i = 0; i < full_.size(); ++i) {
      if (full_[i]) slots_[i] = value_type{};
      full_[i] = 0;
    }
    size_ = 0;
  }

  /// Pre-sizes so \p n entries fit without rehashing.
  void reserve(size_t n) {
    size_t needed = CapacityFor(n);
    if (needed > full_.size()) Rehash(needed);
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, full_.size(), 0); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, full_.size(), 0);
  }

  iterator find(K key) {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : iterator(this, idx, 0);
  }
  const_iterator find(K key) const {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : const_iterator(this, idx, 0);
  }

  bool contains(K key) const { return FindIndex(key) != kNotFound; }
  size_t count(K key) const { return contains(key) ? 1 : 0; }

  /// Inserts default-constructed V when absent (std semantics).
  V& operator[](K key) {
    size_t idx = InsertSlot(key);
    return slots_[idx].second;
  }

  /// No-op when \p key is present (std semantics: the existing mapped
  /// value is kept). Returns {iterator, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> emplace(K key, Args&&... args) {
    size_t before = size_;
    size_t idx = InsertSlot(key);
    bool inserted = size_ != before;
    if (inserted) slots_[idx].second = V(std::forward<Args>(args)...);
    return {iterator(this, idx, 0), inserted};
  }

  std::pair<iterator, bool> insert(value_type entry) {
    size_t before = size_;
    size_t idx = InsertSlot(entry.first);
    bool inserted = size_ != before;
    if (inserted) slots_[idx].second = std::move(entry.second);
    return {iterator(this, idx, 0), inserted};
  }

  /// Returns the number of entries removed (0 or 1).
  size_t erase(K key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    EraseIndex(idx);
    return 1;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  void Swap(FlatHashMap& other) {
    slots_.swap(other.slots_);
    full_.swap(other.full_);
    std::swap(size_, other.size_);
    std::swap(mask_, other.mask_);
  }

  void Clear() {
    slots_.clear();
    full_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// Smallest power-of-two capacity keeping \p n entries under 7/8 load.
  static size_t CapacityFor(size_t n) {
    size_t cap = kMinCapacity;
    while (n + n / 7 >= cap - cap / 8) cap <<= 1;
    return cap;
  }

  size_t IndexFor(K key) const {
    return Hash()(static_cast<uint64_t>(key)) & mask_;
  }

  size_t FindIndex(K key) const {
    if (full_.empty()) return kNotFound;
    size_t idx = IndexFor(key);
    while (full_[idx]) {
      if (slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask_;
    }
    return kNotFound;
  }

  /// Finds \p key or claims the slot it belongs in (growing first if the
  /// insert would cross the load ceiling).
  size_t InsertSlot(K key) {
    if (full_.empty() || (size_ + 1) * 8 > full_.size() * 7) {
      Rehash(full_.empty() ? kMinCapacity : full_.size() * 2);
    }
    size_t idx = IndexFor(key);
    while (full_[idx]) {
      if (slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask_;
    }
    slots_[idx].first = key;
    full_[idx] = 1;
    ++size_;
    return idx;
  }

  void Rehash(size_t new_capacity) {
    std::vector<value_type> old_slots;
    std::vector<uint8_t> old_full;
    old_slots.swap(slots_);
    old_full.swap(full_);
    slots_.resize(new_capacity);
    full_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (size_t i = 0; i < old_full.size(); ++i) {
      if (!old_full[i]) continue;
      size_t idx = InsertSlotNoGrow(old_slots[i].first);
      slots_[idx].second = std::move(old_slots[i].second);
    }
  }

  size_t InsertSlotNoGrow(K key) {
    size_t idx = IndexFor(key);
    while (full_[idx]) idx = (idx + 1) & mask_;
    slots_[idx].first = key;
    full_[idx] = 1;
    ++size_;
    return idx;
  }

  /// Backward-shift deletion: pulls displaced entries of the probe
  /// window over the hole so lookups never need tombstones.
  void EraseIndex(size_t hole) {
    size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (!full_[j]) break;
      size_t home = IndexFor(slots_[j].first);
      // The entry at j may fill the hole iff its home lies at or before
      // the hole in probe order: (j - home) mod cap >= (j - hole) mod cap.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = value_type{};
    full_[hole] = 0;
    --size_;
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> full_;  // 1 = slot occupied
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// \brief Open-addressing hash set over integer keys; same layout and
/// contracts as FlatHashMap.
template <typename K, typename Hash = FlatHash>
class FlatHashSet {
  static_assert(std::is_integral_v<K>,
                "FlatHashSet keys must be integers (see file comment)");

 public:
  /// Forward iterator over stored keys. Invalidated by any mutation.
  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(const FlatHashSet* set, size_t idx)
        : set_(set), idx_(idx) {
      SkipEmpty();
    }

    const K& operator*() const { return set_->slots_[idx_]; }

    const_iterator& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class FlatHashSet;
    const_iterator(const FlatHashSet* set, size_t idx, int /*raw*/)
        : set_(set), idx_(idx) {}
    void SkipEmpty() {
      while (set_ != nullptr && idx_ < set_->full_.size() &&
             !set_->full_[idx_]) {
        ++idx_;
      }
    }
    const FlatHashSet* set_ = nullptr;
    size_t idx_ = 0;
  };
  using iterator = const_iterator;

  FlatHashSet() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate heap usage in bytes (slot array + occupancy bitmap).
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(K) + full_.capacity() * sizeof(uint8_t);
  }

  /// Drops every key but keeps the allocation (hot scratch reuse).
  void clear() {
    std::fill(full_.begin(), full_.end(), uint8_t{0});
    size_ = 0;
  }

  /// Pre-sizes so \p n keys fit without rehashing.
  void reserve(size_t n) {
    size_t needed = CapacityFor(n);
    if (needed > full_.size()) Rehash(needed);
  }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, full_.size(), 0);
  }

  const_iterator find(K key) const {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : const_iterator(this, idx, 0);
  }

  bool contains(K key) const { return FindIndex(key) != kNotFound; }
  size_t count(K key) const { return contains(key) ? 1 : 0; }

  /// Returns {iterator, inserted}; `inserted` is false when the key was
  /// already present (the idiom the dedup hot loops key off).
  std::pair<const_iterator, bool> insert(K key) {
    if (full_.empty() || (size_ + 1) * 8 > full_.size() * 7) {
      Rehash(full_.empty() ? kMinCapacity : full_.size() * 2);
    }
    size_t idx = IndexFor(key);
    while (full_[idx]) {
      if (slots_[idx] == key) return {const_iterator(this, idx, 0), false};
      idx = (idx + 1) & mask_;
    }
    slots_[idx] = key;
    full_[idx] = 1;
    ++size_;
    return {const_iterator(this, idx, 0), true};
  }

  /// Returns the number of keys removed (0 or 1).
  size_t erase(K key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    size_t hole = idx;
    size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (!full_[j]) break;
      size_t home = IndexFor(slots_[j]);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    full_[hole] = 0;
    --size_;
    return 1;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  static size_t CapacityFor(size_t n) {
    size_t cap = kMinCapacity;
    while (n + n / 7 >= cap - cap / 8) cap <<= 1;
    return cap;
  }

  size_t IndexFor(K key) const {
    return Hash()(static_cast<uint64_t>(key)) & mask_;
  }

  size_t FindIndex(K key) const {
    if (full_.empty()) return kNotFound;
    size_t idx = IndexFor(key);
    while (full_[idx]) {
      if (slots_[idx] == key) return idx;
      idx = (idx + 1) & mask_;
    }
    return kNotFound;
  }

  void Rehash(size_t new_capacity) {
    std::vector<K> old_slots;
    std::vector<uint8_t> old_full;
    old_slots.swap(slots_);
    old_full.swap(full_);
    slots_.resize(new_capacity);
    full_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (size_t i = 0; i < old_full.size(); ++i) {
      if (!old_full[i]) continue;
      size_t idx = IndexFor(old_slots[i]);
      while (full_[idx]) idx = (idx + 1) & mask_;
      slots_[idx] = old_slots[i];
      full_[idx] = 1;
    }
  }

  std::vector<K> slots_;
  std::vector<uint8_t> full_;  // 1 = slot occupied
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// \name The posting-path container seam.
///
/// Every hot map/set on the posting paths (filter-key lookup, candidate
/// dedup, delta/tombstone registries, partition routing) goes through
/// these aliases, so the container implementation can be swapped in one
/// line. Cold-path maps (configuration, test oracles) may stay std with
/// a comment saying why.
/// @{
template <typename K, typename V>
using PostingMap = FlatHashMap<K, V>;

template <typename K>
using PostingSet = FlatHashSet<K>;
/// @}

}  // namespace skewsearch

#endif  // SKEWSEARCH_UTIL_CONTAINERS_H_
