// Copyright 2026 The skewsearch Authors.
// Set similarity measures. The paper's data structures use Braun-Blanquet
// similarity B(x, q) = |x n q| / max(|x|, |q|) (following Christiani &
// Pagh); the others are provided because the paper notes results extend to
// them and the examples/baselines use Jaccard.

#ifndef SKEWSEARCH_SIM_MEASURES_H_
#define SKEWSEARCH_SIM_MEASURES_H_

#include <span>

#include "data/sparse_vector.h"

namespace skewsearch {

/// Supported similarity measures.
enum class Measure {
  kBraunBlanquet,  ///< |x n q| / max(|x|, |q|)
  kJaccard,        ///< |x n q| / |x u q|
  kDice,           ///< 2 |x n q| / (|x| + |q|)
  kOverlap,        ///< |x n q| / min(|x|, |q|)
  kCosine,         ///< |x n q| / sqrt(|x| |q|)
};

/// \name Direct measures on sorted id lists.
/// All return 0 when either side is empty.
/// @{
double BraunBlanquet(std::span<const ItemId> a, std::span<const ItemId> b);
double Jaccard(std::span<const ItemId> a, std::span<const ItemId> b);
double Dice(std::span<const ItemId> a, std::span<const ItemId> b);
double Overlap(std::span<const ItemId> a, std::span<const ItemId> b);
double Cosine(std::span<const ItemId> a, std::span<const ItemId> b);
/// @}

/// Computes \p measure on (a, b).
double Similarity(Measure measure, std::span<const ItemId> a,
                  std::span<const ItemId> b);

/// Computes a measure given precomputed |a|, |b| and |a n b| (lets callers
/// reuse one intersection count for several measures).
double SimilarityFromCounts(Measure measure, size_t size_a, size_t size_b,
                            size_t intersection);

/// Empirical Pearson (phi) correlation of two boolean vectors in a universe
/// of size d: (n11 * n00 - n10 * n01) / sqrt(row/col margins). This is the
/// sample analogue of the paper's alpha parameter.
double EmpiricalPearson(std::span<const ItemId> a, std::span<const ItemId> b,
                        size_t d);

/// Converts a Braun-Blanquet threshold to the Jaccard threshold implied for
/// equal-size sets: j = b / (2 - b). Used when comparing against
/// Jaccard-based baselines (MinHash).
double BraunBlanquetToJaccardEquivalent(double b);

/// Inverse of BraunBlanquetToJaccardEquivalent: b = 2j / (1 + j).
double JaccardToBraunBlanquetEquivalent(double j);

}  // namespace skewsearch

#endif  // SKEWSEARCH_SIM_MEASURES_H_
