#include "sim/brute_force.h"

#include <algorithm>

namespace skewsearch {

BruteForceSearcher::BruteForceSearcher(const Dataset* data, Measure measure)
    : data_(data), measure_(measure) {}

std::vector<Match> BruteForceSearcher::AboveThreshold(
    std::span<const ItemId> query, double threshold) const {
  std::vector<Match> out;
  for (VectorId id = 0; id < data_->size(); ++id) {
    double sim = Similarity(measure_, query, data_->Get(id));
    if (sim >= threshold) out.push_back({id, sim});
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  return out;
}

std::vector<Match> BruteForceSearcher::TopK(std::span<const ItemId> query,
                                            size_t k) const {
  std::vector<Match> all = AboveThreshold(query, -1.0);
  if (all.size() > k) all.resize(k);
  return all;
}

Match BruteForceSearcher::Best(std::span<const ItemId> query) const {
  Match best{0, -1.0};
  for (VectorId id = 0; id < data_->size(); ++id) {
    double sim = Similarity(measure_, query, data_->Get(id));
    if (sim > best.similarity) best = {id, sim};
  }
  return best;
}

std::vector<JoinPair> BruteForceSearcher::SelfJoinAbove(
    double threshold) const {
  std::vector<JoinPair> out;
  for (VectorId i = 0; i < data_->size(); ++i) {
    for (VectorId j = i + 1; j < data_->size(); ++j) {
      double sim = Similarity(measure_, data_->Get(i), data_->Get(j));
      if (sim >= threshold) out.push_back({i, j, sim});
    }
  }
  return out;
}

}  // namespace skewsearch
