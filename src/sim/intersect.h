// Copyright 2026 The skewsearch Authors.
// Intersection kernels for sorted id lists — the inner loop of candidate
// verification. |x n q| drives every similarity measure in sim/measures.h.

#ifndef SKEWSEARCH_SIM_INTERSECT_H_
#define SKEWSEARCH_SIM_INTERSECT_H_

#include <cstddef>
#include <span>

#include "data/sparse_vector.h"

namespace skewsearch {

/// Linear merge intersection count; O(|a| + |b|). Best when sizes are
/// comparable.
size_t IntersectSizeMerge(std::span<const ItemId> a,
                          std::span<const ItemId> b);

/// Galloping (exponential search) intersection count; O(|a| log(|b|/|a|))
/// with |a| <= |b|. Best when one list is much shorter.
size_t IntersectSizeGalloping(std::span<const ItemId> a,
                              std::span<const ItemId> b);

/// Dispatches based on the size ratio: galloping for heavily asymmetric
/// pairs, otherwise the runtime-selected SIMD kernel (core/intersect.h).
/// Byte-identical to IntersectSizeMerge for every input.
size_t IntersectSize(std::span<const ItemId> a, std::span<const ItemId> b);

/// Early-exit predicate kernel: the return value is >= bound if and only
/// if |a n b| >= bound. Scanning stops as soon as the bound is provably
/// met or provably unreachable, so the returned value is NOT the exact
/// intersection size in either early-exit case — use it only to test the
/// threshold.
size_t IntersectSizeAtLeast(std::span<const ItemId> a,
                            std::span<const ItemId> b, size_t bound);

}  // namespace skewsearch

#endif  // SKEWSEARCH_SIM_INTERSECT_H_
