#include "sim/intersect.h"

#include <algorithm>

#include "core/intersect.h"

namespace skewsearch {

size_t IntersectSizeMerge(std::span<const ItemId> a,
                          std::span<const ItemId> b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t IntersectSizeGalloping(std::span<const ItemId> a,
                              std::span<const ItemId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  size_t count = 0;
  size_t lo = 0;
  for (ItemId needle : a) {
    // Exponential search for needle in b[lo..).
    size_t step = 1;
    size_t hi = lo;
    while (hi < b.size() && b[hi] < needle) {
      lo = hi + 1;
      hi = lo + step;
      step <<= 1;
    }
    hi = std::min(hi, b.size());
    const ItemId* pos = std::lower_bound(b.data() + lo, b.data() + hi, needle);
    lo = static_cast<size_t>(pos - b.data());
    if (lo < b.size() && b[lo] == needle) {
      ++count;
      ++lo;
    }
    if (lo >= b.size()) break;
  }
  return count;
}

size_t IntersectSize(std::span<const ItemId> a, std::span<const ItemId> b) {
  // Routed through the runtime-selected kernel (core/intersect.h); every
  // kernel is byte-identical to the merge/galloping reference above, so
  // all call sites keep their exact counts while inheriting the speedup.
  return IntersectSizeKernel(a, b);
}

size_t IntersectSizeAtLeast(std::span<const ItemId> a,
                            std::span<const ItemId> b, size_t bound) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    // Upper bound on what is still reachable; stop once the target bound
    // cannot be met or has been met.
    if (count >= bound) return count;
    if (count + std::min(a.size() - i, b.size() - j) < bound) return count;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace skewsearch
