// Copyright 2026 The skewsearch Authors.
// Exact linear-scan search and join: the ground truth against which every
// index in this library is tested, and the trivial baseline the heuristics
// degenerate to on hard inputs.

#ifndef SKEWSEARCH_SIM_BRUTE_FORCE_H_
#define SKEWSEARCH_SIM_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/sparse_vector.h"
#include "sim/measures.h"

namespace skewsearch {

/// One search hit.
struct Match {
  VectorId id;
  double similarity;

  friend bool operator==(const Match& a, const Match& b) {
    return a.id == b.id && a.similarity == b.similarity;
  }
};

/// A matching pair produced by a join.
struct JoinPair {
  VectorId left;
  VectorId right;
  double similarity;
};

/// \brief Exact searcher scanning the whole dataset per query.
class BruteForceSearcher {
 public:
  /// \param data dataset to search (not owned; must outlive the searcher).
  /// \param measure similarity measure used for all queries.
  explicit BruteForceSearcher(const Dataset* data,
                              Measure measure = Measure::kBraunBlanquet);

  /// All vectors with similarity >= threshold, sorted by descending
  /// similarity (ties by id).
  std::vector<Match> AboveThreshold(std::span<const ItemId> query,
                                    double threshold) const;

  /// The k most similar vectors (fewer if the dataset is smaller), sorted
  /// by descending similarity (ties by id).
  std::vector<Match> TopK(std::span<const ItemId> query, size_t k) const;

  /// The single best match, or {0, -1} for an empty dataset.
  Match Best(std::span<const ItemId> query) const;

  /// All pairs (i < j) with similarity >= threshold — the exact similarity
  /// self-join, used to validate index-based joins. O(n^2) scans.
  std::vector<JoinPair> SelfJoinAbove(double threshold) const;

 private:
  const Dataset* data_;
  Measure measure_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_SIM_BRUTE_FORCE_H_
