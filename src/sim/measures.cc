#include "sim/measures.h"

#include <algorithm>
#include <cmath>

#include "sim/intersect.h"

namespace skewsearch {

double SimilarityFromCounts(Measure measure, size_t size_a, size_t size_b,
                            size_t intersection) {
  if (size_a == 0 || size_b == 0) return 0.0;
  double inter = static_cast<double>(intersection);
  double a = static_cast<double>(size_a);
  double b = static_cast<double>(size_b);
  switch (measure) {
    case Measure::kBraunBlanquet:
      return inter / std::max(a, b);
    case Measure::kJaccard:
      return inter / (a + b - inter);
    case Measure::kDice:
      return 2.0 * inter / (a + b);
    case Measure::kOverlap:
      return inter / std::min(a, b);
    case Measure::kCosine:
      return inter / std::sqrt(a * b);
  }
  return 0.0;
}

namespace {

double Compute(Measure measure, std::span<const ItemId> a,
               std::span<const ItemId> b) {
  return SimilarityFromCounts(measure, a.size(), b.size(),
                              IntersectSize(a, b));
}

}  // namespace

double BraunBlanquet(std::span<const ItemId> a, std::span<const ItemId> b) {
  return Compute(Measure::kBraunBlanquet, a, b);
}
double Jaccard(std::span<const ItemId> a, std::span<const ItemId> b) {
  return Compute(Measure::kJaccard, a, b);
}
double Dice(std::span<const ItemId> a, std::span<const ItemId> b) {
  return Compute(Measure::kDice, a, b);
}
double Overlap(std::span<const ItemId> a, std::span<const ItemId> b) {
  return Compute(Measure::kOverlap, a, b);
}
double Cosine(std::span<const ItemId> a, std::span<const ItemId> b) {
  return Compute(Measure::kCosine, a, b);
}

double Similarity(Measure measure, std::span<const ItemId> a,
                  std::span<const ItemId> b) {
  return Compute(measure, a, b);
}

double EmpiricalPearson(std::span<const ItemId> a, std::span<const ItemId> b,
                        size_t d) {
  if (d == 0) return 0.0;
  double n11 = static_cast<double>(IntersectSize(a, b));
  double n1x = static_cast<double>(a.size());
  double nx1 = static_cast<double>(b.size());
  double n10 = n1x - n11;
  double n01 = nx1 - n11;
  double n00 = static_cast<double>(d) - n11 - n10 - n01;
  double denom = std::sqrt(n1x * (static_cast<double>(d) - n1x) * nx1 *
                           (static_cast<double>(d) - nx1));
  if (denom <= 0.0) return 0.0;
  return (n11 * n00 - n10 * n01) / denom;
}

double BraunBlanquetToJaccardEquivalent(double b) { return b / (2.0 - b); }

double JaccardToBraunBlanquetEquivalent(double j) {
  return 2.0 * j / (1.0 + j);
}

}  // namespace skewsearch
