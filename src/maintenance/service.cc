#include "maintenance/service.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/timer.h"

namespace skewsearch {

MaintenanceService::~MaintenanceService() { Detach(); }

Status MaintenanceService::Attach(DynamicIndex* index,
                                  const MaintenanceOptions& options) {
  if (index == nullptr) {
    return Status::InvalidArgument("index must be non-null");
  }
  if (options.poll_interval_ms <= 0) {
    return Status::InvalidArgument("poll_interval_ms must be positive");
  }
  if (running()) {
    return Status::InvalidArgument("cannot re-attach while running");
  }
  if (index_ != nullptr) index_->SetMaintenanceListener(nullptr);
  index_ = index;
  options_ = options;
  index_->SetMaintenanceListener(this);
  return Status::OK();
}

void MaintenanceService::Detach() {
  Stop();
  if (index_ != nullptr) {
    index_->SetMaintenanceListener(nullptr);
    index_ = nullptr;
  }
}

Status MaintenanceService::Start() {
  if (index_ == nullptr) {
    return Status::InvalidArgument("no index attached");
  }
  if (running()) return Status::OK();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::OK();
}

void MaintenanceService::Stop() {
  if (!running()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void MaintenanceService::SetCheckpointDriver(CheckpointDriver* driver) {
  checkpoint_driver_.store(driver, std::memory_order_seq_cst);
}

void MaintenanceService::OnShardDirty(int /*shard*/) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_ = true;
  }
  cv_.notify_one();
}

Status MaintenanceService::RunOnce() {
  // Maintenance metrics (docs/OBSERVABILITY.md, "maintenance.*") —
  // compaction/rebuild counters plus duration histograms, and the epoch
  // backlog gauge a stuck reader would show up in.
  static obs::Counter* const scans_metric =
      obs::MetricsRegistry::Global().GetCounter("maintenance.scans");
  static obs::Counter* const compactions_metric =
      obs::MetricsRegistry::Global().GetCounter("maintenance.compactions");
  static obs::Counter* const rebuilds_metric =
      obs::MetricsRegistry::Global().GetCounter("maintenance.rebuilds");
  static obs::Counter* const reclaimed_metric =
      obs::MetricsRegistry::Global().GetCounter("maintenance.reclaimed");
  static obs::Histogram* const compact_span_metric =
      obs::MetricsRegistry::Global().GetHistogram(
          "span.maintenance.compact");
  static obs::Histogram* const rebuild_span_metric =
      obs::MetricsRegistry::Global().GetHistogram(
          "span.maintenance.rebuild");
  static obs::Gauge* const backlog_metric =
      obs::MetricsRegistry::Global().GetGauge("maintenance.epoch_backlog");

  DynamicIndex* index = index_;
  if (index == nullptr) {
    return Status::InvalidArgument("no index attached");
  }
  if (!index->built()) return Status::OK();
  const double threshold = options_.dead_ratio >= 0.0
                               ? options_.dead_ratio
                               : index->options().compact_dead_fraction;
  size_t compactions = 0;
  Status status = Status::OK();
  for (int s = 0; s < index->num_shards() && status.ok(); ++s) {
    ShardHealth health = index->Health(s);
    const size_t total = health.live_entries + health.dead_entries;
    const bool dead_pressure =
        health.dead_entries > 0 && health.dead_ratio > threshold;
    const bool delta_pressure =
        (options_.delta_ratio > 0.0 && total > 0 &&
         static_cast<double>(health.delta_entries) >
             options_.delta_ratio * static_cast<double>(total)) ||
        (options_.max_delta_entries > 0 &&
         health.delta_entries > options_.max_delta_entries);
    if (dead_pressure || delta_pressure) {
      Timer compact_timer;
      status = index->CompactShard(s);
      if (status.ok()) {
        ++compactions;
        compactions_metric->Increment();
        compact_span_metric->Record(
            static_cast<uint64_t>(compact_timer.ElapsedNanos()));
      }
    }
  }
  size_t rebuilds = 0;
  if (status.ok() && options_.drift_factor > 1.0) {
    const double factor = options_.drift_factor;
    const size_t live = index->size();
    const size_t derived = index->derived_n();
    const bool drifted =
        derived > 0 && live >= std::max<size_t>(2, options_.min_rebuild_n) &&
        (static_cast<double>(live) > factor * static_cast<double>(derived) ||
         static_cast<double>(live) * factor < static_cast<double>(derived));
    if (drifted) {
      Timer rebuild_timer;
      status = index->RebuildForSize(live);
      if (status.ok()) {
        ++rebuilds;
        rebuilds_metric->Increment();
        rebuild_span_metric->Record(
            static_cast<uint64_t>(rebuild_timer.ElapsedNanos()));
      }
    }
  }
  size_t checkpoints = 0;
  if (status.ok()) {
    static obs::Counter* const checkpoints_metric =
        obs::MetricsRegistry::Global().GetCounter("maintenance.checkpoints");
    static obs::Histogram* const checkpoint_span_metric =
        obs::MetricsRegistry::Global().GetHistogram(
            "span.maintenance.checkpoint");
    CheckpointDriver* driver =
        checkpoint_driver_.load(std::memory_order_acquire);
    if (driver != nullptr && driver->CheckpointDue()) {
      Timer checkpoint_timer;
      status = driver->Checkpoint();
      if (status.ok()) {
        ++checkpoints;
        checkpoints_metric->Increment();
        checkpoint_span_metric->Record(
            static_cast<uint64_t>(checkpoint_timer.ElapsedNanos()));
      }
    }
  }
  const size_t reclaimed = index->epochs().Collect();
  scans_metric->Increment();
  reclaimed_metric->Increment(reclaimed);
  backlog_metric->Set(static_cast<int64_t>(index->epochs().limbo_size()));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.scans++;
    stats_.compactions += compactions;
    stats_.rebuilds += rebuilds;
    stats_.reclaimed += reclaimed;
    stats_.checkpoints += checkpoints;
    if (!status.ok()) last_error_ = status;
  }
  return status;
}

void MaintenanceService::ThreadMain() {
  const auto interval = std::chrono::milliseconds(options_.poll_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, interval, [this] {
        return stop_.load(std::memory_order_acquire) || dirty_;
      });
      dirty_ = false;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    RunOnce().ok();  // failures recorded in last_error_
  }
}

MaintenanceStats MaintenanceService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Status MaintenanceService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace skewsearch
