#include "maintenance/epoch.h"

#include <algorithm>
#include <thread>

namespace skewsearch {

namespace {

/// Cheap per-thread starting offset so concurrent pins don't all fight
/// over slot 0.
size_t SlotScanStart() {
  static std::atomic<size_t> counter{0};
  thread_local const size_t start =
      counter.fetch_add(1, std::memory_order_relaxed);
  return start;
}

}  // namespace

void EpochManager::PinSlot(Guard* guard) {
  const size_t start = SlotScanStart();
  for (;;) {
    // Read the epoch first: the CAS below publishes it, and seq_cst
    // ordering guarantees any pointer loaded afterwards was current at
    // or after the moment the pin became visible.
    const uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
    for (size_t k = 0; k < kMaxReaders; ++k) {
      const size_t s = (start + k) % kMaxReaders;
      uint64_t expected = 0;
      if (slots_[s].value.compare_exchange_strong(
              expected, epoch + 1, std::memory_order_seq_cst)) {
        guard->manager_ = this;
        guard->slot_ = static_cast<uint32_t>(s);
        guard->epoch_ = epoch;
        return;
      }
    }
    std::this_thread::yield();  // > kMaxReaders concurrent pins
  }
}

void EpochManager::UnpinSlot(uint32_t slot) {
  // seq_cst (hence release): Collect()'s acquire load of this slot
  // creates the happens-before edge that makes reclaiming the objects
  // this reader scanned race-free.
  slots_[slot].value.store(0, std::memory_order_seq_cst);
}

size_t EpochManager::Retire(std::shared_ptr<const void> retired) {
  size_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    limbo_.emplace_back(epoch_.load(std::memory_order_seq_cst),
                        std::move(retired));
    backlog = limbo_.size();
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.fetch_add(1, std::memory_order_relaxed);
  return backlog;
}

size_t EpochManager::Collect() {
  // Bound reclamation by the epoch read *before* the slot scan. A reader
  // that pins after the scan is invisible to it, but its pin load comes
  // after this load in the seq_cst total order, so it observes an epoch
  // >= scan_epoch — and a reader pinned at epoch e can only hold
  // pointers retired at epoch >= e. Entries retired at or after
  // scan_epoch therefore stay in limbo until a later Collect(), closing
  // the window where a concurrent pin + Retire() could race this pass
  // into freeing a snapshot that late reader still dereferences.
  const uint64_t scan_epoch = epoch_.load(std::memory_order_seq_cst);
  uint64_t min_pinned = scan_epoch;
  for (const PaddedAtomicU64& slot : slots_) {
    const uint64_t value = slot.value.load(std::memory_order_seq_cst);
    if (value != 0) min_pinned = std::min(min_pinned, value - 1);
  }
  // Move reclaimable entries out under the lock, destroy them outside it
  // (snapshot destructors can be arbitrarily heavy).
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> dead;
  {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    auto alive_end = std::partition(
        limbo_.begin(), limbo_.end(),
        [min_pinned](const auto& entry) { return entry.first >= min_pinned; });
    dead.assign(std::make_move_iterator(alive_end),
                std::make_move_iterator(limbo_.end()));
    limbo_.erase(alive_end, limbo_.end());
  }
  reclaimed_.fetch_add(dead.size(), std::memory_order_relaxed);
  return dead.size();
}

size_t EpochManager::pinned_readers() const {
  size_t pinned = 0;
  for (const PaddedAtomicU64& slot : slots_) {
    if (slot.value.load(std::memory_order_seq_cst) != 0) ++pinned;
  }
  return pinned;
}

size_t EpochManager::limbo_size() const {
  std::lock_guard<std::mutex> lock(limbo_mutex_);
  return limbo_.size();
}

}  // namespace skewsearch
