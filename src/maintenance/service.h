// Copyright 2026 The skewsearch Authors.
// MaintenanceService: the background housekeeping policy of the online
// index.
//
// The DynamicIndex provides the *mechanisms* — epoch-published shard
// snapshots, CompactShard(), RebuildForSize() — and stays policy-free:
// Remove() never compacts inline, it only notifies the registered
// listener. This service is that listener. A dedicated thread watches
// per-shard dead-entry ratios and the drift between the live count and
// the build-time n the parameters were derived for (Lemma 5 provisions
// the repetition count against ln n, so heavy growth silently erodes
// the recall guarantee). When a shard's dead ratio crosses the
// threshold it is compacted; when the live count drifts past the
// configured factor, the whole index is re-derived and rebuilt shard by
// shard — all on the maintenance thread, with readers wait-free and
// writers blocked only for the short per-shard merge sections.
//
// The service can also be driven manually (RunOnce) for deterministic
// tests and batch jobs.

#ifndef SKEWSEARCH_MAINTENANCE_SERVICE_H_
#define SKEWSEARCH_MAINTENANCE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

#include "core/dynamic_index.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Policy knobs of the maintenance service.
struct MaintenanceOptions {
  /// Dead-entry fraction above which a shard is compacted; negative
  /// falls back to the index's compact_dead_fraction.
  double dead_ratio = -1.0;

  /// Delta-entry fraction above which a shard is compacted even without
  /// tombstones: an insert-heavy shard accumulates delta postings that
  /// cost queries one hash probe per key and writers bucket-sized COW
  /// copies, so folding the delta into the frozen base is maintenance
  /// too. Values <= 0 disable the trigger.
  double delta_ratio = 0.25;

  /// Absolute per-shard delta cap (entries), the memtable-style bound:
  /// past it the shard is compacted regardless of the ratio, keeping the
  /// COW write cost flat as the shard grows (write amplification is
  /// O(shard / cap), the usual leveling trade). 0 disables.
  size_t max_delta_entries = 16384;

  /// Live-count drift that triggers a parameter re-derive + rebuild:
  /// rebuild once live > factor * derived_n or live * factor <
  /// derived_n. Values <= 1 disable drift rebuilds.
  double drift_factor = 2.0;

  /// Background thread poll interval. Dirty-shard notifications wake
  /// the thread earlier.
  int poll_interval_ms = 50;

  /// Smallest live count a drift rebuild is worth re-deriving for.
  size_t min_rebuild_n = 16;
};

/// \brief Counters of the work performed so far.
struct MaintenanceStats {
  size_t scans = 0;        ///< completed RunOnce passes
  size_t compactions = 0;  ///< shard compactions performed
  size_t rebuilds = 0;     ///< full drift rebuilds performed
  size_t reclaimed = 0;    ///< retired snapshots reclaimed by our collects
  size_t checkpoints = 0;  ///< durability checkpoints completed
};

/// \brief Hook letting the maintenance thread drive durability
/// checkpoints (snapshot + WAL truncate) on its own cadence.
///
/// The service stays storage-agnostic: each RunOnce pass asks the
/// registered driver whether a checkpoint is due (log size/age policy
/// lives in the driver, see durability/recovery.h) and runs it on the
/// maintenance thread. Implementations must be safe against concurrent
/// Insert/Remove/Query traffic — the DurableIndex driver is, via the
/// index's pinned-snapshot Save path.
class CheckpointDriver {
 public:
  virtual ~CheckpointDriver() = default;

  /// True when the WAL's size or age warrants a checkpoint now.
  virtual bool CheckpointDue() = 0;

  /// Snapshots the index and truncates the log behind it.
  virtual Status Checkpoint() = 0;
};

/// \brief Background compaction + drift-rebuild driver for one
/// DynamicIndex.
///
/// Thread-safety: Attach/Start/Stop/Detach are for the owning thread;
/// RunOnce may race the background thread (index maintenance operations
/// serialize internally). The attached index must outlive the service
/// (or Detach() must be called first).
class MaintenanceService : public MaintenanceListener {
 public:
  MaintenanceService() = default;
  ~MaintenanceService() override;
  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  /// Binds the service to \p index (registering it as the maintenance
  /// listener) with the given policy. Does not start the thread.
  Status Attach(DynamicIndex* index,
                const MaintenanceOptions& options = MaintenanceOptions());

  /// Stops the thread (if running) and unregisters from the index.
  void Detach();

  /// Starts the background thread. Requires a prior Attach().
  Status Start();

  /// Stops and joins the background thread; the listener registration
  /// and manual RunOnce() remain usable.
  void Stop();

  /// Registers (or clears, with nullptr) the checkpoint driver each
  /// RunOnce pass consults. Register before Start() (or while the
  /// thread is stopped); the driver must outlive the service or be
  /// cleared first.
  void SetCheckpointDriver(CheckpointDriver* driver);

  /// One maintenance pass: compacts every shard over the dead-ratio
  /// threshold, performs a drift rebuild if warranted, runs a due
  /// durability checkpoint, and collects retired snapshots. Callable
  /// with or without the thread running.
  Status RunOnce();

  bool running() const { return running_.load(std::memory_order_acquire); }

  MaintenanceStats stats() const;

  /// Status of the most recent failed maintenance action (OK if none).
  Status last_error() const;

  /// MaintenanceListener: a writer pushed a shard over the dead-entry
  /// threshold; wake the thread.
  void OnShardDirty(int shard) override;

 private:
  void ThreadMain();

  DynamicIndex* index_ = nullptr;
  MaintenanceOptions options_;
  std::atomic<CheckpointDriver*> checkpoint_driver_{nullptr};

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  mutable std::mutex mutex_;  // guards cv_ wakeups, stats_, last_error_
  std::condition_variable cv_;
  bool dirty_ = false;
  MaintenanceStats stats_;
  Status last_error_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_MAINTENANCE_SERVICE_H_
