// Copyright 2026 The skewsearch Authors.
// EpochManager: epoch-based reclamation (a user-space RCU) for the
// online index's read path.
//
// The dynamic index publishes each shard as an immutable snapshot behind
// an atomic pointer. Readers no longer take any lock: they *pin* the
// current epoch (one CAS into a padded reader slot), load the snapshot
// pointers they need, scan, and unpin (one store). Writers build a new
// snapshot off to the side, swap the pointer, and hand the old snapshot
// to the manager via Retire(); it is destroyed only once every reader
// that could possibly still be scanning it has unpinned.
//
// Safety argument (all epoch, slot and snapshot-pointer operations are
// seq_cst, so a single total order exists):
//   * Retire(p) happens after p was swapped out, and records the epoch
//     E at retire time, then advances the epoch.
//   * A reader pinned with epoch e protects every retirement with
//     epoch >= e: Collect() only frees entries whose retire epoch is
//     strictly below min(minimum pinned epoch, epoch at the start of the
//     slot scan). The second bound covers readers that pin after the
//     scan (and are thus invisible to it): such a pin observes an epoch
//     >= the scan epoch, so anything it can hold was retired at or
//     after the scan epoch and is left in limbo for a later pass.
//   * A reader pinned with epoch e cannot hold a pointer retired at
//     epoch < e: observing the advanced epoch places its pin after the
//     swap in the total order, so its subsequent pointer loads can only
//     return the replacement.
// The unpin store is a release and Collect()'s slot loads acquire, so
// reclamation also carries a proper happens-before edge for TSan.
//
// Capacity: kMaxReaders concurrent pins; a pin beyond that spins until a
// slot frees (readers hold slots only for the duration of one scan, so
// this is a pathological case, not a steady state).

#ifndef SKEWSEARCH_MAINTENANCE_EPOCH_H_
#define SKEWSEARCH_MAINTENANCE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace skewsearch {

/// \brief Epoch-based reclamation domain.
///
/// One manager per index. Pin() / Retire() / Collect() are thread-safe;
/// the destructor requires that no reader is pinned (the owning index's
/// destruction contract already demands quiescence).
class EpochManager {
 public:
  /// Maximum concurrently pinned readers before Pin() has to spin.
  static constexpr size_t kMaxReaders = 64;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Destroys everything still in limbo (callers guarantee quiescence).
  ~EpochManager() { limbo_.clear(); }

  /// \brief RAII epoch pin. Movable; destroying (or moving from) unpins.
  ///
  /// While a Guard is alive, every object retired at or after the
  /// guard's epoch stays alive. Guards are cheap (one CAS + one store)
  /// but not free — pin once per query or batch, not per shard.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(EpochManager* manager) { manager->PinSlot(this); }
    Guard(Guard&& other) noexcept
        : manager_(std::exchange(other.manager_, nullptr)),
          slot_(other.slot_),
          epoch_(other.epoch_) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = std::exchange(other.manager_, nullptr);
        slot_ = other.slot_;
        epoch_ = other.epoch_;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    bool pinned() const { return manager_ != nullptr; }

    /// The epoch this guard pinned (diagnostics/tests).
    uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochManager;
    void Release() {
      if (manager_ != nullptr) {
        manager_->UnpinSlot(slot_);
        manager_ = nullptr;
      }
    }

    EpochManager* manager_ = nullptr;
    uint32_t slot_ = 0;
    uint64_t epoch_ = 0;
  };

  /// Pins the current epoch. Wait-free in the common case (< kMaxReaders
  /// concurrent readers); spins otherwise.
  Guard Pin() { return Guard(this); }

  /// Transfers ownership of \p retired to the manager and advances the
  /// epoch. The object is destroyed by a later Collect() once no pinned
  /// reader predates its retirement. Must be called *after* the object
  /// has been unlinked from every reader-reachable location. Returns the
  /// limbo backlog including this entry (so callers can trigger a
  /// Collect() without re-taking the limbo lock).
  size_t Retire(std::shared_ptr<const void> retired);

  /// Destroys every limbo entry no pinned reader can still see; returns
  /// the number destroyed. Called opportunistically by writers and
  /// periodically by the maintenance service.
  size_t Collect();

  /// Current epoch (advanced by every Retire()).
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Readers currently pinned (approximate under concurrency).
  size_t pinned_readers() const;

  /// Retired objects not yet reclaimed.
  size_t limbo_size() const;

  uint64_t total_retired() const {
    return retired_.load(std::memory_order_relaxed);
  }
  uint64_t total_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Guard;

  void PinSlot(Guard* guard);
  void UnpinSlot(uint32_t slot);

  /// Slot values are pinned_epoch + 1; 0 means free.
  std::array<PaddedAtomicU64, kMaxReaders> slots_;
  std::atomic<uint64_t> epoch_{1};

  mutable std::mutex limbo_mutex_;
  /// (retire epoch, object) pairs awaiting reclamation.
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> limbo_;
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_MAINTENANCE_EPOCH_H_
