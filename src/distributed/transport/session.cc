#include "distributed/transport/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/frozen_shard.h"
#include "data/dataset.h"
#include "distributed/worker.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

/// Receives the next frame, unwrapping a peer Error frame into the
/// Status it carries.
Status ReceiveChecked(FrameConnection* connection, wire::Frame* frame) {
  SKEWSEARCH_RETURN_NOT_OK(connection->Receive(frame));
  if (frame->type == wire::FrameType::kError) {
    wire::ErrorFrame error;
    SKEWSEARCH_RETURN_NOT_OK(wire::DecodeError(*frame, &error));
    return wire::StatusFromError(error);
  }
  return Status::OK();
}

/// Worker-side failure path: best-effort Error frame, close, propagate.
Status FailSession(FrameConnection* connection, const Status& status) {
  (void)connection->Send(wire::EncodeError(status));
  connection->Close();
  return status;
}

/// Counters of one (re)assignment as shipped — what both ack frames
/// carry and the coordinator cross-checks against what it serialized.
wire::AssignmentAckFrame SliceCounters(
    const wire::WorkerAssignment& assignment) {
  wire::AssignmentAckFrame ack;
  ack.num_keys = assignment.postings.size();
  for (const auto& [key, ids] : assignment.postings) {
    ack.num_entries += ids.size();
  }
  ack.distinct_vectors = assignment.vectors.size();
  return ack;
}

/// \brief The worker's live serving state: the shipped vectors stored
/// densely, the id map, and the JoinWorker answering probes.
///
/// Apply() is used for both the initial assignment and every later
/// reassignment: it validates the shipped slice, adds vectors the
/// worker does not hold yet, and rebuilds the JoinWorker over the
/// union of every applied slice. Rebuilt rather than patched so the
/// "each id appears at most once per response" invariant of the frozen
/// table keeps holding after a merge.
struct WorkerState {
  int worker_id = 0;
  Dataset data;
  PostingMap<VectorId, VectorId> positions;
  std::optional<JoinWorker> worker;

  Status Apply(const wire::WorkerAssignment& assignment) {
    // Every posting id must have a shipped vector and every shipped
    // vector must be referenced — an assignment violating either is
    // rejected, so the probe loop can trust the map completely. The
    // check is per-slice: a reassignment re-ships vectors this worker
    // may already hold (they are skipped below), but must itself be
    // internally consistent.
    std::vector<VectorId> referenced;
    uint64_t entries = 0;
    for (const auto& [key, ids] : assignment.postings) {
      referenced.insert(referenced.end(), ids.begin(), ids.end());
      entries += ids.size();
    }
    std::sort(referenced.begin(), referenced.end());
    referenced.erase(std::unique(referenced.begin(), referenced.end()),
                     referenced.end());
    if (referenced.size() != assignment.vectors.size()) {
      return Status::InvalidArgument(
          "session: assignment ships " +
          std::to_string(assignment.vectors.size()) + " vectors but the "
          "postings reference " + std::to_string(referenced.size()));
    }
    for (size_t i = 0; i < referenced.size(); ++i) {
      if (assignment.vectors[i].first != referenced[i]) {
        return Status::InvalidArgument(
            "session: shipped vectors do not match the posting ids");
      }
    }

    // Vectors are stored densely (memory proportional to what was
    // shipped, never to the coordinator's id space); a re-shipped
    // vector this worker already holds is skipped — the bytes are
    // identical by construction (both ships serialize the same
    // build-side dataset), so verification results cannot change.
    for (const auto& [id, items] : assignment.vectors) {
      if (positions.find(id) != positions.end()) continue;
      positions.emplace(id, data.Add(std::span<const ItemId>(items)));
    }

    // The merged table: every slice applied so far, frozen anew. The
    // old worker's frozen table iterates in ascending key order, so
    // rebuilding from it plus the new slice is deterministic.
    FilterTable table;
    uint64_t existing = worker ? worker->num_entries() : 0;
    table.Reserve(existing + entries);
    if (worker) {
      const FilterTable& old_table = worker->table();
      for (size_t k = 0; k < old_table.num_keys(); ++k) {
        const uint64_t key = old_table.key_at(k);
        for (VectorId id : old_table.postings_at(k)) table.Add(key, id);
      }
    }
    for (const auto& [key, ids] : assignment.postings) {
      for (VectorId id : ids) table.Add(key, id);
    }
    table.Freeze();
    worker.emplace(worker_id, std::move(table), &data,
                   assignment.threshold, assignment.measure, &positions);
    return Status::OK();
  }
};

}  // namespace

Result<RemoteWorkerSession> RemoteWorkerSession::Start(
    std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
    uint32_t num_workers, const wire::WorkerAssignment& assignment) {
  wire::HelloFrame hello;
  hello.min_version = wire::kVersionMin;
  hello.max_version = wire::kVersionMax;
  hello.worker_id = worker_id;
  hello.num_workers = num_workers;
  Status sent = connection->Send(wire::EncodeHello(hello));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  wire::Frame frame;
  Status received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::HelloAckFrame ack;
  Status decoded = wire::DecodeHelloAck(frame, &ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  if (ack.version < wire::kVersionMin || ack.version > wire::kVersionMax ||
      ack.worker_id != worker_id) {
    connection->Close();
    return Status::IOError("session: handshake ack does not match (version " +
                           std::to_string(ack.version) + ", worker " +
                           std::to_string(ack.worker_id) + ")");
  }
  // From here on every frame is stamped with (and interpreted under)
  // the negotiated version; the Hello above went out under kVersionMin
  // so the oldest peer could parse it.
  connection->set_frame_version(ack.version);

  sent = connection->Send(wire::EncodeAssignment(assignment));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::AssignmentAckFrame assignment_ack;
  decoded = wire::DecodeAssignmentAck(frame, &assignment_ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  const wire::AssignmentAckFrame shipped = SliceCounters(assignment);
  if (assignment_ack.num_keys != shipped.num_keys ||
      assignment_ack.num_entries != shipped.num_entries ||
      assignment_ack.distinct_vectors != shipped.distinct_vectors) {
    connection->Close();
    return Status::Internal(
        "session: worker reconstructed a different slice than was "
        "shipped (keys " +
        std::to_string(assignment_ack.num_keys) + "/" +
        std::to_string(shipped.num_keys) + ", entries " +
        std::to_string(assignment_ack.num_entries) + "/" +
        std::to_string(shipped.num_entries) + ")");
  }
  return RemoteWorkerSession(std::move(connection), worker_id, ack.version);
}

Result<RemoteWorkerSession> RemoteWorkerSession::StartFrozen(
    std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
    uint32_t num_workers, const wire::ShardAssignmentFrame& shard,
    const wire::AssignmentAckFrame& expected) {
  wire::HelloFrame hello;
  hello.min_version = wire::kVersionMin;
  hello.max_version = wire::kVersionMax;
  hello.worker_id = worker_id;
  hello.num_workers = num_workers;
  Status sent = connection->Send(wire::EncodeHello(hello));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  wire::Frame frame;
  Status received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::HelloAckFrame ack;
  Status decoded = wire::DecodeHelloAck(frame, &ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  if (ack.version < wire::kVersionMin || ack.version > wire::kVersionMax ||
      ack.worker_id != worker_id) {
    connection->Close();
    return Status::IOError("session: handshake ack does not match (version " +
                           std::to_string(ack.version) + ", worker " +
                           std::to_string(ack.worker_id) + ")");
  }
  if (ack.version < 3) {
    (void)connection->Send(wire::EncodeShutdown());
    connection->Close();
    return Status::NotSupported(
        "session: frozen-shard serving needs protocol version 3, worker "
        "chose " + std::to_string(ack.version));
  }
  connection->set_frame_version(ack.version);

  sent = connection->Send(wire::EncodeShardAssignment(shard));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::AssignmentAckFrame shard_ack;
  decoded = wire::DecodeAssignmentAck(frame, &shard_ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  if (shard_ack.num_keys != expected.num_keys ||
      shard_ack.num_entries != expected.num_entries ||
      shard_ack.distinct_vectors != expected.distinct_vectors) {
    connection->Close();
    return Status::Internal(
        "session: worker's mapped shard does not match the coordinator's "
        "(keys " + std::to_string(shard_ack.num_keys) + "/" +
        std::to_string(expected.num_keys) + ", entries " +
        std::to_string(shard_ack.num_entries) + "/" +
        std::to_string(expected.num_entries) + ", vectors " +
        std::to_string(shard_ack.distinct_vectors) + "/" +
        std::to_string(expected.distinct_vectors) + ")");
  }
  return RemoteWorkerSession(std::move(connection), worker_id, ack.version);
}

Status RemoteWorkerSession::SendProbeBatch(
    std::span<const ProbeRequest> batch) {
  if (shut_down_) return Status::InvalidArgument("session: already shut down");
  InFlightBatch record;
  record.seq = next_seq_;
  record.lefts.reserve(batch.size());
  for (const ProbeRequest& request : batch) {
    record.lefts.push_back(request.left);
  }
  SKEWSEARCH_RETURN_NOT_OK(connection_->Send(
      wire::EncodeProbeBatch(batch, version_, epoch_, next_seq_)));
  next_seq_++;
  in_flight_.push_back(std::move(record));
  return Status::OK();
}

Result<std::vector<ProbeResponse>> RemoteWorkerSession::ReceiveResponses() {
  if (shut_down_) return Status::InvalidArgument("session: already shut down");
  if (in_flight_.empty()) {
    return Status::InvalidArgument("session: no probe batch in flight");
  }
  const InFlightBatch& oldest = in_flight_.front();
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection_.get(), &frame));
  wire::ResponseBatch responses;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeResponseBatch(frame, &responses));
  if (version_ >= 2 &&
      (responses.epoch != epoch_ || responses.seq != oldest.seq)) {
    return Status::IOError(
        "session: response echoes (epoch " + std::to_string(responses.epoch) +
        ", seq " + std::to_string(responses.seq) + ") but batch (epoch " +
        std::to_string(epoch_) + ", seq " + std::to_string(oldest.seq) +
        ") is the oldest in flight");
  }
  if (responses.responses.size() != oldest.lefts.size()) {
    return Status::IOError("session: response count does not match the "
                           "batch");
  }
  for (size_t i = 0; i < oldest.lefts.size(); ++i) {
    if (responses.responses[i].left != oldest.lefts[i]) {
      return Status::IOError("session: response order does not match the "
                             "batch");
    }
  }
  in_flight_.pop_front();
  return std::move(responses.responses);
}

Result<std::vector<ProbeResponse>> RemoteWorkerSession::Probe(
    std::span<const ProbeRequest> batch) {
  if (!in_flight_.empty()) {
    return Status::InvalidArgument(
        "session: Probe requires no pipelined batch in flight");
  }
  SKEWSEARCH_RETURN_NOT_OK(SendProbeBatch(batch));
  return ReceiveResponses();
}

Result<wire::StatsFrame> RemoteWorkerSession::QueryStats() {
  if (shut_down_) return Status::InvalidArgument("session: already shut down");
  if (version_ < 2) {
    return Status::NotSupported(
        "session: stats scrape needs protocol version 2, negotiated " +
        std::to_string(version_));
  }
  if (!in_flight_.empty()) {
    return Status::InvalidArgument(
        "session: stats scrape requires no batch in flight");
  }
  SKEWSEARCH_RETURN_NOT_OK(connection_->Send(wire::EncodeStatsRequest()));
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection_.get(), &frame));
  wire::StatsFrame stats;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeStatsResponse(frame, &stats));
  return stats;
}

Status RemoteWorkerSession::Reassign(
    const wire::WorkerAssignment& assignment) {
  if (shut_down_) return Status::InvalidArgument("session: already shut down");
  if (version_ < 2) {
    return Status::NotSupported(
        "session: reassignment needs protocol version 2, negotiated " +
        std::to_string(version_));
  }
  if (!in_flight_.empty()) {
    return Status::InvalidArgument(
        "session: reassignment requires no batch in flight");
  }
  wire::ReassignmentFrame reassignment;
  reassignment.epoch = epoch_ + 1;
  reassignment.assignment = assignment;
  SKEWSEARCH_RETURN_NOT_OK(
      connection_->Send(wire::EncodeReassignment(reassignment)));
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection_.get(), &frame));
  wire::ReassignmentAckFrame ack;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeReassignmentAck(frame, &ack));
  const wire::AssignmentAckFrame shipped = SliceCounters(assignment);
  if (ack.epoch != reassignment.epoch ||
      ack.counters.num_keys != shipped.num_keys ||
      ack.counters.num_entries != shipped.num_entries ||
      ack.counters.distinct_vectors != shipped.distinct_vectors) {
    return Status::Internal(
        "session: worker applied a different reassignment than was "
        "shipped (epoch " + std::to_string(ack.epoch) + "/" +
        std::to_string(reassignment.epoch) + ", keys " +
        std::to_string(ack.counters.num_keys) + "/" +
        std::to_string(shipped.num_keys) + ", entries " +
        std::to_string(ack.counters.num_entries) + "/" +
        std::to_string(shipped.num_entries) + ")");
  }
  epoch_ = reassignment.epoch;
  return Status::OK();
}

Status RemoteWorkerSession::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status sent = connection_->Send(wire::EncodeShutdown());
  connection_->Close();
  return sent;
}

Status ServeConnection(FrameConnection* connection, WorkerServeStats* stats,
                       const ServeOptions& options) {
  WorkerServeStats local;

  // The session's `worker.*` metrics (docs/OBSERVABILITY.md). Pointers
  // are looked up once per session; everything recorded in the probe
  // loop below is a relaxed atomic add, so serving stays wait-free.
  obs::MetricsRegistry& registry = options.metrics != nullptr
                                       ? *options.metrics
                                       : obs::MetricsRegistry::Global();
  obs::Counter* batches_metric = registry.GetCounter("worker.batches");
  obs::Counter* probes_metric = registry.GetCounter("worker.probes");
  obs::Counter* matches_metric = registry.GetCounter("worker.matches");
  obs::Counter* reassignments_metric =
      registry.GetCounter("worker.reassignments");
  obs::Counter* scrapes_metric = registry.GetCounter("worker.stats_scrapes");
  obs::Counter* bytes_sent_metric =
      registry.GetCounter("worker.wire.bytes_sent");
  obs::Counter* bytes_received_metric =
      registry.GetCounter("worker.wire.bytes_received");
  obs::Histogram* batch_time_metric = registry.GetHistogram("worker.batch_ns");
  obs::Histogram* session_time_metric =
      registry.GetHistogram("worker.session_ns");
  Timer session_timer;
  // Connection traffic already folded into the byte counters; the
  // counters advance by deltas so a live scrape sees bytes as they
  // flow, not only at session end.
  WireStats reported;
  auto flush_wire = [&] {
    const WireStats now = connection->stats();
    bytes_sent_metric->Increment(now.bytes_sent - reported.bytes_sent);
    bytes_received_metric->Increment(now.bytes_received -
                                     reported.bytes_received);
    reported = now;
  };
  auto answer_stats_request = [&]() -> Status {
    scrapes_metric->Increment();
    wire::StatsFrame snapshot;
    snapshot.metrics = registry.Snapshot();
    Status sent = connection->Send(wire::EncodeStatsResponse(snapshot));
    flush_wire();
    return sent;
  };
  auto end_session = [&]() -> Status {
    session_time_metric->Record(
        static_cast<uint64_t>(session_timer.ElapsedNanos()));
    flush_wire();
    local.wire = connection->stats();
    if (stats != nullptr) *stats = local;
    return Status::OK();
  };

  // Phase 1 — handshake: pick the highest mutually supported version.
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(connection->Receive(&frame));
  wire::HelloFrame hello;
  Status decoded = wire::DecodeHello(frame, &hello);
  if (!decoded.ok()) return FailSession(connection, decoded);
  if (hello.max_version < wire::kVersionMin ||
      hello.min_version > wire::kVersionMax) {
    return FailSession(
        connection,
        Status::NotSupported(
            "session: no common protocol version (peer speaks " +
            std::to_string(hello.min_version) + ".." +
            std::to_string(hello.max_version) + ", this worker " +
            std::to_string(wire::kVersionMin) + ".." +
            std::to_string(wire::kVersionMax) + ")"));
  }
  wire::HelloAckFrame ack;
  ack.version = std::min(hello.max_version, wire::kVersionMax);
  ack.worker_id = hello.worker_id;
  local.worker_id = hello.worker_id;
  // The ack and everything after it travel under the chosen version
  // (overlap was verified above, so the coordinator accepts it).
  connection->set_frame_version(ack.version);
  SKEWSEARCH_RETURN_NOT_OK(connection->Send(wire::EncodeHelloAck(ack)));

  // Phase 2 — assignment: reconstruct the posting slices and the
  // shipped vectors into exactly what the in-process JoinWorker holds.
  // Under version >= 2 the peer may instead be a scraper: StatsRequest
  // frames are answered in place, and a Shutdown before any Assignment
  // ends the (scrape-only) session cleanly. Under version >= 3 a
  // ShardAssignment may replace the Assignment when this worker
  // pre-mapped a frozen shard file: the session then serves the named
  // shard zero-copy out of the mapping instead of a shipped slice.
  wire::WorkerAssignment assignment;
  for (;;) {
    SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
    if (frame.type == wire::FrameType::kStatsRequest) {
      if (ack.version < 2) {
        return FailSession(connection,
                           Status::NotSupported(
                               "session: StatsRequest frame on a version " +
                               std::to_string(ack.version) + " session"));
      }
      SKEWSEARCH_RETURN_NOT_OK(answer_stats_request());
      continue;
    }
    if (frame.type == wire::FrameType::kShutdown) return end_session();
    break;
  }

  WorkerState state;
  state.worker_id = static_cast<int>(hello.worker_id);
  bool shard_mode = false;
  if (frame.type == wire::FrameType::kShardAssignment) {
    if (ack.version < 3) {
      return FailSession(connection,
                         Status::NotSupported(
                             "session: ShardAssignment frame on a version " +
                             std::to_string(ack.version) + " session"));
    }
    if (options.frozen_file == nullptr || options.frozen_data == nullptr) {
      return FailSession(
          connection,
          Status::InvalidArgument(
              "session: ShardAssignment but this worker holds no mapped "
              "shard file (start it with --shard-file/--data)"));
    }
    wire::ShardAssignmentFrame shard;
    decoded = wire::DecodeShardAssignment(frame, &shard);
    if (!decoded.ok()) return FailSession(connection, decoded);
    const FrozenShardFile& file = *options.frozen_file;
    if (shard.num_shards != static_cast<uint32_t>(file.num_shards())) {
      return FailSession(
          connection,
          Status::InvalidArgument(
              "session: ShardAssignment names " +
              std::to_string(shard.num_shards) + " shard(s) but the mapped "
              "file holds " + std::to_string(file.num_shards())));
    }
    if (shard.fingerprint != file.fingerprint()) {
      return FailSession(
          connection,
          Status::InvalidArgument(
              "session: ShardAssignment fingerprint does not match the "
              "mapped shard file (different dataset or file)"));
    }
    const FrozenShardFile::ShardInfo& info =
        file.shard_info(static_cast<int>(shard.shard_index));
    if (info.ids_count > 0 && info.max_id >= options.frozen_data->size()) {
      return FailSession(
          connection,
          Status::InvalidArgument(
              "session: mapped shard references id " +
              std::to_string(info.max_id) + " but the worker's dataset "
              "holds " + std::to_string(options.frozen_data->size()) +
              " vectors"));
    }
    Result<FilterTable> view =
        file.MakeShardView(static_cast<int>(shard.shard_index));
    if (!view.ok()) return FailSession(connection, view.status());
    wire::AssignmentAckFrame shard_ack;
    shard_ack.num_keys = view->num_keys();
    shard_ack.num_entries = view->num_pairs();
    shard_ack.distinct_vectors = options.frozen_data->size();
    state.worker.emplace(static_cast<int>(shard.shard_index),
                         std::move(view).value(), options.frozen_data,
                         shard.threshold, shard.measure);
    shard_mode = true;
    local.posting_entries = state.worker->num_entries();
    SKEWSEARCH_RETURN_NOT_OK(
        connection->Send(wire::EncodeAssignmentAck(shard_ack)));
  } else {
    decoded = wire::DecodeAssignment(frame, &assignment);
    if (!decoded.ok()) return FailSession(connection, decoded);
    const wire::AssignmentAckFrame assignment_ack = SliceCounters(assignment);
    Status applied = state.Apply(assignment);
    if (!applied.ok()) return FailSession(connection, applied);
    local.posting_entries = state.worker->num_entries();
    SKEWSEARCH_RETURN_NOT_OK(
        connection->Send(wire::EncodeAssignmentAck(assignment_ack)));
  }

  // Phase 3 — probe loop until Shutdown. Responses are computed and
  // sent strictly in frame-arrival order, which is what lets the
  // coordinator pipeline batches: the k-th response always answers the
  // k-th outstanding batch. A replayed (duplicate-delivered) batch is
  // recomputed from scratch against read-only state, so its response
  // is identical — answering is idempotent by construction.
  uint32_t epoch = 0;
  std::vector<ProbeResponse> responses;
  for (;;) {
    SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
    if (frame.type == wire::FrameType::kShutdown) break;
    if (frame.type == wire::FrameType::kStatsRequest) {
      if (ack.version < 2) {
        return FailSession(connection,
                           Status::NotSupported(
                               "session: StatsRequest frame on a version " +
                               std::to_string(ack.version) + " session"));
      }
      SKEWSEARCH_RETURN_NOT_OK(answer_stats_request());
      continue;
    }
    if (frame.type == wire::FrameType::kReassignment) {
      if (ack.version < 2) {
        return FailSession(connection,
                           Status::NotSupported(
                               "session: Reassignment frame on a version " +
                               std::to_string(ack.version) + " session"));
      }
      if (shard_mode) {
        // A mapped shard is not re-shippable state: its postings live in
        // the file, disjoint from every other shard's, so adopting a
        // lost worker's slice has no representation here. The
        // coordinator treats this as an unrecoverable worker loss.
        return FailSession(
            connection,
            Status::NotSupported(
                "session: a frozen-shard session cannot adopt reassigned "
                "slices"));
      }
      wire::ReassignmentFrame reassignment;
      decoded = wire::DecodeReassignment(frame, &reassignment);
      if (!decoded.ok()) return FailSession(connection, decoded);
      if (reassignment.epoch != epoch + 1) {
        return FailSession(
            connection,
            Status::InvalidArgument(
                "session: reassignment to epoch " +
                std::to_string(reassignment.epoch) + " but this worker is "
                "at epoch " + std::to_string(epoch)));
      }
      wire::ReassignmentAckFrame reassignment_ack;
      reassignment_ack.epoch = reassignment.epoch;
      reassignment_ack.counters = SliceCounters(reassignment.assignment);
      Status applied = state.Apply(reassignment.assignment);
      if (!applied.ok()) return FailSession(connection, applied);
      epoch = reassignment.epoch;
      local.reassignments++;
      reassignments_metric->Increment();
      local.posting_entries = state.worker->num_entries();
      SKEWSEARCH_RETURN_NOT_OK(
          connection->Send(wire::EncodeReassignmentAck(reassignment_ack)));
      flush_wire();
      continue;
    }
    wire::ProbeBatch batch;
    decoded = wire::DecodeProbeBatch(frame, &batch);
    if (!decoded.ok()) return FailSession(connection, decoded);
    if (ack.version >= 2 && batch.epoch != epoch) {
      return FailSession(
          connection,
          Status::InvalidArgument(
              "session: probe batch stamped epoch " +
              std::to_string(batch.epoch) + " but this worker is at epoch " +
              std::to_string(epoch)));
    }
    Timer batch_timer;
    uint64_t batch_matches = 0;
    responses.clear();
    responses.reserve(batch.probes.size());
    for (const wire::OwnedProbe& probe : batch.probes) {
      responses.push_back(state.worker->Probe(probe.View()));
      batch_matches += responses.back().matches.size();
    }
    local.matches += batch_matches;
    local.batches++;
    local.probes += batch.probes.size();
    SKEWSEARCH_RETURN_NOT_OK(connection->Send(wire::EncodeResponseBatch(
        responses, ack.version, batch.epoch, batch.seq)));
    batch_time_metric->Record(
        static_cast<uint64_t>(batch_timer.ElapsedNanos()));
    batches_metric->Increment();
    probes_metric->Increment(batch.probes.size());
    matches_metric->Increment(batch_matches);
    flush_wire();
    if (options.fail_after_batches > 0 &&
        local.batches >= options.fail_after_batches) {
      // Simulated crash: vanish mid-stream without Error or Shutdown.
      connection->Close();
      if (stats != nullptr) *stats = local;
      return Status::Aborted("session: dropped by fail_after_batches");
    }
  }
  return end_session();
}

Result<wire::StatsFrame> ScrapeWorkerStats(FrameConnection* connection) {
  // Scrape-only sessions identify as worker 0 of 1 — the slot is never
  // used because no Assignment follows.
  wire::HelloFrame hello;
  hello.min_version = wire::kVersionMin;
  hello.max_version = wire::kVersionMax;
  hello.worker_id = 0;
  hello.num_workers = 1;
  SKEWSEARCH_RETURN_NOT_OK(connection->Send(wire::EncodeHello(hello)));
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
  wire::HelloAckFrame ack;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeHelloAck(frame, &ack));
  if (ack.version < 2) {
    connection->Close();
    return Status::NotSupported(
        "session: stats scrape needs protocol version 2, worker chose " +
        std::to_string(ack.version));
  }
  connection->set_frame_version(ack.version);
  SKEWSEARCH_RETURN_NOT_OK(connection->Send(wire::EncodeStatsRequest()));
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
  wire::StatsFrame stats;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeStatsResponse(frame, &stats));
  (void)connection->Send(wire::EncodeShutdown());
  connection->Close();
  return stats;
}

}  // namespace skewsearch
