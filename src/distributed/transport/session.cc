#include "distributed/transport/session.h"

#include <algorithm>
#include <utility>

#include "data/dataset.h"
#include "distributed/worker.h"

namespace skewsearch {

namespace {

/// Receives the next frame, unwrapping a peer Error frame into the
/// Status it carries.
Status ReceiveChecked(FrameConnection* connection, wire::Frame* frame) {
  SKEWSEARCH_RETURN_NOT_OK(connection->Receive(frame));
  if (frame->type == wire::FrameType::kError) {
    wire::ErrorFrame error;
    SKEWSEARCH_RETURN_NOT_OK(wire::DecodeError(*frame, &error));
    return wire::StatusFromError(error);
  }
  return Status::OK();
}

/// Worker-side failure path: best-effort Error frame, close, propagate.
Status FailSession(FrameConnection* connection, const Status& status) {
  (void)connection->Send(wire::EncodeError(status));
  connection->Close();
  return status;
}

}  // namespace

Result<RemoteWorkerSession> RemoteWorkerSession::Start(
    std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
    uint32_t num_workers, const wire::WorkerAssignment& assignment) {
  wire::HelloFrame hello;
  hello.min_version = wire::kVersionMin;
  hello.max_version = wire::kVersionMax;
  hello.worker_id = worker_id;
  hello.num_workers = num_workers;
  Status sent = connection->Send(wire::EncodeHello(hello));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  wire::Frame frame;
  Status received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::HelloAckFrame ack;
  Status decoded = wire::DecodeHelloAck(frame, &ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  if (ack.version < wire::kVersionMin || ack.version > wire::kVersionMax ||
      ack.worker_id != worker_id) {
    connection->Close();
    return Status::IOError("session: handshake ack does not match (version " +
                           std::to_string(ack.version) + ", worker " +
                           std::to_string(ack.worker_id) + ")");
  }
  // From here on every frame is stamped with (and interpreted under)
  // the negotiated version; the Hello above went out under kVersionMin
  // so the oldest peer could parse it.
  connection->set_frame_version(ack.version);

  sent = connection->Send(wire::EncodeAssignment(assignment));
  if (!sent.ok()) {
    connection->Close();
    return sent;
  }
  received = ReceiveChecked(connection.get(), &frame);
  if (!received.ok()) {
    connection->Close();
    return received;
  }
  wire::AssignmentAckFrame assignment_ack;
  decoded = wire::DecodeAssignmentAck(frame, &assignment_ack);
  if (!decoded.ok()) {
    connection->Close();
    return decoded;
  }
  uint64_t shipped_entries = 0;
  for (const auto& [key, ids] : assignment.postings) {
    shipped_entries += ids.size();
  }
  if (assignment_ack.num_keys != assignment.postings.size() ||
      assignment_ack.num_entries != shipped_entries ||
      assignment_ack.distinct_vectors != assignment.vectors.size()) {
    connection->Close();
    return Status::Internal(
        "session: worker reconstructed a different slice than was "
        "shipped (keys " +
        std::to_string(assignment_ack.num_keys) + "/" +
        std::to_string(assignment.postings.size()) + ", entries " +
        std::to_string(assignment_ack.num_entries) + "/" +
        std::to_string(shipped_entries) + ")");
  }
  return RemoteWorkerSession(std::move(connection), worker_id, ack.version);
}

Result<std::vector<ProbeResponse>> RemoteWorkerSession::Probe(
    std::span<const ProbeRequest> batch) {
  if (shut_down_) return Status::InvalidArgument("session: already shut down");
  SKEWSEARCH_RETURN_NOT_OK(connection_->Send(wire::EncodeProbeBatch(batch)));
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection_.get(), &frame));
  wire::ResponseBatch responses;
  SKEWSEARCH_RETURN_NOT_OK(wire::DecodeResponseBatch(frame, &responses));
  if (responses.responses.size() != batch.size()) {
    return Status::IOError("session: response count does not match the "
                           "batch");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (responses.responses[i].left != batch[i].left) {
      return Status::IOError("session: response order does not match the "
                             "batch");
    }
  }
  return std::move(responses.responses);
}

Status RemoteWorkerSession::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status sent = connection_->Send(wire::EncodeShutdown());
  connection_->Close();
  return sent;
}

Status ServeConnection(FrameConnection* connection, WorkerServeStats* stats) {
  WorkerServeStats local;

  // Phase 1 — handshake: pick the highest mutually supported version.
  wire::Frame frame;
  SKEWSEARCH_RETURN_NOT_OK(connection->Receive(&frame));
  wire::HelloFrame hello;
  Status decoded = wire::DecodeHello(frame, &hello);
  if (!decoded.ok()) return FailSession(connection, decoded);
  if (hello.max_version < wire::kVersionMin ||
      hello.min_version > wire::kVersionMax) {
    return FailSession(
        connection,
        Status::NotSupported(
            "session: no common protocol version (peer speaks " +
            std::to_string(hello.min_version) + ".." +
            std::to_string(hello.max_version) + ", this worker " +
            std::to_string(wire::kVersionMin) + ".." +
            std::to_string(wire::kVersionMax) + ")"));
  }
  wire::HelloAckFrame ack;
  ack.version = std::min(hello.max_version, wire::kVersionMax);
  ack.worker_id = hello.worker_id;
  local.worker_id = hello.worker_id;
  // The ack and everything after it travel under the chosen version
  // (overlap was verified above, so the coordinator accepts it).
  connection->set_frame_version(ack.version);
  SKEWSEARCH_RETURN_NOT_OK(connection->Send(wire::EncodeHelloAck(ack)));

  // Phase 2 — assignment: reconstruct the posting slices and the
  // shipped vectors into exactly what the in-process JoinWorker holds.
  SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
  wire::WorkerAssignment assignment;
  decoded = wire::DecodeAssignment(frame, &assignment);
  if (!decoded.ok()) return FailSession(connection, decoded);

  // The shipped vectors are stored densely (memory proportional to what
  // was shipped, never to the coordinator's id space) with an id map
  // for verification; ids on the wire stay the original VectorIds.
  // Every posting id must have a shipped vector and every shipped
  // vector must be referenced — an assignment violating either is
  // rejected here, so the probe loop can trust the map completely.
  std::vector<VectorId> referenced;
  uint64_t entries = 0;
  for (const auto& [key, ids] : assignment.postings) {
    referenced.insert(referenced.end(), ids.begin(), ids.end());
    entries += ids.size();
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  if (referenced.size() != assignment.vectors.size()) {
    return FailSession(
        connection,
        Status::InvalidArgument(
            "session: assignment ships " +
            std::to_string(assignment.vectors.size()) + " vectors but the "
            "postings reference " + std::to_string(referenced.size())));
  }
  for (size_t i = 0; i < referenced.size(); ++i) {
    if (assignment.vectors[i].first != referenced[i]) {
      return FailSession(connection,
                         Status::InvalidArgument(
                             "session: shipped vectors do not match the "
                             "posting ids"));
    }
  }

  Dataset data;
  PostingMap<VectorId, VectorId> dense_positions;
  dense_positions.reserve(assignment.vectors.size());
  for (const auto& [id, items] : assignment.vectors) {
    dense_positions.emplace(id, data.Add(std::span<const ItemId>(items)));
  }
  FilterTable table;
  table.Reserve(entries);
  for (const auto& [key, ids] : assignment.postings) {
    for (VectorId id : ids) table.Add(key, id);
  }
  table.Freeze();
  local.posting_entries = table.num_pairs();

  JoinWorker worker(static_cast<int>(hello.worker_id), std::move(table),
                    &data, assignment.threshold, assignment.measure,
                    &dense_positions);
  wire::AssignmentAckFrame assignment_ack;
  assignment_ack.num_keys = worker.num_keys();
  assignment_ack.num_entries = worker.num_entries();
  assignment_ack.distinct_vectors = worker.distinct_vectors();
  SKEWSEARCH_RETURN_NOT_OK(
      connection->Send(wire::EncodeAssignmentAck(assignment_ack)));

  // Phase 3 — probe loop until Shutdown.
  std::vector<ProbeResponse> responses;
  for (;;) {
    SKEWSEARCH_RETURN_NOT_OK(ReceiveChecked(connection, &frame));
    if (frame.type == wire::FrameType::kShutdown) break;
    wire::ProbeBatch batch;
    decoded = wire::DecodeProbeBatch(frame, &batch);
    if (!decoded.ok()) return FailSession(connection, decoded);
    responses.clear();
    responses.reserve(batch.probes.size());
    for (const wire::OwnedProbe& probe : batch.probes) {
      responses.push_back(worker.Probe(probe.View()));
      local.matches += responses.back().matches.size();
    }
    local.batches++;
    local.probes += batch.probes.size();
    SKEWSEARCH_RETURN_NOT_OK(
        connection->Send(wire::EncodeResponseBatch(responses)));
  }
  local.wire = connection->stats();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace skewsearch
