#include "distributed/transport/tcp_transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace skewsearch {

namespace {

using SteadyClock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::IOError("tcp: " + what + ": " + std::strerror(errno));
}

/// Milliseconds left until \p deadline, clamped at zero.
int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return left.count() <= 0
             ? 0
             : static_cast<int>(
                   std::min<long long>(left.count(), 1000LL * 60 * 60 * 24));
}

/// Blocks until \p fd is ready for \p events or \p deadline passes.
/// EINTR restarts the wait with the *remaining* time (never the full
/// budget again — a signal storm cannot extend the total wait), which
/// is the whole point of polling against a deadline instead of leaning
/// on SO_RCVTIMEO/SO_SNDTIMEO restarts.
Status WaitReady(int fd, short events, SteadyClock::time_point deadline,
                 const char* op) {
  for (;;) {
    const int remaining = RemainingMs(deadline);
    if (remaining <= 0) {
      return Status::IOError(std::string("tcp: ") + op + " timed out");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready = poll(&pfd, 1, remaining);
    if (ready > 0) return Status::OK();
    if (ready == 0) {
      return Status::IOError(std::string("tcp: ") + op + " timed out");
    }
    if (errno == EINTR) continue;  // recomputes the remaining time above
    return Errno(std::string("poll (") + op + ")");
  }
}

Status ApplySocketOptions(int fd, const TcpOptions& options) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  if (options.io_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = options.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(options.io_timeout_ms % 1000) * 1000;
    if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
      return Errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
    }
  }
  return Status::OK();
}

class TcpConnection : public FrameConnection {
 public:
  TcpConnection(int fd, const TcpOptions& options)
      : fd_(fd), io_timeout_ms_(options.io_timeout_ms) {}

  ~TcpConnection() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    if (fd_ < 0) return Status::IOError("tcp: connection closed");
    if (poisoned_) return PoisonedStatus();
    std::vector<uint8_t> header;
    header.reserve(wire::kFrameHeaderBytes);
    wire::AppendFrameHeader(frame.type,
                            static_cast<uint32_t>(frame.payload.size()),
                            frame_version(), &header);
    // One gathered write for header + payload; partial writes resume at
    // the right offset within whichever buffer the kernel stopped in.
    iovec iov[2];
    iov[0].iov_base = header.data();
    iov[0].iov_len = header.size();
    iov[1].iov_base = const_cast<uint8_t*>(frame.payload.data());
    iov[1].iov_len = frame.payload.size();
    size_t active = frame.payload.empty() ? 1 : 2;
    iovec* cursor = iov;
    const auto deadline =
        SteadyClock::now() + std::chrono::milliseconds(io_timeout_ms_);
    bool wrote_any = false;
    // A failure after any byte of this frame went out leaves the peer's
    // stream cut mid-frame: poison so no later Send can interleave a
    // fresh header into the torn frame.
    auto fail = [&](Status status) {
      if (wrote_any) poisoned_ = true;
      return status;
    };
    while (active > 0) {
      if (io_timeout_ms_ > 0) {
        Status ready = WaitReady(fd_, POLLOUT, deadline, "send");
        if (!ready.ok()) return fail(std::move(ready));
      }
      msghdr msg{};
      msg.msg_iov = cursor;
      msg.msg_iovlen = active;
      ssize_t sent = sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          // No timeout configured: plain blocking retry. With one, the
          // WaitReady above re-enters with the remaining budget only.
          if (io_timeout_ms_ == 0 && errno != EINTR) {
            return fail(Status::IOError("tcp: send timed out"));
          }
          continue;
        }
        return fail(Errno("sendmsg"));
      }
      if (sent > 0) wrote_any = true;
      size_t progress = static_cast<size_t>(sent);
      while (active > 0 && progress >= cursor->iov_len) {
        progress -= cursor->iov_len;
        ++cursor;
        --active;
      }
      if (active > 0) {
        cursor->iov_base = static_cast<uint8_t*>(cursor->iov_base) + progress;
        cursor->iov_len -= progress;
      }
    }
    stats_.frames_sent++;
    stats_.bytes_sent += wire::kFrameHeaderBytes + frame.payload.size();
    return Status::OK();
  }

  Status Receive(wire::Frame* frame) override {
    if (fd_ < 0) return Status::IOError("tcp: connection closed");
    if (poisoned_) return PoisonedStatus();
    uint8_t header[wire::kFrameHeaderBytes];
    bool consumed_any = false;
    Status read = ReadExactly(header, sizeof(header), &consumed_any);
    if (!read.ok()) {
      // A timeout (or any failure) after part of a header was consumed
      // leaves the stream desynchronized: the next read would decode
      // mid-frame bytes as a header. Between frames (nothing consumed)
      // the stream is still aligned and the error is returned as-is.
      if (consumed_any) poisoned_ = true;
      return read;
    }
    wire::FrameHeader decoded;
    Status header_ok = wire::DecodeFrameHeader(
        std::span<const uint8_t>(header, sizeof(header)), &decoded);
    if (!header_ok.ok()) {
      poisoned_ = true;  // 12 bytes of garbage consumed: no resync point
      return header_ok;
    }
    frame->type = decoded.type;
    frame->version = decoded.version;
    frame->payload.resize(decoded.payload_length);
    if (decoded.payload_length > 0) {
      consumed_any = false;
      read = ReadExactly(frame->payload.data(), decoded.payload_length,
                         &consumed_any);
      if (!read.ok()) {
        poisoned_ = true;  // header consumed, payload cut short
        return read;
      }
    }
    stats_.frames_received++;
    stats_.bytes_received += wire::kFrameHeaderBytes + decoded.payload_length;
    return Status::OK();
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  static Status PoisonedStatus() {
    return Status::Aborted(
        "tcp: connection poisoned: an earlier failure mid-frame left the "
        "stream desynchronized; close and reconnect");
  }

  Status ReadExactly(uint8_t* out, size_t count, bool* consumed_any) {
    size_t done = 0;
    const auto deadline =
        SteadyClock::now() + std::chrono::milliseconds(io_timeout_ms_);
    while (done < count) {
      if (io_timeout_ms_ > 0) {
        SKEWSEARCH_RETURN_NOT_OK(
            WaitReady(fd_, POLLIN, deadline, "receive"));
      }
      ssize_t got = recv(fd_, out + done, count - done, 0);
      if (got < 0) {
        if (errno == EINTR) continue;  // deadline enforced by WaitReady
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (io_timeout_ms_ == 0) {
            return Status::IOError("tcp: receive timed out");
          }
          continue;
        }
        return Errno("recv");
      }
      if (got == 0) {
        return Status::IOError("tcp: connection closed by peer");
      }
      done += static_cast<size_t>(got);
      *consumed_any = true;
    }
    return Status::OK();
  }

  int fd_;
  uint32_t io_timeout_ms_;
  /// Set once a frame boundary has been lost (short read/write inside a
  /// frame, or garbage where a header should be); every later Send and
  /// Receive fails with a distinct Aborted status instead of decoding
  /// garbage.
  bool poisoned_ = false;
};

}  // namespace

Result<std::unique_ptr<FrameConnection>> TcpConnect(
    const std::string& host, uint16_t port, const TcpOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("tcp: cannot resolve '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IOError("tcp: no addresses for '" + host + "'");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect to " + host + ":" + service);
      ::close(fd);
      continue;
    }
    Status configured = ApplySocketOptions(fd, options);
    if (!configured.ok()) {
      ::close(fd);
      last = configured;
      continue;
    }
    freeaddrinfo(resolved);
    return std::unique_ptr<FrameConnection>(
        std::make_unique<TcpConnection>(fd, options));
  }
  freeaddrinfo(resolved);
  return last;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), options_(other.options_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

Result<TcpListener> TcpListener::Listen(uint16_t port,
                                        const TcpOptions& options) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    Status status = Errno("setsockopt(SO_REUSEADDR)");
    ::close(fd);
    return status;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return TcpListener(fd, ntohs(addr.sin_port), options);
}

Result<std::unique_ptr<FrameConnection>> TcpListener::Accept() {
  bool timed_out = false;
  return Accept(/*timeout_ms=*/0, &timed_out);
}

Result<std::unique_ptr<FrameConnection>> TcpListener::Accept(
    uint32_t timeout_ms, bool* timed_out) {
  *timed_out = false;
  if (fd_ < 0) return Status::IOError("tcp: listener closed");
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (timeout_ms > 0) {
      Status ready = WaitReady(fd_, POLLIN, deadline, "accept");
      if (!ready.ok()) {
        *timed_out = true;
        return ready;
      }
    }
    int fd = accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // Transient per-connection conditions: the connection that was
      // pending aborted (or tripped a protocol error) before we got to
      // it. The listener itself is fine — keep accepting, a server's
      // accept loop must outlive any one bad client.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      return Errno("accept");
    }
    Status configured = ApplySocketOptions(fd, options_);
    if (!configured.ok()) {
      // A client socket we cannot configure is that client's problem,
      // not the listener's: drop it and keep serving.
      ::close(fd);
      continue;
    }
    return std::unique_ptr<FrameConnection>(
        std::make_unique<TcpConnection>(fd, options_));
  }
}

void TcpListener::Shutdown() {
  // shutdown() on a listening socket reliably wakes a blocked accept()
  // on Linux (close() alone would not); fd_ is deliberately left alone
  // so the owner thread's Close() still runs.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace skewsearch
