#include "distributed/transport/tcp_transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace skewsearch {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError("tcp: " + what + ": " + std::strerror(errno));
}

Status ApplySocketOptions(int fd, const TcpOptions& options) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  if (options.io_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = options.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(options.io_timeout_ms % 1000) * 1000;
    if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
      return Errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
    }
  }
  return Status::OK();
}

class TcpConnection : public FrameConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}

  ~TcpConnection() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    if (fd_ < 0) return Status::IOError("tcp: connection closed");
    std::vector<uint8_t> header;
    header.reserve(wire::kFrameHeaderBytes);
    wire::AppendFrameHeader(frame.type,
                            static_cast<uint32_t>(frame.payload.size()),
                            frame_version(), &header);
    // One gathered write for header + payload; partial writes resume at
    // the right offset within whichever buffer the kernel stopped in.
    iovec iov[2];
    iov[0].iov_base = header.data();
    iov[0].iov_len = header.size();
    iov[1].iov_base = const_cast<uint8_t*>(frame.payload.data());
    iov[1].iov_len = frame.payload.size();
    size_t active = frame.payload.empty() ? 1 : 2;
    iovec* cursor = iov;
    while (active > 0) {
      msghdr msg{};
      msg.msg_iov = cursor;
      msg.msg_iovlen = active;
      ssize_t sent = sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::IOError("tcp: send timed out");
        }
        return Errno("sendmsg");
      }
      size_t progress = static_cast<size_t>(sent);
      while (active > 0 && progress >= cursor->iov_len) {
        progress -= cursor->iov_len;
        ++cursor;
        --active;
      }
      if (active > 0) {
        cursor->iov_base = static_cast<uint8_t*>(cursor->iov_base) + progress;
        cursor->iov_len -= progress;
      }
    }
    stats_.frames_sent++;
    stats_.bytes_sent += wire::kFrameHeaderBytes + frame.payload.size();
    return Status::OK();
  }

  Status Receive(wire::Frame* frame) override {
    if (fd_ < 0) return Status::IOError("tcp: connection closed");
    uint8_t header[wire::kFrameHeaderBytes];
    SKEWSEARCH_RETURN_NOT_OK(ReadExactly(header, sizeof(header)));
    wire::FrameHeader decoded;
    SKEWSEARCH_RETURN_NOT_OK(wire::DecodeFrameHeader(
        std::span<const uint8_t>(header, sizeof(header)), &decoded));
    frame->type = decoded.type;
    frame->payload.resize(decoded.payload_length);
    if (decoded.payload_length > 0) {
      SKEWSEARCH_RETURN_NOT_OK(
          ReadExactly(frame->payload.data(), decoded.payload_length));
    }
    stats_.frames_received++;
    stats_.bytes_received += wire::kFrameHeaderBytes + decoded.payload_length;
    return Status::OK();
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  Status ReadExactly(uint8_t* out, size_t count) {
    size_t done = 0;
    while (done < count) {
      ssize_t got = recv(fd_, out + done, count - done, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::IOError("tcp: receive timed out");
        }
        return Errno("recv");
      }
      if (got == 0) {
        return Status::IOError("tcp: connection closed by peer");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  int fd_;
};

}  // namespace

Result<std::unique_ptr<FrameConnection>> TcpConnect(
    const std::string& host, uint16_t port, const TcpOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("tcp: cannot resolve '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IOError("tcp: no addresses for '" + host + "'");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect to " + host + ":" + service);
      ::close(fd);
      continue;
    }
    Status configured = ApplySocketOptions(fd, options);
    if (!configured.ok()) {
      ::close(fd);
      last = configured;
      continue;
    }
    freeaddrinfo(resolved);
    return std::unique_ptr<FrameConnection>(
        std::make_unique<TcpConnection>(fd));
  }
  freeaddrinfo(resolved);
  return last;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), options_(other.options_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

Result<TcpListener> TcpListener::Listen(uint16_t port,
                                        const TcpOptions& options) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    Status status = Errno("setsockopt(SO_REUSEADDR)");
    ::close(fd);
    return status;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return TcpListener(fd, ntohs(addr.sin_port), options);
}

Result<std::unique_ptr<FrameConnection>> TcpListener::Accept() {
  if (fd_ < 0) return Status::IOError("tcp: listener closed");
  for (;;) {
    int fd = accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    Status configured = ApplySocketOptions(fd, options_);
    if (!configured.ok()) {
      ::close(fd);
      return configured;
    }
    return std::unique_ptr<FrameConnection>(
        std::make_unique<TcpConnection>(fd));
  }
}

void TcpListener::Shutdown() {
  // shutdown() on a listening socket reliably wakes a blocked accept()
  // on Linux (close() alone would not); fd_ is deliberately left alone
  // so the owner thread's Close() still runs.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace skewsearch
