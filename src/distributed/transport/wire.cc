#include "distributed/transport/wire.h"

#include <cmath>
#include <cstring>

namespace skewsearch {
namespace wire {

namespace {

/// Smallest possible encodings of the variable-count elements; counts
/// are bounded by remaining / these before any allocation.
constexpr size_t kMinPostingBytes = 12;   // u64 key + u32 count
constexpr size_t kMinVectorBytes = 8;     // u32 id + u32 count
constexpr size_t kMinProbeBytes = 13;     // u32 + u8 + u32 + u32
constexpr size_t kMinResponseBytes = 24;  // u32 + u64 + u64 + u32
constexpr size_t kMatchBytes = 12;        // u32 id + f64 similarity
constexpr size_t kMinMetricBytes = 12;    // u16 len + 1 name + u8 + u64
constexpr size_t kMetricBucketBytes = 9;  // u8 index + u64 count

Status Corrupt(const char* what) {
  return Status::IOError(std::string("wire: ") + what);
}

Status ExpectType(const Frame& frame, FrameType type, const char* name) {
  if (frame.type != type) {
    return Corrupt((std::string(name) + " decoder got a different frame "
                    "type").c_str());
  }
  return Status::OK();
}

Status ExpectConsumed(const PayloadReader& reader, const char* name) {
  if (!reader.AtEnd()) {
    return Corrupt((std::string(name) + " payload has trailing bytes")
                       .c_str());
  }
  return Status::OK();
}

/// Reads a count field and bounds it: each counted element occupies at
/// least \p min_element_bytes of the remaining payload.
Status BoundedCount(PayloadReader* reader, size_t min_element_bytes,
                    const char* what, uint32_t* count) {
  SKEWSEARCH_RETURN_NOT_OK(reader->U32(count));
  if (*count > reader->remaining() / min_element_bytes) {
    return Corrupt((std::string(what) + " count exceeds the payload")
                       .c_str());
  }
  return Status::OK();
}

}  // namespace

bool IsValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kShardAssignment);
}

void AppendFrameHeader(FrameType type, uint32_t payload_length,
                       uint8_t version, std::vector<uint8_t>* out) {
  PayloadWriter writer;
  writer.U32(kMagic);
  writer.U8(version);
  writer.U8(static_cast<uint8_t>(type));
  writer.U16(0);  // reserved
  writer.U32(payload_length);
  std::vector<uint8_t> header = std::move(writer).Take();
  out->insert(out->end(), header.begin(), header.end());
}

Status DecodeFrameHeader(std::span<const uint8_t> bytes, FrameHeader* out) {
  PayloadReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  uint32_t length = 0;
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&magic));
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&version));
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&type));
  SKEWSEARCH_RETURN_NOT_OK(reader.U16(&reserved));
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&length));
  if (magic != kMagic) return Corrupt("bad frame magic");
  if (version < kVersionMin || version > kVersionMax) {
    return Corrupt("unsupported protocol version");
  }
  if (!IsValidFrameType(type)) return Corrupt("unknown frame type");
  if (reserved != 0) return Corrupt("reserved header bits set");
  if (length > kMaxFramePayload) {
    return Corrupt("frame payload length exceeds the limit");
  }
  out->version = version;
  out->type = static_cast<FrameType>(type);
  out->payload_length = length;
  return Status::OK();
}

void PayloadWriter::U8(uint8_t v) { buf_.push_back(v); }

void PayloadWriter::U16(uint16_t v) { Bytes(&v, sizeof(v)); }

void PayloadWriter::U32(uint32_t v) { Bytes(&v, sizeof(v)); }

void PayloadWriter::U64(uint64_t v) { Bytes(&v, sizeof(v)); }

void PayloadWriter::F64(double v) { Bytes(&v, sizeof(v)); }

void PayloadWriter::Bytes(const void* data, size_t count) {
  if (count == 0) return;  // an empty vector's data() may be null
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + count);
}

Status PayloadReader::U8(uint8_t* v) { return Bytes(v, sizeof(*v)); }

Status PayloadReader::U16(uint16_t* v) { return Bytes(v, sizeof(*v)); }

Status PayloadReader::U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }

Status PayloadReader::U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }

Status PayloadReader::F64(double* v) { return Bytes(v, sizeof(*v)); }

Status PayloadReader::Bytes(void* out, size_t count) {
  if (count > remaining()) return Corrupt("payload truncated");
  if (count > 0) {  // an empty destination's data() may be null
    std::memcpy(out, data_.data() + pos_, count);
    pos_ += count;
  }
  return Status::OK();
}

ProbeRequest OwnedProbe::View() const {
  ProbeRequest request;
  request.left = left;
  request.items = std::span<const ItemId>(items.data(), items.size());
  request.exclude_left_and_below = exclude_left_and_below;
  request.keys = keys;
  return request;
}

Frame EncodeHello(const HelloFrame& hello) {
  PayloadWriter writer;
  writer.U8(hello.min_version);
  writer.U8(hello.max_version);
  writer.U32(hello.worker_id);
  writer.U32(hello.num_workers);
  return {FrameType::kHello, kVersionMin, std::move(writer).Take()};
}

Status DecodeHello(const Frame& frame, HelloFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(ExpectType(frame, FrameType::kHello, "Hello"));
  PayloadReader reader(frame.payload);
  HelloFrame hello;
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&hello.min_version));
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&hello.max_version));
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&hello.worker_id));
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&hello.num_workers));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "Hello"));
  if (hello.min_version == 0 || hello.min_version > hello.max_version) {
    return Corrupt("Hello carries an empty version range");
  }
  if (hello.num_workers == 0 || hello.worker_id >= hello.num_workers) {
    return Corrupt("Hello worker id out of range");
  }
  *out = std::move(hello);
  return Status::OK();
}

Frame EncodeHelloAck(const HelloAckFrame& ack) {
  PayloadWriter writer;
  writer.U8(ack.version);
  writer.U32(ack.worker_id);
  return {FrameType::kHelloAck, kVersionMin, std::move(writer).Take()};
}

Status DecodeHelloAck(const Frame& frame, HelloAckFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kHelloAck, "HelloAck"));
  PayloadReader reader(frame.payload);
  HelloAckFrame ack;
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&ack.version));
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&ack.worker_id));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "HelloAck"));
  if (ack.version == 0) return Corrupt("HelloAck chose version 0");
  *out = ack;
  return Status::OK();
}

namespace {

/// The assignment body shared by kAssignment and kReassignment:
/// threshold, measure, postings, vectors.
void AppendAssignmentBody(const WorkerAssignment& assignment,
                          PayloadWriter* writer) {
  writer->F64(assignment.threshold);
  writer->U8(static_cast<uint8_t>(assignment.measure));
  writer->U32(static_cast<uint32_t>(assignment.postings.size()));
  for (const auto& [key, ids] : assignment.postings) {
    writer->U64(key);
    writer->U32(static_cast<uint32_t>(ids.size()));
    writer->Bytes(ids.data(), ids.size() * sizeof(VectorId));
  }
  writer->U32(static_cast<uint32_t>(assignment.vectors.size()));
  for (const auto& [id, items] : assignment.vectors) {
    writer->U32(id);
    writer->U32(static_cast<uint32_t>(items.size()));
    writer->Bytes(items.data(), items.size() * sizeof(ItemId));
  }
}

Status ReadAssignmentBody(PayloadReader* in, WorkerAssignment* out);

}  // namespace

Frame EncodeAssignment(const WorkerAssignment& assignment) {
  PayloadWriter writer;
  AppendAssignmentBody(assignment, &writer);
  return {FrameType::kAssignment, kVersionMin, std::move(writer).Take()};
}

Status DecodeAssignment(const Frame& frame, WorkerAssignment* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kAssignment, "Assignment"));
  PayloadReader reader(frame.payload);
  SKEWSEARCH_RETURN_NOT_OK(ReadAssignmentBody(&reader, out));
  return ExpectConsumed(reader, "Assignment");
}

namespace {

Status ReadAssignmentBody(PayloadReader* in, WorkerAssignment* out) {
  PayloadReader& reader = *in;
  WorkerAssignment assignment;
  SKEWSEARCH_RETURN_NOT_OK(reader.F64(&assignment.threshold));
  if (!std::isfinite(assignment.threshold)) {
    return Corrupt("Assignment threshold is not finite");
  }
  uint8_t measure = 0;
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&measure));
  if (measure > static_cast<uint8_t>(Measure::kCosine)) {
    return Corrupt("Assignment measure out of range");
  }
  assignment.measure = static_cast<Measure>(measure);

  uint32_t num_keys = 0;
  SKEWSEARCH_RETURN_NOT_OK(
      BoundedCount(&reader, kMinPostingBytes, "Assignment key", &num_keys));
  assignment.postings.reserve(num_keys);
  uint64_t previous_key = 0;
  for (uint32_t k = 0; k < num_keys; ++k) {
    uint64_t key = 0;
    uint32_t count = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U64(&key));
    if (k > 0 && key <= previous_key) {
      return Corrupt("Assignment keys are not strictly increasing");
    }
    previous_key = key;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&count));
    if (count == 0) return Corrupt("Assignment posting list is empty");
    if (count > reader.remaining() / sizeof(VectorId)) {
      return Corrupt("Assignment posting count exceeds the payload");
    }
    std::vector<VectorId> ids(count);
    SKEWSEARCH_RETURN_NOT_OK(
        reader.Bytes(ids.data(), count * sizeof(VectorId)));
    assignment.postings.emplace_back(key, std::move(ids));
  }

  uint32_t num_vectors = 0;
  SKEWSEARCH_RETURN_NOT_OK(BoundedCount(&reader, kMinVectorBytes,
                                        "Assignment vector", &num_vectors));
  assignment.vectors.reserve(num_vectors);
  for (uint32_t v = 0; v < num_vectors; ++v) {
    uint32_t id = 0;
    uint32_t count = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&id));
    if (v > 0 && id <= assignment.vectors.back().first) {
      return Corrupt("Assignment vector ids are not strictly increasing");
    }
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&count));
    if (count > reader.remaining() / sizeof(ItemId)) {
      return Corrupt("Assignment item count exceeds the payload");
    }
    std::vector<ItemId> items(count);
    SKEWSEARCH_RETURN_NOT_OK(
        reader.Bytes(items.data(), count * sizeof(ItemId)));
    for (size_t i = 1; i < items.size(); ++i) {
      if (items[i] <= items[i - 1]) {
        return Corrupt("Assignment vector items are not strictly "
                       "increasing");
      }
    }
    assignment.vectors.emplace_back(id, std::move(items));
  }
  *out = std::move(assignment);
  return Status::OK();
}

}  // namespace

Frame EncodeAssignmentAck(const AssignmentAckFrame& ack) {
  PayloadWriter writer;
  writer.U64(ack.num_keys);
  writer.U64(ack.num_entries);
  writer.U64(ack.distinct_vectors);
  return {FrameType::kAssignmentAck, kVersionMin, std::move(writer).Take()};
}

Status DecodeAssignmentAck(const Frame& frame, AssignmentAckFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kAssignmentAck, "AssignmentAck"));
  PayloadReader reader(frame.payload);
  AssignmentAckFrame ack;
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.num_keys));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.num_entries));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.distinct_vectors));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "AssignmentAck"));
  *out = ack;
  return Status::OK();
}

Frame EncodeProbeBatch(std::span<const ProbeRequest> batch, uint8_t version,
                       uint32_t epoch, uint64_t seq) {
  PayloadWriter writer;
  if (version >= 2) {
    writer.U32(epoch);
    writer.U64(seq);
  }
  writer.U32(static_cast<uint32_t>(batch.size()));
  for (const ProbeRequest& request : batch) {
    writer.U32(request.left);
    writer.U8(request.exclude_left_and_below ? 1 : 0);
    writer.U32(static_cast<uint32_t>(request.items.size()));
    writer.Bytes(request.items.data(), request.items.size() * sizeof(ItemId));
    writer.U32(static_cast<uint32_t>(request.keys.size()));
    writer.Bytes(request.keys.data(), request.keys.size() * sizeof(uint64_t));
  }
  return {FrameType::kProbeBatch, version, std::move(writer).Take()};
}

Status DecodeProbeBatch(const Frame& frame, ProbeBatch* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kProbeBatch, "ProbeBatch"));
  PayloadReader reader(frame.payload);
  ProbeBatch batch;
  if (frame.version >= 2) {
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&batch.epoch));
    SKEWSEARCH_RETURN_NOT_OK(reader.U64(&batch.seq));
  }
  uint32_t count = 0;
  SKEWSEARCH_RETURN_NOT_OK(
      BoundedCount(&reader, kMinProbeBytes, "ProbeBatch probe", &count));
  batch.probes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    OwnedProbe probe;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&probe.left));
    uint8_t flags = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U8(&flags));
    if (flags > 1) return Corrupt("ProbeBatch has unknown flag bits");
    probe.exclude_left_and_below = flags != 0;
    uint32_t num_items = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&num_items));
    if (num_items > reader.remaining() / sizeof(ItemId)) {
      return Corrupt("ProbeBatch item count exceeds the payload");
    }
    probe.items.resize(num_items);
    SKEWSEARCH_RETURN_NOT_OK(
        reader.Bytes(probe.items.data(), num_items * sizeof(ItemId)));
    uint32_t num_keys = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&num_keys));
    if (num_keys > reader.remaining() / sizeof(uint64_t)) {
      return Corrupt("ProbeBatch key count exceeds the payload");
    }
    probe.keys.resize(num_keys);
    SKEWSEARCH_RETURN_NOT_OK(
        reader.Bytes(probe.keys.data(), num_keys * sizeof(uint64_t)));
    batch.probes.push_back(std::move(probe));
  }
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "ProbeBatch"));
  *out = std::move(batch);
  return Status::OK();
}

Frame EncodeResponseBatch(std::span<const ProbeResponse> batch,
                          uint8_t version, uint32_t epoch, uint64_t seq) {
  PayloadWriter writer;
  if (version >= 2) {
    writer.U32(epoch);
    writer.U64(seq);
  }
  writer.U32(static_cast<uint32_t>(batch.size()));
  for (const ProbeResponse& response : batch) {
    writer.U32(response.left);
    writer.U64(response.candidates);
    writer.U64(response.verifications);
    writer.U32(static_cast<uint32_t>(response.matches.size()));
    for (const Match& match : response.matches) {
      writer.U32(match.id);
      writer.F64(match.similarity);
    }
  }
  return {FrameType::kResponseBatch, version, std::move(writer).Take()};
}

Status DecodeResponseBatch(const Frame& frame, ResponseBatch* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kResponseBatch, "ResponseBatch"));
  PayloadReader reader(frame.payload);
  ResponseBatch batch;
  if (frame.version >= 2) {
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&batch.epoch));
    SKEWSEARCH_RETURN_NOT_OK(reader.U64(&batch.seq));
  }
  uint32_t count = 0;
  SKEWSEARCH_RETURN_NOT_OK(BoundedCount(&reader, kMinResponseBytes,
                                        "ResponseBatch response", &count));
  batch.responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ProbeResponse response;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&response.left));
    SKEWSEARCH_RETURN_NOT_OK(reader.U64(&response.candidates));
    SKEWSEARCH_RETURN_NOT_OK(reader.U64(&response.verifications));
    uint32_t num_matches = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U32(&num_matches));
    if (num_matches > reader.remaining() / kMatchBytes) {
      return Corrupt("ResponseBatch match count exceeds the payload");
    }
    response.matches.reserve(num_matches);
    for (uint32_t m = 0; m < num_matches; ++m) {
      Match match{0, 0.0};
      SKEWSEARCH_RETURN_NOT_OK(reader.U32(&match.id));
      SKEWSEARCH_RETURN_NOT_OK(reader.F64(&match.similarity));
      response.matches.push_back(match);
    }
    batch.responses.push_back(std::move(response));
  }
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "ResponseBatch"));
  *out = std::move(batch);
  return Status::OK();
}

Frame EncodeReassignment(const ReassignmentFrame& reassignment) {
  PayloadWriter writer;
  writer.U32(reassignment.epoch);
  AppendAssignmentBody(reassignment.assignment, &writer);
  return {FrameType::kReassignment, /*version=*/2, std::move(writer).Take()};
}

Status DecodeReassignment(const Frame& frame, ReassignmentFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kReassignment, "Reassignment"));
  PayloadReader reader(frame.payload);
  ReassignmentFrame reassignment;
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&reassignment.epoch));
  if (reassignment.epoch == 0) {
    return Corrupt("Reassignment epoch 0 (epochs start at 1)");
  }
  SKEWSEARCH_RETURN_NOT_OK(
      ReadAssignmentBody(&reader, &reassignment.assignment));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "Reassignment"));
  *out = std::move(reassignment);
  return Status::OK();
}

Frame EncodeReassignmentAck(const ReassignmentAckFrame& ack) {
  PayloadWriter writer;
  writer.U32(ack.epoch);
  writer.U64(ack.counters.num_keys);
  writer.U64(ack.counters.num_entries);
  writer.U64(ack.counters.distinct_vectors);
  return {FrameType::kReassignmentAck, /*version=*/2,
          std::move(writer).Take()};
}

Status DecodeReassignmentAck(const Frame& frame, ReassignmentAckFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kReassignmentAck, "ReassignmentAck"));
  PayloadReader reader(frame.payload);
  ReassignmentAckFrame ack;
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&ack.epoch));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.counters.num_keys));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.counters.num_entries));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&ack.counters.distinct_vectors));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "ReassignmentAck"));
  *out = ack;
  return Status::OK();
}

Frame EncodeStatsRequest() {
  return {FrameType::kStatsRequest, /*version=*/2, {}};
}

Frame EncodeStatsResponse(const StatsFrame& stats) {
  PayloadWriter writer;
  writer.U32(static_cast<uint32_t>(stats.metrics.size()));
  for (const obs::MetricSnapshot& metric : stats.metrics) {
    writer.U16(static_cast<uint16_t>(metric.name.size()));
    writer.Bytes(metric.name.data(), metric.name.size());
    writer.U8(static_cast<uint8_t>(metric.kind));
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        writer.U64(metric.counter_value);
        break;
      case obs::MetricKind::kGauge:
        writer.U64(static_cast<uint64_t>(metric.gauge_value));
        break;
      case obs::MetricKind::kHistogram: {
        const obs::HistogramData& h = metric.histogram;
        writer.U64(h.count);
        writer.U64(h.sum);
        writer.U64(h.max);
        writer.U8(static_cast<uint8_t>(h.buckets.size()));
        for (const auto& [index, bucket_count] : h.buckets) {
          writer.U8(index);
          writer.U64(bucket_count);
        }
        break;
      }
    }
  }
  return {FrameType::kStatsResponse, /*version=*/2, std::move(writer).Take()};
}

Status DecodeStatsResponse(const Frame& frame, StatsFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kStatsResponse, "StatsResponse"));
  PayloadReader reader(frame.payload);
  StatsFrame stats;
  uint32_t count = 0;
  SKEWSEARCH_RETURN_NOT_OK(
      BoundedCount(&reader, kMinMetricBytes, "StatsResponse metric", &count));
  stats.metrics.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::MetricSnapshot metric;
    uint16_t name_length = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U16(&name_length));
    if (name_length == 0) {
      return Corrupt("StatsResponse metric name is empty");
    }
    if (name_length > reader.remaining()) {
      return Corrupt("StatsResponse metric name exceeds the payload");
    }
    metric.name.resize(name_length);
    SKEWSEARCH_RETURN_NOT_OK(reader.Bytes(metric.name.data(), name_length));
    if (i > 0 && metric.name <= stats.metrics.back().name) {
      return Corrupt("StatsResponse metrics are not strictly increasing "
                     "by name");
    }
    uint8_t kind = 0;
    SKEWSEARCH_RETURN_NOT_OK(reader.U8(&kind));
    if (kind > static_cast<uint8_t>(obs::MetricKind::kHistogram)) {
      return Corrupt("StatsResponse metric kind out of range");
    }
    metric.kind = static_cast<obs::MetricKind>(kind);
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        SKEWSEARCH_RETURN_NOT_OK(reader.U64(&metric.counter_value));
        break;
      case obs::MetricKind::kGauge: {
        uint64_t raw = 0;
        SKEWSEARCH_RETURN_NOT_OK(reader.U64(&raw));
        metric.gauge_value = static_cast<int64_t>(raw);
        break;
      }
      case obs::MetricKind::kHistogram: {
        obs::HistogramData& h = metric.histogram;
        SKEWSEARCH_RETURN_NOT_OK(reader.U64(&h.count));
        SKEWSEARCH_RETURN_NOT_OK(reader.U64(&h.sum));
        SKEWSEARCH_RETURN_NOT_OK(reader.U64(&h.max));
        uint8_t num_buckets = 0;
        SKEWSEARCH_RETURN_NOT_OK(reader.U8(&num_buckets));
        if (num_buckets > obs::Histogram::kNumBuckets ||
            num_buckets > reader.remaining() / kMetricBucketBytes) {
          return Corrupt("StatsResponse bucket count exceeds the payload");
        }
        h.buckets.reserve(num_buckets);
        for (uint8_t b = 0; b < num_buckets; ++b) {
          uint8_t index = 0;
          uint64_t bucket_count = 0;
          SKEWSEARCH_RETURN_NOT_OK(reader.U8(&index));
          if (index >= obs::Histogram::kNumBuckets) {
            return Corrupt("StatsResponse bucket index out of range");
          }
          if (b > 0 && index <= h.buckets.back().first) {
            return Corrupt("StatsResponse bucket indexes are not strictly "
                           "increasing");
          }
          SKEWSEARCH_RETURN_NOT_OK(reader.U64(&bucket_count));
          if (bucket_count == 0) {
            return Corrupt("StatsResponse bucket has a zero count");
          }
          h.buckets.emplace_back(index, bucket_count);
        }
        break;
      }
    }
    stats.metrics.push_back(std::move(metric));
  }
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "StatsResponse"));
  *out = std::move(stats);
  return Status::OK();
}

Frame EncodeShardAssignment(const ShardAssignmentFrame& shard) {
  PayloadWriter writer;
  writer.U32(shard.num_shards);
  writer.U32(shard.shard_index);
  writer.U64(shard.fingerprint);
  writer.F64(shard.threshold);
  writer.U8(static_cast<uint8_t>(shard.measure));
  return {FrameType::kShardAssignment, /*version=*/3,
          std::move(writer).Take()};
}

Status DecodeShardAssignment(const Frame& frame, ShardAssignmentFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kShardAssignment, "ShardAssignment"));
  PayloadReader reader(frame.payload);
  ShardAssignmentFrame shard;
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&shard.num_shards));
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&shard.shard_index));
  SKEWSEARCH_RETURN_NOT_OK(reader.U64(&shard.fingerprint));
  SKEWSEARCH_RETURN_NOT_OK(reader.F64(&shard.threshold));
  uint8_t measure = 0;
  SKEWSEARCH_RETURN_NOT_OK(reader.U8(&measure));
  SKEWSEARCH_RETURN_NOT_OK(ExpectConsumed(reader, "ShardAssignment"));
  if (shard.num_shards == 0 || shard.shard_index >= shard.num_shards) {
    return Corrupt("ShardAssignment shard index out of range");
  }
  if (!std::isfinite(shard.threshold)) {
    return Corrupt("ShardAssignment threshold is not finite");
  }
  if (measure > static_cast<uint8_t>(Measure::kCosine)) {
    return Corrupt("ShardAssignment measure out of range");
  }
  shard.measure = static_cast<Measure>(measure);
  *out = shard;
  return Status::OK();
}

Frame EncodeShutdown() { return {FrameType::kShutdown, kVersionMin, {}}; }

Frame EncodeError(const Status& status) {
  PayloadWriter writer;
  writer.U16(static_cast<uint16_t>(status.code()));
  writer.U16(0);  // reserved
  const std::string& message = status.message();
  writer.U32(static_cast<uint32_t>(message.size()));
  writer.Bytes(message.data(), message.size());
  return {FrameType::kError, kVersionMin, std::move(writer).Take()};
}

Status DecodeError(const Frame& frame, ErrorFrame* out) {
  SKEWSEARCH_RETURN_NOT_OK(ExpectType(frame, FrameType::kError, "Error"));
  PayloadReader reader(frame.payload);
  ErrorFrame error;
  uint16_t reserved = 0;
  SKEWSEARCH_RETURN_NOT_OK(reader.U16(&error.code));
  SKEWSEARCH_RETURN_NOT_OK(reader.U16(&reserved));
  if (reserved != 0) return Corrupt("Error frame reserved bits set");
  uint32_t length = 0;
  SKEWSEARCH_RETURN_NOT_OK(reader.U32(&length));
  if (length != reader.remaining()) {
    return Corrupt("Error message length mismatch");
  }
  error.message.resize(length);
  SKEWSEARCH_RETURN_NOT_OK(reader.Bytes(error.message.data(), length));
  *out = std::move(error);
  return Status::OK();
}

Status StatusFromError(const ErrorFrame& error) {
  switch (static_cast<Status::Code>(error.code)) {
    case Status::Code::kOk:
      return Status::Internal("peer sent an Error frame with code OK: " +
                              error.message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(error.message);
    case Status::Code::kNotFound:
      return Status::NotFound(error.message);
    case Status::Code::kIOError:
      return Status::IOError(error.message);
    case Status::Code::kAborted:
      return Status::Aborted(error.message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(error.message);
    case Status::Code::kInternal:
      return Status::Internal(error.message);
  }
  return Status::Internal("peer error (unknown code): " + error.message);
}

}  // namespace wire
}  // namespace skewsearch
