#include "distributed/transport/transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace skewsearch {

namespace {

/// Shared state of a loopback pair: one frame queue per direction,
/// guarded by a single mutex. A closed side wakes every waiter so no
/// Receive can block forever.
struct LoopbackCore {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<wire::Frame> queue[2];  ///< queue[i] holds frames *for* side i
  bool closed[2] = {false, false};
};

class LoopbackConnection : public FrameConnection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackCore> core, int side)
      : core_(std::move(core)), side_(side) {}

  ~LoopbackConnection() override { Close(); }

  Status Send(const wire::Frame& frame) override {
    const uint64_t frame_bytes =
        wire::kFrameHeaderBytes + frame.payload.size();
    // The queued copy carries this endpoint's frame version, exactly as
    // the TCP transport stamps it into the header (and the receiver
    // reads it back out) — so version-dependent payload layouts decode
    // identically across transports.
    wire::Frame queued = frame;
    queued.version = frame_version();
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      if (core_->closed[side_] || core_->closed[1 - side_]) {
        return Status::IOError("loopback: connection closed");
      }
      core_->queue[1 - side_].push_back(std::move(queued));
    }
    core_->cv.notify_all();
    stats_.frames_sent++;
    stats_.bytes_sent += frame_bytes;
    return Status::OK();
  }

  Status Receive(wire::Frame* frame) override {
    std::unique_lock<std::mutex> lock(core_->mu);
    core_->cv.wait(lock, [&] {
      return !core_->queue[side_].empty() || core_->closed[side_] ||
             core_->closed[1 - side_];
    });
    if (core_->queue[side_].empty()) {
      return Status::IOError("loopback: connection closed by peer");
    }
    *frame = std::move(core_->queue[side_].front());
    core_->queue[side_].pop_front();
    lock.unlock();
    stats_.frames_received++;
    stats_.bytes_received += wire::kFrameHeaderBytes + frame->payload.size();
    return Status::OK();
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->closed[side_] = true;
    }
    core_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackCore> core_;
  int side_;
};

}  // namespace

std::pair<std::unique_ptr<FrameConnection>, std::unique_ptr<FrameConnection>>
LoopbackPair() {
  auto core = std::make_shared<LoopbackCore>();
  return {std::make_unique<LoopbackConnection>(core, 0),
          std::make_unique<LoopbackConnection>(core, 1)};
}

}  // namespace skewsearch
