// Copyright 2026 The skewsearch Authors.
// The coordinator/worker session protocol over any FrameConnection.
//
// A session has three phases (normatively specified, with the frame
// encodings, in docs/WIRE_PROTOCOL.md):
//
//   1. Handshake — the coordinator sends Hello (version range, worker
//      id, worker count); the worker answers HelloAck with the highest
//      version both sides support, or an Error frame when the ranges
//      are disjoint.
//   2. Assignment — the coordinator ships the worker's posting slices
//      and the build-side vectors those slices reference; the worker
//      reconstructs its frozen table and answers AssignmentAck with
//      reconstruction counters the coordinator cross-checks, so a
//      corrupted or misrouted assignment fails the attach instead of
//      silently dropping pairs.
//   3. Probe loop — ProbeBatch frames answered by ResponseBatch frames
//      (responses in request order, one per request), until Shutdown
//      ends the session in an orderly way.
//
// Either side may send Error at any point and close; the other side
// surfaces it as the carried Status. The worker's answers are computed
// by the same JoinWorker used in-process, which is what keeps remote
// joins byte-identical to local ones.

#ifndef SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_
#define SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "distributed/messages.h"
#include "distributed/transport/transport.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Coordinator-side handle on one remote worker.
///
/// Created by Start(), which runs the handshake and ships the
/// assignment; afterwards Probe() drives the probe loop. One driver
/// thread per session (matching FrameConnection's contract).
class RemoteWorkerSession {
 public:
  /// Runs phases 1 and 2: handshake as worker \p worker_id of
  /// \p num_workers, then ships \p assignment and cross-checks the ack.
  /// On failure the connection is closed and the error returned.
  static Result<RemoteWorkerSession> Start(
      std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
      uint32_t num_workers, const wire::WorkerAssignment& assignment);

  RemoteWorkerSession(RemoteWorkerSession&&) = default;
  RemoteWorkerSession& operator=(RemoteWorkerSession&&) = default;

  /// Ships one ProbeBatch and blocks for the ResponseBatch; responses
  /// come back in request order, one per request (validated).
  Result<std::vector<ProbeResponse>> Probe(
      std::span<const ProbeRequest> batch);

  /// Sends Shutdown and closes; idempotent. The session is unusable
  /// afterwards.
  Status Shutdown();

  /// Traffic counters of the underlying connection.
  const WireStats& stats() const { return connection_->stats(); }

  uint32_t worker_id() const { return worker_id_; }

  /// The protocol version the handshake negotiated.
  uint8_t negotiated_version() const { return version_; }

 private:
  RemoteWorkerSession(std::unique_ptr<FrameConnection> connection,
                      uint32_t worker_id, uint8_t version)
      : connection_(std::move(connection)),
        worker_id_(worker_id),
        version_(version) {}

  std::unique_ptr<FrameConnection> connection_;
  uint32_t worker_id_ = 0;
  uint8_t version_ = 0;
  bool shut_down_ = false;
};

/// \brief Worker-side counters of one served session.
struct WorkerServeStats {
  uint32_t worker_id = 0;        ///< plan slot assigned by the handshake
  uint64_t batches = 0;          ///< ProbeBatch frames answered
  uint64_t probes = 0;           ///< individual probes answered
  uint64_t matches = 0;          ///< verified pairs returned
  uint64_t posting_entries = 0;  ///< entries in the reconstructed table
  WireStats wire;                ///< connection traffic totals
};

/// Serves one coordinator session on \p connection: accepts the
/// handshake, reconstructs the assigned posting slices and shipped
/// vectors into a local JoinWorker, then answers probe batches until a
/// Shutdown frame arrives (returns OK) or the session fails (returns
/// the error after sending a best-effort Error frame). This is the
/// whole body of the `join-worker` CLI process.
Status ServeConnection(FrameConnection* connection,
                       WorkerServeStats* stats = nullptr);

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_
