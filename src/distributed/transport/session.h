// Copyright 2026 The skewsearch Authors.
// The coordinator/worker session protocol over any FrameConnection.
//
// A session has three phases (normatively specified, with the frame
// encodings, in docs/WIRE_PROTOCOL.md):
//
//   1. Handshake — the coordinator sends Hello (version range, worker
//      id, worker count); the worker answers HelloAck with the highest
//      version both sides support, or an Error frame when the ranges
//      are disjoint.
//   2. Assignment — the coordinator ships the worker's posting slices
//      and the build-side vectors those slices reference; the worker
//      reconstructs its frozen table and answers AssignmentAck with
//      reconstruction counters the coordinator cross-checks, so a
//      corrupted or misrouted assignment fails the attach instead of
//      silently dropping pairs.
//   3. Probe loop — ProbeBatch frames answered by ResponseBatch frames
//      (responses in request order, one per request), until Shutdown
//      ends the session in an orderly way. Under protocol version >= 2
//      the probe stream is pipelined: the coordinator may have several
//      batches in flight (SendProbeBatch / ReceiveResponses below),
//      each stamped with the session epoch and a sequence number the
//      worker echoes, and the coordinator may interpose a Reassignment
//      frame (when no batch is in flight) that merges a lost worker's
//      slices into this worker's table and bumps the epoch.
//
// Under version >= 2 a StatsRequest frame may additionally arrive in
// place of the Assignment (a scrape-only session — what `join-stats`
// opens via ScrapeWorkerStats below) or interleaved with probe batches;
// the worker answers with a StatsResponse carrying its metrics-registry
// snapshot and the session continues.
//
// Either side may send Error at any point and close; the other side
// surfaces it as the carried Status. The worker's answers are computed
// by the same JoinWorker used in-process, which is what keeps remote
// joins byte-identical to local ones.

#ifndef SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_
#define SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "distributed/messages.h"
#include "distributed/transport/transport.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace skewsearch {

class FrozenShardFile;

/// \brief Coordinator-side handle on one remote worker.
///
/// Created by Start(), which runs the handshake and ships the
/// assignment; afterwards the probe loop is driven either synchronously
/// (Probe()) or pipelined (SendProbeBatch() / ReceiveResponses(), up to
/// a caller-chosen window of batches in flight so the round trip of one
/// batch is hidden behind the service time of the previous one). One
/// driver thread per session (matching FrameConnection's contract).
class RemoteWorkerSession {
 public:
  /// Runs phases 1 and 2: handshake as worker \p worker_id of
  /// \p num_workers, then ships \p assignment and cross-checks the ack.
  /// On failure the connection is closed and the error returned.
  static Result<RemoteWorkerSession> Start(
      std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
      uint32_t num_workers, const wire::WorkerAssignment& assignment);

  /// The frozen-shard variant of Start (protocol version >= 3): instead
  /// of shipping posting slices, sends a ShardAssignment naming the
  /// shard of the worker's pre-mapped SKF1 file this session serves,
  /// and cross-checks the worker's AssignmentAck counters against
  /// \p expected — the keys/entries the coordinator's own mapping of
  /// the same file records for that shard, plus the dataset size. Fails
  /// with NotSupported when the worker cannot speak version 3.
  static Result<RemoteWorkerSession> StartFrozen(
      std::unique_ptr<FrameConnection> connection, uint32_t worker_id,
      uint32_t num_workers, const wire::ShardAssignmentFrame& shard,
      const wire::AssignmentAckFrame& expected);

  RemoteWorkerSession(RemoteWorkerSession&&) = default;
  RemoteWorkerSession& operator=(RemoteWorkerSession&&) = default;

  /// Ships one ProbeBatch and blocks for the ResponseBatch; responses
  /// come back in request order, one per request (validated). Requires
  /// no pipelined batch in flight.
  Result<std::vector<ProbeResponse>> Probe(
      std::span<const ProbeRequest> batch);

  /// Pipelined send half: ships one ProbeBatch stamped with the current
  /// epoch and the next sequence number without waiting for its
  /// response. The caller bounds how many are outstanding.
  Status SendProbeBatch(std::span<const ProbeRequest> batch);

  /// Pipelined receive half: blocks for the response of the *oldest*
  /// in-flight batch (responses arrive in send order) and validates the
  /// count, per-response probe echo and — under version >= 2 — the
  /// epoch/sequence echo.
  Result<std::vector<ProbeResponse>> ReceiveResponses();

  /// ProbeBatches sent whose responses have not been received yet.
  size_t in_flight() const { return in_flight_.size(); }

  /// Scrapes the worker's metrics registry: sends a StatsRequest and
  /// blocks for the StatsResponse. Requires a version >= 2 session and
  /// no batch in flight (the response would be mistaken for a batch
  /// answer otherwise).
  Result<wire::StatsFrame> QueryStats();

  /// Re-ships a lost worker's slices to this (surviving) worker:
  /// sends a Reassignment frame carrying \p assignment under the next
  /// epoch, waits for the ReassignmentAck and cross-checks its
  /// counters. Requires a version >= 2 session and no batch in flight.
  /// After success every later batch is stamped with the new epoch.
  Status Reassign(const wire::WorkerAssignment& assignment);

  /// Sends Shutdown and closes; idempotent. The session is unusable
  /// afterwards.
  Status Shutdown();

  /// Traffic counters of the underlying connection.
  const WireStats& stats() const { return connection_->stats(); }

  uint32_t worker_id() const { return worker_id_; }

  /// The protocol version the handshake negotiated.
  uint8_t negotiated_version() const { return version_; }

  /// The current session epoch (0 until the first Reassign succeeds).
  uint32_t epoch() const { return epoch_; }

 private:
  RemoteWorkerSession(std::unique_ptr<FrameConnection> connection,
                      uint32_t worker_id, uint8_t version)
      : connection_(std::move(connection)),
        worker_id_(worker_id),
        version_(version) {}

  /// What ReceiveResponses needs to validate one outstanding batch.
  struct InFlightBatch {
    uint64_t seq = 0;
    std::vector<VectorId> lefts;
  };

  std::unique_ptr<FrameConnection> connection_;
  uint32_t worker_id_ = 0;
  uint8_t version_ = 0;
  uint32_t epoch_ = 0;
  uint64_t next_seq_ = 0;
  std::deque<InFlightBatch> in_flight_;
  bool shut_down_ = false;
};

/// \brief Worker-side counters of one served session.
struct WorkerServeStats {
  uint32_t worker_id = 0;        ///< plan slot assigned by the handshake
  uint64_t batches = 0;          ///< ProbeBatch frames answered
  uint64_t probes = 0;           ///< individual probes answered
  uint64_t matches = 0;          ///< verified pairs returned
  uint64_t posting_entries = 0;  ///< entries in the reconstructed table
  uint64_t reassignments = 0;    ///< Reassignment frames applied
  WireStats wire;                ///< connection traffic totals
};

/// \brief Worker-side serving knobs (all test/ops hooks; zero = off).
struct ServeOptions {
  /// Fault-injection hook for the kill-recovery smoke and tests: after
  /// answering this many ProbeBatch frames the worker drops the
  /// connection mid-stream (no Error frame, no Shutdown — exactly what
  /// a crashed process looks like to the coordinator) and returns
  /// Aborted. 0 disables.
  uint64_t fail_after_batches = 0;

  /// The registry this session records `worker.*` metrics into and
  /// answers StatsRequest frames from. Null means the process-wide
  /// MetricsRegistry::Global() — the production configuration; tests
  /// point it at a private registry to assert exact counts.
  obs::MetricsRegistry* metrics = nullptr;

  /// \name Frozen-shard serving (`join-worker --shard-file`).
  /// When both are set, a version >= 3 session may open with a
  /// ShardAssignment frame instead of an Assignment: the worker then
  /// serves the named shard zero-copy out of `frozen_file` (an SKF1
  /// mapping shared read-only by every session) and verifies candidates
  /// against `frozen_data`, the full build-side dataset the file was
  /// frozen from. Classic Assignment sessions still work on the same
  /// worker. Both null = ship-everything serving only.
  /// @{
  const FrozenShardFile* frozen_file = nullptr;
  const Dataset* frozen_data = nullptr;
  /// @}
};

/// Serves one coordinator session on \p connection: accepts the
/// handshake, reconstructs the assigned posting slices and shipped
/// vectors into a local JoinWorker, then answers probe batches — and,
/// under version >= 2, applies Reassignment frames by merging the
/// re-shipped slices into its live table — until a Shutdown frame
/// arrives (returns OK) or the session fails (returns the error after
/// sending a best-effort Error frame). This is the per-connection body
/// of the `join-worker` server (distributed/server.h).
Status ServeConnection(FrameConnection* connection,
                       WorkerServeStats* stats = nullptr,
                       const ServeOptions& options = {});

/// Opens a scrape-only session on \p connection and returns the
/// worker's metrics snapshot: Hello handshake (requiring a negotiated
/// version >= 2 — a v1-only worker fails with NotSupported), one
/// StatsRequest/StatsResponse exchange, then Shutdown. This is what
/// the `join-stats` CLI command runs against a live `join-worker`; the
/// worker serves it as just another session, concurrently with any
/// joins in flight.
Result<wire::StatsFrame> ScrapeWorkerStats(FrameConnection* connection);

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_TRANSPORT_SESSION_H_
