// Copyright 2026 The skewsearch Authors.
// The transport seam of the distributed join: a blocking, bidirectional
// stream of wire::Frames. Two implementations ship — the in-process
// loopback pair below (tests, benches, single-machine runs without
// sockets) and the TCP transport in tcp_transport.h — and the
// coordinator/worker sessions (session.h) are written against this
// interface only, so results can never depend on which transport
// carries the frames.

#ifndef SKEWSEARCH_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
#define SKEWSEARCH_DISTRIBUTED_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "distributed/transport/wire.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Byte and frame counters of one connection endpoint.
///
/// Counts complete frames (header + payload bytes) as they cross this
/// endpoint; the loopback transport counts exactly what TCP would put
/// on the wire, so bytes-on-wire reports are transport-independent.
struct WireStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// \brief One endpoint of a bidirectional frame stream.
///
/// Send and Receive block until the frame is fully transferred or the
/// connection fails; neither is required to be thread-safe against
/// itself (one driver thread per endpoint, the model every caller in
/// this repository follows). Closing an endpoint makes the peer's
/// blocked and future Receives fail with an IOError.
class FrameConnection {
 public:
  virtual ~FrameConnection() = default;
  FrameConnection(const FrameConnection&) = delete;
  FrameConnection& operator=(const FrameConnection&) = delete;

  /// Writes one frame (header + payload). Fails with IOError when the
  /// connection is closed or the peer is gone.
  virtual Status Send(const wire::Frame& frame) = 0;

  /// Reads the next frame, validating its header (magic, version,
  /// type, bounded payload length) before accepting the payload.
  virtual Status Receive(wire::Frame* frame) = 0;

  /// Closes this endpoint; idempotent. In-flight and later calls on
  /// either endpoint fail cleanly instead of blocking forever.
  virtual void Close() = 0;

  /// The protocol version stamped on outgoing frame headers. Starts at
  /// wire::kVersionMin — the oldest version this build speaks, which
  /// maximizes the chance an older peer can parse the pre-negotiation
  /// Hello — and is raised to the negotiated version by the session
  /// layer once the handshake has chosen one (the spec requires every
  /// post-handshake frame to be stamped with and interpreted under the
  /// chosen version).
  void set_frame_version(uint8_t version) { frame_version_ = version; }
  uint8_t frame_version() const { return frame_version_; }

  /// Traffic counters of this endpoint.
  const WireStats& stats() const { return stats_; }

 protected:
  FrameConnection() = default;
  WireStats stats_;
  uint8_t frame_version_ = wire::kVersionMin;
};

/// Creates a connected in-process pair: frames sent on one endpoint are
/// received on the other, in order, with the same framing overhead TCP
/// would add. Both endpoints are safe to drive from different threads
/// (that is the point); each individual endpoint expects one driver.
std::pair<std::unique_ptr<FrameConnection>, std::unique_ptr<FrameConnection>>
LoopbackPair();

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
