// Copyright 2026 The skewsearch Authors.
// The distributed join's wire codec: versioned, length-prefixed binary
// frames for everything that crosses the coordinator <-> worker seam
// (handshake, posting-slice assignment, probe batches, responses,
// errors). docs/WIRE_PROTOCOL.md is the normative byte-level spec of
// this file; when code and spec disagree, fix one of them in the same
// change.
//
// Design rules, shared with core/index_io:
//   * Fixed-width little-endian fields, no alignment, no padding.
//   * Every variable-length count is validated against the bytes that
//     are actually present before anything is allocated, so a corrupt
//     or hostile length field can never demand unbounded memory
//     (bounded-allocation decode). The frame header's payload length is
//     itself capped at kMaxFramePayload.
//   * Decoding never trusts the peer: enum ranges, reserved bits,
//     sortedness and cross-references are all checked, and a failure is
//     a Status, never UB.

#ifndef SKEWSEARCH_DISTRIBUTED_TRANSPORT_WIRE_H_
#define SKEWSEARCH_DISTRIBUTED_TRANSPORT_WIRE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "distributed/messages.h"
#include "obs/metrics.h"
#include "sim/measures.h"
#include "util/result.h"

namespace skewsearch {
namespace wire {

// The codec writes native representations via memcpy while the spec
// mandates little-endian bytes on the wire (unlike the on-disk formats,
// these bytes cross machines). Until a big-endian port byte-swaps in
// PayloadWriter/PayloadReader, building one must be a compile error,
// not a silent protocol violation.
static_assert(std::endian::native == std::endian::little,
              "the wire codec requires a little-endian host (see "
              "docs/WIRE_PROTOCOL.md, Conventions)");

/// First four payload-frame bytes, the ASCII "SKWJ" read little-endian.
inline constexpr uint32_t kMagic = 0x4A574B53u;

/// \name Protocol versions this build can speak.
/// The Hello frame carries the coordinator's [min, max] range; the
/// worker's HelloAck picks the highest version both sides support (see
/// docs/WIRE_PROTOCOL.md, "Version negotiation").
///
/// Version 2 adds the recovery surface: a session epoch + batch
/// sequence number on every ProbeBatch/ResponseBatch (the response
/// echo is the coordinator's acknowledgement) and the Reassignment/
/// ReassignmentAck frames that re-ship a lost worker's slices to a
/// survivor mid-session.
///
/// Version 3 adds the frozen-shard serving mode: a tiny ShardAssignment
/// frame that names a shard of a pre-mapped SKF1 file (core/
/// frozen_shard.h) in place of the O(index) Assignment, for workers
/// started with `--shard-file`. The worker serves the shard zero-copy
/// from its own mapping; only the fingerprint, shard coordinates and
/// verification parameters cross the wire.
/// @{
inline constexpr uint8_t kVersionMin = 1;
inline constexpr uint8_t kVersionMax = 3;
/// @}

/// Hard cap on a frame's payload length. A header announcing more is
/// rejected before any payload is read or allocated.
inline constexpr uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Serialized frame-header size in bytes: magic u32, version u8,
/// type u8, reserved u16 (must be zero), payload length u32.
inline constexpr size_t kFrameHeaderBytes = 12;

/// \brief Frame types (the `type` header field).
enum class FrameType : uint8_t {
  kHello = 1,          ///< coordinator -> worker: version range + identity
  kHelloAck = 2,       ///< worker -> coordinator: chosen version
  kAssignment = 3,     ///< coordinator -> worker: posting slices + vectors
  kAssignmentAck = 4,  ///< worker -> coordinator: slice checksum counters
  kProbeBatch = 5,     ///< coordinator -> worker: batched ProbeRequests
  kResponseBatch = 6,  ///< worker -> coordinator: batched ProbeResponses
  kShutdown = 7,       ///< coordinator -> worker: orderly end of session
  kError = 8,          ///< either direction: fatal error, then close
  /// \name Version >= 2 only (sent strictly after a >= 2 handshake).
  /// @{
  kReassignment = 9,     ///< coordinator -> worker: adopt a lost
                         ///< worker's slices, bump the session epoch
  kReassignmentAck = 10, ///< worker -> coordinator: epoch + counters
  kStatsRequest = 11,    ///< scraper -> worker: ask for a metrics
                         ///< snapshot (empty payload)
  kStatsResponse = 12,   ///< worker -> scraper: the registry snapshot
  /// @}
  /// \name Version >= 3 only.
  /// @{
  kShardAssignment = 13, ///< coordinator -> worker: serve a shard of
                         ///< the worker's pre-mapped frozen file
  /// @}
};

/// True iff \p type is one of the FrameType enumerators.
bool IsValidFrameType(uint8_t type);

/// \brief One decoded frame: its type plus the raw payload bytes.
///
/// `version` is the protocol version the payload is laid out under:
/// transports fill it from the frame header on Receive, and encoders
/// stamp the version they were asked to encode for, so decoders always
/// know which layout to read without consulting connection state.
struct Frame {
  FrameType type = FrameType::kError;
  uint8_t version = kVersionMin;
  std::vector<uint8_t> payload;
};

/// \brief A decoded frame header.
struct FrameHeader {
  uint8_t version = 0;
  FrameType type = FrameType::kError;
  uint32_t payload_length = 0;
};

/// Appends the 12-byte header for a \p type frame with
/// \p payload_length payload bytes, stamped with \p version.
void AppendFrameHeader(FrameType type, uint32_t payload_length,
                       uint8_t version, std::vector<uint8_t>* out);

/// Decodes and validates a frame header: magic, version within
/// [kVersionMin, kVersionMax], known type, reserved bits zero, payload
/// length <= kMaxFramePayload. \p bytes must hold >= kFrameHeaderBytes.
Status DecodeFrameHeader(std::span<const uint8_t> bytes, FrameHeader* out);

/// \brief Little-endian payload builder.
class PayloadWriter {
 public:
  void U8(uint8_t v);
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  /// Appends \p count raw bytes.
  void Bytes(const void* data, size_t count);

  size_t size() const { return buf_.size(); }

  /// Surrenders the built payload.
  std::vector<uint8_t> Take() && { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Bounded little-endian payload reader.
///
/// Every accessor fails (without advancing past the end) when fewer
/// bytes remain than requested; remaining() is what decode routines
/// check counts against before allocating.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  /// Copies \p count raw bytes into \p out.
  Status Bytes(void* out, size_t count);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  /// True iff every payload byte has been consumed (decoders require
  /// this, so trailing garbage is corruption, not slack).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// \brief Hello: opens a session, proposes a version range.
struct HelloFrame {
  uint8_t min_version = kVersionMin;
  uint8_t max_version = kVersionMax;
  uint32_t worker_id = 0;    ///< plan slot this connection will serve
  uint32_t num_workers = 0;  ///< total workers in the plan
};

/// \brief HelloAck: the version the worker chose.
struct HelloAckFrame {
  uint8_t version = 0;       ///< highest version both sides support
  uint32_t worker_id = 0;    ///< echo of HelloFrame::worker_id
};

/// \brief Assignment: everything a worker needs to serve its slices.
///
/// Mirrors what the in-process JoinWorker constructor receives: the
/// frozen posting slices this worker owns, plus the (id, items) pairs
/// of every build-side vector those postings reference — the shipped
/// set whose total size over workers is the duplication factor.
struct WorkerAssignment {
  double threshold = 0.0;
  Measure measure = Measure::kBraunBlanquet;
  /// (filter key, posting ids), keys strictly increasing; ids are this
  /// worker's slice of the key's posting list, in slice order.
  std::vector<std::pair<uint64_t, std::vector<VectorId>>> postings;
  /// (vector id, sorted items), ids strictly increasing. Every posting
  /// id above must appear here (checked by the decoder's consumer).
  std::vector<std::pair<VectorId, std::vector<ItemId>>> vectors;
};

/// \brief AssignmentAck: counters the coordinator cross-checks.
struct AssignmentAckFrame {
  uint64_t num_keys = 0;          ///< distinct keys reconstructed
  uint64_t num_entries = 0;       ///< posting entries reconstructed
  uint64_t distinct_vectors = 0;  ///< distinct vectors received
};

/// \brief One decoded probe with owned storage (the wire-side twin of
/// ProbeRequest, whose items are a borrowed span).
struct OwnedProbe {
  VectorId left = 0;
  bool exclude_left_and_below = false;
  std::vector<ItemId> items;
  std::vector<uint64_t> keys;

  /// A ProbeRequest viewing this probe's storage (valid while the
  /// OwnedProbe lives and is not mutated).
  ProbeRequest View() const;
};

/// \brief A decoded ProbeBatch frame.
///
/// Under version >= 2 every batch carries the coordinator's current
/// session epoch and a per-session strictly increasing sequence number;
/// the worker rejects an epoch it has not reached (a stale coordinator
/// after a reassignment) and echoes both on the ResponseBatch — that
/// echo is the acknowledgement the coordinator's recovery replays
/// against. Version 1 peers carry neither (both decode as zero).
struct ProbeBatch {
  uint32_t epoch = 0;
  uint64_t seq = 0;
  std::vector<OwnedProbe> probes;
};

/// \brief A decoded ResponseBatch frame.
struct ResponseBatch {
  uint32_t epoch = 0;  ///< echo of the answered ProbeBatch (v2)
  uint64_t seq = 0;    ///< echo of the answered ProbeBatch (v2)
  std::vector<ProbeResponse> responses;
};

/// \brief Reassignment (v2): a survivor adopts a lost worker's slices.
///
/// The assignment body is exactly what the dead worker was shipped at
/// attach time — the partition plan is a pure function of its inputs,
/// so the coordinator re-derives it deterministically. Applying it
/// merges the postings/vectors into the worker's live table and bumps
/// the session epoch to \p epoch.
struct ReassignmentFrame {
  uint32_t epoch = 0;  ///< the session epoch after applying (old + 1)
  WorkerAssignment assignment;
};

/// \brief ReassignmentAck (v2): counters of the decoded reassignment.
///
/// The counters describe the re-shipped slice itself (not the merged
/// table), so the coordinator cross-checks transmission integrity the
/// same way AssignmentAck does at attach time.
struct ReassignmentAckFrame {
  uint32_t epoch = 0;  ///< echo of ReassignmentFrame::epoch
  AssignmentAckFrame counters;
};

/// \brief ShardAssignment (v3): serve a shard of a pre-mapped file.
///
/// Replaces the Assignment for a worker that mapped an SKF1 frozen
/// file (`join-worker --shard-file`): instead of shipping posting
/// slices and vectors, the coordinator names the shard to serve and
/// the verification parameters. The worker cross-checks num_shards and
/// the dataset fingerprint against its own mapping — both sides must
/// hold byte-identical files — and answers with an AssignmentAck whose
/// counters (keys, entries, dataset size) the coordinator verifies
/// against its copy's section table. Shard sessions reject
/// Reassignment frames: a shard is not re-shippable state, the file
/// holds it.
struct ShardAssignmentFrame {
  uint32_t num_shards = 0;   ///< must equal the file's shard count
  uint32_t shard_index = 0;  ///< which shard this session serves
  uint64_t fingerprint = 0;  ///< dataset fingerprint stored in the file
  double threshold = 0.0;
  Measure measure = Measure::kBraunBlanquet;
};

/// \brief StatsResponse (v2): a worker's metrics-registry snapshot.
///
/// The request (kStatsRequest, empty payload) may arrive in place of an
/// Assignment — a scrape-only session, what `join-stats` opens — or
/// interleaved with ProbeBatches on a serving session; either way the
/// worker answers with its whole obs registry and the session
/// continues. Both frames require a negotiated version >= 2: a v1
/// session sending one is rejected with NotSupported.
struct StatsFrame {
  /// The scraped registry, sorted by metric name (the order
  /// MetricsRegistry::Snapshot() produces; the decoder enforces it).
  std::vector<obs::MetricSnapshot> metrics;
};

/// \brief Error frame: a Status crossing the wire.
struct ErrorFrame {
  uint16_t code = 0;     ///< Status::Code numeric value
  std::string message;
};

/// \name Frame encoders. Each returns a complete Frame (type + payload).
/// The probe/response encoders take the negotiated \p version: under
/// version >= 2 the epoch/seq prefix is written, under version 1 the
/// layout is byte-identical to what this codec has always produced.
/// @{
Frame EncodeHello(const HelloFrame& hello);
Frame EncodeHelloAck(const HelloAckFrame& ack);
Frame EncodeAssignment(const WorkerAssignment& assignment);
Frame EncodeAssignmentAck(const AssignmentAckFrame& ack);
Frame EncodeProbeBatch(std::span<const ProbeRequest> batch,
                       uint8_t version = kVersionMin, uint32_t epoch = 0,
                       uint64_t seq = 0);
Frame EncodeResponseBatch(std::span<const ProbeResponse> batch,
                          uint8_t version = kVersionMin, uint32_t epoch = 0,
                          uint64_t seq = 0);
Frame EncodeReassignment(const ReassignmentFrame& reassignment);
Frame EncodeReassignmentAck(const ReassignmentAckFrame& ack);
Frame EncodeStatsRequest();
Frame EncodeStatsResponse(const StatsFrame& stats);
Frame EncodeShardAssignment(const ShardAssignmentFrame& shard);
Frame EncodeShutdown();
Frame EncodeError(const Status& status);
/// @}

/// \name Frame decoders. Each checks the frame type, every field range
/// and bound, and that the payload is consumed exactly. The probe and
/// response decoders read the layout Frame::version announces.
/// @{
Status DecodeHello(const Frame& frame, HelloFrame* out);
Status DecodeHelloAck(const Frame& frame, HelloAckFrame* out);
Status DecodeAssignment(const Frame& frame, WorkerAssignment* out);
Status DecodeAssignmentAck(const Frame& frame, AssignmentAckFrame* out);
Status DecodeProbeBatch(const Frame& frame, ProbeBatch* out);
Status DecodeResponseBatch(const Frame& frame, ResponseBatch* out);
Status DecodeReassignment(const Frame& frame, ReassignmentFrame* out);
Status DecodeReassignmentAck(const Frame& frame, ReassignmentAckFrame* out);
Status DecodeStatsResponse(const Frame& frame, StatsFrame* out);
Status DecodeShardAssignment(const Frame& frame, ShardAssignmentFrame* out);
Status DecodeError(const Frame& frame, ErrorFrame* out);
/// @}

/// Reconstructs the Status an Error frame carries (unknown codes map to
/// Status::Internal so a newer peer's error is never silently OK).
Status StatusFromError(const ErrorFrame& error);

}  // namespace wire
}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_TRANSPORT_WIRE_H_
