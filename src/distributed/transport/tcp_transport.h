// Copyright 2026 The skewsearch Authors.
// Blocking TCP implementation of the FrameConnection seam: a listener
// for `join-worker` processes and a connector for the coordinator.
//
// Frames go out as one gathered write (header + payload in a single
// writev-style sendmsg call, so small frames cost one syscall and never
// interleave), and come in as exactly header-then-payload reads with
// the header validated — magic, version, type, payload bound — before
// a single payload byte is accepted. TCP_NODELAY is set on every
// connection (the probe protocol is request/response; Nagle would
// serialize round trips), and SIGPIPE is suppressed per send, so a
// vanished peer surfaces as a Status, never a signal.

#ifndef SKEWSEARCH_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
#define SKEWSEARCH_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "distributed/transport/transport.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Socket-level knobs shared by listener and connector.
struct TcpOptions {
  /// Per-operation send/receive timeout in milliseconds; 0 disables.
  /// With a timeout set, a hung peer turns a blocked Send/Receive into
  /// an IOError after roughly this long — the failure invariant the
  /// coordinator relies on to abort a join instead of hanging.
  uint32_t io_timeout_ms = 0;
};

/// Connects to `host:port` and returns a frame connection over the
/// socket. \p host is a name or numeric address resolved via
/// getaddrinfo (IPv4).
Result<std::unique_ptr<FrameConnection>> TcpConnect(
    const std::string& host, uint16_t port, const TcpOptions& options = {});

/// \brief A listening TCP socket accepting frame connections.
///
/// Movable, not copyable; the socket closes with the object. Listen on
/// port 0 to let the kernel pick a free port (query it via port()) —
/// the pattern the tests and the smoke script use.
class TcpListener {
 public:
  /// Binds 0.0.0.0:\p port and listens.
  static Result<TcpListener> Listen(uint16_t port,
                                    const TcpOptions& options = {});

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Blocks until a coordinator connects; returns the connection. The
  /// accept loop survives transient per-connection failures (EINTR,
  /// ECONNABORTED, EPROTO, an unconfigurable client socket) — only a
  /// broken listener surfaces as an error.
  Result<std::unique_ptr<FrameConnection>> Accept();

  /// Accept with a bound: waits at most \p timeout_ms (against a
  /// deadline, so EINTR cannot extend the total wait) and sets
  /// \p *timed_out when the bound — not the listener — ended the wait.
  /// 0 waits forever, exactly like Accept(). The multi-session worker
  /// server's idle-timeout guard is built on this.
  Result<std::unique_ptr<FrameConnection>> Accept(uint32_t timeout_ms,
                                                 bool* timed_out);

  /// The bound port (resolves a requested port of 0).
  uint16_t port() const { return port_; }

  /// Wakes a blocked Accept (it fails with an error) without touching
  /// this object's state — the one member safe to call from a thread
  /// other than the listener's owner, which should then Close().
  void Shutdown();

  /// Closes the listening socket; idempotent. Owner thread only.
  void Close();

 private:
  TcpListener(int fd, uint16_t port, const TcpOptions& options)
      : fd_(fd), port_(port), options_(options) {}

  int fd_ = -1;
  uint16_t port_ = 0;
  TcpOptions options_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
