#include "distributed/worker.h"

#include <utility>

namespace skewsearch {

JoinWorker::JoinWorker(
    int worker_id, FilterTable table, const Dataset* build_data,
    double threshold, Measure measure,
    const PostingMap<VectorId, VectorId>* dense_positions)
    : worker_id_(worker_id),
      table_(std::move(table)),
      build_data_(build_data),
      threshold_(threshold),
      measure_(measure),
      dense_positions_(dense_positions) {
  PostingSet<VectorId> distinct;
  for (size_t k = 0; k < table_.num_keys(); ++k) {
    for (VectorId id : table_.postings_at(k)) distinct.insert(id);
  }
  distinct_vectors_ = distinct.size();
}

ProbeResponse JoinWorker::Probe(const ProbeRequest& request) const {
  ProbeResponse response;
  response.left = request.left;
  std::span<const ItemId> query = request.items;
  // Same candidate-collection semantics as the single-process QueryAll:
  // dedup ids across every key (and repetition), then verify each
  // survivor once, counting every posting entry scanned. The self-join
  // exclusion runs before verification — the single-process join filters
  // after, so its verification counter is higher, but the emitted pairs
  // are the same.
  PostingSet<VectorId> seen;
  for (uint64_t key : request.keys) {
    auto postings = table_.Lookup(key);
    response.candidates += postings.size();
    for (VectorId id : postings) {
      if (!seen.insert(id).second) continue;
      if (request.exclude_left_and_below && id <= request.left) continue;
      response.verifications++;
      // Reconstructed (remote) workers store only the shipped vectors,
      // densely; the session layer guarantees every table id is mapped.
      const VectorId stored =
          dense_positions_ == nullptr ? id : dense_positions_->find(id)->second;
      double sim = Similarity(measure_, query, build_data_->Get(stored));
      if (sim >= threshold_) response.matches.push_back({id, sim});
    }
  }
  return response;
}

}  // namespace skewsearch
