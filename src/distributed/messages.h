// Copyright 2026 The skewsearch Authors.
// The coordinator <-> worker wire types of the distributed join.
//
// These are deliberately plain aggregates of POD fields and flat
// vectors: everything that crosses the planner/worker seam is spelled
// out here, so a transport can serialize them without touching any
// index internals — transport/wire.h does exactly that (ProbeBatch /
// ResponseBatch frames; docs/WIRE_PROTOCOL.md is the normative spec).
// The only state the seam does NOT carry is the read-only FilterFamily
// and the build-side vectors a worker verifies against — those are
// distributed once at attach time (the vectors shipped per worker are
// what the duplication factor counts; see transport/session.h's
// Assignment phase).

#ifndef SKEWSEARCH_DISTRIBUTED_MESSAGES_H_
#define SKEWSEARCH_DISTRIBUTED_MESSAGES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "sim/brute_force.h"

namespace skewsearch {

/// \brief One probe routed to one worker.
struct ProbeRequest {
  /// Id of the probing (left-side) vector.
  VectorId left = 0;

  /// The probe vector's items (the payload a wire format would inline;
  /// in-process it is a view into the probing dataset).
  std::span<const ItemId> items;

  /// True for self-joins: the worker only emits matches with id > left,
  /// so each unordered pair is reported once and self-matches never.
  bool exclude_left_and_below = false;

  /// The filter keys of F(left) this worker owns under the plan, in the
  /// coordinator's computation order (repetition-major). May contain
  /// repeats when distinct repetitions emit the same key; the worker
  /// dedups candidates, so repeats are harmless.
  std::vector<uint64_t> keys;
};

/// \brief A worker's answer to one ProbeRequest.
struct ProbeResponse {
  /// Echo of ProbeRequest::left.
  VectorId left = 0;

  /// Verified matches from this worker's posting slices: similarity >=
  /// the join threshold, each distinct id at most once per response.
  /// The same id may appear in another worker's response (the
  /// coordinator dedups cross-worker).
  std::vector<Match> matches;

  /// Posting entries scanned while answering.
  uint64_t candidates = 0;

  /// Distinct candidates verified (similarity computations).
  uint64_t verifications = 0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_MESSAGES_H_
