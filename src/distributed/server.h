// Copyright 2026 The skewsearch Authors.
// The always-on worker server: many coordinator sessions over one
// listening socket, thread-per-connection, orderly drain.
//
// PR 5's `join-worker` served exactly one session and exited; this
// turns it into a service. Each accepted connection runs
// ServeConnection (distributed/transport/session.h) on its own thread,
// so independent coordinators — or the same coordinator running joins
// back to back — never queue behind each other. Sessions share no
// mutable state: every session reconstructs its own posting slices and
// JoinWorker from its own Assignment frame, which is what makes
// serving them concurrently trivially safe.

#ifndef SKEWSEARCH_DISTRIBUTED_SERVER_H_
#define SKEWSEARCH_DISTRIBUTED_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Serving knobs for one WorkerServer.
struct WorkerServerOptions {
  /// Concurrent-session cap; the accept loop stops pulling new
  /// connections while this many sessions are live (the kernel's
  /// listen backlog queues them meanwhile). 0 = unlimited.
  uint32_t max_sessions = 0;

  /// When no coordinator connects for this long *and* no session is
  /// live, Serve() returns OK — the guard that keeps an orphaned
  /// worker from lingering forever after its coordinator vanished
  /// without a Shutdown frame. 0 = wait forever.
  uint32_t idle_timeout_ms = 0;

  /// Per-session serving knobs (fault-injection hooks) passed through
  /// to every ServeConnection call.
  ServeOptions serve;

  /// Called on the session's own thread when it finishes, with a
  /// server-unique session id, the session's counters and its final
  /// status. Used by the CLI for per-session log lines; may be empty.
  std::function<void(uint64_t session_id, const WorkerServeStats& stats,
                     const Status& status)>
      on_session_done;
};

/// \brief Aggregate counters across every session the server ran.
struct WorkerServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_ok = 0;      ///< ended with an orderly Shutdown frame
  uint64_t sessions_failed = 0;  ///< ended with an error (or vanished peer)
  bool idle_timeout_hit = false;  ///< Serve() returned because of the guard
};

/// \brief Accept loop + per-connection session threads over a
/// TcpListener.
///
/// Single-owner object: construct, call Serve() from the owning thread
/// (it blocks until drain or idle timeout), and call RequestDrain()
/// from anywhere — including a signal handler — to stop it. Serve()
/// joins every session thread before returning, so after it returns no
/// server activity remains.
class WorkerServer {
 public:
  WorkerServer(TcpListener listener, WorkerServerOptions options);

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;
  ~WorkerServer();

  /// Runs the accept loop: accepts coordinator connections (surviving
  /// transient accept failures; a persistently broken listener is an
  /// error), serves each on its own thread, and returns OK once
  /// RequestDrain() was called or the idle-timeout guard fired — in
  /// both cases only after every live session finished and was joined.
  Status Serve();

  /// Asks Serve() to stop accepting and drain: live sessions run to
  /// completion, then Serve() returns. Async-signal-safe (an atomic
  /// store plus a shutdown(2) on the listening socket), so a SIGTERM
  /// handler may call it directly.
  void RequestDrain();

  /// The listening port (resolves a requested port of 0).
  uint16_t port() const { return listener_.port(); }

  /// Aggregate counters; call after Serve() returns for final totals.
  WorkerServerStats stats() const;

 private:
  /// Joins finished session threads (all of them when \p all, only the
  /// ones already done otherwise, so the accept loop never blocks on a
  /// session mid-probe).
  void Reap(bool all);

  struct SessionThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  TcpListener listener_;
  WorkerServerOptions options_;
  std::atomic<bool> drain_{false};

  mutable std::mutex mu_;
  std::condition_variable session_done_cv_;
  std::vector<SessionThread> sessions_;  // owner-thread only
  uint32_t active_ = 0;                  // guarded by mu_
  WorkerServerStats stats_;              // guarded by mu_
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_SERVER_H_
