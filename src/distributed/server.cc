#include "distributed/server.h"

#include <chrono>
#include <utility>

namespace skewsearch {

namespace {

/// Consecutive Accept failures (excluding the drain wake-up and the
/// idle timeout) before the listener is declared broken. The resilient
/// Accept already swallows the per-connection transients (EINTR,
/// ECONNABORTED, ...), so reaching this cap means the socket itself is
/// failing repeatedly — EMFILE, ENOMEM, a closed fd.
constexpr int kMaxConsecutiveAcceptFailures = 16;

/// Backoff between consecutive Accept failures so an fd-exhausted
/// process does not spin at 100% CPU while the condition clears.
constexpr auto kAcceptFailureBackoff = std::chrono::milliseconds(50);

/// The max-sessions / drain condition wait granularity. RequestDrain
/// is async-signal-safe and therefore cannot notify the condition
/// variable, so waits are bounded and re-check the drain flag.
constexpr auto kDrainPollInterval = std::chrono::milliseconds(100);

}  // namespace

WorkerServer::WorkerServer(TcpListener listener, WorkerServerOptions options)
    : listener_(std::move(listener)), options_(std::move(options)) {}

WorkerServer::~WorkerServer() {
  RequestDrain();
  Reap(/*all=*/true);
  listener_.Close();
}

void WorkerServer::RequestDrain() {
  drain_.store(true, std::memory_order_release);
  // Wakes a blocked Accept; Serve() then sees the flag. Everything on
  // this path is async-signal-safe: one atomic store, one shutdown(2).
  listener_.Shutdown();
}

WorkerServerStats WorkerServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkerServer::Reap(bool all) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (all || it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status WorkerServer::Serve() {
  // Session-lifecycle metrics live next to the per-session `worker.*`
  // counters ServeConnection records (same registry override).
  obs::MetricsRegistry& registry = options_.serve.metrics != nullptr
                                       ? *options_.serve.metrics
                                       : obs::MetricsRegistry::Global();
  obs::Counter* accepted_metric =
      registry.GetCounter("worker.sessions.accepted");
  obs::Counter* ok_metric = registry.GetCounter("worker.sessions.ok");
  obs::Counter* failed_metric = registry.GetCounter("worker.sessions.failed");
  obs::Gauge* active_metric = registry.GetGauge("worker.sessions.active");

  int consecutive_failures = 0;
  uint64_t next_session_id = 0;
  while (!drain_.load(std::memory_order_acquire)) {
    Reap(/*all=*/false);

    if (options_.max_sessions > 0) {
      std::unique_lock<std::mutex> lock(mu_);
      while (active_ >= options_.max_sessions &&
             !drain_.load(std::memory_order_acquire)) {
        session_done_cv_.wait_for(lock, kDrainPollInterval);
      }
      if (drain_.load(std::memory_order_acquire)) break;
    }

    bool timed_out = false;
    auto connection = listener_.Accept(options_.idle_timeout_ms, &timed_out);
    if (drain_.load(std::memory_order_acquire)) break;
    if (!connection.ok()) {
      if (timed_out) {
        std::lock_guard<std::mutex> lock(mu_);
        if (active_ == 0) {
          // Idle with nothing running: the guard fires and the server
          // retires itself.
          stats_.idle_timeout_hit = true;
          break;
        }
        // A session is still live — the coordinator is probing, just
        // not opening new sessions. Keep serving.
        continue;
      }
      if (++consecutive_failures >= kMaxConsecutiveAcceptFailures) {
        Reap(/*all=*/true);
        return Status::IOError(
            "server: listener failed " +
            std::to_string(consecutive_failures) +
            " times in a row (last: " + connection.status().ToString() + ")");
      }
      std::this_thread::sleep_for(kAcceptFailureBackoff);
      continue;
    }
    consecutive_failures = 0;

    const uint64_t session_id = next_session_id++;
    auto done = std::make_shared<std::atomic<bool>>(false);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_++;
      stats_.sessions_accepted++;
    }
    accepted_metric->Increment();
    active_metric->Add(1);
    std::thread thread(
        [this, session_id, done, ok_metric, failed_metric, active_metric,
         conn = std::move(*connection)]() mutable {
          WorkerServeStats session_stats;
          Status served =
              ServeConnection(conn.get(), &session_stats, options_.serve);
          if (options_.on_session_done) {
            options_.on_session_done(session_id, session_stats, served);
          }
          {
            std::lock_guard<std::mutex> lock(mu_);
            active_--;
            if (served.ok()) {
              stats_.sessions_ok++;
            } else {
              stats_.sessions_failed++;
            }
          }
          (served.ok() ? ok_metric : failed_metric)->Increment();
          active_metric->Add(-1);
          done->store(true, std::memory_order_release);
          session_done_cv_.notify_all();
        });
    sessions_.push_back({std::move(thread), std::move(done)});
  }

  // Drain (or idle retirement): let every live session run to
  // completion, then report.
  Reap(/*all=*/true);
  return Status::OK();
}

}  // namespace skewsearch
