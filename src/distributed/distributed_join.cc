#include "distributed/distributed_join.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "core/sharded_index.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

/// Packs a (left, right) pair for the cross-worker merge dedup.
uint64_t PairKey(VectorId left, VectorId right) {
  return (static_cast<uint64_t>(left) << 32) | right;
}

}  // namespace

DistributedJoin::~DistributedJoin() { DetachRemote(); }

wire::WorkerAssignment DistributedJoin::BuildAssignment(int w) const {
  const JoinWorker& worker = workers_[static_cast<size_t>(w)];
  const FilterTable& table = worker.table();
  wire::WorkerAssignment assignment;
  assignment.threshold = threshold_;
  assignment.measure = options_.index.verify_measure;
  assignment.postings.reserve(table.num_keys());
  std::vector<VectorId> referenced;
  referenced.reserve(table.num_pairs());
  for (size_t k = 0; k < table.num_keys(); ++k) {
    auto postings = table.postings_at(k);
    assignment.postings.emplace_back(
        table.key_at(k),
        std::vector<VectorId>(postings.begin(), postings.end()));
    referenced.insert(referenced.end(), postings.begin(), postings.end());
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  assignment.vectors.reserve(referenced.size());
  for (VectorId id : referenced) {
    auto items = data_->Get(id);
    assignment.vectors.emplace_back(
        id, std::vector<ItemId>(items.begin(), items.end()));
  }
  return assignment;
}

Status DistributedJoin::AttachRemote(
    std::vector<std::unique_ptr<FrameConnection>> connections) {
  if (!built()) {
    return Status::InvalidArgument(
        "AttachRemote requires a successful Build");
  }
  if (remote()) {
    return Status::InvalidArgument(
        "remote workers already attached; DetachRemote first");
  }
  if (connections.size() != workers_.size()) {
    return Status::InvalidArgument(
        "AttachRemote needs exactly one connection per worker (" +
        std::to_string(workers_.size()) + " workers, " +
        std::to_string(connections.size()) + " connections)");
  }
  std::vector<RemoteWorkerSession> sessions;
  sessions.reserve(connections.size());
  for (size_t w = 0; w < connections.size(); ++w) {
    if (connections[w] == nullptr) {
      for (auto& session : sessions) (void)session.Shutdown();
      return Status::InvalidArgument("AttachRemote got a null connection");
    }
    Result<RemoteWorkerSession> session = RemoteWorkerSession::Start(
        std::move(connections[w]), static_cast<uint32_t>(w),
        static_cast<uint32_t>(workers_.size()),
        BuildAssignment(static_cast<int>(w)));
    if (!session.ok()) {
      for (auto& started : sessions) (void)started.Shutdown();
      return session.status();
    }
    sessions.push_back(std::move(session).value());
  }
  sessions_ = std::move(sessions);
  return Status::OK();
}

void DistributedJoin::DetachRemote() {
  for (auto& session : sessions_) (void)session.Shutdown();
  sessions_.clear();
}

WireStats DistributedJoin::RemoteWireTotals() const {
  WireStats totals;
  for (const auto& session : sessions_) {
    const WireStats& stats = session.stats();
    totals.frames_sent += stats.frames_sent;
    totals.frames_received += stats.frames_received;
    totals.bytes_sent += stats.bytes_sent;
    totals.bytes_received += stats.bytes_received;
  }
  return totals;
}

Status DistributedJoin::Build(const Dataset* data,
                              const ProductDistribution* dist,
                              const DistributedJoinOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  Result<FilterFamily> family =
      FilterFamily::Create(dist, options.index, data->size());
  if (!family.ok()) return family.status();

  // Everything fallible below works on locals; members are assigned
  // only once the whole build has succeeded, so a failed Build leaves
  // any previous state fully usable (and built() false on a fresh
  // coordinator).
  Timer build_timer;
  const double threshold = options.threshold >= 0.0
                               ? options.threshold
                               : family->verify_threshold();

  // The monolithic posting table, built by the exact machinery the
  // sharded index shares with the single index — so the slices the plan
  // cuts from it are guaranteed to cover what a single-process join
  // would scan.
  IndexBuildStats build_stats;
  build_stats.repetitions = family->repetitions();
  build_stats.delta_used = family->delta();
  std::vector<FilterTable> full;
  SKEWSEARCH_RETURN_NOT_OK(sharded_internal::BuildShardTables(
      *data, *family, /*num_shards=*/1, options.threads, &build_stats,
      &full));
  const FilterTable& table = full[0];
  const double build_seconds = build_timer.ElapsedSeconds();

  Timer plan_timer;
  PartitionPlannerOptions planner;
  planner.workers = options.workers;
  planner.heavy_threshold = options.heavy_threshold;
  planner.sample_fraction = options.sample_fraction;
  Result<PartitionPlan> plan =
      options.sample_fraction >= 1.0
          ? PartitionPlanner::PlanFromTable(table, planner)
          : PartitionPlanner::PlanFromData(*data, *family, planner);
  if (!plan.ok()) return plan.status();

  // Cut the monolithic table into per-worker slices: light keys go
  // whole to their hash home, heavy keys as contiguous near-equal
  // chunks to their slice owners. Disjoint cover by construction.
  std::vector<FilterTable> tables(static_cast<size_t>(options.workers));
  std::vector<int> owners;
  for (size_t k = 0; k < table.num_keys(); ++k) {
    const uint64_t key = table.key_at(k);
    auto postings = table.postings_at(k);
    owners.clear();
    plan->RouteKey(key, &owners);
    const size_t slices = owners.size();
    for (size_t j = 0; j < slices; ++j) {
      const size_t begin = j * postings.size() / slices;
      const size_t end = (j + 1) * postings.size() / slices;
      FilterTable& target = tables[static_cast<size_t>(owners[j])];
      for (size_t i = begin; i < end; ++i) target.Add(key, postings[i]);
    }
  }
  std::vector<JoinWorker> workers;
  workers.reserve(static_cast<size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    FilterTable& slice = tables[static_cast<size_t>(w)];
    slice.Freeze();
    workers.emplace_back(w, std::move(slice), data, threshold,
                         options.index.verify_measure);
  }

  // A new build invalidates any shipped assignments; end those sessions
  // before the slices they mirror are replaced. (A *failed* build above
  // returned without touching them, keeping the previous state serving.)
  DetachRemote();
  data_ = data;
  dist_ = dist;
  options_ = options;
  family_ = std::move(family).value();
  threshold_ = threshold;
  plan_ = std::move(plan).value();
  workers_ = std::move(workers);
  build_seconds_ = build_seconds;
  plan_seconds_ = plan_timer.ElapsedSeconds();
  return Status::OK();
}

double DistributedJoin::DuplicationFactor() const {
  if (!built() || data_->size() == 0) return 1.0;
  size_t shipped = 0;
  for (const JoinWorker& worker : workers_) {
    shipped += worker.distinct_vectors();
  }
  return static_cast<double>(shipped) / static_cast<double>(data_->size());
}

Result<std::vector<JoinPair>> DistributedJoin::JoinImpl(
    const Dataset& left, bool self_join, DistributedJoinStats* stats) const {
  if (!built()) {
    return Status::InvalidArgument("DistributedJoin::Build must succeed "
                                   "before joining");
  }
  Timer probe_timer;
  const int num_workers = this->num_workers();
  const size_t worker_count = static_cast<size_t>(num_workers);

  // Phase 1 — route: compute each probe's filter keys once, split them
  // by owner, and enqueue one ProbeRequest per touched worker. Routing
  // parallelizes over probes; each worker's queue is sorted by probe id
  // afterwards, so the queues are independent of the schedule.
  struct RouteSlot {
    std::vector<std::vector<ProbeRequest>> queues;
    std::vector<uint64_t> keys;
    std::vector<size_t> key_offsets;
    std::vector<std::vector<uint64_t>> worker_keys;
    std::vector<int> owners;
    size_t fanout_sum = 0;
    size_t routed_probes = 0;
  };
  const int threads = options_.threads;
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  std::vector<RouteSlot> slots(
      static_cast<size_t>(pool ? pool->num_threads() : 1));
  for (RouteSlot& slot : slots) {
    slot.queues.resize(worker_count);
    slot.worker_keys.resize(worker_count);
  }
  auto route_range = [&](size_t begin, size_t end, int slot_id) {
    RouteSlot& slot = slots[static_cast<size_t>(slot_id)];
    for (size_t i = begin; i < end; ++i) {
      const VectorId lid = static_cast<VectorId>(i);
      auto query = left.Get(lid);
      if (query.empty()) continue;  // QueryAll answers empty probes empty
      slot.routed_probes++;
      // Fused all-repetitions pass; key order matches per-rep calls.
      family_.ComputeAllFilters(query, &slot.keys, &slot.key_offsets);
      for (auto& keys : slot.worker_keys) keys.clear();
      for (uint64_t key : slot.keys) {
        slot.owners.clear();
        plan_.RouteKey(key, &slot.owners);
        for (int owner : slot.owners) {
          slot.worker_keys[static_cast<size_t>(owner)].push_back(key);
        }
      }
      for (size_t w = 0; w < worker_count; ++w) {
        if (slot.worker_keys[w].empty()) continue;
        ProbeRequest request;
        request.left = lid;
        request.items = query;
        request.exclude_left_and_below = self_join;
        request.keys = std::move(slot.worker_keys[w]);
        slot.worker_keys[w].clear();
        slot.queues[w].push_back(std::move(request));
        slot.fanout_sum++;
      }
    }
  };
  if (!pool) {
    route_range(0, left.size(), 0);
  } else {
    pool->ParallelFor(left.size(), /*grain=*/64, route_range);
  }
  std::vector<std::vector<ProbeRequest>> queues(worker_count);
  size_t fanout_sum = 0;
  size_t routed_probes = 0;
  for (RouteSlot& slot : slots) {
    fanout_sum += slot.fanout_sum;
    routed_probes += slot.routed_probes;
    for (size_t w = 0; w < worker_count; ++w) {
      auto& queue = queues[w];
      queue.insert(queue.end(),
                   std::make_move_iterator(slot.queues[w].begin()),
                   std::make_move_iterator(slot.queues[w].end()));
    }
  }
  for (auto& queue : queues) {
    std::sort(queue.begin(), queue.end(),
              [](const ProbeRequest& a, const ProbeRequest& b) {
                return a.left < b.left;
              });
  }

  // Phase 2 — serve: each worker drains its queue independently; the
  // fan-out over the pool is the in-process stand-in for W machines.
  // With remote sessions attached the same queues ship as ProbeBatch
  // frames instead (at most probe_batch requests per frame, one
  // request/response round trip per frame), so batch boundaries and the
  // transport never influence which responses come back — only how many
  // frames it took.
  const bool serve_remote = !sessions_.empty();
  std::vector<std::vector<ProbeResponse>> responses(worker_count);
  std::vector<double> worker_seconds(worker_count, 0.0);
  std::vector<Status> worker_status(worker_count);
  std::vector<size_t> worker_round_trips(worker_count, 0);
  std::vector<WireStats> wire_before(worker_count);
  if (serve_remote) {
    for (size_t w = 0; w < worker_count; ++w) {
      wire_before[w] = sessions_[w].stats();
    }
  }
  auto serve_worker = [&](size_t w) {
    Timer timer;
    auto& out = responses[w];
    const auto& queue = queues[w];
    out.reserve(queue.size());
    if (serve_remote) {
      RemoteWorkerSession& session = sessions_[w];
      const size_t batch =
          options_.probe_batch == 0 ? queue.size() : options_.probe_batch;
      for (size_t begin = 0; begin < queue.size(); begin += batch) {
        const size_t count = std::min(batch, queue.size() - begin);
        Result<std::vector<ProbeResponse>> answered = session.Probe(
            std::span<const ProbeRequest>(queue.data() + begin, count));
        if (!answered.ok()) {
          worker_status[w] = answered.status();
          return;
        }
        worker_round_trips[w]++;
        for (ProbeResponse& response : *answered) {
          out.push_back(std::move(response));
        }
      }
    } else {
      const JoinWorker& worker = workers_[w];
      for (const ProbeRequest& request : queue) {
        out.push_back(worker.Probe(request));
      }
    }
    worker_seconds[w] = timer.ElapsedSeconds();
  };
  if (!pool) {
    for (size_t w = 0; w < worker_count; ++w) serve_worker(w);
  } else {
    pool->ParallelFor(worker_count, /*grain=*/1,
                      [&](size_t begin, size_t end, int /*slot*/) {
                        for (size_t w = begin; w < end; ++w) serve_worker(w);
                      });
  }
  for (const Status& status : worker_status) {
    SKEWSEARCH_RETURN_NOT_OK(status);
  }

  // Phase 3 — merge: drop pairs that surfaced on more than one worker
  // (the same build vector can sit behind different keys on different
  // workers), then sort into the canonical (left, right) order the
  // single-process join uses.
  std::vector<JoinPair> out;
  PostingSet<uint64_t> emitted;
  DistributedJoinStats local;
  local.workers.resize(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    WorkerLoad& load = local.workers[w];
    load.worker = static_cast<int>(w);
    load.keys = workers_[w].num_keys();
    load.entries = workers_[w].num_entries();
    load.vectors = workers_[w].distinct_vectors();
    load.probes = queues[w].size();
    load.probe_seconds = worker_seconds[w];
    for (const ProbeResponse& response : responses[w]) {
      load.candidates += response.candidates;
      load.verifications += response.verifications;
      load.pairs += response.matches.size();
      for (const Match& match : response.matches) {
        if (!emitted.insert(PairKey(response.left, match.id)).second) {
          local.cross_worker_duplicates++;
          continue;
        }
        out.push_back({response.left, match.id, match.similarity});
      }
    }
    local.candidates += load.candidates;
    local.verifications += load.verifications;
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });

  if (serve_remote) {
    for (size_t w = 0; w < worker_count; ++w) {
      const WireStats& after = sessions_[w].stats();
      local.wire_bytes_sent += after.bytes_sent - wire_before[w].bytes_sent;
      local.wire_bytes_received +=
          after.bytes_received - wire_before[w].bytes_received;
      local.probe_round_trips += worker_round_trips[w];
    }
  }
  local.pairs = out.size();
  local.heavy_keys = plan_.num_heavy_keys();
  local.replicated_slices = plan_.replicated_slices();
  local.duplication_factor = DuplicationFactor();
  local.probe_fanout =
      routed_probes > 0
          ? static_cast<double>(fanout_sum) / static_cast<double>(routed_probes)
          : 0.0;
  local.build_seconds = build_seconds_;
  local.plan_seconds = plan_seconds_;
  local.probe_seconds = probe_timer.ElapsedSeconds();
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

Result<std::vector<JoinPair>> DistributedJoin::Join(
    const Dataset& left, DistributedJoinStats* stats) const {
  return JoinImpl(left, /*self_join=*/false, stats);
}

Result<std::vector<JoinPair>> DistributedJoin::SelfJoin(
    DistributedJoinStats* stats) const {
  if (!built()) {
    return Status::InvalidArgument("DistributedJoin::Build must succeed "
                                   "before joining");
  }
  return JoinImpl(*data_, /*self_join=*/true, stats);
}

}  // namespace skewsearch
