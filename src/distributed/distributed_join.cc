#include "distributed/distributed_join.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "core/frozen_shard.h"
#include "core/index_io.h"
#include "core/sharded_index.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

/// Packs a (left, right) pair for the cross-worker merge dedup.
uint64_t PairKey(VectorId left, VectorId right) {
  return (static_cast<uint64_t>(left) << 32) | right;
}

}  // namespace

DistributedJoin::~DistributedJoin() { DetachRemote(); }

wire::WorkerAssignment DistributedJoin::BuildAssignment(int w) const {
  const JoinWorker& worker = workers_[static_cast<size_t>(w)];
  const FilterTable& table = worker.table();
  wire::WorkerAssignment assignment;
  assignment.threshold = threshold_;
  assignment.measure = options_.index.verify_measure;
  assignment.postings.reserve(table.num_keys());
  std::vector<VectorId> referenced;
  referenced.reserve(table.num_pairs());
  for (size_t k = 0; k < table.num_keys(); ++k) {
    auto postings = table.postings_at(k);
    assignment.postings.emplace_back(
        table.key_at(k),
        std::vector<VectorId>(postings.begin(), postings.end()));
    referenced.insert(referenced.end(), postings.begin(), postings.end());
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  assignment.vectors.reserve(referenced.size());
  for (VectorId id : referenced) {
    auto items = data_->Get(id);
    assignment.vectors.emplace_back(
        id, std::vector<ItemId>(items.begin(), items.end()));
  }
  return assignment;
}

Status DistributedJoin::AttachRemote(
    std::vector<std::unique_ptr<FrameConnection>> connections) {
  if (!built()) {
    return Status::InvalidArgument(
        "AttachRemote requires a successful Build");
  }
  if (remote()) {
    return Status::InvalidArgument(
        "remote workers already attached; DetachRemote first");
  }
  if (connections.size() != workers_.size()) {
    return Status::InvalidArgument(
        "AttachRemote needs exactly one connection per worker (" +
        std::to_string(workers_.size()) + " workers, " +
        std::to_string(connections.size()) + " connections)");
  }
  std::vector<RemoteWorkerSession> sessions;
  sessions.reserve(connections.size());
  for (size_t w = 0; w < connections.size(); ++w) {
    if (connections[w] == nullptr) {
      for (auto& session : sessions) (void)session.Shutdown();
      return Status::InvalidArgument("AttachRemote got a null connection");
    }
    Result<RemoteWorkerSession> session = RemoteWorkerSession::Start(
        std::move(connections[w]), static_cast<uint32_t>(w),
        static_cast<uint32_t>(workers_.size()),
        BuildAssignment(static_cast<int>(w)));
    if (!session.ok()) {
      for (auto& started : sessions) (void)started.Shutdown();
      return session.status();
    }
    sessions.push_back(std::move(session).value());
  }
  sessions_ = std::move(sessions);
  session_of_worker_.resize(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) session_of_worker_[w] = w;
  session_alive_.assign(sessions_.size(), true);
  return Status::OK();
}

Status DistributedJoin::AttachRemoteFrozen(
    std::vector<std::unique_ptr<FrameConnection>> connections) {
  if (!built() || frozen_ == nullptr) {
    return Status::InvalidArgument(
        "AttachRemoteFrozen requires a successful BuildFromFrozen");
  }
  if (remote()) {
    return Status::InvalidArgument(
        "remote workers already attached; DetachRemote first");
  }
  if (connections.size() != workers_.size()) {
    return Status::InvalidArgument(
        "AttachRemoteFrozen needs exactly one connection per shard (" +
        std::to_string(workers_.size()) + " shards, " +
        std::to_string(connections.size()) + " connections)");
  }
  std::vector<RemoteWorkerSession> sessions;
  sessions.reserve(connections.size());
  for (size_t w = 0; w < connections.size(); ++w) {
    if (connections[w] == nullptr) {
      for (auto& session : sessions) (void)session.Shutdown();
      return Status::InvalidArgument(
          "AttachRemoteFrozen got a null connection");
    }
    wire::ShardAssignmentFrame shard;
    shard.num_shards = static_cast<uint32_t>(workers_.size());
    shard.shard_index = static_cast<uint32_t>(w);
    shard.fingerprint = frozen_->fingerprint();
    shard.threshold = threshold_;
    shard.measure = options_.index.verify_measure;
    // The expected ack: what this coordinator's own mapping records for
    // the shard. The worker mapped a byte-identical file or it fails.
    const FrozenShardFile::ShardInfo& info =
        frozen_->shard_info(static_cast<int>(w));
    wire::AssignmentAckFrame expected;
    expected.num_keys = info.keys_count;
    expected.num_entries = info.ids_count;
    expected.distinct_vectors = data_->size();
    Result<RemoteWorkerSession> session = RemoteWorkerSession::StartFrozen(
        std::move(connections[w]), static_cast<uint32_t>(w),
        static_cast<uint32_t>(workers_.size()), shard, expected);
    if (!session.ok()) {
      for (auto& started : sessions) (void)started.Shutdown();
      return session.status();
    }
    sessions.push_back(std::move(session).value());
  }
  sessions_ = std::move(sessions);
  session_of_worker_.resize(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) session_of_worker_[w] = w;
  session_alive_.assign(sessions_.size(), true);
  return Status::OK();
}

void DistributedJoin::DetachRemote() {
  for (auto& session : sessions_) (void)session.Shutdown();
  sessions_.clear();
  session_of_worker_.clear();
  session_alive_.clear();
}

WireStats DistributedJoin::RemoteWireTotals() const {
  WireStats totals;
  for (const auto& session : sessions_) {
    const WireStats& stats = session.stats();
    totals.frames_sent += stats.frames_sent;
    totals.frames_received += stats.frames_received;
    totals.bytes_sent += stats.bytes_sent;
    totals.bytes_received += stats.bytes_received;
  }
  return totals;
}

Status DistributedJoin::Build(const Dataset* data,
                              const ProductDistribution* dist,
                              const DistributedJoinOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  Result<FilterFamily> family =
      FilterFamily::Create(dist, options.index, data->size());
  if (!family.ok()) return family.status();

  // Everything fallible below works on locals; members are assigned
  // only once the whole build has succeeded, so a failed Build leaves
  // any previous state fully usable (and built() false on a fresh
  // coordinator).
  Timer build_timer;
  const double threshold = options.threshold >= 0.0
                               ? options.threshold
                               : family->verify_threshold();

  // The monolithic posting table, built by the exact machinery the
  // sharded index shares with the single index — so the slices the plan
  // cuts from it are guaranteed to cover what a single-process join
  // would scan.
  IndexBuildStats build_stats;
  build_stats.repetitions = family->repetitions();
  build_stats.delta_used = family->delta();
  std::vector<FilterTable> full;
  SKEWSEARCH_RETURN_NOT_OK(sharded_internal::BuildShardTables(
      *data, *family, /*num_shards=*/1, options.threads, &build_stats,
      &full));
  const FilterTable& table = full[0];
  const double build_seconds = build_timer.ElapsedSeconds();

  Timer plan_timer;
  PartitionPlannerOptions planner;
  planner.workers = options.workers;
  planner.heavy_threshold = options.heavy_threshold;
  planner.sample_fraction = options.sample_fraction;
  Result<PartitionPlan> plan =
      options.sample_fraction >= 1.0
          ? PartitionPlanner::PlanFromTable(table, planner)
          : PartitionPlanner::PlanFromData(*data, *family, planner);
  if (!plan.ok()) return plan.status();

  // Cut the monolithic table into per-worker slices: light keys go
  // whole to their hash home, heavy keys as contiguous near-equal
  // chunks to their slice owners. Disjoint cover by construction.
  std::vector<FilterTable> tables(static_cast<size_t>(options.workers));
  std::vector<int> owners;
  for (size_t k = 0; k < table.num_keys(); ++k) {
    const uint64_t key = table.key_at(k);
    auto postings = table.postings_at(k);
    owners.clear();
    plan->RouteKey(key, &owners);
    const size_t slices = owners.size();
    for (size_t j = 0; j < slices; ++j) {
      const size_t begin = j * postings.size() / slices;
      const size_t end = (j + 1) * postings.size() / slices;
      FilterTable& target = tables[static_cast<size_t>(owners[j])];
      for (size_t i = begin; i < end; ++i) target.Add(key, postings[i]);
    }
  }
  std::vector<JoinWorker> workers;
  workers.reserve(static_cast<size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    FilterTable& slice = tables[static_cast<size_t>(w)];
    slice.Freeze();
    workers.emplace_back(w, std::move(slice), data, threshold,
                         options.index.verify_measure);
  }

  // A new build invalidates any shipped assignments; end those sessions
  // before the slices they mirror are replaced. (A *failed* build above
  // returned without touching them, keeping the previous state serving.)
  DetachRemote();
  data_ = data;
  dist_ = dist;
  options_ = options;
  family_ = std::move(family).value();
  threshold_ = threshold;
  plan_ = std::move(plan).value();
  workers_ = std::move(workers);
  frozen_.reset();  // the old views died with the old workers_ above
  build_seconds_ = build_seconds;
  plan_seconds_ = plan_timer.ElapsedSeconds();
  return Status::OK();
}

Status DistributedJoin::BuildFromFrozen(const Dataset* data,
                                        const ProductDistribution* dist,
                                        const std::string& frozen_path,
                                        const DistributedJoinOptions& options) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }

  Timer build_timer;
  Result<std::shared_ptr<const FrozenShardFile>> mapped =
      FrozenShardFile::Map(frozen_path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const FrozenShardFile> file = std::move(mapped).value();
  if (file->fingerprint() != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one '" + frozen_path +
        "' was frozen from");
  }
  const int num_shards = file->num_shards();
  for (int s = 0; s < num_shards; ++s) {
    const FrozenShardFile::ShardInfo& info = file->shard_info(s);
    if (info.ids_count > 0 && info.max_id >= data->size()) {
      return Status::InvalidArgument(
          "'" + frozen_path + "' references vector ids beyond the dataset");
    }
  }

  const io::ParamHeader& header = file->params();
  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index parameters in '" +
                                   frozen_path + "': " +
                                   family.status().message());
  }
  const double threshold = options.threshold >= 0.0
                               ? options.threshold
                               : family->verify_threshold();

  // One JoinWorker per shard, each probing a zero-copy view into the
  // mapping. The workers index the full (shared, borrowed) dataset —
  // frozen shards reference original ids, so no dense remap is needed.
  std::vector<JoinWorker> workers;
  workers.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Result<FilterTable> view = file->MakeShardView(s);
    if (!view.ok()) return view.status();
    workers.emplace_back(s, std::move(view).value(), data, threshold,
                         header.options.verify_measure);
  }

  // Commit only after every fallible step, as in Build(). Old views (if
  // any) must drop before their mapping: clear workers_ first.
  DetachRemote();
  data_ = data;
  dist_ = dist;
  options_ = options;
  options_.workers = num_shards;
  options_.index = header.options;
  family_ = std::move(family).value();
  threshold_ = threshold;
  plan_ = PartitionPlan::Broadcast(num_shards);
  workers_.clear();
  workers_ = std::move(workers);
  frozen_ = std::move(file);
  build_seconds_ = build_timer.ElapsedSeconds();
  plan_seconds_ = 0.0;  // broadcast needs no planner pass
  return Status::OK();
}

double DistributedJoin::DuplicationFactor() const {
  if (!built() || data_->size() == 0) return 1.0;
  size_t shipped = 0;
  for (const JoinWorker& worker : workers_) {
    shipped += worker.distinct_vectors();
  }
  return static_cast<double>(shipped) / static_cast<double>(data_->size());
}

Result<std::vector<JoinPair>> DistributedJoin::JoinImpl(
    const Dataset& left, bool self_join, DistributedJoinStats* stats) const {
  if (!built()) {
    return Status::InvalidArgument("DistributedJoin::Build must succeed "
                                   "before joining");
  }
  Timer probe_timer;
  const int num_workers = this->num_workers();
  const size_t worker_count = static_cast<size_t>(num_workers);

  // Phase 1 — route: compute each probe's filter keys once, split them
  // by owner, and enqueue one ProbeRequest per touched worker. Routing
  // parallelizes over probes; each worker's queue is sorted by probe id
  // afterwards, so the queues are independent of the schedule.
  struct RouteSlot {
    std::vector<std::vector<ProbeRequest>> queues;
    std::vector<uint64_t> keys;
    std::vector<size_t> key_offsets;
    std::vector<std::vector<uint64_t>> worker_keys;
    std::vector<int> owners;
    size_t fanout_sum = 0;
    size_t routed_probes = 0;
  };
  const int threads = options_.threads;
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  std::vector<RouteSlot> slots(
      static_cast<size_t>(pool ? pool->num_threads() : 1));
  for (RouteSlot& slot : slots) {
    slot.queues.resize(worker_count);
    slot.worker_keys.resize(worker_count);
  }
  auto route_range = [&](size_t begin, size_t end, int slot_id) {
    RouteSlot& slot = slots[static_cast<size_t>(slot_id)];
    for (size_t i = begin; i < end; ++i) {
      const VectorId lid = static_cast<VectorId>(i);
      auto query = left.Get(lid);
      if (query.empty()) continue;  // QueryAll answers empty probes empty
      slot.routed_probes++;
      // Fused all-repetitions pass; key order matches per-rep calls.
      family_.ComputeAllFilters(query, &slot.keys, &slot.key_offsets);
      for (auto& keys : slot.worker_keys) keys.clear();
      for (uint64_t key : slot.keys) {
        slot.owners.clear();
        plan_.RouteKey(key, &slot.owners);
        for (int owner : slot.owners) {
          slot.worker_keys[static_cast<size_t>(owner)].push_back(key);
        }
      }
      for (size_t w = 0; w < worker_count; ++w) {
        if (slot.worker_keys[w].empty()) continue;
        ProbeRequest request;
        request.left = lid;
        request.items = query;
        request.exclude_left_and_below = self_join;
        request.keys = std::move(slot.worker_keys[w]);
        slot.worker_keys[w].clear();
        slot.queues[w].push_back(std::move(request));
        slot.fanout_sum++;
      }
    }
  };
  if (!pool) {
    route_range(0, left.size(), 0);
  } else {
    pool->ParallelFor(left.size(), /*grain=*/64, route_range);
  }
  std::vector<std::vector<ProbeRequest>> queues(worker_count);
  size_t fanout_sum = 0;
  size_t routed_probes = 0;
  for (RouteSlot& slot : slots) {
    fanout_sum += slot.fanout_sum;
    routed_probes += slot.routed_probes;
    for (size_t w = 0; w < worker_count; ++w) {
      auto& queue = queues[w];
      queue.insert(queue.end(),
                   std::make_move_iterator(slot.queues[w].begin()),
                   std::make_move_iterator(slot.queues[w].end()));
    }
  }
  for (auto& queue : queues) {
    std::sort(queue.begin(), queue.end(),
              [](const ProbeRequest& a, const ProbeRequest& b) {
                return a.left < b.left;
              });
  }
  const int64_t route_mark = probe_timer.ElapsedNanos();

  // Phase 2 — serve: each worker drains its queue independently; the
  // fan-out over the pool is the in-process stand-in for W machines.
  // With remote sessions attached the same queues ship as ProbeBatch
  // frames instead (at most probe_batch requests per frame, up to
  // `pipeline` frames in flight per worker), so batch boundaries, the
  // window and the transport never influence which responses come back
  // — only how many frames it took and how much latency was exposed.
  // The fan-out parallelizes over *sessions*, not workers: after a
  // recovery one session can hold several workers' slices, and a
  // FrameConnection takes exactly one driver thread.
  const bool serve_remote = !sessions_.empty();
  const size_t num_sessions = sessions_.size();
  std::vector<std::vector<ProbeResponse>> responses(worker_count);
  std::vector<double> worker_seconds(worker_count, 0.0);
  std::vector<Status> worker_status(worker_count);
  std::vector<Status> session_status(num_sessions);
  std::vector<size_t> exposed_trips(worker_count, 0);
  std::vector<size_t> batches_sent(worker_count, 0);
  std::vector<WireStats> wire_before(num_sessions);
  std::vector<std::vector<size_t>> session_workers(num_sessions);
  if (serve_remote) {
    for (size_t s = 0; s < num_sessions; ++s) {
      wire_before[s] = sessions_[s].stats();
    }
    for (size_t w = 0; w < worker_count; ++w) {
      session_workers[session_of_worker_[w]].push_back(w);
    }
  }
  const size_t window = std::max<size_t>(1, options_.pipeline);
  // Ships worker w's queue over `session`, keeping up to `window`
  // batches in flight. ReceiveResponses validates arrival order, so
  // responses[w] is always the answered prefix of queues[w] — exactly
  // what recovery needs to know where a replay must resume.
  auto serve_worker_queue = [&](RemoteWorkerSession& session,
                                size_t w) -> Status {
    Timer timer;
    auto& out = responses[w];
    const auto& queue = queues[w];
    out.reserve(queue.size());
    const size_t batch =
        options_.probe_batch == 0 ? std::max<size_t>(queue.size(), 1)
                                  : options_.probe_batch;
    size_t next = 0;
    while (next < queue.size() || session.in_flight() > 0) {
      while (session.in_flight() < window && next < queue.size()) {
        const size_t count = std::min(batch, queue.size() - next);
        SKEWSEARCH_RETURN_NOT_OK(session.SendProbeBatch(
            std::span<const ProbeRequest>(queue.data() + next, count)));
        next += count;
        batches_sent[w]++;
      }
      // A receive with nothing queued up behind it exposes the full
      // round trip; every other receive hides behind the batch the
      // worker is already computing.
      if (session.in_flight() == 1) exposed_trips[w]++;
      Result<std::vector<ProbeResponse>> answered =
          session.ReceiveResponses();
      if (!answered.ok()) return answered.status();
      for (ProbeResponse& response : *answered) {
        out.push_back(std::move(response));
      }
    }
    worker_seconds[w] = timer.ElapsedSeconds();
    return Status::OK();
  };
  auto serve_session = [&](size_t s) {
    if (!session_alive_[s]) {
      if (!session_workers[s].empty()) {
        session_status[s] =
            Status::IOError("session died in an earlier join");
      }
      return;
    }
    for (size_t w : session_workers[s]) {
      Status served = serve_worker_queue(sessions_[s], w);
      if (!served.ok()) {
        session_status[s] = served;
        return;
      }
    }
  };
  auto serve_local = [&](size_t w) {
    Timer timer;
    auto& out = responses[w];
    const auto& queue = queues[w];
    out.reserve(queue.size());
    const JoinWorker& worker = workers_[w];
    for (const ProbeRequest& request : queue) {
      out.push_back(worker.Probe(request));
    }
    worker_seconds[w] = timer.ElapsedSeconds();
  };
  const size_t fanout_units = serve_remote ? num_sessions : worker_count;
  auto serve_unit = [&](size_t u) {
    if (serve_remote) {
      serve_session(u);
    } else {
      serve_local(u);
    }
  };
  if (!pool) {
    for (size_t u = 0; u < fanout_units; ++u) serve_unit(u);
  } else {
    pool->ParallelFor(fanout_units, /*grain=*/1,
                      [&](size_t begin, size_t end, int /*slot*/) {
                        for (size_t u = begin; u < end; ++u) serve_unit(u);
                      });
  }
  for (const Status& status : worker_status) {
    SKEWSEARCH_RETURN_NOT_OK(status);
  }

  // Phase 2b — recovery (remote only). A failed session means its
  // worker died mid-join: close it out, re-derive every slice it held
  // (BuildAssignment is a pure function of the deterministic plan and
  // the build-side data — nothing about the dead worker is needed),
  // re-ship them to the lowest-id surviving version >= 2 session, and
  // replay each transferred queue's unanswered suffix. The merge's
  // global dedup + canonical sort make replayed and merged-table
  // responses invisible in the output, so a recovered join stays
  // byte-identical. Runs strictly after the fan-out: a session is
  // driven by one thread at a time.
  size_t worker_recoveries = 0;
  size_t replayed_batches = 0;
  if (serve_remote) {
    Status first_failure;
    std::vector<size_t> orphaned;  // workers whose session died
    for (size_t s = 0; s < num_sessions; ++s) {
      if (session_status[s].ok()) continue;
      if (first_failure.ok()) first_failure = session_status[s];
      session_alive_[s] = false;
      (void)sessions_[s].Shutdown();
      orphaned.insert(orphaned.end(), session_workers[s].begin(),
                      session_workers[s].end());
    }
    std::sort(orphaned.begin(), orphaned.end());
    if (frozen_ != nullptr && !orphaned.empty()) {
      // A frozen-shard session serves a pre-mapped file, not shipped
      // state — there is nothing the coordinator can re-ship to a
      // survivor (and the workers reject Reassignment in this mode).
      // Fail the join cleanly instead of draining the survivor pool
      // with doomed recovery attempts.
      return Status::IOError(
          "distributed join: " + std::to_string(orphaned.size()) +
          " frozen-shard worker(s) lost and mapped shards cannot be "
          "re-shipped (first failure: " +
          first_failure.ToString() + ")");
    }
    while (!orphaned.empty()) {
      size_t survivor = num_sessions;
      for (size_t s = 0; s < num_sessions; ++s) {
        if (session_alive_[s] && sessions_[s].negotiated_version() >= 2) {
          survivor = s;
          break;
        }
      }
      if (survivor == num_sessions) {
        return Status::IOError(
            "distributed join: " + std::to_string(orphaned.size()) +
            " worker(s) lost and no surviving version >= 2 session can "
            "take their slices (first failure: " +
            first_failure.ToString() + ")");
      }
      RemoteWorkerSession& session = sessions_[survivor];
      bool survivor_alive = true;
      while (!orphaned.empty() && survivor_alive) {
        const size_t w = orphaned.front();
        Status reassigned =
            session.Reassign(BuildAssignment(static_cast<int>(w)));
        if (!reassigned.ok()) {
          session_alive_[survivor] = false;
          (void)session.Shutdown();
          survivor_alive = false;
          break;
        }
        session_of_worker_[w] = survivor;
        const auto& queue = queues[w];
        auto& out = responses[w];
        const size_t batch =
            options_.probe_batch == 0 ? std::max<size_t>(queue.size(), 1)
                                      : options_.probe_batch;
        // Resume exactly where the dead session's acknowledged prefix
        // ends. If this survivor dies too, the worker stays orphaned
        // and the next survivor continues from the new prefix.
        bool replay_failed = false;
        while (out.size() < queue.size()) {
          const size_t begin = out.size();
          const size_t count = std::min(batch, queue.size() - begin);
          Result<std::vector<ProbeResponse>> answered = session.Probe(
              std::span<const ProbeRequest>(queue.data() + begin, count));
          if (!answered.ok()) {
            session_alive_[survivor] = false;
            (void)session.Shutdown();
            survivor_alive = false;
            replay_failed = true;
            break;
          }
          replayed_batches++;
          for (ProbeResponse& response : *answered) {
            out.push_back(std::move(response));
          }
        }
        if (replay_failed) break;
        worker_recoveries++;
        orphaned.erase(orphaned.begin());
      }
    }
  }

  const int64_t serve_mark = probe_timer.ElapsedNanos();

  // Phase 3 — merge: drop pairs that surfaced on more than one worker
  // (the same build vector can sit behind different keys on different
  // workers), then sort into the canonical (left, right) order the
  // single-process join uses.
  std::vector<JoinPair> out;
  PostingSet<uint64_t> emitted;
  DistributedJoinStats local;
  local.workers.resize(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    WorkerLoad& load = local.workers[w];
    load.worker = static_cast<int>(w);
    load.keys = workers_[w].num_keys();
    load.entries = workers_[w].num_entries();
    load.vectors = workers_[w].distinct_vectors();
    load.probes = queues[w].size();
    load.probe_seconds = worker_seconds[w];
    for (const ProbeResponse& response : responses[w]) {
      load.candidates += response.candidates;
      load.verifications += response.verifications;
      load.pairs += response.matches.size();
      for (const Match& match : response.matches) {
        if (!emitted.insert(PairKey(response.left, match.id)).second) {
          local.cross_worker_duplicates++;
          continue;
        }
        out.push_back({response.left, match.id, match.similarity});
      }
    }
    local.candidates += load.candidates;
    local.verifications += load.verifications;
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });

  if (serve_remote) {
    for (size_t s = 0; s < num_sessions; ++s) {
      const WireStats& after = sessions_[s].stats();
      local.wire_bytes_sent += after.bytes_sent - wire_before[s].bytes_sent;
      local.wire_bytes_received +=
          after.bytes_received - wire_before[s].bytes_received;
    }
    for (size_t w = 0; w < worker_count; ++w) {
      local.probe_round_trips += exposed_trips[w];
      local.probe_batches_sent += batches_sent[w];
    }
    // A replay is a synchronous Probe: one more frame, one more
    // exposed trip.
    local.probe_round_trips += replayed_batches;
    local.probe_batches_sent += replayed_batches;
    local.worker_recoveries = worker_recoveries;
    local.replayed_batches = replayed_batches;
  }
  local.pairs = out.size();
  local.heavy_keys = plan_.num_heavy_keys();
  local.replicated_slices = plan_.replicated_slices();
  local.duplication_factor = DuplicationFactor();
  local.probe_fanout =
      routed_probes > 0
          ? static_cast<double>(fanout_sum) / static_cast<double>(routed_probes)
          : 0.0;
  local.build_seconds = build_seconds_;
  local.plan_seconds = plan_seconds_;
  local.probe_seconds = probe_timer.ElapsedSeconds();

  // `join.*` metrics (docs/OBSERVABILITY.md): per-join recording — a
  // join is a macro operation, so none of this touches the per-probe
  // hot path. The phase spans reuse the marks taken above and feed any
  // active ScopedTrace the same way SKEWSEARCH_SPAN would.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const joins_metric = registry.GetCounter("join.count");
  static obs::Counter* const pairs_metric = registry.GetCounter("join.pairs");
  static obs::Counter* const candidates_metric =
      registry.GetCounter("join.candidates");
  static obs::Counter* const batches_metric =
      registry.GetCounter("join.probe_batches");
  static obs::Counter* const trips_metric =
      registry.GetCounter("join.round_trips");
  static obs::Counter* const recoveries_metric =
      registry.GetCounter("join.recoveries");
  static obs::Counter* const replayed_metric =
      registry.GetCounter("join.replayed_batches");
  static obs::Counter* const bytes_sent_metric =
      registry.GetCounter("join.wire.bytes_sent");
  static obs::Counter* const bytes_received_metric =
      registry.GetCounter("join.wire.bytes_received");
  static obs::Histogram* const worker_probes_metric =
      registry.GetHistogram("join.worker_probes");
  static obs::Histogram* const worker_time_metric =
      registry.GetHistogram("join.worker_probe_ns");
  static obs::Gauge* const imbalance_metric =
      registry.GetGauge("join.worker_imbalance_x100");
  static obs::Histogram* const route_span_metric =
      registry.GetHistogram("span.join.route");
  static obs::Histogram* const serve_span_metric =
      registry.GetHistogram("span.join.serve");
  static obs::Histogram* const merge_span_metric =
      registry.GetHistogram("span.join.merge");
  joins_metric->Increment();
  pairs_metric->Increment(local.pairs);
  candidates_metric->Increment(local.candidates);
  batches_metric->Increment(local.probe_batches_sent);
  trips_metric->Increment(local.probe_round_trips);
  recoveries_metric->Increment(local.worker_recoveries);
  replayed_metric->Increment(local.replayed_batches);
  bytes_sent_metric->Increment(local.wire_bytes_sent);
  bytes_received_metric->Increment(local.wire_bytes_received);
  uint64_t max_probes = 0;
  uint64_t sum_probes = 0;
  for (const WorkerLoad& load : local.workers) {
    worker_probes_metric->Record(load.probes);
    worker_time_metric->Record(
        static_cast<uint64_t>(load.probe_seconds * 1e9));
    max_probes = std::max<uint64_t>(max_probes, load.probes);
    sum_probes += load.probes;
  }
  if (sum_probes > 0 && !local.workers.empty()) {
    // 100 = perfectly balanced; 2 workers at 300 means the hottest
    // worker saw 3x its fair share of probes.
    const double mean = static_cast<double>(sum_probes) /
                        static_cast<double>(local.workers.size());
    imbalance_metric->Set(
        static_cast<int64_t>(100.0 * static_cast<double>(max_probes) / mean));
  }
  const int64_t merge_mark = probe_timer.ElapsedNanos();
  const auto route_ns = static_cast<uint64_t>(route_mark);
  const auto serve_ns = static_cast<uint64_t>(serve_mark - route_mark);
  const auto merge_ns = static_cast<uint64_t>(merge_mark - serve_mark);
  route_span_metric->Record(route_ns);
  serve_span_metric->Record(serve_ns);
  merge_span_metric->Record(merge_ns);
  if (obs::ScopedTrace* trace = obs::ScopedTrace::Current()) {
    trace->Add("span.join.route", route_ns);
    trace->Add("span.join.serve", serve_ns);
    trace->Add("span.join.merge", merge_ns);
  }

  if (stats != nullptr) *stats = std::move(local);
  return out;
}

Result<std::vector<JoinPair>> DistributedJoin::Join(
    const Dataset& left, DistributedJoinStats* stats) const {
  return JoinImpl(left, /*self_join=*/false, stats);
}

Result<std::vector<JoinPair>> DistributedJoin::SelfJoin(
    DistributedJoinStats* stats) const {
  if (!built()) {
    return Status::InvalidArgument("DistributedJoin::Build must succeed "
                                   "before joining");
  }
  return JoinImpl(*data_, /*self_join=*/true, stats);
}

}  // namespace skewsearch
