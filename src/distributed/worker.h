// Copyright 2026 The skewsearch Authors.
// JoinWorker: one simulated machine of the distributed join.
//
// A worker owns a standalone posting table holding exactly the
// (filter key, id) slices the PartitionPlan assigned to it — a strict
// subset of the monolithic index's table, with heavy keys' posting
// lists split across slice owners. It answers ProbeRequests against
// that table and verifies candidates locally, so the only thing it
// sends back is verified pairs. Workers share no mutable state; the
// build-side dataset they verify against is read-only (in a real
// deployment the vectors a worker's postings reference are shipped to
// it once at plan time — that shipping volume is exactly the
// duplication factor the planner minimizes for light keys).

#ifndef SKEWSEARCH_DISTRIBUTED_WORKER_H_
#define SKEWSEARCH_DISTRIBUTED_WORKER_H_

#include <cstddef>

#include "core/inverted_index.h"
#include "data/dataset.h"
#include "distributed/messages.h"
#include "sim/measures.h"

namespace skewsearch {

/// \brief One worker of the distributed all-pairs join.
///
/// A worker takes ownership of its frozen table slice; Probe() is const and
/// safe to call concurrently (workers are typically driven from one
/// thread each, but nothing forbids sharing one). The build dataset is
/// borrowed and must outlive the worker.
class JoinWorker {
 public:
  /// \param worker_id this worker's index in the plan.
  /// \param table the frozen posting slices assigned to this worker.
  /// \param build_data the indexed (right) side the postings reference.
  /// \param threshold similarity a pair must reach to be emitted.
  /// \param measure similarity measure used for verification.
  /// \param dense_positions optional map from the VectorIds appearing in
  ///   \p table to positions within \p build_data, for workers holding
  ///   only the shipped subset of the build side stored densely (the
  ///   remote `join-worker` reconstruction — see transport/session.h);
  ///   every table id must be mapped. Ids in requests and responses are
  ///   always the original VectorIds. nullptr (the in-process case)
  ///   means \p build_data is indexed by the original ids directly. The
  ///   map is borrowed and must outlive the worker.
  JoinWorker(int worker_id, FilterTable table, const Dataset* build_data,
             double threshold, Measure measure,
             const PostingMap<VectorId, VectorId>* dense_positions = nullptr);

  /// Answers one probe: looks up every key, dedups candidate ids,
  /// verifies each against the probe vector, and returns the matches
  /// reaching the threshold.
  ProbeResponse Probe(const ProbeRequest& request) const;

  int id() const { return worker_id_; }

  /// Distinct filter keys (or heavy-key slices) this worker owns.
  size_t num_keys() const { return table_.num_keys(); }

  /// Posting entries stored on this worker.
  size_t num_entries() const { return table_.num_pairs(); }

  /// Distinct build-side vectors referenced by this worker's postings —
  /// the vectors a real deployment would have to ship here. Summing
  /// this over workers and dividing by n gives the duplication factor.
  size_t distinct_vectors() const { return distinct_vectors_; }

  /// The frozen posting slices this worker serves (what a transport
  /// serializes into a WorkerAssignment).
  const FilterTable& table() const { return table_; }

 private:
  int worker_id_;
  FilterTable table_;
  const Dataset* build_data_;
  double threshold_;
  Measure measure_;
  const PostingMap<VectorId, VectorId>* dense_positions_;
  size_t distinct_vectors_ = 0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_WORKER_H_
