// Copyright 2026 The skewsearch Authors.
// PartitionPlanner: skew-aware assignment of filter keys to workers for
// the distributed all-pairs join (LSF-Join, Rashtchian-Sharma-Woodruff
// 2020, adapted to the paper's chosen-path filter family).
//
// Filter keys are a pure function of (seed, repetition, vector), so any
// machine holding the read-only FilterFamily derives the same keys — a
// partition of the *key space* therefore fully determines which worker
// holds which posting entries and which workers a probe must visit. The
// planner's job is to make that partition robust to skew:
//
//   * Light keys (estimated posting count below `heavy_threshold`) are
//     hashed to exactly one worker. Their verification work is small, so
//     single-home placement costs nothing and keeps probe fan-out at 1.
//   * Heavy keys — and skewed data concentrates a large fraction of all
//     posting entries in a handful of keys — are *split*: the key's
//     posting list is divided into c = ceil(count / heavy_threshold)
//     (capped at W) contiguous slices, each owned by a different worker.
//     Probes carrying the key visit every slice owner, and each owner
//     verifies only its slice, so the mega-key's verification work
//     spreads across the cluster instead of serializing on one machine.
//
// Heavy keys are placed largest-first onto the least-loaded workers (LPT
// scheduling over the estimated posting loads), after the light keys'
// hash-determined loads are accounted. The plan is a pure function of
// its inputs, so every participant can recompute it.
//
// Estimation: the exact per-key counts are available from a frozen
// FilterTable (PlanFromTable). When no single machine holds the full
// table, PlanFromData streams the family over a deterministic sample of
// the dataset and scales the sampled counts with the Laplace smoothing
// of data/estimate.h — the same estimate-from-the-data-itself move the
// paper's Section 9 suggests for the item frequencies. Keys never seen
// by the estimate pass are routed by hash like any light key, so a plan
// always covers the whole key space.

#ifndef SKEWSEARCH_DISTRIBUTED_PARTITION_PLAN_H_
#define SKEWSEARCH_DISTRIBUTED_PARTITION_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/inverted_index.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/estimate.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Planner configuration.
struct PartitionPlannerOptions {
  /// Number of workers W (>= 1).
  int workers = 4;

  /// A key whose estimated posting count is >= this is heavy and gets
  /// split across ceil(count / heavy_threshold) workers (capped at W).
  /// 0 derives max(16, total_entries / (4 * W)): any key that alone
  /// fills a quarter of a balanced worker's share is worth splitting.
  size_t heavy_threshold = 0;

  /// Fraction of the dataset the PlanFromData estimate pass streams
  /// (in (0, 1]; 1 = every vector, exact counts). Vectors are selected
  /// by a deterministic hash so the sample is reproducible.
  double sample_fraction = 1.0;

  /// Seed of the sampling hash (independent of the index seed so the
  /// sample is uncorrelated with the filter keys).
  uint64_t sample_seed = 0x9e3779b97f4a7c15ULL;

  /// Smoothing applied when scaling sampled counts up to the full
  /// dataset (reuses the Laplace estimator configuration of
  /// data/estimate.h; only `smoothing` is consulted).
  EstimateOptions estimate;
};

/// \brief A skew-aware assignment of filter keys to workers.
///
/// Light keys are routed by hash (`HomeOf`); heavy keys carry an explicit
/// ordered owner list, one worker per posting-list slice. Immutable after
/// planning and cheap to copy around — in a multi-machine deployment this
/// struct is what the coordinator broadcasts.
struct PartitionPlan {
  /// Number of workers the plan targets (0 = invalid/unplanned).
  int workers = 0;

  /// The heavy/light split point actually used (resolved from the
  /// planner option, so 0 never appears here).
  size_t heavy_threshold = 0;

  /// Heavy keys mapped to their ordered slice owners. Slice j of the
  /// key's posting list (contiguous, near-equal split) belongs to
  /// owners[j]. Always non-empty lists of distinct workers. Probed once
  /// per routed key, hence the flat posting-path map.
  PostingMap<uint64_t, std::vector<int>> heavy;

  /// Estimated posting entries per worker (diagnostics; light keys
  /// accrue to their hash home, heavy slices to their owners).
  std::vector<double> estimated_load;

  /// Broadcast routing: every key goes to every worker. This is the
  /// plan of the frozen-shard serving mode, where workers partition the
  /// *id* space (ShardOf over a mapped SKF1 file) instead of the key
  /// space — a key's postings are spread across all shards, so every
  /// probe must visit every worker. `heavy` is empty under broadcast.
  bool broadcast = false;

  /// True once a planner produced this plan.
  bool valid() const { return workers > 0; }

  /// The all-workers plan of the frozen-shard mode (see `broadcast`).
  static PartitionPlan Broadcast(int workers);

  /// The hash home of a light (or never-estimated) key.
  int HomeOf(uint64_t key) const;

  /// Appends every worker that must see \p key — the slice owners for a
  /// heavy key, the single hash home otherwise.
  void RouteKey(uint64_t key, std::vector<int>* out) const;

  /// Number of keys classified heavy.
  size_t num_heavy_keys() const { return heavy.size(); }

  /// Total slice assignments across heavy keys (>= num_heavy_keys()).
  size_t replicated_slices() const;
};

/// \brief Computes skew-aware partition plans.
class PartitionPlanner {
 public:
  /// Plans from the exact per-key posting counts of a frozen \p table.
  static Result<PartitionPlan> PlanFromTable(
      const FilterTable& table, const PartitionPlannerOptions& options);

  /// Plans from a frequency-estimate pass: streams \p family over a
  /// deterministic `sample_fraction` sample of \p data, scales the
  /// sampled key counts with Laplace smoothing, and classifies on the
  /// estimates. With sample_fraction == 1 the counts are exact and the
  /// plan matches PlanFromTable on the table that data would build.
  static Result<PartitionPlan> PlanFromData(
      const Dataset& data, const FilterFamily& family,
      const PartitionPlannerOptions& options);

 private:
  /// Shared back end: classify + place from (key, estimated count).
  static Result<PartitionPlan> PlanFromCounts(
      const std::vector<std::pair<uint64_t, double>>& counts,
      double total_entries, const PartitionPlannerOptions& options);
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_PARTITION_PLAN_H_
