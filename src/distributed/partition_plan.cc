#include "distributed/partition_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "hashing/mix.h"

namespace skewsearch {

namespace {

constexpr int kMaxWorkers = 1 << 12;

Status ValidateOptions(const PartitionPlannerOptions& options) {
  if (options.workers < 1 || options.workers > kMaxWorkers) {
    return Status::InvalidArgument("workers must be in [1, 4096]");
  }
  if (!(options.sample_fraction > 0.0) || options.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  if (!(options.estimate.smoothing >= 0.0)) {
    return Status::InvalidArgument("smoothing must be >= 0");
  }
  return Status::OK();
}

}  // namespace

int PartitionPlan::HomeOf(uint64_t key) const {
  // Keys are already avalanche hashes, but a plain modulus would tie the
  // routing to the low bits the FilterTable also sorts by; remix like
  // ShardedIndex::ShardOf does for ids.
  return static_cast<int>(Mix64(key) % static_cast<uint64_t>(workers));
}

void PartitionPlan::RouteKey(uint64_t key, std::vector<int>* out) const {
  if (broadcast) {
    for (int w = 0; w < workers; ++w) out->push_back(w);
    return;
  }
  auto it = heavy.find(key);
  if (it == heavy.end()) {
    out->push_back(HomeOf(key));
    return;
  }
  out->insert(out->end(), it->second.begin(), it->second.end());
}

PartitionPlan PartitionPlan::Broadcast(int workers) {
  PartitionPlan plan;
  plan.workers = workers;
  plan.heavy_threshold = 0;
  plan.broadcast = true;
  plan.estimated_load.assign(static_cast<size_t>(workers), 0.0);
  return plan;
}

size_t PartitionPlan::replicated_slices() const {
  size_t total = 0;
  for (const auto& [key, owners] : heavy) total += owners.size();
  return total;
}

Result<PartitionPlan> PartitionPlanner::PlanFromCounts(
    const std::vector<std::pair<uint64_t, double>>& counts,
    double total_entries, const PartitionPlannerOptions& options) {
  SKEWSEARCH_RETURN_NOT_OK(ValidateOptions(options));
  const int workers = options.workers;

  PartitionPlan plan;
  plan.workers = workers;
  plan.heavy_threshold = options.heavy_threshold;
  if (plan.heavy_threshold == 0) {
    plan.heavy_threshold = std::max<size_t>(
        16, static_cast<size_t>(total_entries /
                                (4.0 * static_cast<double>(workers))));
  }
  plan.estimated_load.assign(static_cast<size_t>(workers), 0.0);

  // Light keys first: their placement is fixed by hash, so their load is
  // a given that heavy placement must balance around.
  const double threshold = static_cast<double>(plan.heavy_threshold);
  std::vector<std::pair<uint64_t, double>> heavies;
  for (const auto& [key, estimate] : counts) {
    if (estimate >= threshold) {
      heavies.emplace_back(key, estimate);
    } else {
      plan.estimated_load[static_cast<size_t>(plan.HomeOf(key))] += estimate;
    }
  }

  // Heavy keys largest-first (LPT), each split into c near-equal slices
  // placed on the c least-loaded distinct workers — popped from a
  // min-heap keyed (load, worker), so placement costs O(c log W) per
  // key instead of a full worker sort. Ties break on the key and on the
  // worker index, so the plan is a pure function of its input.
  std::sort(heavies.begin(), heavies.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  using LoadSlot = std::pair<double, int>;
  std::priority_queue<LoadSlot, std::vector<LoadSlot>,
                      std::greater<LoadSlot>>
      least_loaded;
  for (int w = 0; w < workers; ++w) {
    least_loaded.emplace(plan.estimated_load[static_cast<size_t>(w)], w);
  }
  for (const auto& [key, estimate] : heavies) {
    const int slices = static_cast<int>(std::min<double>(
        workers, std::ceil(estimate / threshold)));
    std::vector<int> owners;
    owners.reserve(static_cast<size_t>(slices));
    const double share = estimate / static_cast<double>(slices);
    for (int j = 0; j < slices; ++j) {
      owners.push_back(least_loaded.top().second);
      least_loaded.pop();
    }
    for (int owner : owners) {
      double& load = plan.estimated_load[static_cast<size_t>(owner)];
      load += share;
      least_loaded.emplace(load, owner);
    }
    plan.heavy.emplace(key, std::move(owners));
  }
  return plan;
}

Result<PartitionPlan> PartitionPlanner::PlanFromTable(
    const FilterTable& table, const PartitionPlannerOptions& options) {
  SKEWSEARCH_RETURN_NOT_OK(ValidateOptions(options));
  if (!table.frozen()) {
    return Status::InvalidArgument("PlanFromTable needs a frozen table");
  }
  std::vector<std::pair<uint64_t, double>> counts;
  counts.reserve(table.num_keys());
  for (size_t k = 0; k < table.num_keys(); ++k) {
    counts.emplace_back(table.key_at(k),
                        static_cast<double>(table.postings_at(k).size()));
  }
  return PlanFromCounts(counts, static_cast<double>(table.num_pairs()),
                        options);
}

Result<PartitionPlan> PartitionPlanner::PlanFromData(
    const Dataset& data, const FilterFamily& family,
    const PartitionPlannerOptions& options) {
  SKEWSEARCH_RETURN_NOT_OK(ValidateOptions(options));
  if (!family.valid()) {
    return Status::InvalidArgument("PlanFromData needs a valid family");
  }

  // Deterministic sample: a vector is in iff its id hash clears the
  // fraction, so every participant streaming the same dataset sees the
  // same sample regardless of iteration schedule. The full-sample case
  // never converts (fraction * 2^64 is not representable as uint64_t).
  const bool sample_all = options.sample_fraction >= 1.0;
  const uint64_t cutoff =
      sample_all
          ? std::numeric_limits<uint64_t>::max()
          : static_cast<uint64_t>(
                options.sample_fraction *
                static_cast<double>(std::numeric_limits<uint64_t>::max()));
  PostingMap<uint64_t, size_t> sampled_counts;
  std::vector<uint64_t> keys;
  std::vector<size_t> offsets;
  size_t sampled_vectors = 0;
  for (VectorId id = 0; id < data.size(); ++id) {
    if (!sample_all && Mix64(options.sample_seed ^ id) > cutoff) {
      continue;
    }
    ++sampled_vectors;
    auto x = data.Get(id);
    // Fused all-repetitions pass (classification sorts by key below, so
    // only the multiset of keys matters).
    family.ComputeAllFilters(x, &keys, &offsets);
    for (uint64_t key : keys) sampled_counts[key]++;
  }

  // Scale the sampled counts to the full dataset with the Laplace
  // smoothing of data/estimate.h: est = n * (c + s) / (m + 2s). The
  // smoothing keeps barely-sampled keys from being scaled into phantom
  // heavies when the sample is tiny.
  const double n = static_cast<double>(data.size());
  const double m = static_cast<double>(sampled_vectors);
  const double s = options.estimate.smoothing;
  std::vector<std::pair<uint64_t, double>> counts;
  counts.reserve(sampled_counts.size());
  double total = 0.0;
  for (const auto& [key, count] : sampled_counts) {
    const double estimate =
        m > 0.0 ? n * (static_cast<double>(count) + s) / (m + 2.0 * s) : 0.0;
    counts.emplace_back(key, estimate);
    total += estimate;
  }
  // Deterministic classification order (the map iterates arbitrarily).
  std::sort(counts.begin(), counts.end());
  return PlanFromCounts(counts, total, options);
}

}  // namespace skewsearch
