// Copyright 2026 The skewsearch Authors.
// DistributedJoin: a partition-aware all-pairs similarity-join driver
// that simulates a multi-worker LSF-Join deployment in-process.
//
// The coordinator builds the read-only filter family, asks the
// PartitionPlanner for a skew-aware key partition, hands each JoinWorker
// its posting slices, and then drives the join as pure message passing:
// for every probe it computes the filter keys once (they are a pure
// function of seed x repetition x vector), routes each key to its
// owners, fans the per-worker ProbeRequests out over a thread pool, and
// merges the ProbeResponses — deduplicating pairs that surfaced on more
// than one worker.
//
// Output contract: the emitted pair list is byte-identical to the
// single-process SimilarityJoin/SelfSimilarityJoin for every worker
// count and heavy threshold. The argument: the workers' posting slices
// are a disjoint cover of the monolithic table (light keys whole, heavy
// keys sliced), so the union over workers of a probe's candidates is
// exactly the monolithic candidate set; verification is a deterministic
// function of the two vectors; and the coordinator's dedup + (left,
// right) sort produces the same canonical order the single-process join
// sorts into. Both sides of the seam hold only the read-only family and
// datasets, so a real RPC transport can replace the in-process fan-out
// without changing results.

#ifndef SKEWSEARCH_DISTRIBUTED_DISTRIBUTED_JOIN_H_
#define SKEWSEARCH_DISTRIBUTED_DISTRIBUTED_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "distributed/partition_plan.h"
#include "distributed/transport/session.h"
#include "distributed/transport/transport.h"
#include "distributed/worker.h"
#include "sim/brute_force.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Configuration of a distributed join.
struct DistributedJoinOptions {
  /// Index configuration of the build side (mode, b1/alpha, seed, ...).
  SkewedIndexOptions index;

  /// Similarity pairs must reach; negative derives the family's verify
  /// threshold (same default as the single-process join).
  double threshold = -1.0;

  /// Number of simulated workers W (>= 1).
  int workers = 4;

  /// Heavy-key split point forwarded to the planner (0 = auto).
  size_t heavy_threshold = 0;

  /// Planner estimate pass: 1 (default) plans from the exact posting
  /// counts; < 1 plans from a sampled frequency estimate instead, as a
  /// coordinator without the full table would.
  double sample_fraction = 1.0;

  /// Parallelism for the build and the worker fan-out (<= 1 = serial;
  /// workers are driven one per pool slot either way, so the thread
  /// count never changes results).
  int threads = 0;

  /// Remote serving only (AttachRemote): maximum ProbeRequests shipped
  /// per ProbeBatch frame; 0 ships each worker's whole queue as one
  /// batch. Batching amortizes the per-frame overhead and round trips
  /// without affecting results (a worker answers probes independently,
  /// so the batch boundaries are invisible in the output).
  size_t probe_batch = 256;

  /// Remote serving only: maximum ProbeBatch frames in flight per
  /// worker. At the default 2 the coordinator ships the next batch
  /// while the worker still computes the previous one, hiding the
  /// round trip behind service time; 1 restores strict send-then-wait
  /// serving. Responses always arrive in send order, so the window
  /// size is invisible in the output.
  size_t pipeline = 2;
};

/// \brief Per-worker load/work report.
struct WorkerLoad {
  int worker = 0;
  size_t keys = 0;            ///< distinct keys (slices) owned
  size_t entries = 0;         ///< posting entries owned
  size_t vectors = 0;         ///< distinct build vectors referenced
  size_t probes = 0;          ///< probe requests received
  size_t candidates = 0;      ///< posting entries scanned
  size_t verifications = 0;   ///< similarity computations
  size_t pairs = 0;           ///< pairs emitted (before cross-worker dedup)
  double probe_seconds = 0.0; ///< busy time in the probe phase
};

/// \brief Coordinator-side counters of a distributed join.
struct DistributedJoinStats {
  size_t pairs = 0;
  size_t candidates = 0;
  size_t verifications = 0;
  size_t heavy_keys = 0;              ///< keys the planner split
  size_t replicated_slices = 0;       ///< total heavy-slice assignments
  size_t cross_worker_duplicates = 0; ///< pairs dropped by the merge dedup
  /// Sum over workers of distinct build vectors referenced, over n: the
  /// data shipped to workers relative to one copy of the dataset.
  double duplication_factor = 1.0;
  /// Average number of workers a probe contacts.
  double probe_fanout = 0.0;
  double build_seconds = 0.0;  ///< family + full posting table
  double plan_seconds = 0.0;   ///< planner + worker table partitioning
  double probe_seconds = 0.0;  ///< route + serve + merge
  /// Remote serving only (zero when the join ran in-process): frame
  /// bytes this join put on / read off the wire (including any
  /// recovery re-shipping and replays).
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  /// Remote serving only: *exposed* round trips — receives that had no
  /// other batch in flight behind them, i.e. waits whose latency the
  /// pipeline could not hide. With pipeline = 1 every batch is exposed
  /// (this equals probe_batches_sent); with a window of 2 only each
  /// worker's final drain is.
  size_t probe_round_trips = 0;
  /// Remote serving only: ProbeBatch frames shipped, replays included.
  size_t probe_batches_sent = 0;
  /// Workers whose posting slices were re-shipped to a survivor after
  /// their session died mid-join (0 on a clean join).
  size_t worker_recoveries = 0;
  /// ProbeBatch frames re-sent to a survivor because the original
  /// session died before acknowledging them.
  size_t replayed_batches = 0;
  std::vector<WorkerLoad> workers;
};

/// \brief The distributed all-pairs join coordinator.
///
/// Build() once over the indexed side, then Join()/SelfJoin() any number
/// of times. The build-side dataset and distribution are borrowed and
/// must outlive the coordinator.
class DistributedJoin {
 public:
  DistributedJoin() = default;
  DistributedJoin(const DistributedJoin&) = delete;
  DistributedJoin& operator=(const DistributedJoin&) = delete;
  ~DistributedJoin();  // detaches remote workers (orderly Shutdown)

  /// Derives the family, builds the full posting table, plans the
  /// partition and constructs one JoinWorker per plan slot. On failure
  /// the coordinator is left exactly as before the call (a fresh one
  /// stays unbuilt; a built one keeps serving its previous state).
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const DistributedJoinOptions& options);

  /// The zero-build alternative: maps an SKF1 frozen-shard file
  /// (core/frozen_shard.h) previously written by Freeze() over \p data,
  /// restores the filter family from its parameter block, and serves
  /// each shard through a zero-copy JoinWorker view — no posting table
  /// is ever rebuilt. Frozen shards partition the *id* space (ShardOf),
  /// not the key space, so the routing plan broadcasts every probe's
  /// keys to every worker; the per-shard candidate sets are disjoint
  /// and their union is exactly the monolithic candidate set, which
  /// keeps Join()/SelfJoin() byte-identical to the Build() path. The
  /// worker count is the file's shard count (`options.workers` is
  /// ignored); `options.index` is replaced by the file's parameters.
  Status BuildFromFrozen(const Dataset* data,
                         const ProductDistribution* dist,
                         const std::string& frozen_path,
                         const DistributedJoinOptions& options);

  /// True when the coordinator serves a mapped frozen-shard file.
  bool frozen() const { return frozen_ != nullptr; }

  /// R-S join: probes with every vector of \p left; pairs are (left id,
  /// build id, similarity), sorted by (left, right). Byte-identical to
  /// SimilarityJoin over the same options.
  Result<std::vector<JoinPair>> Join(const Dataset& left,
                                     DistributedJoinStats* stats = nullptr)
      const;

  /// Self join over the build side: all pairs (i < j) with similarity >=
  /// the threshold. Byte-identical to SelfSimilarityJoin.
  Result<std::vector<JoinPair>> SelfJoin(
      DistributedJoinStats* stats = nullptr) const;

  /// Switches Join()/SelfJoin() from in-process serving to remote
  /// workers: one connection per plan slot, in worker order. Runs the
  /// handshake + assignment session (transport/session.h) on each
  /// connection, shipping that worker's posting slices and the build
  /// vectors they reference, and cross-checks the reconstruction acks.
  /// Requires a successful Build(); on any failure every already-started
  /// session is shut down and the coordinator stays in-process. The
  /// probe phase then ships batches of at most `probe_batch` requests
  /// per frame, up to `pipeline` of them in flight per worker, and
  /// merges exactly as in-process serving does — the output stays
  /// byte-identical across transports. If a session dies mid-join the
  /// coordinator re-derives the lost worker's slices (BuildAssignment
  /// is a pure function of the deterministic plan), re-ships them to a
  /// surviving version >= 2 session, replays the unacknowledged
  /// batches, and still completes with byte-identical output.
  Status AttachRemote(
      std::vector<std::unique_ptr<FrameConnection>> connections);

  /// Remote serving for the frozen mode: one connection per shard, in
  /// shard order. Instead of shipping slices, sends each worker a tiny
  /// ShardAssignment frame naming the shard it serves — the workers
  /// must have pre-mapped the byte-identical SKF1 file (`join-worker
  /// --shard-file`) — and cross-checks the acked counters against this
  /// coordinator's own mapping. Requires BuildFromFrozen and version
  /// >= 3 workers. A mapped shard is not re-shippable state, so there
  /// is no mid-join recovery in this mode: a died session fails the
  /// join cleanly instead of degrading onto survivors.
  Status AttachRemoteFrozen(
      std::vector<std::unique_ptr<FrameConnection>> connections);

  /// Sends Shutdown to every attached worker and returns to in-process
  /// serving. Safe to call when not attached.
  void DetachRemote();

  /// True while Join()/SelfJoin() are served by remote workers.
  bool remote() const { return !sessions_.empty(); }

  /// Cumulative coordinator-side traffic over every attached session —
  /// unlike the per-join DistributedJoinStats counters this includes
  /// the handshake and assignment shipping (zero when not remote).
  WireStats RemoteWireTotals() const;

  /// True after a successful Build().
  bool built() const { return family_.valid(); }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const PartitionPlan& plan() const { return plan_; }
  const JoinWorker& worker(int w) const {
    return workers_[static_cast<size_t>(w)];
  }
  const FilterFamily& family() const { return family_; }
  double threshold() const { return threshold_; }

  /// Sum over workers of distinct referenced vectors, over n.
  double DuplicationFactor() const;

 private:
  Result<std::vector<JoinPair>> JoinImpl(const Dataset& left, bool self_join,
                                         DistributedJoinStats* stats) const;

  /// Serializes worker \p w's slices + referenced build vectors.
  wire::WorkerAssignment BuildAssignment(int w) const;

  const Dataset* data_ = nullptr;
  const ProductDistribution* dist_ = nullptr;
  DistributedJoinOptions options_;
  FilterFamily family_;
  PartitionPlan plan_;
  /// The mapped SKF1 file when built by BuildFromFrozen (null after a
  /// classic Build). Declared before workers_ so the mapping outlives
  /// the zero-copy views the workers hold into it.
  std::shared_ptr<const FrozenShardFile> frozen_;
  std::vector<JoinWorker> workers_;
  /// Remote sessions, one per worker when attached. Mutable because
  /// serving a (logically const) join drives the connection state; each
  /// session is driven by exactly one thread of the probe fan-out.
  mutable std::vector<RemoteWorkerSession> sessions_;
  /// sessions_ index currently holding worker w's slices. Starts as the
  /// identity; recovery remaps every worker of a dead session onto a
  /// survivor (which then serves several queues back to back), and the
  /// remap persists so later joins keep working on the reduced pool.
  mutable std::vector<size_t> session_of_worker_;
  /// False once a session died (its fd is closed, its slices
  /// re-shipped); dead sessions are skipped by every later join.
  mutable std::vector<bool> session_alive_;
  double threshold_ = 0.0;
  double build_seconds_ = 0.0;
  double plan_seconds_ = 0.0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DISTRIBUTED_DISTRIBUTED_JOIN_H_
