#include "core/intersect.h"

#include <algorithm>
#include <bit>

#include "sim/intersect.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SKEWSEARCH_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace skewsearch {

namespace {

// Scalar merge of the block-loop tails; bounds are what the vector loop
// left unconsumed, so this also serves the whole input on short lists.
size_t MergeTail(std::span<const ItemId> a, size_t i,
                 std::span<const ItemId> b, size_t j) {
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#if SKEWSEARCH_INTERSECT_X86

// 4-wide block intersection (Schlegel/Lemire style): compare the a-block
// against every rotation of the b-block, popcount the match mask, then
// advance the block with the smaller maximum (both on a tie). Sorted
// duplicate-free inputs make each matching pair visible in exactly one
// block pairing, so the count is exact.
size_t Sse2Impl(std::span<const ItemId> a, std::span<const ItemId> b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    count += static_cast<size_t>(
        std::popcount(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    const ItemId amax = a[i + 3];
    const ItemId bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + MergeTail(a, i, b, j);
}

// 8-wide AVX2 variant: the b-block is compared under all 8 cross-lane
// rotations (permutevar8x32). Compiled with a per-function target so the
// translation unit itself stays baseline; only runs after detection.
__attribute__((target("avx2"))) size_t Avx2Impl(std::span<const ItemId> a,
                                                std::span<const ItemId> b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i idx = _mm256_setr_epi32(r, r + 1, r + 2, r + 3, r + 4,
                                            r + 5, r + 6, r + 7);
      // Indices wrap modulo 8 in permutevar8x32 (only the low 3 bits of
      // each index are used), giving the r-th rotation directly.
      eq = _mm256_or_si256(eq,
                           _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, idx)));
    }
    count += static_cast<size_t>(std::popcount(
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    const ItemId amax = a[i + 7];
    const ItemId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + MergeTail(a, i, b, j);
}

#endif  // SKEWSEARCH_INTERSECT_X86

IntersectKernel& ActiveKernelRef() {
  static IntersectKernel kernel = DetectIntersectKernel();
  return kernel;
}

}  // namespace

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kSse2:
      return "sse2";
    case IntersectKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IntersectKernel DetectIntersectKernel() {
#if SKEWSEARCH_INTERSECT_X86
  if (__builtin_cpu_supports("avx2")) return IntersectKernel::kAvx2;
  return IntersectKernel::kSse2;  // baseline on every x86-64 CPU
#else
  return IntersectKernel::kScalar;
#endif
}

IntersectKernel ActiveIntersectKernel() { return ActiveKernelRef(); }

IntersectKernel SetIntersectKernel(IntersectKernel kernel) {
  const IntersectKernel best = DetectIntersectKernel();
  // Kernels are ordered weakest-first; never install one the CPU lacks.
  if (static_cast<int>(kernel) > static_cast<int>(best)) kernel = best;
  ActiveKernelRef() = kernel;
  return kernel;
}

size_t IntersectSizeScalar(std::span<const ItemId> a,
                           std::span<const ItemId> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small * 16 < large) return IntersectSizeGalloping(a, b);
  return IntersectSizeMerge(a, b);
}

size_t IntersectSizeSse2(std::span<const ItemId> a,
                         std::span<const ItemId> b) {
#if SKEWSEARCH_INTERSECT_X86
  return Sse2Impl(a, b);
#else
  return IntersectSizeScalar(a, b);
#endif
}

size_t IntersectSizeAvx2(std::span<const ItemId> a,
                         std::span<const ItemId> b) {
#if SKEWSEARCH_INTERSECT_X86
  if (__builtin_cpu_supports("avx2")) return Avx2Impl(a, b);
  return Sse2Impl(a, b);
#else
  return IntersectSizeScalar(a, b);
#endif
}

size_t IntersectSizeKernel(std::span<const ItemId> a,
                           std::span<const ItemId> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  // Heavily asymmetric pairs stay on galloping: O(small log large) beats
  // any linear block scan once the lists differ by an order of magnitude.
  if (small * 16 < large) return IntersectSizeGalloping(a, b);
  switch (ActiveKernelRef()) {
    case IntersectKernel::kScalar:
      return IntersectSizeMerge(a, b);
    case IntersectKernel::kSse2:
      return IntersectSizeSse2(a, b);
    case IntersectKernel::kAvx2:
      return IntersectSizeAvx2(a, b);
  }
  return IntersectSizeMerge(a, b);
}

}  // namespace skewsearch
