// Copyright 2026 The skewsearch Authors.
// DynamicIndex: the sharded index made online — Insert() and Remove()
// after Build(), with wait-free concurrent readers.
//
// Layout per shard: an immutable *snapshot* published behind an atomic
// pointer. A snapshot bundles the frozen base posting table, a delta map
// holding the postings of vectors inserted since the last compaction, a
// tombstone map for removed ids, the owned item lists of inserted
// vectors, and the parameter *edition* (filter family) the postings were
// generated under. Filter keys are a pure function of
// (seed, repetition, vector), so an insert only replays the path engine
// for the new vector and appends the resulting (key, id) pairs to its
// shard's delta.
//
// Concurrency contract (epoch-based, see maintenance/epoch.h): readers
// pin an epoch, load the shard snapshot pointers they need, and scan
// without taking any lock — reads are wait-free and never block on
// writers, compaction or rebuild. Writers serialize per shard on a
// plain mutex, clone the current snapshot (cheap: posting lists and
// inserted vectors are shared substructure), apply their mutation, and
// publish by a single pointer swap; the old snapshot is retired to the
// epoch manager and reclaimed once no reader still pins it. A mutation
// completed before a query starts is always visible to it (no lost
// results); a removal completed before a query starts is never returned
// (no phantoms).
//
// Housekeeping is decoupled from the write path: Remove() past the
// dead-entry threshold only *flags* the shard and notifies the attached
// maintenance listener — it never compacts in the caller's thread. The
// MaintenanceService (maintenance/service.h) runs compaction and, when
// the live count has drifted far from the size the parameters were
// derived for, a full parameter re-derive + rebuild, shard by shard; in
// both cases the expensive table construction happens off-lock against
// a pinned snapshot and only a short merge section holds the shard's
// writer mutex, so the index stays online throughout.
//
// Snapshot isolation: GetSnapshot() pins one epoch and captures every
// shard's current state; queries against that handle return identical
// results no matter how many mutations, compactions or rebuilds happen
// concurrently. BatchQuery() answers the whole batch against one such
// snapshot, giving a batch a consistent cross-shard cut.

#ifndef SKEWSEARCH_CORE_DYNAMIC_INDEX_H_
#define SKEWSEARCH_CORE_DYNAMIC_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/index_view.h"
#include "core/inverted_index.h"
#include "core/query_stats.h"
#include "core/sharded_index.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "maintenance/epoch.h"
#include "sim/brute_force.h"
#include "util/result.h"
#include "util/status.h"
#include "util/sync.h"

namespace skewsearch {

class ThreadPool;  // util/thread_pool.h

/// \brief Configuration of the online index.
struct DynamicIndexOptions {
  /// Per-shard index configuration (seed shared across shards).
  SkewedIndexOptions index;

  /// Number of hash partitions K (>= 1).
  int num_shards = 4;

  /// A shard is flagged for compaction once more than this fraction of
  /// its posting entries belongs to removed vectors. Must be > 0; values
  /// >= 1 effectively disable the flagging.
  double compact_dead_fraction = 0.25;
};

/// \brief Hook the index uses to hand housekeeping to a maintenance
/// component. Callbacks fire on the mutating thread while it still
/// holds the owning shard's writer mutex (that is what lets
/// SetMaintenanceListener() act as a barrier against in-flight
/// callbacks), so implementations must only signal — never call back
/// into the index, and never block.
class MaintenanceListener {
 public:
  virtual ~MaintenanceListener() = default;

  /// Shard \p shard crossed the dead-entry threshold and wants
  /// compaction.
  virtual void OnShardDirty(int shard) = 0;
};

/// \brief Hook making acknowledged mutations durable (the write-ahead
/// log seam; see durability/wal.h for the production implementation).
///
/// When registered, Insert/Remove call LogInsert/LogRemove after
/// applying the mutation but *before returning*, still under the
/// owning shard's writer mutex — so a mutation is acknowledged only
/// once the journal accepted it, per-shard journal order matches apply
/// order, and SetMutationJournal() can act as a barrier exactly like
/// SetMaintenanceListener(). A journal error fails the mutating call;
/// the mutation may then be visible in memory but is not durable (it
/// is an *unacknowledged* mutation: after a crash and recovery it is
/// allowed to be absent). Implementations may block (an fsync is the
/// point) but must never call back into the index.
class MutationJournal {
 public:
  virtual ~MutationJournal() = default;

  /// Mutation "insert \p id = \p items" was applied; make it durable.
  virtual Status LogInsert(VectorId id, std::span<const ItemId> items) = 0;

  /// Mutation "remove \p id" was applied; make it durable.
  virtual Status LogRemove(VectorId id) = 0;
};

/// \brief Per-shard health counters (for maintenance policy and tests).
struct ShardHealth {
  size_t live_entries = 0;   ///< posting entries referencing live ids
  size_t dead_entries = 0;   ///< posting entries referencing tombstones
  size_t delta_entries = 0;  ///< entries held in delta lists
  size_t tombstones = 0;     ///< dead ids whose postings are present
  uint64_t edition = 0;      ///< parameter edition the shard serves
  double dead_ratio = 0.0;   ///< dead / (live + dead), 0 when empty
};

/// \brief Sharded index with Insert/Remove, wait-free concurrent readers
/// and decoupled maintenance.
///
/// The base dataset and distribution are borrowed and must outlive the
/// index; inserted vectors are copied and owned. Query/QueryAll/
/// BatchQuery/GetSnapshot are safe to call concurrently with Insert/
/// Remove/CompactShard/RebuildForSize from any number of threads. Not
/// movable (shard slots and epoch slots pin addresses). Destruction
/// requires quiescence: no reader, writer or snapshot may be in flight.
class DynamicIndex : public IndexView {
 public:
  DynamicIndex();
  ~DynamicIndex() override;
  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;

  /// \brief A pinned, immutable cross-shard view of the index.
  ///
  /// Queries against a snapshot return byte-identical results for its
  /// whole lifetime, regardless of concurrent mutations, compactions or
  /// rebuilds. Holding a snapshot defers reclamation of superseded
  /// tables (it pins an epoch), so scope snapshots to a query batch,
  /// not to the application lifetime. Movable, not copyable.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&&) noexcept = default;
    Snapshot& operator=(Snapshot&&) noexcept = default;

    bool valid() const { return index_ != nullptr; }

    /// First match in scan order, as DynamicIndex::Query, but evaluated
    /// against this snapshot's fixed state.
    std::optional<Match> Query(std::span<const ItemId> query,
                               QueryStats* stats = nullptr) const;

    /// All live matches >= \p threshold, as DynamicIndex::QueryAll, but
    /// evaluated against this snapshot's fixed state.
    std::vector<Match> QueryAll(std::span<const ItemId> query,
                                double threshold,
                                QueryStats* stats = nullptr) const;

    /// Live vectors in this snapshot.
    size_t size() const;

    /// The epoch this snapshot pinned (diagnostics/tests).
    uint64_t epoch() const { return guard_.epoch(); }

   private:
    friend class DynamicIndex;
    const DynamicIndex* index_ = nullptr;
    EpochManager::Guard guard_;
    std::vector<const void*> states_;  // const ShardState*, type-erased
  };

  /// Builds the per-shard base tables over \p data. Not thread-safe
  /// against concurrent use of this object.
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const DynamicIndexOptions& options);

  /// Inserts one vector (strictly increasing item ids, all inside the
  /// distribution's universe) and returns its id. Runs the path engine
  /// outside any lock, then publishes a new shard snapshot under the
  /// owning shard's writer mutex. Thread-safe. \p num_filters (if
  /// non-null) receives the number of posting entries the vector
  /// contributed — 0 means the filter family emitted no paths for it,
  /// so no query can ever surface it until a rebuild.
  Result<VectorId> Insert(std::span<const ItemId> items,
                          size_t* num_filters = nullptr);

  /// Tombstones \p id (a base vector or a previous Insert). Returns
  /// NotFound for unknown or already-removed ids. Never compacts
  /// inline: crossing the dead-entry threshold only notifies the
  /// attached maintenance listener. Thread-safe.
  Status Remove(VectorId id);

  /// First match with similarity >= the shard's verify threshold in the
  /// scan order (repetition, key position, base-before-delta, id), or
  /// nullopt. Deterministic for a quiesced index. Thread-safe and
  /// wait-free (lock-free reads; never blocks on writers).
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// All distinct live matches with similarity >= \p threshold, sorted
  /// by descending similarity (ties by id). On a freshly built index
  /// this is byte-identical to the unsharded SkewedPathIndex::QueryAll.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr) const;

  /// Pins the current state of every shard into one consistent view.
  Snapshot GetSnapshot() const;

  /// Answers every vector of \p queries as a Query(), parallelized over
  /// the batch. The whole batch is answered against one Snapshot, so it
  /// sees a single consistent cross-shard cut even while writers,
  /// compaction or rebuild proceed.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, on a caller-owned pool (null = serial).
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// \name Maintenance operations
  /// Thread-safe against readers and writers; maintenance calls
  /// serialize among themselves. Intended to run on the maintenance
  /// thread (see maintenance/service.h) but callable directly.
  /// @{

  /// Rebuilds shard \p s without tombstoned entries, folding its delta
  /// into a fresh frozen table. The expensive table build runs against a
  /// pinned snapshot with no locks held; only a short merge section
  /// (bounded by the mutations that raced the build) takes the shard's
  /// writer mutex. No-op when the shard has no tombstones.
  Status CompactShard(int s);

  /// Re-derives the filter-family parameters for a live count of
  /// \p target_n and migrates every shard to the new edition, one shard
  /// at a time; readers stay online throughout and see each shard flip
  /// atomically. Queries spanning the migration remain correct because
  /// every snapshot carries its own edition.
  Status RebuildForSize(size_t target_n);

  /// \name Durability (write-ahead log seam; see durability/recovery.h)
  /// @{

  /// Registers (or clears, with nullptr) the mutation journal that
  /// Insert/Remove hand every applied mutation to before returning.
  /// Same barrier contract as SetMaintenanceListener: when this
  /// returns, no call into a previously registered journal is still in
  /// flight. Thread-safe (may briefly block on shard writers).
  void SetMutationJournal(MutationJournal* journal);

  /// Re-applies a logged insert during recovery: inserts \p items under
  /// the *given* id (bumping the id allocator past it) instead of
  /// allocating one, and skips ids the restored snapshot already knows
  /// (live or tombstoned) — replay after an overlapping checkpoint is
  /// idempotent. Returns true when the mutation was applied, false
  /// when it was skipped. Never journals. Not for use while concurrent
  /// Insert() traffic is allocating ids.
  Result<bool> ReplayInsert(VectorId id, std::span<const ItemId> items);

  /// Re-applies a logged remove during recovery; an id that is already
  /// gone is a skip (false), not an error. Never journals.
  Result<bool> ReplayRemove(VectorId id);

  /// @}

  /// Registers (or clears, with nullptr) the maintenance listener that
  /// Remove() notifies when a shard crosses the dead-entry threshold.
  /// Acts as a barrier: when this returns, no callback to a previously
  /// registered listener is still in flight, so the old listener may be
  /// destroyed. Thread-safe (may briefly block on shard writers).
  void SetMaintenanceListener(MaintenanceListener* listener);

  /// Health counters of shard \p s (taken from its current snapshot).
  ShardHealth Health(int s) const;

  /// Aggregate online-layout profile for the delta-aware cost model.
  OnlineIndexProfile Profile() const;

  /// The epoch-reclamation domain (exposed for the maintenance service
  /// and tests; Collect() is safe to call at any time).
  EpochManager& epochs() const { return epochs_; }

  /// @}

  /// Persists parameters, every edition, and every shard's snapshot
  /// (base table, delta postings, tombstones, inserted vectors). Reads
  /// one pinned snapshot, so writers are never blocked. Only valid
  /// after Build().
  Status Save(const std::string& path) const;

  /// Restores an index saved with Save(); the caller re-supplies the
  /// same *base* dataset and distribution (fingerprint-checked).
  /// Inserted vectors and tombstones are restored from the file.
  Status Load(const std::string& path, const Dataset* data,
              const ProductDistribution* dist);

  /// True after a successful Build()/Load().
  bool built() const override { return !shards_.empty(); }

  /// True iff \p id currently exists and is not tombstoned. Thread-safe.
  bool IsLive(VectorId id) const;

  /// Number of live vectors (base + inserted - removed). Exact for a
  /// quiesced index. Thread-safe, lock-free.
  size_t size() const;

  /// Number of tombstoned ids whose postings are still physically
  /// present (compaction drops them). Thread-safe.
  size_t num_tombstones() const;

  /// Number of shard compactions completed so far.
  size_t num_compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  /// Number of full parameter re-derive rebuilds completed so far.
  size_t num_rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

  size_t base_size() const { return base_n_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The live count the current parameter edition was derived for.
  size_t derived_n() const;

  /// Version of the current parameter edition (0 = as built).
  uint64_t edition_version() const;

  /// Repetitions / verify threshold / family of the *current* edition.
  /// During a rebuild individual shards may briefly serve the previous
  /// edition; queries handle that internally. The family reference stays
  /// valid for the index's lifetime (editions are never destroyed).
  /// Before Build()/Load() these return graceful defaults (0 / 0.0 / an
  /// empty family). Part of the shared core/index_view.h surface.
  int repetitions() const override;
  double verify_threshold() const override;
  const FilterFamily& family() const override;
  const IndexBuildStats& build_stats() const override {
    return build_stats_;
  }

  const DynamicIndexOptions& options() const { return options_; }

  /// Approximate heap usage (base tables + deltas + inserted vectors).
  /// Thread-safe.
  size_t MemoryBytes() const override;

 private:
  struct Edition;       // parameter edition (filter family + derivation)
  struct Shard;         // atomic snapshot slot + writer mutex
  struct ShardState;    // immutable published snapshot
  struct QueryScratch;  // defined in dynamic_index.cc

  /// First passing candidate of one (repetition, shard) scan; the
  /// coordinate orders base postings before delta postings of a key.
  struct RepHit {
    bool found = false;
    size_t key_idx = 0;
    uint8_t phase = 0;  ///< 0 = base table, 1 = delta
    VectorId id = 0;
    double similarity = 0.0;
  };

  std::optional<Match> QueryImpl(const std::vector<const void*>& states,
                                 std::span<const ItemId> query,
                                 QueryStats* stats,
                                 QueryScratch* scratch) const;
  std::vector<Match> QueryAllImpl(const std::vector<const void*>& states,
                                  std::span<const ItemId> query,
                                  double threshold, QueryStats* stats) const;
  RepHit ScanShardRep(const ShardState& state, std::span<const ItemId> query,
                      const std::vector<uint64_t>& keys,
                      PostingSet<VectorId>* seen,
                      QueryStats* stats) const;
  std::span<const ItemId> ItemsOf(const ShardState& state, VectorId id) const;

  /// Swaps \p next in as \p shard's snapshot and retires the old one.
  /// Caller holds the shard's writer mutex. Returns true when the limbo
  /// backlog warrants an epochs_.Collect() — which the caller must run
  /// only *after* releasing the mutex (reclamation can destroy
  /// O(shard)-sized retired tables).
  bool PublishLocked(Shard* shard,
                     std::shared_ptr<const ShardState> next) const;

  /// Copies the current owner pointer of shard \p s (takes and releases
  /// the writer mutex).
  std::shared_ptr<const ShardState> OwnerOf(int s) const;

  Status RebuildShardLocked(int s, std::shared_ptr<const Edition> edition);

  /// Items precondition shared by Insert and ReplayInsert.
  Status ValidateInsertItems(std::span<const ItemId> items) const;

  /// The locked apply of an insert under a fixed id. In replay mode an
  /// id the shard already knows is a skip (*applied = false); otherwise
  /// the insert is published and, when a journal is registered and
  /// \p journal is true, logged before the shard lock is released.
  Status ApplyInsert(VectorId id, std::span<const ItemId> items,
                     size_t* num_filters, bool journal, bool replay,
                     bool* applied);

  /// Remove with the journal hand-off optional (replay must not log).
  Status RemoveImpl(VectorId id, bool journal);

  const Dataset* data_ = nullptr;
  const ProductDistribution* dist_ = nullptr;
  DynamicIndexOptions options_;
  IndexBuildStats build_stats_;
  size_t base_n_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Parameter editions, append-only; index in the vector == version.
  /// Kept alive for the index lifetime so family() references stay
  /// valid. Guarded by editions_mutex_ for mutation; the current edition
  /// is also published through current_edition_ for lock-free reads.
  mutable std::mutex editions_mutex_;
  std::vector<std::shared_ptr<const Edition>> editions_;
  std::atomic<const Edition*> current_edition_{nullptr};

  /// Serializes CompactShard / RebuildForSize among themselves (writers
  /// and readers are not affected).
  std::mutex maintenance_mutex_;

  mutable EpochManager epochs_;
  std::atomic<MaintenanceListener*> listener_{nullptr};
  std::atomic<MutationJournal*> journal_{nullptr};
  std::atomic<VectorId> next_id_{0};
  std::atomic<size_t> compactions_{0};
  std::atomic<size_t> rebuilds_{0};
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_DYNAMIC_INDEX_H_
