// Copyright 2026 The skewsearch Authors.
// DynamicIndex: the sharded index made online — Insert() and Remove()
// after Build(), with concurrent readers.
//
// Layout per shard: the frozen base posting table (built exactly like a
// ShardedIndex shard), a delta map holding the postings of vectors
// inserted since the last rebuild, a tombstone set for removed ids, and
// the owned item lists of inserted vectors. The filter family never
// changes after Build() — filter keys are a pure function of
// (seed, repetition, vector) — so an insert only has to replay the path
// engine for the new vector and append the resulting (key, id) pairs to
// its shard's delta under that shard's writer lock.
//
// Concurrency contract: readers take one shard's shared lock only for
// the duration of scanning that shard; writers (insert / remove /
// compaction) take exactly one shard's exclusive lock. Queries therefore
// proceed in parallel with each other and with mutations of other
// shards, and a mutation completed before a query starts is always
// visible to it (no lost results); a removal completed before a query
// starts is never returned (no phantoms).
//
// Removes are tombstones: postings stay in place and readers skip dead
// ids. When more than compact_dead_fraction of a shard's posting entries
// are dead, that shard alone is rebuilt (tombstoned entries dropped,
// delta folded into a fresh frozen table).
//
// Parameters (repetitions, thresholds, depth bound) stay as derived at
// Build() time from the original n; after heavy growth, rebuild to
// re-derive them.

#ifndef SKEWSEARCH_CORE_DYNAMIC_INDEX_H_
#define SKEWSEARCH_CORE_DYNAMIC_INDEX_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/inverted_index.h"
#include "core/query_stats.h"
#include "core/sharded_index.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "sim/brute_force.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

class ThreadPool;  // util/thread_pool.h

/// \brief Configuration of the online index.
struct DynamicIndexOptions {
  /// Per-shard index configuration (seed shared across shards).
  SkewedIndexOptions index;

  /// Number of hash partitions K (>= 1).
  int num_shards = 4;

  /// A shard is rebuilt once more than this fraction of its posting
  /// entries belongs to removed vectors. Must be > 0; values >= 1
  /// effectively disable compaction.
  double compact_dead_fraction = 0.25;
};

/// \brief Sharded index with Insert/Remove and concurrent readers.
///
/// The base dataset and distribution are borrowed and must outlive the
/// index; inserted vectors are copied and owned. Query/QueryAll/
/// BatchQuery are safe to call concurrently with Insert/Remove from any
/// number of threads. Not movable (per-shard locks pin addresses).
class DynamicIndex {
 public:
  DynamicIndex();
  ~DynamicIndex();
  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;

  /// Builds the per-shard base tables over \p data. Not thread-safe
  /// against concurrent use of this object.
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const DynamicIndexOptions& options);

  /// Inserts one vector (strictly increasing item ids, all inside the
  /// distribution's universe) and returns its id. Runs the path engine
  /// outside any lock, then appends postings under the owning shard's
  /// writer lock. Thread-safe. \p num_filters (if non-null) receives the
  /// number of posting entries the vector contributed — 0 means the
  /// filter family emitted no paths for it, so no query can ever surface
  /// it until a rebuild.
  Result<VectorId> Insert(std::span<const ItemId> items,
                          size_t* num_filters = nullptr);

  /// Tombstones \p id (a base vector or a previous Insert). Returns
  /// NotFound for unknown or already-removed ids. May trigger compaction
  /// of the owning shard. Thread-safe.
  Status Remove(VectorId id);

  /// First match with similarity >= verify_threshold() in the scan order
  /// (repetition, key position, base-before-delta, id), or nullopt.
  /// Deterministic for a quiesced index. Thread-safe, wait-free with
  /// respect to other readers.
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// All distinct live matches with similarity >= \p threshold, sorted
  /// by descending similarity (ties by id). On a freshly built index
  /// this is byte-identical to the unsharded SkewedPathIndex::QueryAll.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr) const;

  /// Answers every vector of \p queries as a Query(), parallelized over
  /// the batch. Safe to run concurrently with writers; each in-flight
  /// query sees each shard atomically.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, on a caller-owned pool (null = serial).
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Persists parameters, every shard's base table, delta postings,
  /// tombstones and inserted vectors. Takes all shard locks (shared), so
  /// the snapshot is consistent. Only valid after Build().
  Status Save(const std::string& path) const;

  /// Restores an index saved with Save(); the caller re-supplies the
  /// same *base* dataset and distribution (fingerprint-checked).
  /// Inserted vectors and tombstones are restored from the file.
  Status Load(const std::string& path, const Dataset* data,
              const ProductDistribution* dist);

  /// True after a successful Build()/Load().
  bool built() const { return family_.valid(); }

  /// True iff \p id currently exists and is not tombstoned. Thread-safe.
  bool IsLive(VectorId id) const;

  /// Number of live vectors (base + inserted - removed). Takes shard
  /// locks; exact for a quiesced index. Thread-safe.
  size_t size() const;

  /// Number of tombstoned ids not yet compacted away. Thread-safe.
  size_t num_tombstones() const;

  /// Number of shard rebuilds triggered so far.
  size_t num_compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  size_t base_size() const { return base_n_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int repetitions() const { return family_.repetitions(); }
  double verify_threshold() const { return family_.verify_threshold(); }
  const FilterFamily& family() const { return family_; }
  const DynamicIndexOptions& options() const { return options_; }
  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// Approximate heap usage (base tables + deltas + inserted vectors).
  /// Takes shard locks. Thread-safe.
  size_t MemoryBytes() const;

 private:
  struct Shard;         // defined in dynamic_index.cc
  struct QueryScratch;  // defined in dynamic_index.cc

  /// First passing candidate of one (repetition, shard) scan; the
  /// coordinate orders base postings before delta postings of a key.
  struct RepHit {
    bool found = false;
    size_t key_idx = 0;
    uint8_t phase = 0;  ///< 0 = base table, 1 = delta
    VectorId id = 0;
    double similarity = 0.0;
  };

  std::optional<Match> QueryImpl(std::span<const ItemId> query,
                                 QueryStats* stats,
                                 QueryScratch* scratch) const;
  RepHit ScanShardRep(const Shard& shard, std::span<const ItemId> query,
                      const std::vector<uint64_t>& keys,
                      std::unordered_set<VectorId>* seen,
                      QueryStats* stats) const;
  std::span<const ItemId> ItemsOf(const Shard& shard, VectorId id) const;
  void CompactShardLocked(Shard* shard);

  const Dataset* data_ = nullptr;
  const ProductDistribution* dist_ = nullptr;
  DynamicIndexOptions options_;
  FilterFamily family_;
  IndexBuildStats build_stats_;
  size_t base_n_ = 0;
  /// Posting entries each base vector contributed (filled at Build,
  /// recomputed at Load; immutable afterwards, so lock-free to read).
  /// Lets Remove() charge dead entries in O(1) instead of replaying the
  /// path engine.
  std::vector<uint32_t> base_entry_counts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<VectorId> next_id_{0};
  std::atomic<size_t> compactions_{0};
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_DYNAMIC_INDEX_H_
