// Copyright 2026 The skewsearch Authors.
// Numerical solvers for the paper's exponent equations. None of these has a
// closed form for skewed distributions (Section 7: "To our knowledge there
// is no closed-form expression"); all are solved by bisection, which is
// safe because each left-hand side is strictly decreasing in rho.
//
// Equations implemented (natural logs; see DESIGN.md §3.3):
//   Theorem 1 (correlated):   sum_i p_i^(1+rho) / p_hat_i = sum_i p_i,
//                             p_hat_i = p_i (1 - alpha) + alpha
//   Theorem 2 (preprocess):   sum_i p_i^(1+rho_u)        = b1 sum_i p_i
//   Lemma 8 / §7.1 (query):   sum_{i in q} p_i^rho(q)    = b1 |q|
//       (Theorem 2's display writes the right-hand side as
//        b1 * sum_{i in q} p_i; Lemma 8 and the §7.1 worked examples use
//        b1 * |q|, which is the version consistent with the threshold
//        s(q,j,i) = 1/(b1|q| - j) — we follow Lemma 8 and flag the
//        discrepancy here and in EXPERIMENTS.md.)
//   Chosen Path (baseline):   rho_CP = log(b1) / log(b2)
//
// When an equation has no solution with rho > 0 (very easy instances, e.g.
// §7.1's b1 = 2/3 example) the solvers return 0, matching the paper's
// "rho arbitrarily close to zero".

#ifndef SKEWSEARCH_CORE_RHO_H_
#define SKEWSEARCH_CORE_RHO_H_

#include <span>
#include <vector>

#include "data/distribution.h"
#include "data/sparse_vector.h"
#include "util/result.h"

namespace skewsearch {

/// p_hat_i = Pr[x_i = 1 | q_i = 1] = p_i (1 - alpha) + alpha (Section 6).
double ConditionalProbability(double p, double alpha);

/// \brief A group of `count` dimensions sharing probability `p`.
///
/// The paper's examples use block distributions whose dimension counts
/// grow polynomially in n (e.g. n^{0.9} C ln n dimensions at n^{-0.9});
/// grouped solvers evaluate the exponent equations without materializing
/// the d-dimensional probability vector, so the asymptotic claims can be
/// checked at astronomically large n.
struct ProbabilityGroup {
  double p;      ///< item-level probability, in (0, 1)
  double count;  ///< number of dimensions with this probability (> 0)
};

/// Grouped form of CorrelatedRho:
/// sum_g count_g p_g^(1+rho) / p_hat_g = sum_g count_g p_g.
Result<double> CorrelatedRhoGrouped(std::span<const ProbabilityGroup> groups,
                                    double alpha);

/// Grouped form of PreprocessRho: sum count p^(1+rho) = b1 sum count p.
Result<double> PreprocessRhoGrouped(std::span<const ProbabilityGroup> groups,
                                    double b1);

/// Grouped form of AdversarialQueryRho, where `count` is the number of
/// *query items* with probability p: sum count p^rho = b1 sum count.
Result<double> AdversarialQueryRhoGrouped(
    std::span<const ProbabilityGroup> groups, double b1);

/// Solves Theorem 1's equation for the correlated-query exponent.
/// Requires alpha in (0, 1]; result clamped to [0, 1].
Result<double> CorrelatedRho(const ProductDistribution& dist, double alpha);

/// Solves Theorem 2's preprocessing exponent rho_u:
/// sum p^(1+rho) = b1 sum p. Requires b1 in (0, 1).
Result<double> PreprocessRho(const ProductDistribution& dist, double b1);

/// Solves the per-query adversarial exponent (Lemma 8 / §7.1):
/// sum_{i in q} p_i^rho = b1 |q| over the probabilities of q's items.
/// Requires b1 in (0, 1) and a non-empty probability list.
Result<double> AdversarialQueryRho(std::span<const double> query_probs,
                                   double b1);

/// Convenience overload: looks up the probabilities of q's items in dist.
Result<double> AdversarialQueryRho(const ProductDistribution& dist,
                                   const SparseVector& q, double b1);

/// The Chosen Path worst-case exponent log(b1)/log(b2) for
/// 0 < b2 < b1 < 1; returns 0 when b1 >= 1 and 1 when b2 >= b1.
double ChosenPathRho(double b1, double b2);

/// Expected Braun-Blanquet similarity between x ~ D and q ~ D_alpha(x),
/// approximating max(|x|,|q|) by E|x| (valid for large C, Lemma 10):
/// b1(D, alpha) = sum p_i p_hat_i / sum p_i.
double ExpectedCorrelatedSimilarity(const ProductDistribution& dist,
                                    double alpha);

/// Expected similarity between two independent draws from D:
/// b2(D) = sum p_i^2 / sum p_i.
double ExpectedUncorrelatedSimilarity(const ProductDistribution& dist);

/// The Chosen Path exponent on a correlated instance over D (used for the
/// Figure 1 baseline curve): ChosenPathRho(b1(D, alpha), b2(D)).
double ChosenPathRhoForDistribution(const ProductDistribution& dist,
                                    double alpha);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_RHO_H_
