#include "core/rho.h"

#include <cmath>
#include <functional>

#include "util/math.h"

namespace skewsearch {

namespace {

// Bisection for a strictly decreasing function f on [0, hi] with f(0) >= 0:
// returns the root of f, 0 if f(0) < 0 (no positive solution; the instance
// is "easy"), or hi if f(hi) > 0.
double BisectDecreasing(const std::function<double(double)>& f, double hi) {
  double f0 = f(0.0);
  if (f0 < 0.0) return 0.0;
  double fhi = f(hi);
  if (fhi > 0.0) return hi;
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (f(mid) >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13) break;
  }
  return 0.5 * (lo + hi);
}

Status ValidateGroups(std::span<const ProbabilityGroup> groups) {
  if (groups.empty()) {
    return Status::InvalidArgument("need at least one probability group");
  }
  for (const auto& g : groups) {
    if (!(g.p > 0.0) || !(g.p < 1.0) || !(g.count > 0.0)) {
      return Status::InvalidArgument(
          "groups need p in (0, 1) and count > 0");
    }
  }
  return Status::OK();
}

}  // namespace

double ConditionalProbability(double p, double alpha) {
  return p * (1.0 - alpha) + alpha;
}

Result<double> CorrelatedRhoGrouped(std::span<const ProbabilityGroup> groups,
                                    double alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  SKEWSEARCH_RETURN_NOT_OK(ValidateGroups(groups));
  double target = 0.0;
  for (const auto& g : groups) target += g.count * g.p;
  auto f = [&](double rho) {
    double lhs = 0.0;
    for (const auto& g : groups) {
      lhs += g.count * std::pow(g.p, 1.0 + rho) /
             ConditionalProbability(g.p, alpha);
    }
    return lhs - target;  // decreasing; f(0) = sum c*p/p_hat >= target
  };
  return Clamp(BisectDecreasing(f, 1.0), 0.0, 1.0);
}

Result<double> PreprocessRhoGrouped(std::span<const ProbabilityGroup> groups,
                                    double b1) {
  if (!(b1 > 0.0) || !(b1 < 1.0)) {
    return Status::InvalidArgument("b1 must be in (0, 1)");
  }
  SKEWSEARCH_RETURN_NOT_OK(ValidateGroups(groups));
  double target = 0.0;
  for (const auto& g : groups) target += g.count * g.p;
  target *= b1;
  auto f = [&](double rho) {
    double lhs = 0.0;
    for (const auto& g : groups) {
      lhs += g.count * std::pow(g.p, 1.0 + rho);
    }
    return lhs - target;  // f(0) = sum c*p > b1 sum c*p
  };
  return Clamp(BisectDecreasing(f, 1.0), 0.0, 1.0);
}

Result<double> AdversarialQueryRhoGrouped(
    std::span<const ProbabilityGroup> groups, double b1) {
  if (!(b1 > 0.0) || !(b1 < 1.0)) {
    return Status::InvalidArgument("b1 must be in (0, 1)");
  }
  SKEWSEARCH_RETURN_NOT_OK(ValidateGroups(groups));
  double size = 0.0;
  for (const auto& g : groups) size += g.count;
  const double target = b1 * size;
  auto f = [&](double rho) {
    double lhs = 0.0;
    for (const auto& g : groups) lhs += g.count * std::pow(g.p, rho);
    return lhs - target;  // f(0) = |q| > b1 |q|
  };
  return Clamp(BisectDecreasing(f, 1.0), 0.0, 1.0);
}

Result<double> CorrelatedRho(const ProductDistribution& dist, double alpha) {
  std::vector<ProbabilityGroup> groups;
  groups.reserve(dist.dimension());
  for (double p : dist.probabilities()) groups.push_back({p, 1.0});
  return CorrelatedRhoGrouped(groups, alpha);
}

Result<double> PreprocessRho(const ProductDistribution& dist, double b1) {
  std::vector<ProbabilityGroup> groups;
  groups.reserve(dist.dimension());
  for (double p : dist.probabilities()) groups.push_back({p, 1.0});
  return PreprocessRhoGrouped(groups, b1);
}

Result<double> AdversarialQueryRho(std::span<const double> query_probs,
                                   double b1) {
  if (query_probs.empty()) {
    return Status::InvalidArgument("query has no items");
  }
  std::vector<ProbabilityGroup> groups;
  groups.reserve(query_probs.size());
  for (double p : query_probs) groups.push_back({p, 1.0});
  return AdversarialQueryRhoGrouped(groups, b1);
}

Result<double> AdversarialQueryRho(const ProductDistribution& dist,
                                   const SparseVector& q, double b1) {
  std::vector<double> probs;
  probs.reserve(q.size());
  for (ItemId item : q.ids()) {
    if (item >= dist.dimension()) {
      return Status::InvalidArgument("query item outside the universe");
    }
    probs.push_back(dist.p(item));
  }
  return AdversarialQueryRho(probs, b1);
}

double ChosenPathRho(double b1, double b2) {
  if (b1 >= 1.0) return 0.0;
  if (b2 >= b1) return 1.0;
  if (b2 <= 0.0) return 0.0;
  return std::log(b1) / std::log(b2);
}

double ExpectedCorrelatedSimilarity(const ProductDistribution& dist,
                                    double alpha) {
  const auto& p = dist.probabilities();
  double num = 0.0;
  for (double pi : p) num += pi * ConditionalProbability(pi, alpha);
  return num / dist.SumP();
}

double ExpectedUncorrelatedSimilarity(const ProductDistribution& dist) {
  const auto& p = dist.probabilities();
  double num = 0.0;
  for (double pi : p) num += pi * pi;
  return num / dist.SumP();
}

double ChosenPathRhoForDistribution(const ProductDistribution& dist,
                                    double alpha) {
  return ChosenPathRho(ExpectedCorrelatedSimilarity(dist, alpha),
                       ExpectedUncorrelatedSimilarity(dist));
}

}  // namespace skewsearch
