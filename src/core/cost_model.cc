#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/rho.h"
#include "util/math.h"

namespace skewsearch {

namespace {

// Items grouped by probability; the DP is per group, not per dimension.
struct Group {
  double p;
  double count;
  double log_inv_p;
};

std::vector<Group> GroupItems(const ProductDistribution& dist) {
  // Geometric rounding: probabilities within 1% share a group.
  std::map<int, Group> buckets;
  for (double p : dist.probabilities()) {
    int key = static_cast<int>(std::floor(std::log(p) / std::log(1.01)));
    auto [it, inserted] = buckets.try_emplace(key, Group{p, 0.0, 0.0});
    it->second.count += 1.0;
    // Keep the representative probability as a running mean.
    it->second.p += (p - it->second.p) / it->second.count;
  }
  std::vector<Group> groups;
  groups.reserve(buckets.size());
  for (auto& [key, group] : buckets) {
    group.log_inv_p = -std::log(group.p);
    groups.push_back(group);
  }
  return groups;
}

}  // namespace

Result<CostPrediction> PredictFilterGeneration(
    const ProductDistribution& dist, const CostModelOptions& options) {
  if (options.n < 2) {
    return Status::InvalidArgument("n must be >= 2");
  }
  if (options.budget_bins < 8) {
    return Status::InvalidArgument("budget_bins must be >= 8");
  }
  if (options.mode == IndexMode::kCorrelated &&
      (options.alpha <= 0.0 || options.alpha > 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.mode == IndexMode::kAdversarial &&
      (options.b1 <= 0.0 || options.b1 >= 1.0)) {
    return Status::InvalidArgument("b1 must be in (0, 1)");
  }

  const double log_n = std::log(static_cast<double>(options.n));
  const double bin_width = log_n / static_cast<double>(options.budget_bins);
  const double m = dist.SumP();
  const std::vector<Group> groups = GroupItems(dist);

  // s(i, j) in expectation over x (sizes concentrate at m for large C).
  auto threshold = [&](const Group& g, int depth) {
    double s;
    if (options.mode == IndexMode::kCorrelated) {
      double p_hat = ConditionalProbability(g.p, options.alpha);
      double denom = p_hat * m - depth;
      s = denom <= 1.0 + options.delta ? 1.0
                                       : (1.0 + options.delta) / denom;
    } else {
      double denom = options.b1 * m - depth;
      s = denom <= 1.0 ? 1.0 : 1.0 / denom;
    }
    return Clamp(s, 0.0, 1.0);
  };

  // live[b] = expected number of live (non-filter) paths whose consumed
  // budget falls in bin b, at the current depth.
  std::vector<double> live(options.budget_bins, 0.0);
  live[0] = 1.0;  // the empty path
  CostPrediction out;
  out.filters_by_depth.assign(static_cast<size_t>(options.max_depth) + 1,
                              0.0);

  for (int depth = 0; depth < options.max_depth; ++depth) {
    double live_total = 0.0;
    for (double v : live) live_total += v;
    if (live_total < 1e-12) break;
    out.expected_nodes += live_total;

    std::vector<double> next(options.budget_bins, 0.0);
    for (const Group& g : groups) {
      // Expected children per live path through this group: an item of
      // the group is in x w.p. p, and is sampled w.p. s.
      double weight = g.count * g.p * threshold(g, depth);
      if (weight <= 0.0) continue;
      out.expected_draws += live_total * g.count * g.p;
      size_t shift = static_cast<size_t>(g.log_inv_p / bin_width);
      for (size_t b = 0; b < options.budget_bins; ++b) {
        if (live[b] <= 0.0) continue;
        double mass = live[b] * weight;
        size_t nb = b + shift;
        if (nb >= options.budget_bins) {
          // Budget exhausted: the child is a filter of length depth+1.
          out.expected_filters += mass;
          out.filters_by_depth[static_cast<size_t>(depth) + 1] += mass;
        } else {
          next[nb] += mass;
        }
      }
    }
    live.swap(next);
  }

  double depth_mass = 0.0, depth_weighted = 0.0;
  for (size_t depth = 0; depth < out.filters_by_depth.size(); ++depth) {
    depth_mass += out.filters_by_depth[depth];
    depth_weighted += out.filters_by_depth[depth] *
                      static_cast<double>(depth);
  }
  out.mean_filter_depth = depth_mass > 0.0 ? depth_weighted / depth_mass
                                           : 0.0;
  return out;
}

Result<double> PredictFiltersPerElement(const ProductDistribution& dist,
                                        const SkewedIndexOptions& options,
                                        size_t n) {
  CostModelOptions model;
  model.mode = options.mode;
  model.alpha = options.alpha;
  model.b1 = options.b1;
  model.n = n;
  if (options.delta >= 0.0) {
    model.delta = options.delta;
  } else {
    double c_constant = dist.CForN(n);
    double paper_delta =
        3.0 / std::sqrt(std::max(1e-9, options.alpha * c_constant));
    model.delta = options.strict_paper_delta ? paper_delta
                                             : std::min(paper_delta, 0.3);
  }
  auto prediction = PredictFilterGeneration(dist, model);
  if (!prediction.ok()) return prediction.status();
  return prediction->expected_filters;
}

double PredictOnlineCandidateFactor(const OnlineIndexProfile& profile) {
  const double total = static_cast<double>(profile.base_entries) +
                       static_cast<double>(profile.delta_entries);
  const double dead = static_cast<double>(profile.dead_entries);
  if (total <= 0.0 || dead <= 0.0) return 1.0;
  const double live = total - dead;
  if (live <= 0.0) return 1.0;  // degenerate: everything tombstoned
  return total / live;
}

Result<OnlineCostPrediction> PredictOnlineQueryCost(
    const ProductDistribution& dist, const SkewedIndexOptions& options,
    size_t n, const OnlineIndexProfile& profile) {
  if (profile.dead_entries > profile.base_entries + profile.delta_entries) {
    return Status::InvalidArgument(
        "dead_entries exceed total posting entries");
  }
  auto filters = PredictFiltersPerElement(dist, options, n);
  if (!filters.ok()) return filters.status();

  OnlineCostPrediction out;
  out.expected_filters = *filters;
  const double total = static_cast<double>(profile.base_entries) +
                       static_cast<double>(profile.delta_entries);
  if (total > 0.0) {
    out.dead_fraction = static_cast<double>(profile.dead_entries) / total;
    out.delta_fraction = static_cast<double>(profile.delta_entries) / total;
  }
  out.candidate_factor = PredictOnlineCandidateFactor(profile);
  return out;
}

}  // namespace skewsearch
