#include "core/skewed_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "core/batch.h"
#include "core/frozen_shard.h"
#include "core/index_io.h"
#include "core/rho.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/measures.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

Status ValidateFamilyOptions(const ProductDistribution* dist,
                             const SkewedIndexOptions& options, size_t n) {
  if (dist == nullptr) {
    return Status::InvalidArgument("dist must be non-null");
  }
  if (n < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  // Negated-conjunction form so NaN (e.g. from a corrupted index header)
  // fails the check instead of slipping past both one-sided comparisons.
  if (options.mode == IndexMode::kAdversarial &&
      !(options.b1 > 0.0 && options.b1 < 1.0)) {
    return Status::InvalidArgument("b1 must be in (0, 1)");
  }
  if (options.mode == IndexMode::kCorrelated &&
      !(options.alpha > 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  if (options.max_paths_per_element == 0) {
    return Status::InvalidArgument("max_paths_per_element must be > 0");
  }
  return Status::OK();
}

}  // namespace

Result<FilterFamily> FilterFamily::Create(const ProductDistribution* dist,
                                          const SkewedIndexOptions& options,
                                          size_t n) {
  SKEWSEARCH_RETURN_NOT_OK(ValidateFamilyOptions(dist, options, n));

  const double log_n = std::log(static_cast<double>(n));
  const double c_constant = dist->CForN(n);

  FilterFamily family;
  family.options_ = options;

  double delta = options.delta;
  if (options.mode == IndexMode::kCorrelated) {
    double paper_delta =
        3.0 / std::sqrt(std::max(1e-9, options.alpha * c_constant));
    if (delta < 0.0) {
      delta = options.strict_paper_delta ? paper_delta
                                         : std::min(paper_delta, 0.3);
    }
    if (options.alpha * c_constant < 15.0) {
      SKEWSEARCH_LOG(kInfo)
          << "alpha*C = " << options.alpha * c_constant
          << " < 15: outside the regime of Lemma 11; rely on repetitions";
    }
  } else {
    delta = 0.0;
  }
  family.delta_ = delta;

  family.verify_threshold_ = options.verify_threshold;
  if (family.verify_threshold_ < 0.0) {
    family.verify_threshold_ = options.mode == IndexMode::kAdversarial
                                   ? options.b1
                                   : options.alpha / 1.3;
  }

  int reps = options.repetitions;
  if (reps <= 0) {
    reps = static_cast<int>(
        std::ceil(options.repetition_boost * std::max(1.0, log_n)));
  }
  family.repetitions_ = reps;

  SKEWSEARCH_RETURN_NOT_OK(family.Init(dist, n));
  return family;
}

Result<FilterFamily> FilterFamily::Restore(const ProductDistribution* dist,
                                           const SkewedIndexOptions& options,
                                           size_t n, int repetitions,
                                           double delta,
                                           double verify_threshold) {
  SKEWSEARCH_RETURN_NOT_OK(ValidateFamilyOptions(dist, options, n));
  if (repetitions < 1 || repetitions > (1 << 20)) {
    return Status::InvalidArgument("repetition count out of range");
  }
  if (!std::isfinite(delta) || delta < 0.0) {
    return Status::InvalidArgument("delta must be finite and >= 0");
  }
  if (!std::isfinite(verify_threshold) || verify_threshold < 0.0 ||
      verify_threshold > 1.0) {
    return Status::InvalidArgument("verify threshold must be in [0, 1]");
  }
  FilterFamily family;
  family.options_ = options;
  family.repetitions_ = repetitions;
  family.delta_ = delta;
  family.verify_threshold_ = verify_threshold;
  SKEWSEARCH_RETURN_NOT_OK(family.Init(dist, n));
  return family;
}

Status FilterFamily::Init(const ProductDistribution* dist, size_t n) {
  dist_ = dist;
  const double log_n = std::log(static_cast<double>(n));
  if (options_.mode == IndexMode::kAdversarial) {
    policy_ = std::make_unique<AdversarialPolicy>(options_.b1);
  } else {
    policy_ =
        std::make_unique<CorrelatedPolicy>(dist_, options_.alpha, delta_);
  }
  // All p_i <= max_p < 1, so every path step adds >= ln(1/max_p) to the
  // stop sum; depth never exceeds ln n / ln(1/max_p) (+1 for the step that
  // crosses the boundary, +1 slack).
  int depth_bound = options_.max_depth;
  if (dist_->MaxP() < 1.0) {
    double per_step = -std::log(dist_->MaxP());
    if (per_step > 1e-9) {
      depth_bound = std::min(
          depth_bound, static_cast<int>(std::ceil(log_n / per_step)) + 2);
    }
  }
  hasher_ = std::make_unique<PathHasher>(options_.seed, depth_bound,
                                         options_.hash_engine);
  PathEngineOptions engine_options;
  engine_options.stop_rule = StopRule::kProbability;
  engine_options.log_n = log_n;
  engine_options.max_depth = depth_bound;
  engine_options.max_paths = options_.max_paths_per_element;
  engine_options.without_replacement = true;
  engine_ = std::make_unique<PathEngine>(dist_, policy_.get(), hasher_.get(),
                                         engine_options);
  return Status::OK();
}

void FilterFamily::ComputeFilters(std::span<const ItemId> x, uint32_t rep,
                                  std::vector<uint64_t>* keys,
                                  PathGenStats* stats) const {
  engine_->ComputeFilters(x, rep, keys, stats);
}

void FilterFamily::ComputeAllFilters(std::span<const ItemId> x,
                                     std::vector<uint64_t>* keys,
                                     std::vector<size_t>* offsets,
                                     PathGenStats* stats,
                                     size_t* capped_reps) const {
  engine_->ComputeFiltersAllReps(x, static_cast<uint32_t>(repetitions_),
                                 keys, offsets, stats, capped_reps);
}

Status SkewedPathIndex::Build(const Dataset* data,
                              const ProductDistribution* dist,
                              const SkewedIndexOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  Result<FilterFamily> family = FilterFamily::Create(dist, options,
                                                     data->size());
  if (!family.ok()) return family.status();

  Timer timer;
  data_ = data;
  dist_ = dist;
  options_ = options;
  family_ = std::move(family).value();

  const size_t n = data->size();
  const int reps = family_.repetitions();

  // Populate the inverted index -----------------------------------------
  build_stats_ = IndexBuildStats{};
  build_stats_.repetitions = reps;
  build_stats_.delta_used = family_.delta();
  table_ = FilterTable();
  frozen_.reset();

  int threads = options.build_threads;
  if (threads <= 1) {
    // The fused all-repetitions pass amortizes the per-level policy
    // thresholds across repetitions; its per-rep key groups are
    // byte-identical to per-rep ComputeFilters calls.
    std::vector<uint64_t> keys;
    std::vector<size_t> offsets;
    for (VectorId id = 0; id < n; ++id) {
      auto x = data->Get(id);
      PathGenStats gen;
      size_t capped = 0;
      family_.ComputeAllFilters(x, &keys, &offsets, &gen, &capped);
      build_stats_.nodes_expanded += gen.nodes_expanded;
      build_stats_.cap_hits += capped;
      for (uint64_t key : keys) table_.Add(key, id);
      build_stats_.total_filters += keys.size();
    }
  } else {
    // Filter keys are deterministic given (seed, rep, x) and Freeze()
    // sorts pairs by (key, id), so workers can emit into per-slot
    // buffers in any schedule; the frozen table is identical to a
    // serial build's.
    struct Shard {
      std::vector<std::pair<uint64_t, VectorId>> pairs;
      std::vector<uint64_t> keys;     // reused across this slot's vectors
      std::vector<size_t> offsets;    // likewise
      size_t nodes_expanded = 0;
      size_t cap_hits = 0;
    };
    ThreadPool pool(threads);
    std::vector<Shard> shards(static_cast<size_t>(pool.num_threads()));
    pool.ParallelFor(n, /*grain=*/64,
                     [&](size_t begin, size_t end, int slot) {
      Shard& shard = shards[static_cast<size_t>(slot)];
      for (size_t id = begin; id < end; ++id) {
        auto x = data->Get(static_cast<VectorId>(id));
        PathGenStats gen;
        size_t capped = 0;
        family_.ComputeAllFilters(x, &shard.keys, &shard.offsets, &gen,
                                  &capped);
        shard.nodes_expanded += gen.nodes_expanded;
        shard.cap_hits += capped;
        for (uint64_t key : shard.keys) {
          shard.pairs.push_back({key, static_cast<VectorId>(id)});
        }
      }
    });
    size_t total_pairs = 0;
    for (const Shard& shard : shards) total_pairs += shard.pairs.size();
    table_.Reserve(total_pairs);
    for (const Shard& shard : shards) {
      build_stats_.nodes_expanded += shard.nodes_expanded;
      build_stats_.cap_hits += shard.cap_hits;
      for (const auto& [key, id] : shard.pairs) table_.Add(key, id);
      build_stats_.total_filters += shard.pairs.size();
    }
  }
  table_.Freeze();
  build_stats_.distinct_keys = table_.num_keys();
  build_stats_.avg_filters_per_element =
      static_cast<double>(build_stats_.total_filters) /
      (static_cast<double>(n) * std::max(1, reps));
  if (build_stats_.cap_hits > 0) {
    SKEWSEARCH_LOG(kWarning)
        << "path cap hit for " << build_stats_.cap_hits
        << " (element, repetition) pairs; consider raising "
           "max_paths_per_element";
  }
  build_stats_.build_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<uint64_t> SkewedPathIndex::ComputeFilterKeys(
    std::span<const ItemId> query) const {
  std::vector<uint64_t> keys;
  if (!family_.valid()) return keys;
  // Fused pass; groups are already in repetition order, matching the
  // per-rep concatenation exactly.
  std::vector<size_t> offsets;
  family_.ComputeAllFilters(query, &keys, &offsets);
  return keys;
}

// Reusable per-thread query workspace: the filter-key and dedup buffers
// keep their heap allocations across the (possibly many) queries one
// worker slot answers, and path-generation counters accumulate here so a
// batch can report them without touching shared state.
struct SkewedPathIndex::QueryScratch {
  std::vector<uint64_t> keys;
  PostingSet<VectorId> seen;
  PathGenStats path_gen;
};

std::optional<Match> SkewedPathIndex::Query(std::span<const ItemId> query,
                                            QueryStats* stats) const {
  QueryScratch scratch;
  return QueryImpl(query, stats, &scratch);
}

std::optional<Match> SkewedPathIndex::QueryImpl(std::span<const ItemId> query,
                                                QueryStats* stats,
                                                QueryScratch* scratch) const {
  // The query path's metrics (docs/OBSERVABILITY.md, "query.*").
  // Function-local statics so the registry mutex is taken once per
  // process; per query this adds a handful of relaxed atomic adds and
  // two clock reads per repetition (the filter/verify phase split).
  static obs::Counter* const queries_metric =
      obs::MetricsRegistry::Global().GetCounter("query.count");
  static obs::Counter* const hits_metric =
      obs::MetricsRegistry::Global().GetCounter("query.hits");
  static obs::Counter* const candidates_metric =
      obs::MetricsRegistry::Global().GetCounter("query.candidates");
  static obs::Counter* const verifications_metric =
      obs::MetricsRegistry::Global().GetCounter("query.verifications");
  static obs::Histogram* const latency_metric =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_ns");
  static obs::Histogram* const repetitions_metric =
      obs::MetricsRegistry::Global().GetHistogram("query.repetitions_probed");
  static obs::Histogram* const fanout_metric =
      obs::MetricsRegistry::Global().GetHistogram("query.rep_fanout");
  static obs::Histogram* const filters_span_metric =
      obs::MetricsRegistry::Global().GetHistogram("span.query.filters");
  static obs::Histogram* const verify_span_metric =
      obs::MetricsRegistry::Global().GetHistogram("span.query.verify");

  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  uint64_t reps_probed = 0;
  int64_t filter_ns = 0;
  int64_t phase_mark = 0;
  if (family_.valid() && !query.empty()) {
    const double threshold = family_.verify_threshold();
    std::vector<uint64_t>& keys = scratch->keys;
    PostingSet<VectorId>& seen = scratch->seen;
    seen.clear();
    for (int rep = 0; rep < build_stats_.repetitions && !found; ++rep) {
      reps_probed++;
      const uint64_t rep_candidates_before = local.candidates;
      keys.clear();
      PathGenStats gen;
      family_.ComputeFilters(query, static_cast<uint32_t>(rep), &keys, &gen);
      AddPathGenStats(&scratch->path_gen, gen);
      local.filters += keys.size();
      // Everything between phase_mark and here was filter generation;
      // the rest of the repetition is lookup + verification.
      const int64_t after_filters = timer.ElapsedNanos();
      filter_ns += after_filters - phase_mark;
      for (uint64_t key : keys) {
        auto postings = table_.Lookup(key);
        local.candidates += postings.size();
        for (VectorId id : postings) {
          if (!seen.insert(id).second) continue;
          local.verifications++;
          double sim =
              Similarity(options_.verify_measure, query, data_->Get(id));
          if (sim >= threshold) {
            found = Match{id, sim};
            break;
          }
        }
        if (found) break;
      }
      phase_mark = timer.ElapsedNanos();
      fanout_metric->Record(local.candidates - rep_candidates_before);
    }
    local.distinct_candidates = seen.size();
  }
  const int64_t total_ns = timer.ElapsedNanos();
  const int64_t verify_ns = phase_mark - filter_ns;
  local.seconds = static_cast<double>(total_ns) * 1e-9;
  queries_metric->Increment();
  if (found) hits_metric->Increment();
  candidates_metric->Increment(local.candidates);
  verifications_metric->Increment(local.verifications);
  latency_metric->Record(static_cast<uint64_t>(total_ns));
  repetitions_metric->Record(reps_probed);
  filters_span_metric->Record(static_cast<uint64_t>(filter_ns));
  verify_span_metric->Record(static_cast<uint64_t>(verify_ns));
  if (obs::ScopedTrace* trace = obs::ScopedTrace::Current()) {
    trace->Add("span.query.filters", static_cast<uint64_t>(filter_ns));
    trace->Add("span.query.verify", static_cast<uint64_t>(verify_ns));
    trace->Add("query.latency_ns", static_cast<uint64_t>(total_ns));
  }
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<Match> SkewedPathIndex::QueryAll(std::span<const ItemId> query,
                                             double threshold,
                                             QueryStats* stats) const {
  SKEWSEARCH_SPAN("query.all");
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (family_.valid() && !query.empty()) {
    // QueryAll exhausts every repetition (no early exit), so the fused
    // all-repetitions pass applies; key order matches the per-rep loop.
    std::vector<uint64_t> keys;
    std::vector<size_t> offsets;
    family_.ComputeAllFilters(query, &keys, &offsets);
    local.filters += keys.size();
    PostingSet<VectorId> seen;
    for (uint64_t key : keys) {
      auto postings = table_.Lookup(key);
      local.candidates += postings.size();
      for (VectorId id : postings) {
        if (!seen.insert(id).second) continue;
        local.verifications++;
        double sim =
            Similarity(options_.verify_measure, query, data_->Get(id));
        if (sim >= threshold) out.push_back({id, sim});
      }
    }
    local.distinct_candidates = seen.size();
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<Match> SkewedPathIndex::QueryTopK(std::span<const ItemId> query,
                                              size_t k,
                                              QueryStats* stats) const {
  // Rank every surfaced candidate (threshold 0 keeps them all), truncate.
  std::vector<Match> all = QueryAll(query, 0.0, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::optional<Match>> SkewedPathIndex::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> SkewedPathIndex::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(queries.Get(static_cast<VectorId>(i)), query_stats,
                         scratch);
      },
      [](const QueryScratch& scratch, BatchQueryStats* agg) {
        AddPathGenStats(&agg->path_gen, scratch.path_gen);
      });
}

double SkewedPathIndex::EstimateCollisionRate(
    std::span<const ItemId> a, std::span<const ItemId> b) const {
  if (!family_.valid() || build_stats_.repetitions == 0) return 0.0;
  // One fused pass per vector; repetition r's keys are the
  // offsets[r]..offsets[r+1] slice of each buffer.
  std::vector<uint64_t> keys_a, keys_b;
  std::vector<size_t> offs_a, offs_b;
  family_.ComputeAllFilters(a, &keys_a, &offs_a);
  family_.ComputeAllFilters(b, &keys_b, &offs_b);
  int collisions = 0;
  PostingSet<uint64_t> set_a;
  for (int rep = 0; rep < build_stats_.repetitions; ++rep) {
    const size_t r = static_cast<size_t>(rep);
    set_a.clear();
    for (size_t i = offs_a[r]; i < offs_a[r + 1]; ++i) {
      set_a.insert(keys_a[i]);
    }
    bool hit = false;
    for (size_t i = offs_b[r]; i < offs_b[r + 1]; ++i) {
      if (set_a.contains(keys_b[i])) {
        hit = true;
        break;
      }
    }
    collisions += hit;
  }
  return static_cast<double>(collisions) /
         static_cast<double>(build_stats_.repetitions);
}

Result<double> SkewedPathIndex::PredictQueryExponent(
    std::span<const ItemId> query) const {
  if (!family_.valid()) {
    return Status::InvalidArgument("index not built");
  }
  if (options_.mode == IndexMode::kCorrelated) {
    return CorrelatedRho(*dist_, options_.alpha);
  }
  std::vector<double> probs;
  probs.reserve(query.size());
  for (ItemId item : query) {
    if (item >= dist_->dimension()) {
      return Status::InvalidArgument("query item outside the universe");
    }
    probs.push_back(dist_->p(item));
  }
  return AdversarialQueryRho(probs, options_.b1);
}

namespace {

constexpr char kIndexMagic[4] = {'S', 'K', 'I', '1'};

}  // namespace

Status SkewedPathIndex::Save(const std::string& path) const {
  namespace io = index_io_internal;
  if (!family_.valid()) {
    return Status::InvalidArgument("cannot save an unbuilt index");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kIndexMagic, sizeof(kIndexMagic));
  bool ok = io::WriteParams(out, options_, family_.verify_threshold(),
                            build_stats_) &&
            io::WritePod(out, io::Fingerprint(*data_));
  if (!ok) return Status::IOError("header write to '" + path + "' failed");
  SKEWSEARCH_RETURN_NOT_OK(table_.WriteTo(&out));
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Status SkewedPathIndex::Load(const std::string& path, const Dataset* data,
                             const ProductDistribution* dist) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a skewsearch index file");
  }
  io::ParamHeader header;
  Status params = io::ReadParams(in, &header);
  if (!params.ok()) {
    return Status::InvalidArgument(params.message() + " in '" + path + "'");
  }
  uint64_t fingerprint = 0;
  if (!io::ReadPod(in, &fingerprint)) {
    return Status::InvalidArgument("truncated index header in '" + path +
                                   "'");
  }
  if (fingerprint != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }

  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index header in '" + path +
                                   "': " + family.status().message());
  }

  FilterTable table;
  SKEWSEARCH_RETURN_NOT_OK(table.ReadFrom(&in));
  // Posting ids must reference the supplied dataset; a corrupt table that
  // passed the structural checks would otherwise crash the first query.
  for (size_t k = 0; k < table.num_keys(); ++k) {
    for (VectorId id : table.postings_at(k)) {
      if (id >= data->size()) {
        return Status::InvalidArgument(
            "filter table references vector ids beyond the dataset");
      }
    }
  }

  data_ = data;
  dist_ = dist;
  options_ = header.options;
  family_ = std::move(family).value();
  build_stats_ = header.stats;
  table_ = std::move(table);
  frozen_.reset();
  return Status::OK();
}

Status SkewedPathIndex::Freeze(const std::string& path) const {
  namespace io = index_io_internal;
  if (!family_.valid()) {
    return Status::InvalidArgument("cannot freeze an unbuilt index");
  }
  const FilterTable* shard = &table_;
  return WriteFrozenShards(path, options_, family_.verify_threshold(),
                           build_stats_, io::Fingerprint(*data_),
                           std::span<const FilterTable* const>(&shard, 1));
}

Status SkewedPathIndex::MapFrozen(const std::string& path,
                                  const Dataset* data,
                                  const ProductDistribution* dist) {
  return MapFrozen(path, data, dist, FrozenMapOptions{});
}

Status SkewedPathIndex::MapFrozen(const std::string& path,
                                  const Dataset* data,
                                  const ProductDistribution* dist,
                                  const FrozenMapOptions& options) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  Result<std::shared_ptr<const FrozenShardFile>> mapped =
      FrozenShardFile::Map(path, options);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const FrozenShardFile> file = std::move(mapped).value();
  if (file->num_shards() != 1) {
    return Status::InvalidArgument(
        "'" + path + "' holds " + std::to_string(file->num_shards()) +
        " shards; expected an unsharded frozen index");
  }
  if (file->fingerprint() != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  // The checksummed metadata bounds every posting id, so rejecting ids
  // beyond the dataset needs no O(index) scan (unlike Load).
  const FrozenShardFile::ShardInfo& info = file->shard_info(0);
  if (info.ids_count > 0 && info.max_id >= data->size()) {
    return Status::InvalidArgument(
        "filter table references vector ids beyond the dataset");
  }

  const index_io_internal::ParamHeader& header = file->params();
  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index header in '" + path +
                                   "': " + family.status().message());
  }
  Result<FilterTable> view = file->MakeShardView(0);
  if (!view.ok()) return view.status();

  data_ = data;
  dist_ = dist;
  options_ = header.options;
  family_ = std::move(family).value();
  build_stats_ = header.stats;
  table_ = std::move(view).value();
  frozen_ = std::move(file);
  return Status::OK();
}

}  // namespace skewsearch
