// Copyright 2026 The skewsearch Authors.
// SkewedPathIndex — the paper's primary contribution.
//
// A recursive, data-dependent locality-sensitive-filtering index over
// sparse boolean vectors drawn from a known product distribution
// D[p_1..p_d]. Two modes:
//
//   kAdversarial (Theorem 2): guarantees for *any* query q that has a
//     dataset vector with Braun-Blanquet similarity >= b1; query cost
//     adapts to the query's own frequency profile (exponent rho(q)).
//
//   kCorrelated (Theorem 1): tuned for queries that are alpha-correlated
//     with some dataset vector (Definition 3); thresholds are weighted by
//     the conditional probabilities p_hat_i = p_i(1-alpha) + alpha.
//
// One build performs L independent repetitions (fresh hash functions per
// repetition) to boost the per-repetition success probability of
// Lemma 5 (>= 1/ln n) to a constant; queries probe all repetitions.

#ifndef SKEWSEARCH_CORE_SKEWED_INDEX_H_
#define SKEWSEARCH_CORE_SKEWED_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/index_view.h"
#include "core/inverted_index.h"
#include "core/path_engine.h"
#include "core/path_policy.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "hashing/path_hasher.h"
#include "sim/brute_force.h"
#include "sim/measures.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

class ThreadPool;       // util/thread_pool.h
class FrozenShardFile;  // core/frozen_shard.h
struct FrozenMapOptions;

/// Which of the paper's two analyses the index instantiates.
enum class IndexMode {
  kAdversarial,  ///< Section 5: s(x,j,i) = 1/(b1|x| - j)
  kCorrelated,   ///< Section 6: s(x,j,i) = (1+delta)/(p_hat_i C ln n - j)
};

/// \brief Build- and query-time configuration.
struct SkewedIndexOptions {
  IndexMode mode = IndexMode::kCorrelated;

  /// Braun-Blanquet similarity threshold (kAdversarial).
  double b1 = 0.5;

  /// Target correlation (kCorrelated).
  double alpha = 0.5;

  /// Number of independent repetitions; 0 derives
  /// ceil(repetition_boost * ln n) (Lemma 5 gives 1/ln n per repetition).
  int repetitions = 0;
  double repetition_boost = 2.0;

  /// Master seed; the whole structure is deterministic given it.
  uint64_t seed = 0x5eed5eed5eedULL;

  /// Sampling boost delta for kCorrelated. Negative derives the default:
  /// the paper's 3/sqrt(alpha C) when strict_paper_delta, otherwise
  /// min(3/sqrt(alpha C), 0.3) — the paper itself notes "a smaller
  /// constant is likely sufficient in practice" and the strict value
  /// inflates |F(x)| by n^{ln(1+delta)} for moderate C.
  double delta = -1.0;
  bool strict_paper_delta = false;

  /// Similarity a candidate must reach to be returned. Negative derives
  /// b1 (kAdversarial) or alpha/1.3 (kCorrelated, Lemma 10).
  double verify_threshold = -1.0;

  /// Safety valve passed to the path engine (per element per repetition).
  size_t max_paths_per_element = size_t{1} << 20;

  /// Hard cap on path length.
  int max_depth = 64;

  /// Level-hash engine (mixer by default; pairwise for the paper's exact
  /// independence assumption).
  HashEngine hash_engine = HashEngine::kMixer;

  /// Measure used to verify candidates. The paper's guarantees are stated
  /// for Braun-Blanquet (the default); the candidate-generation machinery
  /// is measure-agnostic, so other measures can be verified too ("results
  /// extend to other similarity measures", §1).
  Measure verify_measure = Measure::kBraunBlanquet;

  /// Build parallelism: number of worker threads; 0 = single-threaded.
  /// Filter keys are deterministic functions of the seed, so the built
  /// index is identical regardless of thread count.
  int build_threads = 0;
};

/// \brief Counters from Build().
struct IndexBuildStats {
  size_t total_filters = 0;        ///< sum over elements and repetitions
  size_t distinct_keys = 0;        ///< distinct filter keys in the table
  double avg_filters_per_element = 0.0;  ///< per repetition
  size_t cap_hits = 0;             ///< elements truncated by the safety valve
  size_t nodes_expanded = 0;
  int repetitions = 0;
  double delta_used = 0.0;         ///< kCorrelated only
  double build_seconds = 0.0;
};

/// \brief The L-repetition path-filter family shared by every index
/// flavor (single, sharded, dynamic).
///
/// Bundles parameter derivation (repetitions, delta, verify threshold,
/// depth bound) with the per-repetition filter computation F_r(x), i.e.
/// everything about the paper's structure that does *not* depend on which
/// vectors are stored. Because filter keys are a deterministic function of
/// (seed, repetition, x) alone, a family built once can generate postings
/// incrementally — for a shard's subset of the data, or for a vector
/// inserted long after the build — and they are guaranteed to match what a
/// monolithic build would have produced.
///
/// Immutable and thread-safe after creation. The distribution is borrowed
/// and must outlive the family.
class FilterFamily {
 public:
  FilterFamily() = default;
  FilterFamily(FilterFamily&&) = default;
  FilterFamily& operator=(FilterFamily&&) = default;

  /// Validates \p options and derives every parameter for a dataset of
  /// \p n vectors drawn from \p dist.
  static Result<FilterFamily> Create(const ProductDistribution* dist,
                                     const SkewedIndexOptions& options,
                                     size_t n);

  /// Rebuilds a family from persisted parameters (the Load path):
  /// validation and engine construction as in Create, but repetitions /
  /// delta / verify threshold are taken as stored instead of re-derived.
  static Result<FilterFamily> Restore(const ProductDistribution* dist,
                                      const SkewedIndexOptions& options,
                                      size_t n, int repetitions, double delta,
                                      double verify_threshold);

  /// Appends the filter keys F_r(\p x) of repetition \p rep to \p keys.
  /// \p stats may be null. Safe to call concurrently.
  void ComputeFilters(std::span<const ItemId> x, uint32_t rep,
                      std::vector<uint64_t>* keys,
                      PathGenStats* stats = nullptr) const;

  /// Computes F_r(\p x) for ALL repetitions in one fused pass (the
  /// fast-similarity-sketching idea: per-level thresholds are shared
  /// across repetitions, so one walk replaces repetitions() independent
  /// ones). \p keys holds repetition 0's keys, then repetition 1's, ...;
  /// \p offsets gets repetitions() + 1 group boundaries. Each group is
  /// byte-identical to the corresponding ComputeFilters(x, rep) output.
  /// \p stats sums counters over repetitions; \p capped_reps (may be
  /// null) counts truncated repetitions. Safe to call concurrently.
  void ComputeAllFilters(std::span<const ItemId> x,
                         std::vector<uint64_t>* keys,
                         std::vector<size_t>* offsets,
                         PathGenStats* stats = nullptr,
                         size_t* capped_reps = nullptr) const;

  /// True once Create()/Restore() succeeded.
  bool valid() const { return engine_ != nullptr; }

  int repetitions() const { return repetitions_; }
  double delta() const { return delta_; }
  double verify_threshold() const { return verify_threshold_; }
  const SkewedIndexOptions& options() const { return options_; }

 private:
  Status Init(const ProductDistribution* dist, size_t n);

  SkewedIndexOptions options_;
  int repetitions_ = 0;
  double delta_ = 0.0;
  double verify_threshold_ = 0.0;
  const ProductDistribution* dist_ = nullptr;
  std::unique_ptr<ThresholdPolicy> policy_;
  std::unique_ptr<PathHasher> hasher_;
  std::unique_ptr<PathEngine> engine_;
};

/// \brief The skew-adaptive chosen-path index.
///
/// Usage:
/// \code
///   SkewedPathIndex index;
///   SkewedIndexOptions opt;
///   opt.mode = IndexMode::kCorrelated;
///   opt.alpha = 0.7;
///   SKEWSEARCH_RETURN_NOT_OK(index.Build(&data, &dist, opt));
///   if (auto hit = index.Query(q.span())) { ... }
/// \endcode
///
/// The dataset and distribution are borrowed and must outlive the index.
/// Queries are const and safe to issue from multiple threads.
class SkewedPathIndex : public IndexView {
 public:
  SkewedPathIndex() = default;

  /// Builds the inverted filter index over \p data.
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const SkewedIndexOptions& options);

  /// Returns some vector with similarity >= verify_threshold(), scanning
  /// candidates in filter order and stopping at the first hit (the paper's
  /// query semantics), or nullopt.
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// Returns all distinct candidates with similarity >= \p threshold,
  /// sorted by descending similarity (ties by id). Exhausts all filters.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr) const;

  /// Returns the k most similar *candidates* (approximate top-k: ranking
  /// is exact among the vectors the filters surface, which under the
  /// paper's guarantees include every sufficiently similar vector w.h.p.).
  std::vector<Match> QueryTopK(std::span<const ItemId> query, size_t k,
                               QueryStats* stats = nullptr) const;

  /// Answers every vector of \p queries as a Query(), using \p threads
  /// workers from a transient pool (<= 1 = serial). Results align
  /// positionally with queries; \p stats (if non-null) is resized
  /// likewise and \p batch_stats (if non-null) receives batch-level
  /// aggregates including the summed PathGenStats. Queries are
  /// independent and the index is immutable, so results are identical
  /// to the serial ones for every thread count.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, but shards onto caller-owned \p pool (null = serial), so one
  /// pool can be reused across many batches. Worker slots reuse their
  /// filter/candidate buffers across the queries they answer.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Lemma 5 diagnostic: the fraction of repetitions in which F(a) and
  /// F(b) share at least one filter. For a b1-similar (or alpha-
  /// correlated) pair this is the per-repetition success probability the
  /// repetition count is provisioned against (>= 1/ln n per Lemma 5).
  double EstimateCollisionRate(std::span<const ItemId> a,
                               std::span<const ItemId> b) const;

  /// Analytic per-query cost exponent (Lemma 8): solves
  /// sum_{i in q} p_i^rho = b1 |q| for this index's b1. Only meaningful in
  /// kAdversarial mode; kCorrelated returns the global Theorem 1 rho.
  Result<double> PredictQueryExponent(std::span<const ItemId> query) const;

  /// The filter keys F(q) the index would probe for \p query
  /// (diagnostics / tests).
  std::vector<uint64_t> ComputeFilterKeys(std::span<const ItemId> query) const;

  // Shared read-only surface (documented on core/index_view.h).
  bool built() const override { return family_.valid(); }
  const IndexBuildStats& build_stats() const override { return build_stats_; }
  const FilterFamily& family() const override { return family_; }
  double verify_threshold() const override {
    return family_.verify_threshold();
  }
  int repetitions() const override { return build_stats_.repetitions; }
  size_t MemoryBytes() const override { return table_.MemoryBytes(); }

  const SkewedIndexOptions& options() const { return options_; }

  /// The frozen posting lists (diagnostics/tests).
  const FilterTable& filter_table() const { return table_; }

  /// Persists the built index (configuration + inverted filter table +
  /// a fingerprint of the dataset) so it can be reloaded without paying
  /// the build again. Only valid after Build().
  Status Save(const std::string& path) const;

  /// Restores an index saved with Save(). The caller re-supplies the
  /// *same* dataset and distribution (both are borrowed, not serialized);
  /// a fingerprint check rejects mismatched data. Queries on the loaded
  /// index behave identically to the original (the hash functions are
  /// reconstructed deterministically from the stored seed).
  Status Load(const std::string& path, const Dataset* data,
              const ProductDistribution* dist);

  /// Persists the built index as a single-shard SKF1 frozen file
  /// (core/frozen_shard.h) — the layout MapFrozen() serves zero-copy.
  /// Only valid after Build()/Load().
  Status Freeze(const std::string& path) const;

  /// Restores an index from a file written by Freeze(), serving the
  /// posting table zero-copy out of the mapped bytes: start time is
  /// O(1) in the index size (metadata validation only) and queries are
  /// byte-identical to a heap Load() of the same index. The caller
  /// re-supplies the same dataset and distribution (fingerprint-checked,
  /// as in Load).
  Status MapFrozen(const std::string& path, const Dataset* data,
                   const ProductDistribution* dist);
  Status MapFrozen(const std::string& path, const Dataset* data,
                   const ProductDistribution* dist,
                   const FrozenMapOptions& options);

  /// The mapped frozen file backing this index, or null when heap-built
  /// (diagnostics: `mapped()`, `file_bytes()`).
  const FrozenShardFile* frozen_file() const { return frozen_.get(); }

 private:
  /// Per-thread reusable query workspace (defined in skewed_index.cc).
  struct QueryScratch;

  /// Query() against caller-provided scratch buffers; accumulates the
  /// engine's PathGenStats into the scratch.
  std::optional<Match> QueryImpl(std::span<const ItemId> query,
                                 QueryStats* stats,
                                 QueryScratch* scratch) const;

  const Dataset* data_ = nullptr;
  const ProductDistribution* dist_ = nullptr;
  SkewedIndexOptions options_;
  FilterFamily family_;
  FilterTable table_;  // a zero-copy view into frozen_ when mapped
  IndexBuildStats build_stats_;
  std::shared_ptr<const FrozenShardFile> frozen_;  // keeps views alive
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_SKEWED_INDEX_H_
