#include "core/index_io.h"

#include <algorithm>

#include "hashing/mix.h"
#include "sim/measures.h"

namespace skewsearch {
namespace index_io_internal {

int64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || !in || end < pos) return -1;
  return static_cast<int64_t>(end - pos);
}

uint64_t Fingerprint(const Dataset& data) {
  uint64_t h = Mix64(data.size() * 0x9e3779b97f4a7c15ULL ^
                     data.TotalItems());
  h = MixPair(h, Mix64(data.dimension()));
  const size_t samples = std::min<size_t>(64, data.size());
  for (size_t k = 0; k < samples; ++k) {
    VectorId id = static_cast<VectorId>(k * data.size() / samples);
    auto items = data.Get(id);
    uint64_t vh = Mix64(items.size() + 1);
    for (ItemId item : items) vh = MixPair(vh, Mix64(item));
    h = MixPair(h, vh);
  }
  return h;
}

bool WriteParams(std::ostream& out, const SkewedIndexOptions& options,
                 double verify_threshold, const IndexBuildStats& stats) {
  uint8_t mode = options.mode == IndexMode::kAdversarial ? 0 : 1;
  uint8_t engine = options.hash_engine == HashEngine::kMixer ? 0 : 1;
  uint8_t measure = static_cast<uint8_t>(options.verify_measure);
  return WritePod(out, mode) && WritePod(out, engine) &&
         WritePod(out, measure) && WritePod(out, options.b1) &&
         WritePod(out, options.alpha) && WritePod(out, options.seed) &&
         WritePod(out, options.max_depth) &&
         WritePod(out, options.max_paths_per_element) &&
         WritePod(out, verify_threshold) &&
         WritePod(out, stats.repetitions) && WritePod(out, stats.delta_used) &&
         WritePod(out, stats.total_filters) &&
         WritePod(out, stats.distinct_keys) &&
         WritePod(out, stats.avg_filters_per_element) &&
         WritePod(out, stats.cap_hits) && WritePod(out, stats.nodes_expanded);
}

Status ReadParams(std::istream& in, ParamHeader* header) {
  uint8_t mode = 0, engine = 0, measure = 0;
  SkewedIndexOptions& options = header->options;
  IndexBuildStats& stats = header->stats;
  bool ok = ReadPod(in, &mode) && ReadPod(in, &engine) &&
            ReadPod(in, &measure) && ReadPod(in, &options.b1) &&
            ReadPod(in, &options.alpha) && ReadPod(in, &options.seed) &&
            ReadPod(in, &options.max_depth) &&
            ReadPod(in, &options.max_paths_per_element) &&
            ReadPod(in, &header->verify_threshold) &&
            ReadPod(in, &stats.repetitions) && ReadPod(in, &stats.delta_used) &&
            ReadPod(in, &stats.total_filters) &&
            ReadPod(in, &stats.distinct_keys) &&
            ReadPod(in, &stats.avg_filters_per_element) &&
            ReadPod(in, &stats.cap_hits) && ReadPod(in, &stats.nodes_expanded);
  if (!ok) return Status::InvalidArgument("truncated index header");
  // Field-level sanity before anything derived is touched: a corrupted
  // header must yield a clean error, never a crash or a runaway
  // allocation downstream.
  if (mode > 1 || engine > 1 ||
      measure > static_cast<uint8_t>(Measure::kCosine)) {
    return Status::InvalidArgument("corrupt index header: bad enum field");
  }
  options.mode = mode == 0 ? IndexMode::kAdversarial : IndexMode::kCorrelated;
  options.hash_engine =
      engine == 0 ? HashEngine::kMixer : HashEngine::kPairwise;
  options.verify_measure = static_cast<Measure>(measure);
  options.repetitions = stats.repetitions;
  return Status::OK();
}

}  // namespace index_io_internal
}  // namespace skewsearch
