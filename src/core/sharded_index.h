// Copyright 2026 The skewsearch Authors.
// ShardedIndex: the paper's index, hash-partitioned across K shards.
//
// The L-repetition filter family is a deterministic function of
// (seed, repetition, vector) alone — it never looks at which vectors are
// stored. A sharded build therefore runs the *same* family as a
// monolithic build and only splits the posting lists: shard s holds the
// (filter key, id) pairs of the vectors with ShardOf(id) == s. A query
// computes its filter keys once per repetition, fans the table lookups
// out over the shards (optionally on a ThreadPool), and merges by the
// scan coordinate (repetition, key position, id) — which makes the
// result *byte-identical* to an unsharded SkewedPathIndex for every
// shard count and thread count. Per-query work counters differ (shards
// other than the winning one scan to the end of the repetition), but
// results never do.
//
// This is the skew-aware analogue of LSF-Join's partitioning insight:
// the repetition structure is naturally shard-friendly because each
// repetition is a standalone filter family.

#ifndef SKEWSEARCH_CORE_SHARDED_INDEX_H_
#define SKEWSEARCH_CORE_SHARDED_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/index_view.h"
#include "core/inverted_index.h"
#include "core/query_stats.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "sim/brute_force.h"
#include "util/status.h"

namespace skewsearch {

class ThreadPool;  // util/thread_pool.h

/// \brief Configuration of a sharded build.
struct ShardedIndexOptions {
  /// Per-shard index configuration; the seed is shared by all shards (it
  /// must be, for the family to match a monolithic build).
  SkewedIndexOptions index;

  /// Number of hash partitions K (>= 1).
  int num_shards = 4;
};

/// \brief The paper's index, split into K hash partitions.
///
/// The dataset and distribution are borrowed and must outlive the index.
/// Queries are const and safe to issue from multiple threads.
class ShardedIndex : public IndexView {
 public:
  ShardedIndex() = default;

  /// Stable hash partition of vector ids (same for every build with the
  /// same K, so Save/Load and incremental layers agree on placement).
  static int ShardOf(VectorId id, int num_shards);

  /// Builds the K per-shard posting tables over \p data.
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const ShardedIndexOptions& options);

  /// Returns the same match an unsharded SkewedPathIndex::Query would,
  /// scanning shards serially on the calling thread.
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// Same result, but each repetition's shard scans fan out over \p pool
  /// (null = serial). Must not be called from a worker of \p pool.
  std::optional<Match> Query(std::span<const ItemId> query, ThreadPool* pool,
                             QueryStats* stats = nullptr) const;

  /// All distinct matches with similarity >= \p threshold, sorted by
  /// descending similarity (ties by id) — identical to the unsharded
  /// QueryAll. Shard scans fan out over \p pool when given.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr,
                              ThreadPool* pool = nullptr) const;

  /// Answers every vector of \p queries as a Query(), parallelized over
  /// the batch (each query scans its shards serially, so worker counts
  /// never change results). <= 1 thread runs serially.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, on a caller-owned pool (null = serial).
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Persists the sharded index (parameters + K posting tables + dataset
  /// fingerprint). Only valid after Build().
  Status Save(const std::string& path) const;

  /// Restores an index saved with Save(); the caller re-supplies the same
  /// dataset and distribution (fingerprint-checked).
  Status Load(const std::string& path, const Dataset* data,
              const ProductDistribution* dist);

  /// Persists the built index as a K-shard SKF1 frozen file
  /// (core/frozen_shard.h). Only valid after Build()/Load().
  Status Freeze(const std::string& path) const;

  /// Restores an index from a file written by Freeze(), serving every
  /// shard table zero-copy out of the mapped bytes: start time is O(1)
  /// in the index size and queries are byte-identical to a heap Load().
  /// The shard count comes from the file. When the map options request
  /// payload verification, shard placement is re-validated like Load
  /// does (O(index)); the default trusts the checksummed metadata.
  Status MapFrozen(const std::string& path, const Dataset* data,
                   const ProductDistribution* dist);
  Status MapFrozen(const std::string& path, const Dataset* data,
                   const ProductDistribution* dist,
                   const FrozenMapOptions& options);

  /// The mapped frozen file backing this index, or null when heap-built.
  const FrozenShardFile* frozen_file() const { return frozen_.get(); }

  /// The filter keys the index probes for \p query (diagnostics/tests).
  std::vector<uint64_t> ComputeFilterKeys(std::span<const ItemId> query) const;

  // Shared read-only surface (documented on core/index_view.h). Note:
  // build_stats().distinct_keys counts distinct (shard, key) pairs — a
  // key shared by two shards counts twice.
  bool built() const override { return family_.valid(); }
  int repetitions() const override { return family_.repetitions(); }
  double verify_threshold() const override {
    return family_.verify_threshold();
  }
  const FilterFamily& family() const override { return family_; }
  const IndexBuildStats& build_stats() const override {
    return build_stats_;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedIndexOptions& options() const { return options_; }

  /// Posting entries stored in shard \p s (balance diagnostics).
  size_t shard_entries(int s) const {
    return shards_[static_cast<size_t>(s)].num_pairs();
  }

  /// The frozen posting table of shard \p s (used by the dynamic layer
  /// and tests).
  const FilterTable& shard_table(int s) const {
    return shards_[static_cast<size_t>(s)];
  }

  /// Approximate heap usage of all shard tables.
  size_t MemoryBytes() const override;

 private:
  struct QueryScratch;  // defined in sharded_index.cc

  /// First passing candidate of one (repetition, shard) scan, tagged
  /// with its scan coordinate for the cross-shard merge.
  struct RepHit {
    bool found = false;
    size_t key_idx = 0;
    VectorId id = 0;
    double similarity = 0.0;
  };

  RepHit ScanShardRep(const FilterTable& table, std::span<const ItemId> query,
                      const std::vector<uint64_t>& keys,
                      PostingSet<VectorId>* seen, QueryStats* stats) const;

  std::optional<Match> QueryImpl(std::span<const ItemId> query,
                                 ThreadPool* pool, QueryStats* stats,
                                 QueryScratch* scratch) const;

  const Dataset* data_ = nullptr;
  const ProductDistribution* dist_ = nullptr;
  ShardedIndexOptions options_;
  FilterFamily family_;
  std::vector<FilterTable> shards_;  // zero-copy views when mapped
  IndexBuildStats build_stats_;
  std::shared_ptr<const FrozenShardFile> frozen_;  // keeps views alive
};

namespace sharded_internal {

/// Runs \p family over every vector of \p data and freezes one posting
/// table per shard (pairs routed by ShardedIndex::ShardOf). Shared by the
/// static ShardedIndex and the dynamic layer so both partitions are
/// guaranteed to agree. Accumulates into \p stats (repetitions/delta are
/// left untouched). \p entry_counts (optional) receives each vector's
/// posting-entry count — the dynamic layer uses it to make Remove() O(1)
/// instead of replaying path generation.
Status BuildShardTables(const Dataset& data, const FilterFamily& family,
                        int num_shards, int build_threads,
                        IndexBuildStats* stats,
                        std::vector<FilterTable>* shards,
                        std::vector<uint32_t>* entry_counts = nullptr);

}  // namespace sharded_internal

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_SHARDED_INDEX_H_
