// Copyright 2026 The skewsearch Authors.
// Internal shared pieces of the persisted-index formats — the single
// ("SKI1"), sharded ("SKS1") and dynamic ("SKD1") files all embed the
// same parameter block and dataset fingerprint, so the encoding and the
// corruption checks live here exactly once. Not part of the public API.

#ifndef SKEWSEARCH_CORE_INDEX_IO_H_
#define SKEWSEARCH_CORE_INDEX_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "core/skewed_index.h"
#include "data/dataset.h"
#include "util/status.h"

namespace skewsearch {
namespace index_io_internal {

template <typename T>
bool WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool WriteVector(std::ostream& out, const std::vector<T>& values) {
  uint64_t count = values.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(out);
}

/// Bytes from the current position to the end of the stream, or -1 when
/// the stream is unseekable/invalid. Used to bound allocations while
/// reading untrusted files: a corrupt length field can never demand more
/// payload than the file actually holds.
int64_t RemainingBytes(std::istream& in);

template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* values) {
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return false;
  const int64_t remaining = RemainingBytes(in);
  if (remaining < 0 ||
      count > static_cast<uint64_t>(remaining) / sizeof(T)) {
    return false;
  }
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

/// Cheap content fingerprint: shape plus a sampled item hash. Rejects
/// re-supplying a different dataset on Load without a full scan.
uint64_t Fingerprint(const Dataset& data);

/// \brief The parameter block every index format embeds after its magic.
struct ParamHeader {
  SkewedIndexOptions options;      ///< mode/hash_engine/verify_measure set
  double verify_threshold = 0.0;
  IndexBuildStats stats;           ///< repetitions, delta_used, counters
};

/// Writes the parameter block (16 fields, fixed order and width).
bool WriteParams(std::ostream& out, const SkewedIndexOptions& options,
                 double verify_threshold, const IndexBuildStats& stats);

/// Reads the parameter block and performs field-level sanity checks (enum
/// ranges); deeper validation happens in FilterFamily::Restore.
Status ReadParams(std::istream& in, ParamHeader* header);

}  // namespace index_io_internal
}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_INDEX_IO_H_
