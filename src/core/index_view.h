// Copyright 2026 The skewsearch Authors.
// IndexView: the shared read-only surface of every index flavour.
//
// SkewedPathIndex (monolithic), ShardedIndex (hash-partitioned) and
// DynamicIndex (online) expose the same read-only accessors — the
// parameters a consumer needs to interpret results without caring which
// flavour produced them. Before this interface existed each class
// declared (and documented) the surface independently and every
// consumer (cli/, similarity_join, the benches) dispatched with ternary
// chains per accessor. IndexView is that surface, declared once; the
// indexes implement it and consumers hold a `const IndexView&`.
//
// The view is intentionally *read-only and query-free*: Build/Query
// signatures legitimately differ per flavour (thread pools, editions,
// maintenance hooks), so they stay on the concrete classes. Accessors
// are virtual — they are called per run or per batch, never per posting
// entry, so the indirection is free.

#ifndef SKEWSEARCH_CORE_INDEX_VIEW_H_
#define SKEWSEARCH_CORE_INDEX_VIEW_H_

#include <cstddef>

namespace skewsearch {

class FilterFamily;      // core/skewed_index.h
struct IndexBuildStats;  // core/skewed_index.h

/// \brief Read-only parameter surface shared by all index flavours.
///
/// For a DynamicIndex the values describe the *current* edition and may
/// change across rebuilds; for the static flavours they are fixed after
/// Build()/Load(). Before a successful Build()/Load() the accessors
/// return graceful defaults (false / 0 / 0.0 / an empty family).
class IndexView {
 public:
  virtual ~IndexView() = default;

  /// True after a successful Build()/Load().
  virtual bool built() const = 0;

  /// Number of filter repetitions actually used.
  virtual int repetitions() const = 0;

  /// The similarity a returned match is guaranteed to have.
  virtual double verify_threshold() const = 0;

  /// The filter family driving the index. The reference stays valid for
  /// the index's lifetime (a DynamicIndex never destroys editions).
  virtual const FilterFamily& family() const = 0;

  /// Aggregate build counters of the last Build().
  virtual const IndexBuildStats& build_stats() const = 0;

  /// Approximate heap usage of the posting structures. Thread-safe.
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_INDEX_VIEW_H_
