// Copyright 2026 The skewsearch Authors.
// Sampling-threshold policies s(x, j, i) for the chosen-path recursion.
//
// The paper's data structure "comes with a (deterministic) function s which
// maps each vector x, path-length j and bit i to a threshold s(x,j,i)"
// (Section 3). The threshold is where all the distribution-dependence
// lives; the recursion machinery (core/path_engine.h) is shared by the
// paper's two policies and by the classic Chosen Path baseline.

#ifndef SKEWSEARCH_CORE_PATH_POLICY_H_
#define SKEWSEARCH_CORE_PATH_POLICY_H_

#include <cstddef>

#include "data/distribution.h"
#include "data/sparse_vector.h"

namespace skewsearch {

/// \brief Interface: the sampling threshold s(x, j, i).
///
/// \p vec_size is |x| (the only property of x the analyzed policies use),
/// \p depth is j (number of items already on the path), \p item is i.
class ThresholdPolicy {
 public:
  virtual ~ThresholdPolicy() = default;

  /// Returns s(x, j, i), clamped by callers to [0, 1].
  virtual double Threshold(size_t vec_size, int depth, ItemId item) const = 0;
};

/// \brief Section 5: s(x, j, i) = 1 / (b1 |x| - j).
///
/// Distribution-independent threshold; skew adaptation comes entirely from
/// the probability stop rule. Guarantees Lemma 5's condition whenever
/// B(x, q) >= b1.
class AdversarialPolicy : public ThresholdPolicy {
 public:
  explicit AdversarialPolicy(double b1) : b1_(b1) {}

  double Threshold(size_t vec_size, int depth, ItemId item) const override;

  double b1() const { return b1_; }

 private:
  double b1_;
};

/// \brief Section 6: s(x, j, i) = (1 + delta) / (p_hat_i C ln n - j),
/// p_hat_i = p_i (1 - alpha) + alpha, C ln n = sum_i p_i.
///
/// Rare items (small p_i => p_hat_i ~ alpha) are sampled aggressively;
/// frequent items are sampled at roughly their information content. The
/// paper sets delta = 3 / sqrt(alpha C) to make Lemma 11's concentration
/// argument go through, noting "a smaller constant is likely sufficient in
/// practice" — callers choose delta (see SkewedIndexOptions).
class CorrelatedPolicy : public ThresholdPolicy {
 public:
  /// \param dist  the data distribution (not owned; must outlive this).
  /// \param alpha target correlation.
  /// \param delta sampling boost (>= 0).
  CorrelatedPolicy(const ProductDistribution* dist, double alpha,
                   double delta);

  double Threshold(size_t vec_size, int depth, ItemId item) const override;

  double alpha() const { return alpha_; }
  double delta() const { return delta_; }

 private:
  const ProductDistribution* dist_;
  double alpha_;
  double delta_;
  double m_;  // sum_i p_i = C ln n
};

/// \brief The classic Chosen Path threshold (Christiani & Pagh, STOC'17):
/// s(x, j, i) = 1 / (b1 |x|), independent of j, i and of the distribution.
///
/// Used by the baseline index (fixed-depth stop rule, sampling with
/// replacement) that the paper compares against.
class ClassicChosenPathPolicy : public ThresholdPolicy {
 public:
  explicit ClassicChosenPathPolicy(double b1) : b1_(b1) {}

  double Threshold(size_t vec_size, int depth, ItemId item) const override;

  double b1() const { return b1_; }

 private:
  double b1_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_PATH_POLICY_H_
