// Copyright 2026 The skewsearch Authors.
// FrozenShardFile: the "SKF1" page-aligned on-disk layout for frozen
// posting tables, designed to be mmap'd PROT_READ and served zero-copy.
//
// The heap formats (SKI1/SKS1/SKD2) stream length-prefixed vectors and
// materialize them on Load — O(index) start time and a full RAM copy.
// SKF1 instead lays each shard's frozen CSR arrays (keys, offsets, ids)
// out offset-based, 64-byte aligned, behind a fixed-size header and a
// shard section table, so Map() only validates O(num_shards) metadata
// and then adopts spans straight into the mapped bytes: warm start is
// O(1) in the index size, residency is the OS page cache's problem, and
// query results are byte-identical to a heap Load by construction (both
// back the same offset-based lookup). docs/FILE_FORMATS.md specifies
// the layout normatively; tests/core_frozen_shard_fuzz_test.cc holds
// Map() to clean rejection of every corrupted byte it can reach.
//
// Integrity model: the header, parameter block and shard section table
// are covered by an always-verified metadata checksum, so Map() never
// trusts an unchecksummed offset or count. The posting payload itself
// is covered by per-shard checksums verified only when
// FrozenMapOptions::verify_payload is set — the O(index) scan is opt-in
// precisely so the default map stays O(1).

#ifndef SKEWSEARCH_CORE_FROZEN_SHARD_H_
#define SKEWSEARCH_CORE_FROZEN_SHARD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/index_io.h"
#include "core/inverted_index.h"
#include "util/mapped_file.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

/// \brief How FrozenShardFile::Map opens and validates a file.
struct FrozenMapOptions {
  /// Skip mmap and read the file onto the heap (same validation, same
  /// views — just materialized). For environments that cannot map.
  bool force_heap = false;

  /// Refuse the heap fallback: fail unless the bytes are truly mmap'd.
  bool require_map = false;

  /// Also verify the per-shard payload checksums and the structural
  /// invariants of every posting array (sorted keys, monotone offsets,
  /// ids bounded by the recorded max). O(index) — deliberately not the
  /// default, which validates metadata only and stays O(1).
  bool verify_payload = false;
};

/// \brief A mapped (or heap-read) SKF1 file serving zero-copy shard views.
///
/// Immutable and thread-safe after Map(). Shard views returned by
/// MakeShardView alias the file's bytes; callers keep the file alive for
/// as long as any view exists (the index-level MapFrozen wrappers hold a
/// shared_ptr for exactly this reason).
class FrozenShardFile {
 public:
  /// One shard's section metadata, as recorded in the file (covered by
  /// the metadata checksum). Offsets are absolute file offsets; counts
  /// are element counts.
  struct ShardInfo {
    uint64_t keys_offset = 0;
    uint64_t keys_count = 0;
    uint64_t offsets_offset = 0;
    uint64_t offsets_count = 0;  ///< always keys_count + 1
    uint64_t ids_offset = 0;
    uint64_t ids_count = 0;
    uint64_t max_id = 0;  ///< largest posting id (0 when ids_count == 0)
    uint64_t payload_checksum = 0;
  };

  /// Maps \p path and validates its metadata (magic, sizes, alignment,
  /// section bounds, checksum; plus payload when asked). Returns a
  /// shared handle because shard views borrow the mapped bytes.
  static Result<std::shared_ptr<const FrozenShardFile>> Map(
      const std::string& path, const FrozenMapOptions& options = {});

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardInfo& shard_info(int s) const {
    return shards_[static_cast<size_t>(s)];
  }

  /// The parameter block the file was frozen with (same fields the heap
  /// formats embed).
  const index_io_internal::ParamHeader& params() const { return params_; }

  /// Fingerprint of the dataset the index was built over; callers check
  /// it against the dataset they re-supply.
  uint64_t fingerprint() const { return fingerprint_; }

  /// True when the bytes are an mmap'd view (false on the heap fallback).
  bool mapped() const { return file_.mapped(); }

  /// Total file size in bytes.
  size_t file_bytes() const { return file_.size(); }

  /// A zero-copy FilterTable view over shard \p s. The view (and any
  /// copy of it) aliases this file's bytes.
  Result<FilterTable> MakeShardView(int s) const;

  /// Applies an access-pattern hint to the whole mapping (advisory).
  Status Advise(MappedFile::Advice advice) const {
    return file_.Advise(advice);
  }

 private:
  FrozenShardFile() = default;

  MappedFile file_;
  index_io_internal::ParamHeader params_;
  uint64_t fingerprint_ = 0;
  std::vector<ShardInfo> shards_;
};

/// Writes the frozen tables \p shards to \p path in SKF1 form. Shard s
/// of the file is written from shards[s]; every table must be frozen.
/// The parameter fields mirror what the heap formats persist, so a
/// mapped file restores the identical FilterFamily.
Status WriteFrozenShards(const std::string& path,
                         const SkewedIndexOptions& options,
                         double verify_threshold,
                         const IndexBuildStats& stats, uint64_t fingerprint,
                         std::span<const FilterTable* const> shards);

namespace frozen_internal {

/// The 64-bit FNV-1a the SKF1 checksums use (normative; see
/// docs/FILE_FORMATS.md).
class Checksum64 {
 public:
  void Update(const void* bytes, size_t size);
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

constexpr size_t kHeaderSize = 64;
constexpr size_t kShardEntrySize = 64;
constexpr size_t kSectionAlign = 64;

}  // namespace frozen_internal

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_FROZEN_SHARD_H_
