// Copyright 2026 The skewsearch Authors.
// Vectorized set-intersection kernels for candidate verification.
//
// |x n q| over sorted duplicate-free id lists is the inner loop of every
// query and join (sim/measures.h reduces each similarity measure to it).
// This header hosts the branch-lean SIMD kernels — SSE2 (baseline on
// x86-64) and AVX2 (runtime-detected) block compares with scalar
// galloping for heavily asymmetric inputs — behind one dispatch function.
// Every kernel returns a byte-identical count to the scalar reference in
// sim/intersect.h; tests assert this over randomized size / overlap /
// alignment regimes, and sim/intersect.h's IntersectSize routes through
// the dispatcher so all existing call sites inherit the speedup.

#ifndef SKEWSEARCH_CORE_INTERSECT_H_
#define SKEWSEARCH_CORE_INTERSECT_H_

#include <cstddef>
#include <span>

#include "data/sparse_vector.h"

namespace skewsearch {

/// The intersection kernel implementations available at runtime.
enum class IntersectKernel {
  kScalar,  ///< merge / galloping reference (sim/intersect.h)
  kSse2,    ///< 4-wide block compares; baseline on every x86-64 CPU
  kAvx2,    ///< 8-wide block compares; requires AVX2 (runtime-detected)
};

/// Human-readable kernel name ("scalar", "sse2", "avx2").
const char* IntersectKernelName(IntersectKernel kernel);

/// The best kernel supported by the running CPU (what the dispatch uses
/// unless overridden).
IntersectKernel DetectIntersectKernel();

/// The kernel the dispatch currently routes to.
IntersectKernel ActiveIntersectKernel();

/// Overrides the dispatch (kernel comparisons in tests and benches).
/// Requesting an unsupported kernel clamps to the best supported one and
/// returns the kernel actually installed. Not thread-safe: call before
/// spawning query threads.
IntersectKernel SetIntersectKernel(IntersectKernel kernel);

/// Intersection count via the active kernel. Inputs must be sorted and
/// duplicate-free (the SparseVector invariant). Byte-identical to
/// IntersectSizeMerge / IntersectSizeGalloping for every input.
size_t IntersectSizeKernel(std::span<const ItemId> a,
                           std::span<const ItemId> b);

/// \name Forced-kernel entry points (differential tests / benches).
/// Sse2/Avx2 fall back to the scalar path on hardware without the
/// instruction set — guard with DetectIntersectKernel() when measuring.
/// @{
size_t IntersectSizeScalar(std::span<const ItemId> a,
                           std::span<const ItemId> b);
size_t IntersectSizeSse2(std::span<const ItemId> a, std::span<const ItemId> b);
size_t IntersectSizeAvx2(std::span<const ItemId> a, std::span<const ItemId> b);
/// @}

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_INTERSECT_H_
