#include "core/frozen_shard.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

namespace skewsearch {

namespace frozen_internal {

void Checksum64::Update(const void* bytes, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(bytes);
  uint64_t h = h_;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  h_ = h;
}

}  // namespace frozen_internal

namespace {

using frozen_internal::Checksum64;
using frozen_internal::kHeaderSize;
using frozen_internal::kSectionAlign;
using frozen_internal::kShardEntrySize;

constexpr char kFrozenMagic[4] = {'S', 'K', 'F', '1'};
constexpr uint32_t kMaxFileShards = 1u << 12;  // matches kMaxShards (SKS1)

/// The fixed 64-byte SKF1 header (normative layout; docs/FILE_FORMATS.md).
/// The meta checksum covers bytes [0, 56) of this struct plus the param
/// block plus the shard entry table.
struct FileHeader {
  char magic[4];
  uint32_t reserved0;
  uint64_t file_size;
  uint64_t fingerprint;
  uint32_t num_shards;
  uint32_t section_count;  // always 3 * num_shards
  uint64_t param_offset;   // always kHeaderSize
  uint64_t param_size;
  uint64_t table_offset;   // kSectionAlign-aligned
  uint64_t meta_checksum;
};
static_assert(sizeof(FileHeader) == kHeaderSize);
static_assert(sizeof(FrozenShardFile::ShardInfo) == kShardEntrySize);
static_assert(std::is_trivially_copyable_v<FrozenShardFile::ShardInfo>);

constexpr size_t kChecksummedHeaderBytes =
    kHeaderSize - sizeof(uint64_t);  // everything before meta_checksum

uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

/// True iff [offset, offset + count*elem) lies within a file of
/// \p file_size bytes and starts kSectionAlign-aligned. Overflow-safe:
/// every comparison is against quantities already bounded by file_size.
bool SectionInBounds(uint64_t offset, uint64_t count, uint64_t elem,
                     uint64_t file_size) {
  if (offset % kSectionAlign != 0) return false;
  if (offset > file_size) return false;
  return count <= (file_size - offset) / elem;
}

bool WritePadding(std::ostream& out, uint64_t from, uint64_t to) {
  static const char kZeros[kSectionAlign] = {};
  while (from < to) {
    uint64_t n = std::min<uint64_t>(to - from, sizeof(kZeros));
    out.write(kZeros, static_cast<std::streamsize>(n));
    from += n;
  }
  return static_cast<bool>(out);
}

bool WriteSection(std::ostream& out, const void* bytes, uint64_t size,
                  uint64_t offset) {
  out.write(static_cast<const char*>(bytes),
            static_cast<std::streamsize>(size));
  return WritePadding(out, offset + size, AlignUp(offset + size,
                                                  kSectionAlign));
}

uint64_t PayloadChecksum(const FilterTable& table) {
  Checksum64 sum;
  sum.Update(table.keys_span().data(),
             table.keys_span().size() * sizeof(uint64_t));
  sum.Update(table.offsets_span().data(),
             table.offsets_span().size() * sizeof(uint32_t));
  sum.Update(table.ids_span().data(),
             table.ids_span().size() * sizeof(VectorId));
  return sum.digest();
}

}  // namespace

Status WriteFrozenShards(const std::string& path,
                         const SkewedIndexOptions& options,
                         double verify_threshold,
                         const IndexBuildStats& stats, uint64_t fingerprint,
                         std::span<const FilterTable* const> shards) {
  namespace io = index_io_internal;
  if (shards.empty() || shards.size() > kMaxFileShards) {
    return Status::InvalidArgument("frozen file needs 1..4096 shards");
  }
  for (const FilterTable* shard : shards) {
    if (shard == nullptr || !shard->frozen()) {
      return Status::InvalidArgument(
          "cannot freeze an unbuilt posting table");
    }
  }

  std::ostringstream param_stream(std::ios::binary);
  if (!io::WriteParams(param_stream, options, verify_threshold, stats)) {
    return Status::IOError("parameter block serialization failed");
  }
  const std::string params = param_stream.str();

  // Lay out the file: header | params | shard entry table | sections,
  // every section kSectionAlign-aligned.
  FileHeader header = {};
  std::memcpy(header.magic, kFrozenMagic, sizeof(kFrozenMagic));
  header.fingerprint = fingerprint;
  header.num_shards = static_cast<uint32_t>(shards.size());
  header.section_count = 3 * header.num_shards;
  header.param_offset = kHeaderSize;
  header.param_size = params.size();
  header.table_offset = AlignUp(kHeaderSize + params.size(), kSectionAlign);

  std::vector<FrozenShardFile::ShardInfo> entries(shards.size());
  uint64_t cursor =
      header.table_offset + uint64_t{kShardEntrySize} * shards.size();
  for (size_t s = 0; s < shards.size(); ++s) {
    const FilterTable& table = *shards[s];
    FrozenShardFile::ShardInfo& e = entries[s];
    e.keys_count = table.keys_span().size();
    e.offsets_count = table.offsets_span().size();
    e.ids_count = table.ids_span().size();
    e.keys_offset = cursor;
    cursor = AlignUp(cursor + e.keys_count * sizeof(uint64_t),
                     kSectionAlign);
    e.offsets_offset = cursor;
    cursor = AlignUp(cursor + e.offsets_count * sizeof(uint32_t),
                     kSectionAlign);
    e.ids_offset = cursor;
    cursor = AlignUp(cursor + e.ids_count * sizeof(VectorId),
                     kSectionAlign);
    for (VectorId id : table.ids_span()) {
      e.max_id = std::max<uint64_t>(e.max_id, id);
    }
    e.payload_checksum = PayloadChecksum(table);
  }
  header.file_size = cursor;

  Checksum64 meta;
  meta.Update(&header, kChecksummedHeaderBytes);
  meta.Update(params.data(), params.size());
  meta.Update(entries.data(), entries.size() * kShardEntrySize);
  header.meta_checksum = meta.digest();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(params.data(), static_cast<std::streamsize>(params.size()));
  if (!WritePadding(out, kHeaderSize + params.size(),
                    header.table_offset)) {
    return Status::IOError("header write to '" + path + "' failed");
  }
  out.write(reinterpret_cast<const char*>(entries.data()),
            static_cast<std::streamsize>(entries.size() * kShardEntrySize));
  for (size_t s = 0; s < shards.size(); ++s) {
    const FilterTable& table = *shards[s];
    const FrozenShardFile::ShardInfo& e = entries[s];
    bool ok =
        WriteSection(out, table.keys_span().data(),
                     e.keys_count * sizeof(uint64_t), e.keys_offset) &&
        WriteSection(out, table.offsets_span().data(),
                     e.offsets_count * sizeof(uint32_t), e.offsets_offset) &&
        WriteSection(out, table.ids_span().data(),
                     e.ids_count * sizeof(VectorId), e.ids_offset);
    if (!ok) {
      return Status::IOError("section write to '" + path + "' failed");
    }
  }
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<std::shared_ptr<const FrozenShardFile>> FrozenShardFile::Map(
    const std::string& path, const FrozenMapOptions& options) {
  namespace io = index_io_internal;
  MappedFile::Options open_options;
  open_options.force_heap = options.force_heap;
  open_options.require_map = options.require_map;
  open_options.advice = MappedFile::Advice::kRandom;
  Result<MappedFile> opened = MappedFile::Open(path, open_options);
  if (!opened.ok()) return opened.status();

  auto file = std::shared_ptr<FrozenShardFile>(new FrozenShardFile());
  file->file_ = std::move(opened).value();
  const uint8_t* base = file->file_.data();
  const uint64_t size = file->file_.size();

  if (size < kHeaderSize) {
    return Status::InvalidArgument("'" + path +
                                   "' is too small for a frozen shard file");
  }
  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kFrozenMagic, sizeof(kFrozenMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a frozen shard file");
  }
  if (header.reserved0 != 0) {
    return Status::InvalidArgument("unsupported frozen shard flags in '" +
                                   path + "'");
  }
  // The recorded size must match the bytes actually present: a truncated
  // (or appended-to) file fails here before any offset is trusted.
  if (header.file_size != size) {
    return Status::InvalidArgument("frozen shard file '" + path +
                                   "' size mismatch (truncated?)");
  }
  if (header.num_shards < 1 || header.num_shards > kMaxFileShards ||
      header.section_count != 3 * header.num_shards) {
    return Status::InvalidArgument("corrupt shard count in '" + path + "'");
  }
  if (header.param_offset != kHeaderSize ||
      header.param_size > size - kHeaderSize ||
      header.table_offset % kSectionAlign != 0 ||
      header.table_offset < kHeaderSize + header.param_size ||
      header.table_offset > size ||
      uint64_t{kShardEntrySize} * header.num_shards >
          size - header.table_offset) {
    return Status::InvalidArgument("corrupt section table in '" + path +
                                   "'");
  }

  std::vector<ShardInfo> entries(header.num_shards);
  std::memcpy(entries.data(), base + header.table_offset,
              entries.size() * kShardEntrySize);

  Checksum64 meta;
  meta.Update(base, kChecksummedHeaderBytes);
  meta.Update(base + header.param_offset, header.param_size);
  meta.Update(entries.data(), entries.size() * kShardEntrySize);
  if (meta.digest() != header.meta_checksum) {
    return Status::InvalidArgument("frozen shard metadata checksum "
                                   "mismatch in '" +
                                   path + "'");
  }

  // Parse the parameter block; it must be consumed exactly.
  std::istringstream param_stream(
      std::string(reinterpret_cast<const char*>(base + header.param_offset),
                  header.param_size),
      std::ios::binary);
  Status params = io::ReadParams(param_stream, &file->params_);
  if (!params.ok()) {
    return Status::InvalidArgument(params.message() + " in '" + path + "'");
  }
  if (static_cast<uint64_t>(param_stream.tellg()) != header.param_size) {
    return Status::InvalidArgument("parameter block size mismatch in '" +
                                   path + "'");
  }
  file->fingerprint_ = header.fingerprint;

  for (uint32_t s = 0; s < header.num_shards; ++s) {
    const ShardInfo& e = entries[s];
    if (e.offsets_count != e.keys_count + 1 ||
        e.ids_count > std::numeric_limits<uint32_t>::max() ||
        (e.ids_count == 0 && e.max_id != 0) ||
        e.max_id > std::numeric_limits<VectorId>::max()) {
      return Status::InvalidArgument("corrupt shard entry in '" + path +
                                     "'");
    }
    if (!SectionInBounds(e.keys_offset, e.keys_count, sizeof(uint64_t),
                         size) ||
        !SectionInBounds(e.offsets_offset, e.offsets_count,
                         sizeof(uint32_t), size) ||
        !SectionInBounds(e.ids_offset, e.ids_count, sizeof(VectorId),
                         size)) {
      return Status::InvalidArgument("shard section out of bounds in '" +
                                     path + "'");
    }
    // O(1) bracket check on the offsets array (its interior is covered
    // by the payload checksum).
    uint32_t first = 0, last = 0;
    std::memcpy(&first, base + e.offsets_offset, sizeof(first));
    std::memcpy(&last,
                base + e.offsets_offset +
                    (e.offsets_count - 1) * sizeof(uint32_t),
                sizeof(last));
    if (first != 0 || last != e.ids_count) {
      return Status::InvalidArgument(
          "shard offsets do not bracket the ids in '" + path + "'");
    }
  }
  file->shards_ = std::move(entries);

  if (options.verify_payload) {
    for (int s = 0; s < file->num_shards(); ++s) {
      const ShardInfo& e = file->shards_[static_cast<size_t>(s)];
      Checksum64 sum;
      sum.Update(base + e.keys_offset, e.keys_count * sizeof(uint64_t));
      sum.Update(base + e.offsets_offset,
                 e.offsets_count * sizeof(uint32_t));
      sum.Update(base + e.ids_offset, e.ids_count * sizeof(VectorId));
      if (sum.digest() != e.payload_checksum) {
        return Status::InvalidArgument("shard " + std::to_string(s) +
                                       " payload checksum mismatch in '" +
                                       path + "'");
      }
      const uint64_t* keys =
          reinterpret_cast<const uint64_t*>(base + e.keys_offset);
      const uint32_t* offsets =
          reinterpret_cast<const uint32_t*>(base + e.offsets_offset);
      const VectorId* ids =
          reinterpret_cast<const VectorId*>(base + e.ids_offset);
      for (uint64_t k = 1; k < e.keys_count; ++k) {
        if (keys[k - 1] >= keys[k]) {
          return Status::InvalidArgument("shard keys not sorted in '" +
                                         path + "'");
        }
      }
      for (uint64_t k = 1; k < e.offsets_count; ++k) {
        if (offsets[k] < offsets[k - 1]) {
          return Status::InvalidArgument(
              "shard offsets not monotone in '" + path + "'");
        }
      }
      for (uint64_t i = 0; i < e.ids_count; ++i) {
        if (ids[i] > e.max_id) {
          return Status::InvalidArgument(
              "shard posting id exceeds recorded max in '" + path + "'");
        }
      }
    }
  }

  return std::shared_ptr<const FrozenShardFile>(std::move(file));
}

Result<FilterTable> FrozenShardFile::MakeShardView(int s) const {
  if (s < 0 || s >= num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  const ShardInfo& e = shards_[static_cast<size_t>(s)];
  const uint8_t* base = file_.data();
  FilterTable table;
  Status adopted = table.AdoptFrozenView(
      {reinterpret_cast<const uint64_t*>(base + e.keys_offset),
       static_cast<size_t>(e.keys_count)},
      {reinterpret_cast<const uint32_t*>(base + e.offsets_offset),
       static_cast<size_t>(e.offsets_count)},
      {reinterpret_cast<const VectorId*>(base + e.ids_offset),
       static_cast<size_t>(e.ids_count)});
  if (!adopted.ok()) return adopted;
  return table;
}

}  // namespace skewsearch
