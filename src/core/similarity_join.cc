#include "core/similarity_join.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "core/sharded_index.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/tcp_transport.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

/// Splits "host:port" (the last ':' separates the port, so numeric
/// hosts with dots are fine) and connects over TCP.
Result<std::unique_ptr<FrameConnection>> ConnectEndpoint(
    const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("remote worker endpoint '" + endpoint +
                                   "' is not host:port");
  }
  const std::string host = endpoint.substr(0, colon);
  const std::string port_text = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port == 0 ||
      port > 65535) {
    return Status::InvalidArgument("remote worker endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  return TcpConnect(host, static_cast<uint16_t>(port));
}

/// The distributed pair-emission backend: plan a skew-aware key
/// partition, fan the probes out over in-process workers, merge. Output
/// is identical to the single-process backend (asserted in tests), so
/// the choice is purely an execution-strategy knob.
Result<std::vector<JoinPair>> DistributedBackend(const Dataset& left,
                                                 const Dataset& right,
                                                 const ProductDistribution&
                                                     dist,
                                                 const JoinOptions& options,
                                                 bool self_join,
                                                 JoinStats* stats) {
  if (options.online) {
    return Status::InvalidArgument(
        "workers > 1 is incompatible with the online build side");
  }
  const bool frozen = !options.frozen_shards.empty();
  int workers = options.workers;
  if (!options.remote_workers.empty()) {
    const int endpoints = static_cast<int>(options.remote_workers.size());
    if (workers > 0 && workers != endpoints) {
      return Status::InvalidArgument(
          "workers (" + std::to_string(workers) + ") does not match the " +
          std::to_string(endpoints) + " remote worker endpoint(s)");
    }
    workers = endpoints;
  }
  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = workers;
  distributed.heavy_threshold = options.heavy_threshold;
  distributed.threads = options.probe_threads;
  distributed.probe_batch = options.probe_batch;
  distributed.pipeline = options.pipeline;
  DistributedJoin join;
  if (frozen) {
    // The worker count is the file's shard count; endpoints (if any)
    // must match it, which BuildFromFrozen + AttachRemoteFrozen check.
    SKEWSEARCH_RETURN_NOT_OK(join.BuildFromFrozen(
        &right, &dist, options.frozen_shards, distributed));
  } else {
    SKEWSEARCH_RETURN_NOT_OK(join.Build(&right, &dist, distributed));
  }
  if (!options.remote_workers.empty()) {
    std::vector<std::unique_ptr<FrameConnection>> connections;
    connections.reserve(options.remote_workers.size());
    for (const std::string& endpoint : options.remote_workers) {
      Result<std::unique_ptr<FrameConnection>> connection =
          ConnectEndpoint(endpoint);
      SKEWSEARCH_RETURN_NOT_OK(connection.status());
      connections.push_back(std::move(connection).value());
    }
    SKEWSEARCH_RETURN_NOT_OK(
        frozen ? join.AttachRemoteFrozen(std::move(connections))
               : join.AttachRemote(std::move(connections)));
  }
  DistributedJoinStats distributed_stats;
  Result<std::vector<JoinPair>> pairs =
      self_join ? join.SelfJoin(&distributed_stats)
                : join.Join(left, &distributed_stats);
  SKEWSEARCH_RETURN_NOT_OK(pairs.status());
  if (stats != nullptr) {
    JoinStats local;
    local.pairs = distributed_stats.pairs;
    local.candidates = distributed_stats.candidates;
    local.verifications = distributed_stats.verifications;
    local.build_seconds =
        distributed_stats.build_seconds + distributed_stats.plan_seconds;
    local.probe_seconds = distributed_stats.probe_seconds;
    local.duplication_factor = distributed_stats.duplication_factor;
    local.probe_fanout = distributed_stats.probe_fanout;
    local.wire_bytes_sent = distributed_stats.wire_bytes_sent;
    local.wire_bytes_received = distributed_stats.wire_bytes_received;
    local.probe_round_trips = distributed_stats.probe_round_trips;
    local.probe_batches_sent = distributed_stats.probe_batches_sent;
    local.worker_recoveries = distributed_stats.worker_recoveries;
    local.replayed_batches = distributed_stats.replayed_batches;
    *stats = local;
  }
  return pairs;
}

Result<std::vector<JoinPair>> JoinImpl(const Dataset& left,
                                       const Dataset& right,
                                       const ProductDistribution& dist,
                                       const JoinOptions& options,
                                       bool self_join, JoinStats* stats) {
  if (options.workers > 1 || !options.remote_workers.empty() ||
      !options.frozen_shards.empty()) {
    return DistributedBackend(left, right, dist, options, self_join, stats);
  }
  JoinStats local;
  Timer build_timer;
  // Every build side answers QueryAll identically; the sharded one
  // splits the posting lists across num_shards partitions, the online
  // one additionally runs the maintenance subsystem while probing.
  SkewedPathIndex index;
  ShardedIndex sharded;
  DynamicIndex dynamic;
  MaintenanceService service;
  const bool use_online = options.online;
  const bool use_shards = !use_online && options.num_shards > 1;
  if (use_online) {
    DynamicIndexOptions dynamic_options;
    dynamic_options.index = options.index;
    dynamic_options.num_shards = std::max(1, options.num_shards);
    SKEWSEARCH_RETURN_NOT_OK(dynamic.Build(&right, &dist, dynamic_options));
    SKEWSEARCH_RETURN_NOT_OK(service.Attach(&dynamic, options.maintenance));
    if (options.maintenance_thread) {
      SKEWSEARCH_RETURN_NOT_OK(service.Start());
    }
    // Net no-op churn: insert a copy of a build-side vector, tombstone
    // it right away. Every copy is dead before the first probe, so the
    // join output is unchanged, but the deltas + tombstones accumulate
    // into real compaction work for the maintenance service while the
    // probe phase runs. Without the background thread, drain inline at
    // intervals so the flagged shards are still serviced.
    if (options.churn > 0) {
      const size_t stride = std::max<size_t>(1, options.churn / 4);
      for (size_t i = 0, inserted = 0; inserted < options.churn; ++i) {
        if (i >= options.churn * 2) break;  // all build vectors empty
        auto source = right.Get(static_cast<VectorId>(i % right.size()));
        if (source.empty()) continue;
        Result<VectorId> id = dynamic.Insert(source);
        SKEWSEARCH_RETURN_NOT_OK(id.status());
        SKEWSEARCH_RETURN_NOT_OK(dynamic.Remove(id.value()));
        ++inserted;
        if (!options.maintenance_thread && inserted % stride == 0) {
          SKEWSEARCH_RETURN_NOT_OK(service.RunOnce());
        }
      }
    }
  } else if (use_shards) {
    ShardedIndexOptions sharded_options;
    sharded_options.index = options.index;
    sharded_options.num_shards = options.num_shards;
    SKEWSEARCH_RETURN_NOT_OK(sharded.Build(&right, &dist, sharded_options));
  } else {
    SKEWSEARCH_RETURN_NOT_OK(index.Build(&right, &dist, options.index));
  }
  local.build_seconds = build_timer.ElapsedSeconds();

  // The flavours share their read-only parameter surface (IndexView);
  // only the QueryAll dispatch still needs to know the concrete type.
  const IndexView& view = use_online ? static_cast<const IndexView&>(dynamic)
                          : use_shards ? static_cast<const IndexView&>(sharded)
                                       : static_cast<const IndexView&>(index);
  auto query_all = [&](std::span<const ItemId> query, double thresh,
                       QueryStats* query_stats) {
    if (use_online) return dynamic.QueryAll(query, thresh, query_stats);
    return use_shards ? sharded.QueryAll(query, thresh, query_stats)
                      : index.QueryAll(query, thresh, query_stats);
  };
  double threshold = options.threshold >= 0.0 ? options.threshold
                                              : view.verify_threshold();

  Timer probe_timer;
  std::vector<JoinPair> out;
  auto probe_range = [&](VectorId begin, VectorId end,
                         std::vector<JoinPair>* sink, size_t* candidates,
                         size_t* verifications) {
    for (VectorId lid = begin; lid < end; ++lid) {
      QueryStats qs;
      auto matches = query_all(left.Get(lid), threshold, &qs);
      *candidates += qs.candidates;
      *verifications += qs.verifications;
      for (const Match& m : matches) {
        if (self_join && m.id <= lid) continue;  // each pair emitted once
        sink->push_back({lid, m.id, m.similarity});
      }
    }
  };
  if (options.probe_threads <= 1) {
    probe_range(0, static_cast<VectorId>(left.size()), &out,
                &local.candidates, &local.verifications);
  } else {
    const int threads = options.probe_threads;
    struct Shard {
      std::vector<JoinPair> pairs;
      size_t candidates = 0;
      size_t verifications = 0;
    };
    std::vector<Shard> shards(static_cast<size_t>(threads));
    std::vector<std::thread> workers;
    const size_t chunk = (left.size() + static_cast<size_t>(threads) - 1) /
                         static_cast<size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      size_t begin = static_cast<size_t>(t) * chunk;
      size_t end = std::min(left.size(), begin + chunk);
      if (begin >= end) break;
      Shard* shard = &shards[static_cast<size_t>(t)];
      workers.emplace_back([&, begin, end, shard] {
        probe_range(static_cast<VectorId>(begin),
                    static_cast<VectorId>(end), &shard->pairs,
                    &shard->candidates, &shard->verifications);
      });
    }
    for (auto& worker : workers) worker.join();
    for (Shard& shard : shards) {
      local.candidates += shard.candidates;
      local.verifications += shard.verifications;
      out.insert(out.end(), shard.pairs.begin(), shard.pairs.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  local.pairs = out.size();
  local.probe_seconds = probe_timer.ElapsedSeconds();
  if (use_online) {
    service.Detach();  // joins the thread before the index goes away
    local.compactions = dynamic.num_compactions();
    local.rebuilds = dynamic.num_rebuilds();
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

Result<std::vector<JoinPair>> SimilarityJoin(const Dataset& left,
                                             const Dataset& right,
                                             const ProductDistribution& dist,
                                             const JoinOptions& options,
                                             JoinStats* stats) {
  return JoinImpl(left, right, dist, options, /*self_join=*/false, stats);
}

Result<std::vector<JoinPair>> SelfSimilarityJoin(
    const Dataset& data, const ProductDistribution& dist,
    const JoinOptions& options, JoinStats* stats) {
  return JoinImpl(data, data, dist, options, /*self_join=*/true, stats);
}

}  // namespace skewsearch
