#include "core/sharded_index.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "core/batch.h"
#include "core/frozen_shard.h"
#include "core/index_io.h"
#include "hashing/mix.h"
#include "sim/measures.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

constexpr char kShardedMagic[4] = {'S', 'K', 'S', '1'};
constexpr int kMaxShards = 1 << 12;

}  // namespace

int ShardedIndex::ShardOf(VectorId id, int num_shards) {
  return static_cast<int>(Mix64(id) % static_cast<uint64_t>(num_shards));
}

Status ShardedIndex::Build(const Dataset* data,
                           const ProductDistribution* dist,
                           const ShardedIndexOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, 4096]");
  }
  Result<FilterFamily> family =
      FilterFamily::Create(dist, options.index, data->size());
  if (!family.ok()) return family.status();

  Timer timer;
  data_ = data;
  dist_ = dist;
  options_ = options;
  family_ = std::move(family).value();

  build_stats_ = IndexBuildStats{};
  build_stats_.repetitions = family_.repetitions();
  build_stats_.delta_used = family_.delta();
  frozen_.reset();
  SKEWSEARCH_RETURN_NOT_OK(sharded_internal::BuildShardTables(
      *data, family_, options.num_shards, options.index.build_threads,
      &build_stats_, &shards_));
  build_stats_.build_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

namespace sharded_internal {

Status BuildShardTables(const Dataset& data, const FilterFamily& family,
                        int num_shards, int build_threads,
                        IndexBuildStats* stats,
                        std::vector<FilterTable>* shards,
                        std::vector<uint32_t>* entry_counts) {
  const size_t n = data.size();
  const int reps = family.repetitions();
  shards->assign(static_cast<size_t>(num_shards), FilterTable());
  // Each id is handled by exactly one worker, so slots write disjoint
  // entries and no synchronization is needed.
  if (entry_counts != nullptr) entry_counts->assign(n, 0);

  // The partition is a pure function of the id, so build parallelism
  // cannot move a vector between shards.
  auto emit = [&](uint64_t key, VectorId id) {
    (*shards)[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards))].Add(
        key, id);
  };

  if (build_threads <= 1) {
    // Fused all-repetitions pass (see FilterFamily::ComputeAllFilters):
    // per-rep key groups are byte-identical to per-rep calls.
    std::vector<uint64_t> keys;
    std::vector<size_t> offsets;
    for (VectorId id = 0; id < n; ++id) {
      auto x = data.Get(id);
      PathGenStats gen;
      size_t capped = 0;
      family.ComputeAllFilters(x, &keys, &offsets, &gen, &capped);
      stats->nodes_expanded += gen.nodes_expanded;
      stats->cap_hits += capped;
      for (uint64_t key : keys) emit(key, id);
      stats->total_filters += keys.size();
      if (entry_counts != nullptr) {
        (*entry_counts)[id] += static_cast<uint32_t>(keys.size());
      }
    }
  } else {
    struct Slot {
      std::vector<std::pair<uint64_t, VectorId>> pairs;
      std::vector<uint64_t> keys;
      std::vector<size_t> offsets;
      size_t nodes_expanded = 0;
      size_t cap_hits = 0;
    };
    ThreadPool pool(build_threads);
    std::vector<Slot> slots(static_cast<size_t>(pool.num_threads()));
    pool.ParallelFor(n, /*grain=*/64, [&](size_t begin, size_t end,
                                          int slot_id) {
      Slot& slot = slots[static_cast<size_t>(slot_id)];
      for (size_t id = begin; id < end; ++id) {
        auto x = data.Get(static_cast<VectorId>(id));
        PathGenStats gen;
        size_t capped = 0;
        family.ComputeAllFilters(x, &slot.keys, &slot.offsets, &gen,
                                 &capped);
        slot.nodes_expanded += gen.nodes_expanded;
        slot.cap_hits += capped;
        for (uint64_t key : slot.keys) {
          slot.pairs.push_back({key, static_cast<VectorId>(id)});
        }
        if (entry_counts != nullptr) {
          (*entry_counts)[id] += static_cast<uint32_t>(slot.keys.size());
        }
      }
    });
    for (const Slot& slot : slots) {
      stats->nodes_expanded += slot.nodes_expanded;
      stats->cap_hits += slot.cap_hits;
      for (const auto& [key, id] : slot.pairs) emit(key, id);
      stats->total_filters += slot.pairs.size();
    }
  }
  for (FilterTable& shard : *shards) {
    shard.Freeze();
    stats->distinct_keys += shard.num_keys();
  }
  stats->avg_filters_per_element =
      static_cast<double>(stats->total_filters) /
      (static_cast<double>(n) * std::max(1, reps));
  return Status::OK();
}

}  // namespace sharded_internal

// Per-query workspace reused across a batch: key buffer, one dedup set
// per shard, the per-(rep, shard) hit/stat slots, and path-generation
// counters for batch aggregation.
struct ShardedIndex::QueryScratch {
  std::vector<uint64_t> keys;
  std::vector<PostingSet<VectorId>> seen;
  std::vector<RepHit> hits;
  std::vector<QueryStats> shard_stats;
  PathGenStats path_gen;
};

ShardedIndex::RepHit ShardedIndex::ScanShardRep(
    const FilterTable& table, std::span<const ItemId> query,
    const std::vector<uint64_t>& keys, PostingSet<VectorId>* seen,
    QueryStats* stats) const {
  RepHit hit;
  const double threshold = family_.verify_threshold();
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    auto postings = table.Lookup(keys[ki]);
    stats->candidates += postings.size();
    for (VectorId id : postings) {
      if (!seen->insert(id).second) continue;
      stats->verifications++;
      double sim = Similarity(options_.index.verify_measure, query,
                              data_->Get(id));
      if (sim >= threshold) {
        hit.found = true;
        hit.key_idx = ki;
        hit.id = id;
        hit.similarity = sim;
        return hit;
      }
    }
  }
  return hit;
}

std::optional<Match> ShardedIndex::Query(std::span<const ItemId> query,
                                         QueryStats* stats) const {
  return Query(query, nullptr, stats);
}

std::optional<Match> ShardedIndex::Query(std::span<const ItemId> query,
                                         ThreadPool* pool,
                                         QueryStats* stats) const {
  QueryScratch scratch;
  return QueryImpl(query, pool, stats, &scratch);
}

std::optional<Match> ShardedIndex::QueryImpl(std::span<const ItemId> query,
                                             ThreadPool* pool,
                                             QueryStats* stats,
                                             QueryScratch* scratch) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (built() && !query.empty()) {
    const int num = num_shards();
    scratch->seen.resize(static_cast<size_t>(num));
    for (auto& seen : scratch->seen) seen.clear();
    for (int rep = 0; rep < family_.repetitions() && !found; ++rep) {
      scratch->keys.clear();
      PathGenStats gen;
      family_.ComputeFilters(query, static_cast<uint32_t>(rep),
                             &scratch->keys, &gen);
      AddPathGenStats(&scratch->path_gen, gen);
      local.filters += scratch->keys.size();
      scratch->hits.assign(static_cast<size_t>(num), RepHit{});
      scratch->shard_stats.assign(static_cast<size_t>(num), QueryStats{});
      auto scan_shard = [&](size_t s) {
        scratch->hits[s] =
            ScanShardRep(shards_[s], query, scratch->keys,
                         &scratch->seen[s], &scratch->shard_stats[s]);
      };
      if (pool != nullptr && num > 1) {
        pool->ParallelFor(static_cast<size_t>(num), /*grain=*/1,
                          [&](size_t begin, size_t end, int) {
                            for (size_t s = begin; s < end; ++s) {
                              scan_shard(s);
                            }
                          });
      } else {
        for (size_t s = 0; s < static_cast<size_t>(num); ++s) scan_shard(s);
      }
      // Merge by scan coordinate: the unsharded index checks candidates
      // in (key position, id-within-posting-list) order, so the minimal
      // (key_idx, id) over the shard winners is exactly its first hit.
      const RepHit* best = nullptr;
      for (const RepHit& hit : scratch->hits) {
        if (!hit.found) continue;
        if (best == nullptr || hit.key_idx < best->key_idx ||
            (hit.key_idx == best->key_idx && hit.id < best->id)) {
          best = &hit;
        }
      }
      for (const QueryStats& qs : scratch->shard_stats) {
        local.candidates += qs.candidates;
        local.verifications += qs.verifications;
      }
      if (best != nullptr) found = Match{best->id, best->similarity};
    }
    size_t distinct = 0;
    for (const auto& seen : scratch->seen) distinct += seen.size();
    local.distinct_candidates = distinct;
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<Match> ShardedIndex::QueryAll(std::span<const ItemId> query,
                                          double threshold, QueryStats* stats,
                                          ThreadPool* pool) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (built() && !query.empty()) {
    // QueryAll exhausts every repetition, so all keys can be computed up
    // front (one fused pass) and each shard scanned exactly once.
    std::vector<uint64_t> keys;
    std::vector<size_t> offsets;
    family_.ComputeAllFilters(query, &keys, &offsets);
    local.filters = keys.size();
    const size_t num = shards_.size();
    std::vector<std::vector<Match>> matches(num);
    std::vector<QueryStats> shard_stats(num);
    std::vector<size_t> distinct(num, 0);
    auto scan_shard = [&](size_t s) {
      PostingSet<VectorId> seen;
      for (uint64_t key : keys) {
        auto postings = shards_[s].Lookup(key);
        shard_stats[s].candidates += postings.size();
        for (VectorId id : postings) {
          if (!seen.insert(id).second) continue;
          shard_stats[s].verifications++;
          double sim = Similarity(options_.index.verify_measure, query,
                                  data_->Get(id));
          if (sim >= threshold) matches[s].push_back({id, sim});
        }
      }
      distinct[s] = seen.size();
    };
    if (pool != nullptr && num > 1) {
      pool->ParallelFor(num, /*grain=*/1,
                        [&](size_t begin, size_t end, int) {
                          for (size_t s = begin; s < end; ++s) scan_shard(s);
                        });
    } else {
      for (size_t s = 0; s < num; ++s) scan_shard(s);
    }
    for (size_t s = 0; s < num; ++s) {
      local.candidates += shard_stats[s].candidates;
      local.verifications += shard_stats[s].verifications;
      local.distinct_candidates += distinct[s];
      out.insert(out.end(), matches[s].begin(), matches[s].end());
    }
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<std::optional<Match>> ShardedIndex::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> ShardedIndex::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  // The batch is parallelized over queries; each query scans its shards
  // serially (fanning a query's shards onto the same pool would deadlock
  // a worker waiting on its own pool).
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(queries.Get(static_cast<VectorId>(i)), nullptr,
                         query_stats, scratch);
      },
      [](const QueryScratch& scratch, BatchQueryStats* agg) {
        AddPathGenStats(&agg->path_gen, scratch.path_gen);
      });
}

std::vector<uint64_t> ShardedIndex::ComputeFilterKeys(
    std::span<const ItemId> query) const {
  std::vector<uint64_t> keys;
  if (!built()) return keys;
  // Fused pass; groups are in repetition order, matching the per-rep
  // concatenation exactly.
  std::vector<size_t> offsets;
  family_.ComputeAllFilters(query, &keys, &offsets);
  return keys;
}

size_t ShardedIndex::MemoryBytes() const {
  size_t total = 0;
  for (const FilterTable& shard : shards_) total += shard.MemoryBytes();
  return total;
}

Status ShardedIndex::Save(const std::string& path) const {
  namespace io = index_io_internal;
  if (!built()) {
    return Status::InvalidArgument("cannot save an unbuilt index");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kShardedMagic, sizeof(kShardedMagic));
  uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  bool ok = io::WriteParams(out, options_.index, family_.verify_threshold(),
                            build_stats_) &&
            io::WritePod(out, io::Fingerprint(*data_)) &&
            io::WritePod(out, num_shards);
  if (!ok) return Status::IOError("header write to '" + path + "' failed");
  for (const FilterTable& shard : shards_) {
    SKEWSEARCH_RETURN_NOT_OK(shard.WriteTo(&out));
  }
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Status ShardedIndex::Load(const std::string& path, const Dataset* data,
                          const ProductDistribution* dist) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kShardedMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "'" + path + "' is not a skewsearch sharded index file");
  }
  io::ParamHeader header;
  Status params = io::ReadParams(in, &header);
  if (!params.ok()) {
    return Status::InvalidArgument(params.message() + " in '" + path + "'");
  }
  uint64_t fingerprint = 0;
  uint32_t num_shards = 0;
  if (!io::ReadPod(in, &fingerprint) || !io::ReadPod(in, &num_shards)) {
    return Status::InvalidArgument("truncated index header in '" + path +
                                   "'");
  }
  if (fingerprint != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("corrupt shard count in '" + path + "'");
  }
  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index header in '" + path +
                                   "': " + family.status().message());
  }

  std::vector<FilterTable> shards(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    SKEWSEARCH_RETURN_NOT_OK(shards[s].ReadFrom(&in));
    // Every posting must reference the dataset *and* live in the shard
    // its id hashes to; anything else is corruption.
    for (size_t k = 0; k < shards[s].num_keys(); ++k) {
      for (VectorId id : shards[s].postings_at(k)) {
        if (id >= data->size() ||
            ShardOf(id, static_cast<int>(num_shards)) !=
                static_cast<int>(s)) {
          return Status::InvalidArgument(
              "shard table references out-of-place vector ids");
        }
      }
    }
  }

  data_ = data;
  dist_ = dist;
  options_.index = header.options;
  options_.num_shards = static_cast<int>(num_shards);
  family_ = std::move(family).value();
  build_stats_ = header.stats;
  shards_ = std::move(shards);
  frozen_.reset();
  return Status::OK();
}

Status ShardedIndex::Freeze(const std::string& path) const {
  namespace io = index_io_internal;
  if (!built()) {
    return Status::InvalidArgument("cannot freeze an unbuilt index");
  }
  std::vector<const FilterTable*> tables;
  tables.reserve(shards_.size());
  for (const FilterTable& shard : shards_) tables.push_back(&shard);
  return WriteFrozenShards(path, options_.index,
                           family_.verify_threshold(), build_stats_,
                           io::Fingerprint(*data_), tables);
}

Status ShardedIndex::MapFrozen(const std::string& path, const Dataset* data,
                               const ProductDistribution* dist) {
  return MapFrozen(path, data, dist, FrozenMapOptions{});
}

Status ShardedIndex::MapFrozen(const std::string& path, const Dataset* data,
                               const ProductDistribution* dist,
                               const FrozenMapOptions& options) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  Result<std::shared_ptr<const FrozenShardFile>> mapped =
      FrozenShardFile::Map(path, options);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const FrozenShardFile> file = std::move(mapped).value();
  if (file->fingerprint() != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  const int num_shards = file->num_shards();
  // The checksummed per-shard metadata bounds every posting id, so the
  // beyond-the-dataset rejection needs no O(index) scan.
  for (int s = 0; s < num_shards; ++s) {
    const FrozenShardFile::ShardInfo& info = file->shard_info(s);
    if (info.ids_count > 0 && info.max_id >= data->size()) {
      return Status::InvalidArgument(
          "shard table references vector ids beyond the dataset");
    }
  }

  const index_io_internal::ParamHeader& header = file->params();
  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index header in '" + path +
                                   "': " + family.status().message());
  }

  std::vector<FilterTable> views(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Result<FilterTable> view = file->MakeShardView(s);
    if (!view.ok()) return view.status();
    views[static_cast<size_t>(s)] = std::move(view).value();
  }
  if (options.verify_payload) {
    // Mirror Load's placement validation: every posting must live in the
    // shard its id hashes to. O(index), gated like the payload checksums.
    for (int s = 0; s < num_shards; ++s) {
      const FilterTable& table = views[static_cast<size_t>(s)];
      for (size_t k = 0; k < table.num_keys(); ++k) {
        for (VectorId id : table.postings_at(k)) {
          if (ShardOf(id, num_shards) != s) {
            return Status::InvalidArgument(
                "shard table references out-of-place vector ids");
          }
        }
      }
    }
  }

  data_ = data;
  dist_ = dist;
  options_.index = header.options;
  options_.num_shards = num_shards;
  family_ = std::move(family).value();
  build_stats_ = header.stats;
  shards_ = std::move(views);
  frozen_ = std::move(file);
  return Status::OK();
}

}  // namespace skewsearch
