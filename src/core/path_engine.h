// Copyright 2026 The skewsearch Authors.
// The chosen-path recursion (Section 3): computing the filter set F(x).
//
// F(x) is grown level by level. A path v of length j is extended by every
// item i of x (not already on v, when sampling without replacement) whose
// level draw h_{j+1}(v o i) falls below the policy threshold s(x, j, i).
// A freshly created path becomes a *filter* — a member of F(x) — as soon
// as its stop condition holds:
//
//   kProbability:  prod_{k} p_{i_k} <= 1/n    (the paper's dynamic depth)
//   kFixedDepth:   |v| == fixed_depth         (classic Chosen Path)
//
// The engine is deterministic given the PathHasher, so running it on a
// data vector and on a query produces consistent decisions on shared path
// prefixes — the property Lemma 5's collision argument relies on.

#ifndef SKEWSEARCH_CORE_PATH_ENGINE_H_
#define SKEWSEARCH_CORE_PATH_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/path_policy.h"
#include "data/distribution.h"
#include "data/sparse_vector.h"
#include "hashing/path_hasher.h"

namespace skewsearch {

/// Stop conditions for path growth.
enum class StopRule {
  kProbability,  ///< stop once prod p_{i_k} <= 1/n (the paper's rule)
  kFixedDepth,   ///< stop at a fixed path length (classic Chosen Path)
};

/// \brief Engine configuration.
struct PathEngineOptions {
  StopRule stop_rule = StopRule::kProbability;
  /// ln(n): the probability stop threshold (sum of ln(1/p) >= log_n).
  double log_n = 0.0;
  /// Path length for kFixedDepth.
  int fixed_depth = 0;
  /// Hard cap on path length regardless of stop rule (safety).
  int max_depth = 64;
  /// Safety valve: stop expanding after this many live+emitted paths per
  /// element per repetition; overruns are reported in PathGenStats.
  size_t max_paths = size_t{1} << 22;
  /// Paper's scheme samples items *without* replacement (i in x \ v);
  /// classic Chosen Path samples with replacement (i in x).
  bool without_replacement = true;
};

/// \brief Per-invocation counters.
struct PathGenStats {
  size_t filters_emitted = 0;  ///< |F(x)| for this repetition
  size_t nodes_expanded = 0;   ///< interior recursion nodes processed
  size_t draws = 0;            ///< hash draws evaluated
  bool cap_hit = false;        ///< true if max_paths truncated the growth
};

/// \brief Computes filter sets F(x).
///
/// Stateless between calls; safe for concurrent use from multiple threads.
class PathEngine {
 public:
  /// All pointers are borrowed and must outlive the engine.
  PathEngine(const ProductDistribution* dist, const ThresholdPolicy* policy,
             const PathHasher* hasher, const PathEngineOptions& options);

  /// Appends the filter keys of F(x) for repetition \p rep to \p out.
  /// \p stats may be null.
  void ComputeFilters(std::span<const ItemId> x, uint32_t rep,
                      std::vector<uint64_t>* out, PathGenStats* stats) const;

  /// Computes F_r(x) for every repetition r in [0, reps) in ONE fused
  /// level-synchronous pass (the fast-similarity-sketching idea applied
  /// to the chosen-path recursion: all repetitions' coordinates in one
  /// walk). All L recursion trees advance through one shared arena, so
  /// the per-level policy thresholds and ln(1/p) terms — which depend on
  /// (|x|, depth, item) but NOT on the repetition — are computed once per
  /// level instead of L times, and the arena/frontier allocations are
  /// shared.
  ///
  /// \p keys receives repetition 0's filter keys, then repetition 1's,
  /// ...; \p offsets receives reps + 1 entries bracketing each
  /// repetition's group. Each group is byte-identical to what
  /// ComputeFilters(x, r, ...) appends (asserted by tests). \p stats
  /// (may be null) receives counters summed over repetitions with
  /// cap_hit = "any repetition truncated"; \p capped_reps (may be null)
  /// receives the number of truncated repetitions.
  void ComputeFiltersAllReps(std::span<const ItemId> x, uint32_t reps,
                             std::vector<uint64_t>* keys,
                             std::vector<size_t>* offsets,
                             PathGenStats* stats,
                             size_t* capped_reps = nullptr) const;

  const PathEngineOptions& options() const { return options_; }

 private:
  const ProductDistribution* dist_;
  const ThresholdPolicy* policy_;
  const PathHasher* hasher_;
  PathEngineOptions options_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_PATH_ENGINE_H_
