#include "core/path_engine.h"

#include <algorithm>

namespace skewsearch {

namespace {

// One node of the recursion forest, stored in a flat arena. Parent links
// let the without-replacement check walk the (short) ancestor chain instead
// of storing an item set per node.
struct Node {
  uint64_t key;
  double log_inv_prod;  // sum of ln(1/p_i) along the path
  int32_t parent;       // index into the arena, -1 for roots
  ItemId item;          // item appended to create this node
  int32_t depth;        // path length; 0 for the root (whose item is unused)
};

bool PathContains(const std::vector<Node>& arena, int32_t node, ItemId item) {
  // The root (depth 0) carries no item; stop before inspecting it.
  while (node >= 0 && arena[static_cast<size_t>(node)].depth > 0) {
    if (arena[static_cast<size_t>(node)].item == item) return true;
    node = arena[static_cast<size_t>(node)].parent;
  }
  return false;
}

}  // namespace

PathEngine::PathEngine(const ProductDistribution* dist,
                       const ThresholdPolicy* policy, const PathHasher* hasher,
                       const PathEngineOptions& options)
    : dist_(dist), policy_(policy), hasher_(hasher), options_(options) {}

void PathEngine::ComputeFilters(std::span<const ItemId> x, uint32_t rep,
                                std::vector<uint64_t>* out,
                                PathGenStats* stats) const {
  PathGenStats local;
  if (!x.empty()) {
    std::vector<Node> arena;
    arena.reserve(64);
    std::vector<int32_t> frontier;
    std::vector<int32_t> next;

    arena.push_back(Node{hasher_->RootKey(rep), 0.0, -1, 0, 0});
    frontier.push_back(0);

    const size_t vec_size = x.size();
    bool done = false;
    while (!frontier.empty() && !done) {
      next.clear();
      for (int32_t node_idx : frontier) {
        // Copy the node: the arena may reallocate while children are added.
        const Node node = arena[static_cast<size_t>(node_idx)];
        if (node.depth >= options_.max_depth) continue;
        local.nodes_expanded++;
        const int level = node.depth + 1;
        for (ItemId item : x) {
          if (options_.without_replacement &&
              PathContains(arena, node_idx, item)) {
            continue;
          }
          local.draws++;
          // A threshold >= 1 accepts unconditionally. When both a data
          // vector and a query draw (thresholds may differ, e.g. through
          // |x| vs |q|), they compare against the *same* LevelDraw value,
          // which is what makes shared prefixes evolve consistently.
          double threshold = policy_->Threshold(vec_size, node.depth, item);
          if (threshold < 1.0 &&
              hasher_->LevelDraw(level, node.key, item) >= threshold) {
            continue;
          }
          Node child;
          child.key = hasher_->ExtendKey(node.key, item);
          child.log_inv_prod = node.log_inv_prod + dist_->LogInvP(item);
          child.parent = node_idx;
          child.item = item;
          child.depth = level;

          bool is_filter =
              options_.stop_rule == StopRule::kProbability
                  ? child.log_inv_prod >= options_.log_n
                  : child.depth >= options_.fixed_depth;
          if (is_filter) {
            out->push_back(child.key);
            local.filters_emitted++;
          } else {
            arena.push_back(child);
            next.push_back(static_cast<int32_t>(arena.size() - 1));
          }
          if (arena.size() + local.filters_emitted >= options_.max_paths) {
            local.cap_hit = true;
            done = true;
            break;
          }
        }
        if (done) break;
      }
      frontier.swap(next);
    }
  }
  if (stats != nullptr) *stats = local;
}

}  // namespace skewsearch
