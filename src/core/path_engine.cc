#include "core/path_engine.h"

#include <algorithm>

namespace skewsearch {

namespace {

// One node of the recursion forest, stored in a flat arena. Parent links
// let the without-replacement check walk the (short) ancestor chain instead
// of storing an item set per node.
struct Node {
  uint64_t key;
  double log_inv_prod;  // sum of ln(1/p_i) along the path
  int32_t parent;       // index into the arena, -1 for roots
  ItemId item;          // item appended to create this node
  int32_t depth;        // path length; 0 for the root (whose item is unused)
};

bool PathContains(const std::vector<Node>& arena, int32_t node, ItemId item) {
  // The root (depth 0) carries no item; stop before inspecting it.
  while (node >= 0 && arena[static_cast<size_t>(node)].depth > 0) {
    if (arena[static_cast<size_t>(node)].item == item) return true;
    node = arena[static_cast<size_t>(node)].parent;
  }
  return false;
}

// Node of the fused all-repetitions forest: same layout plus the owning
// repetition, so one arena can interleave all L recursion trees.
struct FusedNode {
  uint64_t key;
  double log_inv_prod;
  int32_t parent;
  ItemId item;
  int32_t depth;
  uint32_t rep;
};

bool FusedPathContains(const std::vector<FusedNode>& arena, int32_t node,
                       ItemId item) {
  while (node >= 0 && arena[static_cast<size_t>(node)].depth > 0) {
    if (arena[static_cast<size_t>(node)].item == item) return true;
    node = arena[static_cast<size_t>(node)].parent;
  }
  return false;
}

}  // namespace

PathEngine::PathEngine(const ProductDistribution* dist,
                       const ThresholdPolicy* policy, const PathHasher* hasher,
                       const PathEngineOptions& options)
    : dist_(dist), policy_(policy), hasher_(hasher), options_(options) {}

void PathEngine::ComputeFilters(std::span<const ItemId> x, uint32_t rep,
                                std::vector<uint64_t>* out,
                                PathGenStats* stats) const {
  PathGenStats local;
  if (!x.empty()) {
    std::vector<Node> arena;
    arena.reserve(64);
    std::vector<int32_t> frontier;
    std::vector<int32_t> next;

    arena.push_back(Node{hasher_->RootKey(rep), 0.0, -1, 0, 0});
    frontier.push_back(0);

    const size_t vec_size = x.size();
    bool done = false;
    while (!frontier.empty() && !done) {
      next.clear();
      for (int32_t node_idx : frontier) {
        // Copy the node: the arena may reallocate while children are added.
        const Node node = arena[static_cast<size_t>(node_idx)];
        if (node.depth >= options_.max_depth) continue;
        local.nodes_expanded++;
        const int level = node.depth + 1;
        for (ItemId item : x) {
          if (options_.without_replacement &&
              PathContains(arena, node_idx, item)) {
            continue;
          }
          local.draws++;
          // A threshold >= 1 accepts unconditionally. When both a data
          // vector and a query draw (thresholds may differ, e.g. through
          // |x| vs |q|), they compare against the *same* LevelDraw value,
          // which is what makes shared prefixes evolve consistently.
          double threshold = policy_->Threshold(vec_size, node.depth, item);
          if (threshold < 1.0 &&
              hasher_->LevelDraw(level, node.key, item) >= threshold) {
            continue;
          }
          Node child;
          child.key = hasher_->ExtendKey(node.key, item);
          child.log_inv_prod = node.log_inv_prod + dist_->LogInvP(item);
          child.parent = node_idx;
          child.item = item;
          child.depth = level;

          bool is_filter =
              options_.stop_rule == StopRule::kProbability
                  ? child.log_inv_prod >= options_.log_n
                  : child.depth >= options_.fixed_depth;
          if (is_filter) {
            out->push_back(child.key);
            local.filters_emitted++;
          } else {
            arena.push_back(child);
            next.push_back(static_cast<int32_t>(arena.size() - 1));
          }
          if (arena.size() + local.filters_emitted >= options_.max_paths) {
            local.cap_hit = true;
            done = true;
            break;
          }
        }
        if (done) break;
      }
      frontier.swap(next);
    }
  }
  if (stats != nullptr) *stats = local;
}

void PathEngine::ComputeFiltersAllReps(std::span<const ItemId> x,
                                       uint32_t reps,
                                       std::vector<uint64_t>* keys,
                                       std::vector<size_t>* offsets,
                                       PathGenStats* stats,
                                       size_t* capped_reps) const {
  PathGenStats total;
  size_t capped = 0;
  keys->clear();
  offsets->assign(static_cast<size_t>(reps) + 1, 0);
  if (!x.empty() && reps > 0) {
    // (rep, key) in emission order; scattered into per-rep groups below.
    std::vector<std::pair<uint32_t, uint64_t>> emitted;
    std::vector<FusedNode> arena;
    arena.reserve(static_cast<size_t>(reps) * 2);
    std::vector<int32_t> frontier;
    std::vector<int32_t> next;
    // Per-repetition cap accounting mirroring the single-rep run, where
    // the budget is arena-nodes-of-this-rep (root included) + emissions.
    std::vector<size_t> live(reps, 1);
    std::vector<size_t> emitted_count(reps, 0);
    std::vector<uint8_t> done(reps, 0);

    for (uint32_t rep = 0; rep < reps; ++rep) {
      arena.push_back(
          FusedNode{hasher_->RootKey(rep), 0.0, -1, 0, 0, rep});
      frontier.push_back(static_cast<int32_t>(rep));
    }

    const size_t vec_size = x.size();
    // Thresholds and ln(1/p) depend on (|x|, depth, item) but not on the
    // repetition: computing them once per level is the L-fold saving.
    std::vector<double> log_inv_p(vec_size);
    for (size_t k = 0; k < vec_size; ++k) {
      log_inv_p[k] = dist_->LogInvP(x[k]);
    }
    std::vector<double> thresholds(vec_size);

    int depth = 0;
    while (!frontier.empty()) {
      // Level-synchronous: every frontier node sits at the same depth.
      if (depth >= options_.max_depth) break;
      for (size_t k = 0; k < vec_size; ++k) {
        thresholds[k] = policy_->Threshold(vec_size, depth, x[k]);
      }
      const int level = depth + 1;
      next.clear();
      for (int32_t node_idx : frontier) {
        const FusedNode node = arena[static_cast<size_t>(node_idx)];
        const uint32_t rep = node.rep;
        if (done[rep]) continue;
        total.nodes_expanded++;
        for (size_t k = 0; k < vec_size; ++k) {
          const ItemId item = x[k];
          if (options_.without_replacement &&
              FusedPathContains(arena, node_idx, item)) {
            continue;
          }
          total.draws++;
          const double threshold = thresholds[k];
          if (threshold < 1.0 &&
              hasher_->LevelDraw(level, node.key, item) >= threshold) {
            continue;
          }
          FusedNode child;
          child.key = hasher_->ExtendKey(node.key, item);
          child.log_inv_prod = node.log_inv_prod + log_inv_p[k];
          child.parent = node_idx;
          child.item = item;
          child.depth = level;
          child.rep = rep;

          const bool is_filter =
              options_.stop_rule == StopRule::kProbability
                  ? child.log_inv_prod >= options_.log_n
                  : child.depth >= options_.fixed_depth;
          if (is_filter) {
            emitted.push_back({rep, child.key});
            emitted_count[rep]++;
            total.filters_emitted++;
          } else {
            arena.push_back(child);
            next.push_back(static_cast<int32_t>(arena.size() - 1));
            live[rep]++;
          }
          if (live[rep] + emitted_count[rep] >= options_.max_paths) {
            total.cap_hit = true;
            done[rep] = 1;
            capped++;
            break;
          }
        }
      }
      frontier.swap(next);
      ++depth;
    }

    // Stable counting scatter: emissions are level-major; within a
    // repetition their relative order equals the single-rep run's, so
    // each group comes out byte-identical to ComputeFilters(x, rep).
    for (const auto& [rep, key] : emitted) (*offsets)[rep + 1]++;
    for (size_t r = 1; r <= reps; ++r) (*offsets)[r] += (*offsets)[r - 1];
    keys->resize(emitted.size());
    std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
    for (const auto& [rep, key] : emitted) (*keys)[cursor[rep]++] = key;
  }
  if (stats != nullptr) *stats = total;
  if (capped_reps != nullptr) *capped_reps = capped;
}

}  // namespace skewsearch
