#include "core/dynamic_index.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "core/batch.h"
#include "core/index_io.h"
#include "sim/measures.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

constexpr char kDynamicMagic[4] = {'S', 'K', 'D', '2'};
constexpr int kMaxShards = 1 << 12;
constexpr uint64_t kMaxBlockCount = uint64_t{1} << 32;
constexpr uint32_t kMaxEditions = 1u << 20;

/// Writers collect retired snapshots opportunistically once this many
/// pile up, so an index without a maintenance thread still reclaims.
constexpr size_t kCollectBacklog = 32;

}  // namespace

/// One derivation of the paper's parameters (repetitions, delta, depth
/// bound, verify threshold) for a particular live count. Editions are
/// append-only and kept alive for the index lifetime; each published
/// shard snapshot references the edition its postings were generated
/// under, which is what keeps queries correct while a rebuild migrates
/// the shards one at a time.
struct DynamicIndex::Edition {
  FilterFamily family;
  uint64_t version = 0;
  size_t derived_n = 0;
};

/// The immutable published state of one shard. Posting lists, inserted
/// vectors and the base table are shared substructure (shared_ptr), and
/// every growing registry (delta postings, inserted vectors, tombstones,
/// removed base ids) is split into COW sub-map buckets: a mutation
/// deep-copies only the buckets it touches and shares the rest, so
/// cloning a state costs O(touched buckets x bucket size) — never
/// O(shard) and never the posting payloads or item lists. Bucket sizes
/// stay flat because the maintenance service folds the delta past an
/// absolute cap; that is the price of wait-free readers (a true
/// persistent-map would push writers further toward O(keys), see
/// ROADMAP).
struct DynamicIndex::ShardState {
  /// One live inserted vector: its items plus the posting-entry count it
  /// contributed under `edition` (so Remove can charge dead entries in
  /// O(1)).
  struct InsertedVector {
    std::vector<ItemId> items;
    uint32_t entries = 0;
  };

  static constexpr size_t kInsertedBuckets = 64;
  using InsertedMap =
      PostingMap<VectorId, std::shared_ptr<const InsertedVector>>;
  static constexpr size_t kDeltaBuckets = 256;
  using DeltaMap =
      PostingMap<uint64_t, std::shared_ptr<const std::vector<VectorId>>>;

  std::shared_ptr<const Edition> edition;

  /// Frozen postings of the vectors present at Build()/last compaction.
  std::shared_ptr<const FilterTable> base;

  /// Posting-entry count each base vector of this shard contributed
  /// under `edition` (ids absent from the map contributed 0). Replaced
  /// only by a rebuild; shared across clones otherwise.
  std::shared_ptr<const PostingMap<VectorId, uint32_t>> base_counts;

  /// Postings of vectors inserted since the last compaction, keyed like
  /// the base table, bucketized for cheap COW like `inserted` (the delta
  /// also grows without bound between compactions). A null bucket is
  /// empty; posting lists are immutable once published.
  std::array<std::shared_ptr<const DeltaMap>, kDeltaBuckets> delta;

  using TombstoneMap = PostingMap<VectorId, uint32_t>;
  using RemovedSet = PostingSet<VectorId>;

  /// Removed ids whose postings are still physically present, mapped to
  /// the entry count they occupy. Compaction drops the covered ids
  /// together with their postings. Bucketized for cheap COW like the
  /// other registries.
  std::array<std::shared_ptr<const TombstoneMap>, kInsertedBuckets>
      tombstones;

  /// Removed *base* ids, kept forever: the base dataset still contains
  /// these vectors, so liveness bookkeeping (IsLive/size/double-Remove)
  /// needs them even after compaction has dropped their postings.
  /// Bucketized: this set only ever grows, so a flat copy per mutation
  /// would cost O(total removals) forever.
  std::array<std::shared_ptr<const RemovedSet>, kInsertedBuckets>
      removed_base;

  /// Live inserted vectors by id, bucketized for cheap COW (see above).
  /// A null bucket is empty. Ids within a shard are a pseudo-random
  /// subset of the id space, so id % kInsertedBuckets spreads evenly.
  std::array<std::shared_ptr<const InsertedMap>, kInsertedBuckets> inserted;

  /// Posting entries referencing live / tombstoned ids. Invariant:
  /// live + dead == base->num_pairs() + total delta entries, and
  /// dead == sum of tombstone entry counts.
  size_t live_entries = 0;
  size_t dead_entries = 0;

  static size_t BucketOf(VectorId id) {
    return static_cast<size_t>(id) % kInsertedBuckets;
  }

  /// Filter keys are already uniformly hashed, so modulo spreads evenly.
  static size_t DeltaBucketOf(uint64_t key) { return key % kDeltaBuckets; }

  const std::vector<VectorId>* FindDelta(uint64_t key) const {
    const std::shared_ptr<const DeltaMap>& bucket =
        delta[DeltaBucketOf(key)];
    if (bucket == nullptr) return nullptr;
    auto it = bucket->find(key);
    return it == bucket->end() ? nullptr : it->second.get();
  }

  size_t delta_key_count() const {
    size_t count = 0;
    for (const auto& bucket : delta) {
      if (bucket != nullptr) count += bucket->size();
    }
    return count;
  }

  /// Invokes fn(key, posting_list_shared_ptr) for every delta list.
  template <typename Fn>
  void ForEachDelta(Fn&& fn) const {
    for (const auto& bucket : delta) {
      if (bucket == nullptr) continue;
      for (const auto& [key, ids] : *bucket) fn(key, ids);
    }
  }

  /// COW append of \p id to every key's posting list, kept sorted by
  /// id. Each touched bucket is cloned exactly once no matter how many
  /// of the vector's keys land in it (an insert emits
  /// filters-per-element x repetitions keys, so per-key cloning would
  /// multiply the copy cost by that factor).
  void AppendDeltaAll(const std::vector<uint64_t>& keys, VectorId id) {
    std::array<DeltaMap*, kDeltaBuckets> touched{};
    for (uint64_t key : keys) {
      const size_t b = DeltaBucketOf(key);
      if (touched[b] == nullptr) {
        auto fresh = delta[b] != nullptr ? std::make_shared<DeltaMap>(*delta[b])
                                         : std::make_shared<DeltaMap>();
        touched[b] = fresh.get();
        delta[b] = std::move(fresh);
      }
      std::shared_ptr<const std::vector<VectorId>>& slot = (*touched[b])[key];
      auto fresh_list = slot != nullptr
                            ? std::make_shared<std::vector<VectorId>>(*slot)
                            : std::make_shared<std::vector<VectorId>>();
      fresh_list->insert(
          std::upper_bound(fresh_list->begin(), fresh_list->end(), id), id);
      slot = std::move(fresh_list);
    }
  }

  /// Bulk-installs \p lists as the delta (exclusive-owner setup paths:
  /// compaction merge, rebuild merge, Load).
  void SetDelta(std::array<DeltaMap, kDeltaBuckets>&& buckets) {
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].empty()) {
        delta[b] = nullptr;
      } else {
        delta[b] = std::make_shared<const DeltaMap>(std::move(buckets[b]));
      }
    }
  }

  const InsertedVector* FindInserted(VectorId id) const {
    const std::shared_ptr<const InsertedMap>& bucket = inserted[BucketOf(id)];
    if (bucket == nullptr) return nullptr;
    auto it = bucket->find(id);
    return it == bucket->end() ? nullptr : it->second.get();
  }

  size_t inserted_count() const {
    size_t count = 0;
    for (const auto& bucket : inserted) {
      if (bucket != nullptr) count += bucket->size();
    }
    return count;
  }

  /// Invokes fn(id, record_shared_ptr) for every live inserted vector.
  template <typename Fn>
  void ForEachInserted(Fn&& fn) const {
    for (const auto& bucket : inserted) {
      if (bucket == nullptr) continue;
      for (const auto& [id, record] : *bucket) fn(id, record);
    }
  }

  /// COW insert/overwrite of one record (clones only its bucket).
  void PutInserted(VectorId id,
                   std::shared_ptr<const InsertedVector> record) {
    std::shared_ptr<const InsertedMap>& bucket = inserted[BucketOf(id)];
    auto fresh = bucket != nullptr ? std::make_shared<InsertedMap>(*bucket)
                                   : std::make_shared<InsertedMap>();
    (*fresh)[id] = std::move(record);
    bucket = std::move(fresh);
  }

  /// COW erase of one record (clones only its bucket).
  void EraseInserted(VectorId id) {
    std::shared_ptr<const InsertedMap>& bucket = inserted[BucketOf(id)];
    if (bucket == nullptr) return;
    auto fresh = std::make_shared<InsertedMap>(*bucket);
    fresh->erase(id);
    bucket = std::move(fresh);
  }

  bool IsTombstoned(VectorId id) const {
    const std::shared_ptr<const TombstoneMap>& bucket =
        tombstones[BucketOf(id)];
    return bucket != nullptr && bucket->count(id) > 0;
  }

  size_t tombstone_count() const {
    size_t count = 0;
    for (const auto& bucket : tombstones) {
      if (bucket != nullptr) count += bucket->size();
    }
    return count;
  }

  /// Invokes fn(id, entries) for every tombstone.
  template <typename Fn>
  void ForEachTombstone(Fn&& fn) const {
    for (const auto& bucket : tombstones) {
      if (bucket == nullptr) continue;
      for (const auto& [id, entries] : *bucket) fn(id, entries);
    }
  }

  /// COW insert of one tombstone (clones only its bucket).
  void PutTombstone(VectorId id, uint32_t entries) {
    std::shared_ptr<const TombstoneMap>& bucket = tombstones[BucketOf(id)];
    auto fresh = bucket != nullptr ? std::make_shared<TombstoneMap>(*bucket)
                                   : std::make_shared<TombstoneMap>();
    fresh->emplace(id, entries);
    bucket = std::move(fresh);
  }

  /// Bulk-installs \p buckets as the tombstones (exclusive-owner setup
  /// paths: compaction merge, rebuild merge, Load).
  void SetTombstones(
      std::array<TombstoneMap, kInsertedBuckets>&& buckets) {
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].empty()) {
        tombstones[b] = nullptr;
      } else {
        tombstones[b] =
            std::make_shared<const TombstoneMap>(std::move(buckets[b]));
      }
    }
  }

  bool HasRemovedBase(VectorId id) const {
    const std::shared_ptr<const RemovedSet>& bucket =
        removed_base[BucketOf(id)];
    return bucket != nullptr && bucket->count(id) > 0;
  }

  size_t removed_base_count() const {
    size_t count = 0;
    for (const auto& bucket : removed_base) {
      if (bucket != nullptr) count += bucket->size();
    }
    return count;
  }

  /// Invokes fn(id) for every removed base id.
  template <typename Fn>
  void ForEachRemovedBase(Fn&& fn) const {
    for (const auto& bucket : removed_base) {
      if (bucket == nullptr) continue;
      for (VectorId id : *bucket) fn(id);
    }
  }

  /// COW insert of one removed base id (clones only its bucket).
  void AddRemovedBase(VectorId id) {
    std::shared_ptr<const RemovedSet>& bucket = removed_base[BucketOf(id)];
    auto fresh = bucket != nullptr ? std::make_shared<RemovedSet>(*bucket)
                                   : std::make_shared<RemovedSet>();
    fresh->insert(id);
    bucket = std::move(fresh);
  }
};

/// One hash partition: the atomically published snapshot plus the mutex
/// that serializes this shard's writers. Readers never touch the mutex.
struct DynamicIndex::Shard {
  std::atomic<const ShardState*> state{nullptr};
  mutable PaddedMutex writer;
  /// Owns what `state` points at. Guarded by `writer`.
  std::shared_ptr<const ShardState> owner;
};

DynamicIndex::DynamicIndex() = default;
DynamicIndex::~DynamicIndex() = default;

bool DynamicIndex::PublishLocked(Shard* shard,
                                 std::shared_ptr<const ShardState> next)
    const {
  const ShardState* raw = next.get();
  std::shared_ptr<const ShardState> old = std::move(shard->owner);
  shard->owner = std::move(next);
  shard->state.store(raw, std::memory_order_seq_cst);
  // Never Collect() here: the caller still holds the shard writer
  // mutex, and reclaiming can run arbitrarily heavy snapshot
  // destructors (a compacted-away FilterTable is O(shard)). Report
  // whether the backlog warrants a collect so the caller can run one
  // after unlocking.
  return epochs_.Retire(std::move(old)) >= kCollectBacklog;
}

std::shared_ptr<const DynamicIndex::ShardState> DynamicIndex::OwnerOf(
    int s) const {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  MutexLock lock(shard.writer);
  return shard.owner;
}

Status DynamicIndex::Build(const Dataset* data,
                           const ProductDistribution* dist,
                           const DynamicIndexOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, 4096]");
  }
  if (!(options.compact_dead_fraction > 0.0) ||
      !std::isfinite(options.compact_dead_fraction)) {
    return Status::InvalidArgument(
        "compact_dead_fraction must be positive and finite");
  }
  Result<FilterFamily> family =
      FilterFamily::Create(dist, options.index, data->size());
  if (!family.ok()) return family.status();

  Timer timer;
  data_ = data;
  dist_ = dist;
  options_ = options;

  auto edition = std::make_shared<Edition>();
  edition->family = std::move(family).value();
  edition->version = 0;
  edition->derived_n = data->size();

  build_stats_ = IndexBuildStats{};
  build_stats_.repetitions = edition->family.repetitions();
  build_stats_.delta_used = edition->family.delta();
  std::vector<FilterTable> tables;
  std::vector<uint32_t> entry_counts;
  SKEWSEARCH_RETURN_NOT_OK(sharded_internal::BuildShardTables(
      *data, edition->family, options.num_shards, options.index.build_threads,
      &build_stats_, &tables, &entry_counts));

  // Split the flat per-vector entry counts into per-shard maps (the
  // shard states hold them so a rebuild can swap in counts for its new
  // edition shard by shard).
  std::vector<PostingMap<VectorId, uint32_t>> counts(tables.size());
  for (VectorId id = 0; id < data->size(); ++id) {
    if (entry_counts[id] == 0) continue;
    counts[static_cast<size_t>(
        ShardedIndex::ShardOf(id, options.num_shards))]
        .emplace(id, entry_counts[id]);
  }

  shards_.clear();
  shards_.reserve(tables.size());
  for (size_t s = 0; s < tables.size(); ++s) {
    auto state = std::make_shared<ShardState>();
    state->edition = edition;
    state->base = std::make_shared<FilterTable>(std::move(tables[s]));
    state->base_counts =
        std::make_shared<const PostingMap<VectorId, uint32_t>>(
            std::move(counts[s]));
    state->live_entries = state->base->num_pairs();
    auto shard = std::make_unique<Shard>();
    shard->state.store(state.get(), std::memory_order_seq_cst);
    shard->owner = std::move(state);
    shards_.push_back(std::move(shard));
  }

  {
    std::lock_guard<std::mutex> lock(editions_mutex_);
    editions_.clear();
    editions_.push_back(edition);
  }
  current_edition_.store(edition.get(), std::memory_order_seq_cst);
  base_n_ = data->size();
  next_id_.store(static_cast<VectorId>(base_n_), std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  rebuilds_.store(0, std::memory_order_relaxed);
  build_stats_.build_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status DynamicIndex::ValidateInsertItems(std::span<const ItemId> items) const {
  if (items.empty()) {
    return Status::InvalidArgument("cannot insert an empty vector");
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] >= dist_->dimension()) {
      return Status::InvalidArgument(
          "item outside the distribution's universe");
    }
    if (i > 0 && items[i] <= items[i - 1]) {
      return Status::InvalidArgument("items must be strictly increasing");
    }
  }
  return Status::OK();
}

Status DynamicIndex::ApplyInsert(VectorId id, std::span<const ItemId> items,
                                 size_t* num_filters, bool journal,
                                 bool replay, bool* applied) {
  if (applied != nullptr) *applied = true;
  Shard& shard =
      *shards_[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards()))];

  // Path generation happens outside any lock against the shard's
  // current edition (editions live for the index lifetime, so the raw
  // pointer stays valid past the pin).
  const Edition* edition = nullptr;
  {
    EpochManager::Guard guard = epochs_.Pin();
    edition = shard.state.load(std::memory_order_seq_cst)->edition.get();
  }
  std::vector<uint64_t> keys;
  std::vector<size_t> key_offsets;
  auto compute = [&](const Edition& ed) {
    // Fused all-repetitions pass; identical to per-rep concatenation.
    ed.family.ComputeAllFilters(items, &keys, &key_offsets);
  };
  compute(*edition);

  bool collect = false;
  {
    MutexLock lock(shard.writer);
    const ShardState& s1 = *shard.owner;
    if (replay &&
        (s1.FindInserted(id) != nullptr || s1.IsTombstoned(id))) {
      // The restored snapshot already covers this logged mutation
      // (checkpoint raced the log append); replay is idempotent.
      if (applied != nullptr) *applied = false;
      return Status::OK();
    }
    if (s1.edition.get() != edition) {
      // A rebuild migrated the shard between key generation and the
      // lock; regenerate under the edition the postings must match
      // (rare).
      compute(*s1.edition);
    }
    if (num_filters != nullptr) *num_filters = keys.size();
    auto next = std::make_shared<ShardState>(s1);
    auto record = std::make_shared<ShardState::InsertedVector>();
    record->items.assign(items.begin(), items.end());
    record->entries = static_cast<uint32_t>(keys.size());
    next->PutInserted(id, std::move(record));
    // Copy-on-write the touched buckets + posting lists, keeping each
    // list sorted by id so the documented scan order (key position,
    // base-before-delta, id) holds regardless of which writer won the
    // lock first.
    next->AppendDeltaAll(keys, id);
    next->live_entries += keys.size();
    collect = PublishLocked(&shard, std::move(next));
    if (journal) {
      // Durability before acknowledgement: still under the shard's
      // writer mutex, so per-shard journal order matches apply order
      // and SetMutationJournal() can act as a barrier. On error the
      // mutation is applied in memory but unacknowledged (recovery may
      // legitimately not contain it).
      MutationJournal* sink = journal_.load(std::memory_order_acquire);
      if (sink != nullptr) {
        Status logged = sink->LogInsert(id, items);
        if (!logged.ok()) return logged;
      }
    }
  }
  if (collect) epochs_.Collect();
  return Status::OK();
}

Result<VectorId> DynamicIndex::Insert(std::span<const ItemId> items,
                                      size_t* num_filters) {
  if (!built()) return Status::InvalidArgument("index not built");
  SKEWSEARCH_RETURN_NOT_OK(ValidateInsertItems(items));
  // The maximum VectorId is a sentinel that is never handed out and
  // never incremented past, so exhaustion is sticky: the counter cannot
  // wrap back into the live id range and reissue ids.
  VectorId id = next_id_.load(std::memory_order_relaxed);
  do {
    if (id == std::numeric_limits<VectorId>::max()) {
      return Status::Internal("vector id space exhausted");
    }
  } while (!next_id_.compare_exchange_weak(id, id + 1,
                                           std::memory_order_relaxed));

  SKEWSEARCH_RETURN_NOT_OK(ApplyInsert(id, items, num_filters,
                                       /*journal=*/true, /*replay=*/false,
                                       nullptr));
  return id;
}

Result<bool> DynamicIndex::ReplayInsert(VectorId id,
                                        std::span<const ItemId> items) {
  if (!built()) return Status::InvalidArgument("index not built");
  SKEWSEARCH_RETURN_NOT_OK(ValidateInsertItems(items));
  if (id < base_n_) {
    return Status::InvalidArgument(
        "replayed insert id collides with the base dataset");
  }
  if (id == std::numeric_limits<VectorId>::max()) {
    return Status::InvalidArgument("replayed insert id is the sentinel");
  }
  // Bump the allocator past the logged id so post-recovery Insert()
  // traffic cannot reissue it.
  VectorId cur = next_id_.load(std::memory_order_relaxed);
  while (cur <= id && !next_id_.compare_exchange_weak(
                          cur, id + 1, std::memory_order_relaxed)) {
  }
  bool applied = false;
  SKEWSEARCH_RETURN_NOT_OK(ApplyInsert(id, items, nullptr,
                                       /*journal=*/false, /*replay=*/true,
                                       &applied));
  return applied;
}

Result<bool> DynamicIndex::ReplayRemove(VectorId id) {
  Status removed = RemoveImpl(id, /*journal=*/false);
  if (removed.ok()) return true;
  if (removed.code() == Status::Code::kNotFound) {
    // Already gone in the restored snapshot (checkpoint raced the log
    // append); replay is idempotent.
    return false;
  }
  return removed;
}

Status DynamicIndex::Remove(VectorId id) {
  return RemoveImpl(id, /*journal=*/true);
}

Status DynamicIndex::RemoveImpl(VectorId id, bool journal) {
  if (!built()) return Status::InvalidArgument("index not built");
  if (id >= next_id_.load(std::memory_order_relaxed)) {
    return Status::NotFound("no such vector id");
  }
  const int s = ShardedIndex::ShardOf(id, num_shards());
  Shard& shard = *shards_[static_cast<size_t>(s)];
  bool collect = false;
  {
    MutexLock lock(shard.writer);
    const ShardState& s1 = *shard.owner;
    uint32_t entries = 0;
    if (id < base_n_) {
      if (s1.HasRemovedBase(id)) {
        return Status::NotFound("vector already removed");
      }
      auto it = s1.base_counts->find(id);
      entries = it != s1.base_counts->end() ? it->second : 0;
    } else {
      const ShardState::InsertedVector* record = s1.FindInserted(id);
      if (record == nullptr) {
        return Status::NotFound("no such vector id");
      }
      entries = record->entries;
    }
    auto next = std::make_shared<ShardState>(s1);
    if (id < base_n_) {
      next->AddRemovedBase(id);
    } else {
      next->EraseInserted(id);
    }
    next->PutTombstone(id, entries);
    next->dead_entries += entries;
    next->live_entries -= std::min<size_t>(next->live_entries, entries);
    const size_t total = next->live_entries + next->dead_entries;
    const bool wants_maintenance =
        total > 0 &&
        static_cast<double>(next->dead_entries) >
            options_.compact_dead_fraction * static_cast<double>(total);
    collect = PublishLocked(&shard, std::move(next));
    if (journal) {
      // Same contract as the insert path: log before acknowledging,
      // under the shard's writer mutex.
      MutationJournal* sink = journal_.load(std::memory_order_acquire);
      if (sink != nullptr) {
        Status logged = sink->LogRemove(id);
        if (!logged.ok()) return logged;
      }
    }
    if (wants_maintenance) {
      // Never compact in the remover's thread: hand the shard to the
      // maintenance component (if any) and return. Notified under the
      // shard's writer mutex so SetMaintenanceListener() can act as a
      // barrier against in-flight callbacks (see its contract).
      MaintenanceListener* listener =
          listener_.load(std::memory_order_acquire);
      if (listener != nullptr) listener->OnShardDirty(s);
    }
  }
  if (collect) epochs_.Collect();
  return Status::OK();
}

void DynamicIndex::SetMutationJournal(MutationJournal* journal) {
  journal_.store(journal, std::memory_order_seq_cst);
  // Barrier, exactly as SetMaintenanceListener: journal calls run under
  // a shard writer mutex, so sweeping every one guarantees no call into
  // a *previous* journal is still in flight when this returns.
  for (const auto& shard : shards_) {
    MutexLock lock(shard->writer);
  }
}

void DynamicIndex::SetMaintenanceListener(MaintenanceListener* listener) {
  listener_.store(listener, std::memory_order_seq_cst);
  // Barrier: notifications fire under a shard writer mutex, so taking
  // and releasing every one guarantees no callback to a *previous*
  // listener is still in flight when this returns — making it safe to
  // destroy the old listener afterwards.
  for (const auto& shard : shards_) {
    MutexLock lock(shard->writer);
  }
}

Status DynamicIndex::CompactShard(int s) {
  if (!built()) return Status::InvalidArgument("index not built");
  if (s < 0 || s >= num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  std::shared_ptr<const ShardState> s0 = OwnerOf(s);
  // Compaction has two jobs: dropping tombstoned postings and folding
  // the delta into the frozen base (a grown delta slows both queries —
  // one extra hash probe per key — and the COW write path, which clones
  // delta buckets). Nothing to do only when both are absent.
  if (s0->tombstone_count() == 0 && s0->delta_key_count() == 0) {
    return Status::OK();
  }

  // Phase 1 (no locks held): rebuild the frozen table from the pinned
  // snapshot, dropping tombstoned postings and folding the delta in.
  FilterTable fresh;
  fresh.Reserve(s0->live_entries);
  for (size_t k = 0; k < s0->base->num_keys(); ++k) {
    const uint64_t key = s0->base->key_at(k);
    for (VectorId id : s0->base->postings_at(k)) {
      if (!s0->IsTombstoned(id)) fresh.Add(key, id);
    }
  }
  s0->ForEachDelta([&](uint64_t key, const auto& ids) {
    for (VectorId id : *ids) {
      if (!s0->IsTombstoned(id)) fresh.Add(key, id);
    }
  });
  fresh.Freeze();

  // Phase 2: merge the mutations that raced phase 1 and publish. The
  // lock section is bounded by that churn, not by the shard size.
  Shard& shard = *shards_[static_cast<size_t>(s)];
  {
    MutexLock lock(shard.writer);
    const ShardState& s1 = *shard.owner;
    if (s1.edition != s0->edition) {
      return Status::OK();  // a rebuild superseded this compaction
    }
    auto next = std::make_shared<ShardState>();
    next->edition = s1.edition;
    next->base = std::make_shared<FilterTable>(std::move(fresh));
    next->base_counts = s1.base_counts;
    next->inserted = s1.inserted;
    next->removed_base = s1.removed_base;
    // Postings of vectors inserted after the snapshot stay in the delta;
    // everything the snapshot covered is now in the base table.
    size_t delta_entries = 0;
    std::array<ShardState::DeltaMap, ShardState::kDeltaBuckets> kept;
    s1.ForEachDelta([&](uint64_t key, const auto& ids) {
      std::vector<VectorId> keep;
      for (VectorId id : *ids) {
        if (s0->FindInserted(id) == nullptr && !s0->IsTombstoned(id)) {
          keep.push_back(id);
        }
      }
      if (!keep.empty()) {
        delta_entries += keep.size();
        kept[ShardState::DeltaBucketOf(key)].emplace(
            key, std::make_shared<const std::vector<VectorId>>(
                     std::move(keep)));
      }
    });
    next->SetDelta(std::move(kept));
    // Tombstones the snapshot did not cover keep their (still physically
    // present) postings and stay dead until the next compaction.
    size_t dead = 0;
    std::array<ShardState::TombstoneMap, ShardState::kInsertedBuckets>
        kept_tombs;
    s1.ForEachTombstone([&](VectorId id, uint32_t entries) {
      if (!s0->IsTombstoned(id)) {
        kept_tombs[ShardState::BucketOf(id)].emplace(id, entries);
        dead += entries;
      }
    });
    next->SetTombstones(std::move(kept_tombs));
    next->dead_entries = dead;
    const size_t total = next->base->num_pairs() + delta_entries;
    next->live_entries = total - std::min(total, dead);
    PublishLocked(&shard, std::move(next));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  epochs_.Collect();
  return Status::OK();
}

Status DynamicIndex::RebuildShardLocked(
    int s, std::shared_ptr<const Edition> edition) {
  std::shared_ptr<const ShardState> s0 = OwnerOf(s);
  const FilterFamily& family = edition->family;

  // Phase 1 (no locks held): replay the path engine under the new
  // edition for every vector that was live in the snapshot.
  FilterTable fresh;
  auto base_counts = std::make_shared<PostingMap<VectorId, uint32_t>>();
  PostingMap<VectorId, uint32_t> replayed;  // live inserted ids
  std::vector<uint64_t> keys;
  std::vector<size_t> key_offsets;
  auto replay = [&](std::span<const ItemId> items, VectorId id) {
    // Fused all-repetitions pass; identical to per-rep concatenation.
    family.ComputeAllFilters(items, &keys, &key_offsets);
    for (uint64_t key : keys) fresh.Add(key, id);
    return static_cast<uint32_t>(keys.size());
  };
  for (VectorId id = 0; id < base_n_; ++id) {
    if (ShardedIndex::ShardOf(id, num_shards()) != s) continue;
    if (s0->HasRemovedBase(id)) continue;
    const uint32_t count = replay(data_->Get(id), id);
    if (count > 0) base_counts->emplace(id, count);
  }
  std::vector<VectorId> inserted_ids;
  inserted_ids.reserve(s0->inserted_count());
  s0->ForEachInserted(
      [&](VectorId id, const auto& /*record*/) { inserted_ids.push_back(id); });
  std::sort(inserted_ids.begin(), inserted_ids.end());
  // New-edition records for every vector inserted as of the snapshot are
  // also built here, off-lock — the merge below must not pay O(shard)
  // item copies while holding the writer mutex.
  PostingMap<VectorId, std::shared_ptr<const ShardState::InsertedVector>>
      prebuilt;
  prebuilt.reserve(inserted_ids.size());
  for (VectorId id : inserted_ids) {
    const ShardState::InsertedVector& record = *s0->FindInserted(id);
    const uint32_t count =
        replay({record.items.data(), record.items.size()}, id);
    replayed.emplace(id, count);
    auto fresh_record = std::make_shared<ShardState::InsertedVector>();
    fresh_record->items = record.items;
    fresh_record->entries = count;
    prebuilt.emplace(id, std::move(fresh_record));
  }
  fresh.Freeze();

  // Phase 2: short merge of the churn that raced the replay, publish.
  Shard& shard = *shards_[static_cast<size_t>(s)];
  MutexLock lock(shard.writer);
  const ShardState& s1 = *shard.owner;
  if (s1.edition != s0->edition) {
    return Status::Internal("concurrent edition change during rebuild");
  }
  auto next = std::make_shared<ShardState>();
  next->edition = edition;
  next->base_counts = base_counts;
  next->removed_base = s1.removed_base;
  size_t delta_entries = 0;
  PostingMap<uint64_t, std::vector<VectorId>> delta;
  std::array<ShardState::InsertedMap, ShardState::kInsertedBuckets>
      fresh_buckets;
  s1.ForEachInserted([&](VectorId id, const auto& record) {
    auto done = prebuilt.find(id);
    if (done != prebuilt.end()) {
      // Folded into the fresh base table; the new-edition record was
      // already built off-lock — O(1) here.
      fresh_buckets[ShardState::BucketOf(id)].emplace(
          id, std::move(done->second));
      return;
    }
    // Inserted while we were replaying: generate its postings under
    // the new edition now (bounded by the churn, not the shard size).
    family.ComputeAllFilters({record->items.data(), record->items.size()},
                             &keys, &key_offsets);
    for (uint64_t key : keys) delta[key].push_back(id);
    delta_entries += keys.size();
    auto fresh_record = std::make_shared<ShardState::InsertedVector>();
    fresh_record->items = record->items;
    fresh_record->entries = static_cast<uint32_t>(keys.size());
    fresh_buckets[ShardState::BucketOf(id)].emplace(
        id, std::move(fresh_record));
  });
  for (size_t b = 0; b < fresh_buckets.size(); ++b) {
    if (fresh_buckets[b].empty()) continue;
    next->inserted[b] = std::make_shared<const ShardState::InsertedMap>(
        std::move(fresh_buckets[b]));
  }
  std::array<ShardState::DeltaMap, ShardState::kDeltaBuckets> delta_buckets;
  for (auto& [key, ids] : delta) {
    std::sort(ids.begin(), ids.end());
    delta_buckets[ShardState::DeltaBucketOf(key)].emplace(
        key, std::make_shared<const std::vector<VectorId>>(std::move(ids)));
  }
  next->SetDelta(std::move(delta_buckets));
  size_t dead = 0;
  std::array<ShardState::TombstoneMap, ShardState::kInsertedBuckets>
      tomb_buckets;
  s1.ForEachTombstone([&](VectorId id, uint32_t /*old_entries*/) {
    if (s0->IsTombstoned(id)) return;  // not regenerated
    uint32_t entries = 0;
    if (id < base_n_) {
      auto it = base_counts->find(id);
      entries = it != base_counts->end() ? it->second : 0;
    } else {
      auto it = replayed.find(id);
      if (it == replayed.end()) return;  // insert+remove raced phase 1
      entries = it->second;
    }
    tomb_buckets[ShardState::BucketOf(id)].emplace(id, entries);
    dead += entries;
  });
  next->SetTombstones(std::move(tomb_buckets));
  next->base = std::make_shared<FilterTable>(std::move(fresh));
  next->dead_entries = dead;
  const size_t total = next->base->num_pairs() + delta_entries;
  next->live_entries = total - std::min(total, dead);
  PublishLocked(&shard, std::move(next));
  return Status::OK();
}

Status DynamicIndex::RebuildForSize(size_t target_n) {
  if (!built()) return Status::InvalidArgument("index not built");
  if (target_n < 2) {
    return Status::InvalidArgument("target size must be at least 2");
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  Result<FilterFamily> family =
      FilterFamily::Create(dist_, options_.index, target_n);
  if (!family.ok()) return family.status();
  auto edition = std::make_shared<Edition>();
  edition->family = std::move(family).value();
  edition->derived_n = target_n;
  {
    std::lock_guard<std::mutex> lock(editions_mutex_);
    edition->version = static_cast<uint64_t>(editions_.size());
    editions_.push_back(edition);
  }
  for (int s = 0; s < num_shards(); ++s) {
    SKEWSEARCH_RETURN_NOT_OK(RebuildShardLocked(s, edition));
  }
  current_edition_.store(edition.get(), std::memory_order_seq_cst);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  epochs_.Collect();
  return Status::OK();
}

std::span<const ItemId> DynamicIndex::ItemsOf(const ShardState& state,
                                              VectorId id) const {
  if (id < base_n_) return data_->Get(id);
  const ShardState::InsertedVector* record = state.FindInserted(id);
  if (record == nullptr) return {};
  return {record->items.data(), record->items.size()};
}

// Per-query workspace reused across a batch. Editions are keyed by
// pointer; almost every query sees exactly one.
struct DynamicIndex::QueryScratch {
  struct EditionKeys {
    const Edition* edition = nullptr;
    std::vector<uint64_t> keys;
  };
  std::vector<EditionKeys> editions;
  std::vector<PostingSet<VectorId>> seen;
  PathGenStats path_gen;

  EditionKeys& KeysFor(const Edition* edition) {
    for (EditionKeys& entry : editions) {
      if (entry.edition == edition) return entry;
    }
    editions.push_back(EditionKeys{edition, {}});
    return editions.back();
  }
};

DynamicIndex::RepHit DynamicIndex::ScanShardRep(
    const ShardState& state, std::span<const ItemId> query,
    const std::vector<uint64_t>& keys, PostingSet<VectorId>* seen,
    QueryStats* stats) const {
  RepHit hit;
  const double threshold = state.edition->family.verify_threshold();
  auto consider = [&](size_t key_idx, uint8_t phase, VectorId id) {
    if (!seen->insert(id).second) return false;
    if (state.IsTombstoned(id)) return false;
    auto items = ItemsOf(state, id);
    if (items.empty()) return false;
    stats->verifications++;
    double sim = Similarity(options_.index.verify_measure, query, items);
    if (sim >= threshold) {
      hit.found = true;
      hit.key_idx = key_idx;
      hit.phase = phase;
      hit.id = id;
      hit.similarity = sim;
      return true;
    }
    return false;
  };
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    auto postings = state.base->Lookup(keys[ki]);
    stats->candidates += postings.size();
    for (VectorId id : postings) {
      if (consider(ki, 0, id)) return hit;
    }
    const std::vector<VectorId>* extra = state.FindDelta(keys[ki]);
    if (extra != nullptr) {
      stats->candidates += extra->size();
      for (VectorId id : *extra) {
        if (consider(ki, 1, id)) return hit;
      }
    }
  }
  return hit;
}

std::optional<Match> DynamicIndex::QueryImpl(
    const std::vector<const void*>& states, std::span<const ItemId> query,
    QueryStats* stats, QueryScratch* scratch) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (!states.empty() && !query.empty()) {
    const size_t num = states.size();
    scratch->seen.resize(num);
    for (auto& seen : scratch->seen) seen.clear();
    // Editions referenced by this view (usually one; two mid-rebuild).
    scratch->editions.clear();
    int max_reps = 0;
    for (const void* raw : states) {
      const auto* state = static_cast<const ShardState*>(raw);
      scratch->KeysFor(state->edition.get());
      max_reps = std::max(max_reps, state->edition->family.repetitions());
    }
    std::vector<RepHit> hits(num);
    for (int rep = 0; rep < max_reps && !found; ++rep) {
      for (auto& entry : scratch->editions) {
        if (rep >= entry.edition->family.repetitions()) continue;
        entry.keys.clear();
        PathGenStats gen;
        entry.edition->family.ComputeFilters(
            query, static_cast<uint32_t>(rep), &entry.keys, &gen);
        AddPathGenStats(&scratch->path_gen, gen);
        local.filters += entry.keys.size();
      }
      const RepHit* best = nullptr;
      for (size_t s = 0; s < num; ++s) {
        const auto* state = static_cast<const ShardState*>(states[s]);
        if (rep >= state->edition->family.repetitions()) continue;
        QueryStats shard_stats;
        hits[s] = ScanShardRep(*state, query,
                               scratch->KeysFor(state->edition.get()).keys,
                               &scratch->seen[s], &shard_stats);
        local.candidates += shard_stats.candidates;
        local.verifications += shard_stats.verifications;
        const RepHit& hit = hits[s];
        if (!hit.found) continue;
        if (best == nullptr || hit.key_idx < best->key_idx ||
            (hit.key_idx == best->key_idx &&
             (hit.phase < best->phase ||
              (hit.phase == best->phase && hit.id < best->id)))) {
          best = &hits[s];
        }
      }
      if (best != nullptr) found = Match{best->id, best->similarity};
    }
    size_t distinct = 0;
    for (const auto& seen : scratch->seen) distinct += seen.size();
    local.distinct_candidates = distinct;
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<Match> DynamicIndex::QueryAllImpl(
    const std::vector<const void*>& states, std::span<const ItemId> query,
    double threshold, QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (!states.empty() && !query.empty()) {
    // Full key lists (all repetitions) per referenced edition.
    std::vector<std::pair<const Edition*, std::vector<uint64_t>>> keys;
    auto keys_for = [&](const Edition* edition)
        -> const std::vector<uint64_t>& {
      for (auto& entry : keys) {
        if (entry.first == edition) return entry.second;
      }
      keys.emplace_back(edition, std::vector<uint64_t>());
      std::vector<uint64_t>& fresh = keys.back().second;
      // All repetitions probed (no early exit): one fused pass.
      std::vector<size_t> offsets;
      edition->family.ComputeAllFilters(query, &fresh, &offsets);
      local.filters += fresh.size();
      return fresh;
    };
    for (const void* raw : states) {
      const auto* state = static_cast<const ShardState*>(raw);
      const std::vector<uint64_t>& shard_keys =
          keys_for(state->edition.get());
      PostingSet<VectorId> seen;
      auto consider = [&](VectorId id) {
        if (!seen.insert(id).second) return;
        if (state->IsTombstoned(id)) return;
        auto items = ItemsOf(*state, id);
        if (items.empty()) return;
        local.verifications++;
        double sim = Similarity(options_.index.verify_measure, query, items);
        if (sim >= threshold) out.push_back({id, sim});
      };
      for (uint64_t key : shard_keys) {
        auto postings = state->base->Lookup(key);
        local.candidates += postings.size();
        for (VectorId id : postings) consider(id);
        const std::vector<VectorId>* extra = state->FindDelta(key);
        if (extra != nullptr) {
          local.candidates += extra->size();
          for (VectorId id : *extra) consider(id);
        }
      }
      local.distinct_candidates += seen.size();
    }
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

std::optional<Match> DynamicIndex::Query(std::span<const ItemId> query,
                                         QueryStats* stats) const {
  if (!built()) {
    if (stats != nullptr) *stats = QueryStats{};
    return std::nullopt;
  }
  Snapshot snapshot = GetSnapshot();
  QueryScratch scratch;
  return QueryImpl(snapshot.states_, query, stats, &scratch);
}

std::vector<Match> DynamicIndex::QueryAll(std::span<const ItemId> query,
                                          double threshold,
                                          QueryStats* stats) const {
  if (!built()) {
    if (stats != nullptr) *stats = QueryStats{};
    return {};
  }
  Snapshot snapshot = GetSnapshot();
  return QueryAllImpl(snapshot.states_, query, threshold, stats);
}

DynamicIndex::Snapshot DynamicIndex::GetSnapshot() const {
  Snapshot snapshot;
  if (!built()) return snapshot;
  snapshot.index_ = this;
  snapshot.guard_ = epochs_.Pin();
  snapshot.states_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.states_.push_back(
        shard->state.load(std::memory_order_seq_cst));
  }
  return snapshot;
}

std::optional<Match> DynamicIndex::Snapshot::Query(
    std::span<const ItemId> query, QueryStats* stats) const {
  if (!valid()) {
    if (stats != nullptr) *stats = QueryStats{};
    return std::nullopt;
  }
  QueryScratch scratch;
  return index_->QueryImpl(states_, query, stats, &scratch);
}

std::vector<Match> DynamicIndex::Snapshot::QueryAll(
    std::span<const ItemId> query, double threshold,
    QueryStats* stats) const {
  if (!valid()) {
    if (stats != nullptr) *stats = QueryStats{};
    return {};
  }
  return index_->QueryAllImpl(states_, query, threshold, stats);
}

size_t DynamicIndex::Snapshot::size() const {
  if (!valid()) return 0;
  size_t live = index_->base_n_;
  for (const void* raw : states_) {
    const auto* state = static_cast<const ShardState*>(raw);
    live += state->inserted_count();
    live -= state->removed_base_count();
  }
  return live;
}

std::vector<std::optional<Match>> DynamicIndex::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> DynamicIndex::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  // One pinned snapshot for the whole batch: a consistent cross-shard
  // cut, unaffected by concurrent writers, compaction or rebuild.
  Snapshot snapshot = GetSnapshot();
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(snapshot.states_,
                         queries.Get(static_cast<VectorId>(i)), query_stats,
                         scratch);
      },
      [](const QueryScratch& scratch, BatchQueryStats* agg) {
        AddPathGenStats(&agg->path_gen, scratch.path_gen);
      });
}

bool DynamicIndex::IsLive(VectorId id) const {
  if (!built() || id >= next_id_.load(std::memory_order_relaxed)) {
    return false;
  }
  EpochManager::Guard guard = epochs_.Pin();
  const ShardState* state =
      shards_[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards()))]
          ->state.load(std::memory_order_seq_cst);
  if (id < base_n_) return !state->HasRemovedBase(id);
  return state->FindInserted(id) != nullptr;
}

size_t DynamicIndex::size() const {
  if (!built()) return 0;
  return GetSnapshot().size();
}

size_t DynamicIndex::num_tombstones() const {
  if (!built()) return 0;
  EpochManager::Guard guard = epochs_.Pin();
  size_t total = 0;
  for (const auto& shard : shards_) {
    total +=
        shard->state.load(std::memory_order_seq_cst)->tombstone_count();
  }
  return total;
}

ShardHealth DynamicIndex::Health(int s) const {
  ShardHealth health;
  if (!built() || s < 0 || s >= num_shards()) return health;
  EpochManager::Guard guard = epochs_.Pin();
  const ShardState* state =
      shards_[static_cast<size_t>(s)]->state.load(std::memory_order_seq_cst);
  health.live_entries = state->live_entries;
  health.dead_entries = state->dead_entries;
  state->ForEachDelta([&](uint64_t /*key*/, const auto& ids) {
    health.delta_entries += ids->size();
  });
  health.tombstones = state->tombstone_count();
  health.edition = state->edition->version;
  const size_t total = health.live_entries + health.dead_entries;
  health.dead_ratio =
      total > 0 ? static_cast<double>(health.dead_entries) /
                      static_cast<double>(total)
                : 0.0;
  return health;
}

OnlineIndexProfile DynamicIndex::Profile() const {
  OnlineIndexProfile profile;
  if (!built()) return profile;
  EpochManager::Guard guard = epochs_.Pin();
  for (const auto& shard : shards_) {
    const ShardState* state =
        shard->state.load(std::memory_order_seq_cst);
    profile.base_entries += state->base->num_pairs();
    profile.dead_entries += state->dead_entries;
    profile.delta_keys += state->delta_key_count();
    state->ForEachDelta([&](uint64_t /*key*/, const auto& ids) {
      profile.delta_entries += ids->size();
    });
  }
  return profile;
}

size_t DynamicIndex::derived_n() const {
  const Edition* edition = current_edition_.load(std::memory_order_acquire);
  return edition != nullptr ? edition->derived_n : 0;
}

uint64_t DynamicIndex::edition_version() const {
  const Edition* edition = current_edition_.load(std::memory_order_acquire);
  return edition != nullptr ? edition->version : 0;
}

int DynamicIndex::repetitions() const {
  const Edition* edition = current_edition_.load(std::memory_order_acquire);
  return edition != nullptr ? edition->family.repetitions() : 0;
}

double DynamicIndex::verify_threshold() const {
  const Edition* edition = current_edition_.load(std::memory_order_acquire);
  return edition != nullptr ? edition->family.verify_threshold() : 0.0;
}

const FilterFamily& DynamicIndex::family() const {
  static const FilterFamily kEmpty;
  const Edition* edition = current_edition_.load(std::memory_order_acquire);
  return edition != nullptr ? edition->family : kEmpty;
}

size_t DynamicIndex::MemoryBytes() const {
  if (!built()) return 0;
  EpochManager::Guard guard = epochs_.Pin();
  size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardState* state =
        shard->state.load(std::memory_order_seq_cst);
    total += state->base->MemoryBytes();
    state->ForEachDelta([&](uint64_t key, const auto& ids) {
      total += sizeof(key) + ids->capacity() * sizeof(VectorId);
    });
    total +=
        state->tombstone_count() * (sizeof(VectorId) + sizeof(uint32_t));
    state->ForEachInserted([&](VectorId id, const auto& record) {
      total += sizeof(id) + record->items.capacity() * sizeof(ItemId);
    });
  }
  return total;
}

Status DynamicIndex::Save(const std::string& path) const {
  namespace io = index_io_internal;
  if (!built()) {
    return Status::InvalidArgument("cannot save an unbuilt index");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  // One pinned snapshot: cross-shard consistent, and writers are never
  // blocked while we serialize.
  Snapshot snapshot = GetSnapshot();
  std::vector<std::shared_ptr<const Edition>> editions;
  uint32_t current_version = 0;
  {
    std::lock_guard<std::mutex> lock(editions_mutex_);
    editions = editions_;
    // Recorded explicitly: a save can race a rebuild that has already
    // appended its new edition but not yet migrated every shard, in
    // which case the newest edition is *not* the current one — loading
    // it as current would report parameters no shard serves and pin
    // derived_n at the rebuild target, so the drift trigger could never
    // fire again to finish the migration.
    current_version = static_cast<uint32_t>(
        current_edition_.load(std::memory_order_seq_cst)->version);
  }

  out.write(kDynamicMagic, sizeof(kDynamicMagic));
  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  const uint64_t base_n = base_n_;
  const uint32_t next_id = next_id_.load(std::memory_order_relaxed);
  bool ok = io::WriteParams(out, options_.index,
                            editions[0]->family.verify_threshold(),
                            build_stats_) &&
            io::WritePod(out, io::Fingerprint(*data_)) &&
            io::WritePod(out, num_shards) &&
            io::WritePod(out, options_.compact_dead_fraction) &&
            io::WritePod(out, base_n) && io::WritePod(out, next_id);
  const uint32_t num_editions = static_cast<uint32_t>(editions.size());
  ok = ok && io::WritePod(out, num_editions) &&
       io::WritePod(out, current_version);
  for (const auto& edition : editions) {
    const uint64_t derived_n = edition->derived_n;
    const int32_t repetitions = edition->family.repetitions();
    const double delta = edition->family.delta();
    const double verify_threshold = edition->family.verify_threshold();
    ok = ok && io::WritePod(out, derived_n) &&
         io::WritePod(out, repetitions) && io::WritePod(out, delta) &&
         io::WritePod(out, verify_threshold);
  }
  if (!ok) return Status::IOError("header write to '" + path + "' failed");

  for (const void* raw : snapshot.states_) {
    const auto* state = static_cast<const ShardState*>(raw);
    const uint32_t edition_version =
        static_cast<uint32_t>(state->edition->version);
    ok = io::WritePod(out, edition_version);
    if (!ok) return Status::IOError("shard write to '" + path + "' failed");
    SKEWSEARCH_RETURN_NOT_OK(state->base->WriteTo(&out));
    // Delta postings sorted by key so identical states save identical
    // bytes (posting order within a key is kept as stored).
    std::vector<uint64_t> delta_keys;
    delta_keys.reserve(state->delta_key_count());
    state->ForEachDelta(
        [&](uint64_t key, const auto& /*ids*/) { delta_keys.push_back(key); });
    std::sort(delta_keys.begin(), delta_keys.end());
    uint64_t delta_count = delta_keys.size();
    ok = io::WritePod(out, delta_count);
    for (uint64_t key : delta_keys) {
      ok = ok && io::WritePod(out, key) &&
           io::WriteVector(out, *state->FindDelta(key));
    }
    // Tombstones as (id, entries) pairs, sorted by id.
    std::vector<std::pair<VectorId, uint32_t>> tombs;
    tombs.reserve(state->tombstone_count());
    state->ForEachTombstone([&](VectorId id, uint32_t entries) {
      tombs.emplace_back(id, entries);
    });
    std::sort(tombs.begin(), tombs.end());
    uint64_t tomb_count = tombs.size();
    ok = ok && io::WritePod(out, tomb_count);
    for (const auto& [id, entries] : tombs) {
      ok = ok && io::WritePod(out, id) && io::WritePod(out, entries);
    }
    std::vector<VectorId> removed;
    removed.reserve(state->removed_base_count());
    state->ForEachRemovedBase(
        [&](VectorId id) { removed.push_back(id); });
    std::sort(removed.begin(), removed.end());
    ok = ok && io::WriteVector(out, removed);
    // Inserted vectors, sorted by id. Entry counts are not serialized —
    // Load recomputes them from the postings.
    std::vector<VectorId> ids;
    ids.reserve(state->inserted_count());
    state->ForEachInserted(
        [&](VectorId id, const auto& /*record*/) { ids.push_back(id); });
    std::sort(ids.begin(), ids.end());
    uint64_t inserted_count = ids.size();
    ok = ok && io::WritePod(out, inserted_count);
    for (VectorId id : ids) {
      ok = ok && io::WritePod(out, id) &&
           io::WriteVector(out, state->FindInserted(id)->items);
    }
    uint64_t live = state->live_entries, dead = state->dead_entries;
    ok = ok && io::WritePod(out, live) && io::WritePod(out, dead);
    if (!ok) return Status::IOError("shard write to '" + path + "' failed");
  }
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Status DynamicIndex::Load(const std::string& path, const Dataset* data,
                          const ProductDistribution* dist) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDynamicMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "'" + path + "' is not a skewsearch dynamic index file");
  }
  io::ParamHeader header;
  Status params = io::ReadParams(in, &header);
  if (!params.ok()) {
    return Status::InvalidArgument(params.message() + " in '" + path + "'");
  }
  uint64_t fingerprint = 0, base_n = 0;
  uint32_t num_shards = 0, next_id = 0, num_editions = 0;
  uint32_t current_version = 0;
  double compact_fraction = 0.0;
  if (!io::ReadPod(in, &fingerprint) || !io::ReadPod(in, &num_shards) ||
      !io::ReadPod(in, &compact_fraction) || !io::ReadPod(in, &base_n) ||
      !io::ReadPod(in, &next_id) || !io::ReadPod(in, &num_editions) ||
      !io::ReadPod(in, &current_version)) {
    return Status::InvalidArgument("truncated index header in '" + path +
                                   "'");
  }
  if (fingerprint != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (base_n != data->size() || next_id < base_n) {
    return Status::InvalidArgument("corrupt id bounds in '" + path + "'");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("corrupt shard count in '" + path + "'");
  }
  if (!(compact_fraction > 0.0) || !std::isfinite(compact_fraction)) {
    return Status::InvalidArgument("corrupt compaction threshold in '" +
                                   path + "'");
  }
  if (num_editions < 1 || num_editions > kMaxEditions) {
    return Status::InvalidArgument("corrupt edition count in '" + path +
                                   "'");
  }
  if (current_version >= num_editions) {
    return Status::InvalidArgument("corrupt current edition in '" + path +
                                   "'");
  }
  std::vector<std::shared_ptr<const Edition>> editions;
  editions.reserve(num_editions);
  for (uint32_t e = 0; e < num_editions; ++e) {
    uint64_t derived_n = 0;
    int32_t repetitions = 0;
    double delta = 0.0, verify_threshold = 0.0;
    if (!io::ReadPod(in, &derived_n) || !io::ReadPod(in, &repetitions) ||
        !io::ReadPod(in, &delta) || !io::ReadPod(in, &verify_threshold)) {
      return Status::InvalidArgument("truncated edition block in '" + path +
                                     "'");
    }
    if (derived_n < 2) {
      return Status::InvalidArgument("corrupt edition block in '" + path +
                                     "'");
    }
    Result<FilterFamily> family = FilterFamily::Restore(
        dist, header.options, static_cast<size_t>(derived_n), repetitions,
        delta, verify_threshold);
    if (!family.ok()) {
      return Status::InvalidArgument("corrupt edition block in '" + path +
                                     "': " + family.status().message());
    }
    auto edition = std::make_shared<Edition>();
    edition->family = std::move(family).value();
    edition->version = e;
    edition->derived_n = static_cast<size_t>(derived_n);
    editions.push_back(std::move(edition));
  }

  const int shard_count = static_cast<int>(num_shards);
  auto in_shard = [&](VectorId id, int s) {
    return id < next_id && ShardedIndex::ShardOf(id, shard_count) == s;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint32_t edition_version = 0;
    if (!io::ReadPod(in, &edition_version) ||
        edition_version >= num_editions) {
      return Status::InvalidArgument("corrupt shard edition in '" + path +
                                     "'");
    }
    auto state = std::make_shared<ShardState>();
    state->edition = editions[edition_version];
    auto base = std::make_shared<FilterTable>();
    SKEWSEARCH_RETURN_NOT_OK(base->ReadFrom(&in));
    for (size_t k = 0; k < base->num_keys(); ++k) {
      for (VectorId id : base->postings_at(k)) {
        if (!in_shard(id, static_cast<int>(s))) {
          return Status::InvalidArgument(
              "shard table references out-of-place vector ids");
        }
      }
    }
    state->base = base;
    uint64_t delta_count = 0;
    size_t delta_entries = 0;
    if (!io::ReadPod(in, &delta_count) || delta_count > kMaxBlockCount) {
      return Status::InvalidArgument("corrupt delta block in '" + path +
                                     "'");
    }
    std::array<ShardState::DeltaMap, ShardState::kDeltaBuckets>
        delta_buckets;
    for (uint64_t k = 0; k < delta_count; ++k) {
      uint64_t key = 0;
      std::vector<VectorId> ids;
      if (!io::ReadPod(in, &key) || !io::ReadVector(in, &ids) ||
          ids.empty()) {
        return Status::InvalidArgument("corrupt delta block in '" + path +
                                       "'");
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] < base_n || !in_shard(ids[i], static_cast<int>(s))) {
          return Status::InvalidArgument(
              "delta postings reference out-of-place vector ids");
        }
        if (i > 0 && ids[i] < ids[i - 1]) {
          return Status::InvalidArgument(
              "delta postings not sorted by vector id");
        }
      }
      delta_entries += ids.size();
      const bool fresh =
          delta_buckets[ShardState::DeltaBucketOf(key)]
              .emplace(key, std::make_shared<const std::vector<VectorId>>(
                                std::move(ids)))
              .second;
      if (!fresh) {
        return Status::InvalidArgument("duplicate delta key in '" + path +
                                       "'");
      }
    }
    state->SetDelta(std::move(delta_buckets));
    uint64_t tomb_count = 0;
    uint64_t tomb_entry_total = 0;
    if (!io::ReadPod(in, &tomb_count) || tomb_count > kMaxBlockCount) {
      return Status::InvalidArgument("corrupt tombstone block in '" + path +
                                     "'");
    }
    std::array<ShardState::TombstoneMap, ShardState::kInsertedBuckets>
        tomb_buckets;
    for (uint64_t k = 0; k < tomb_count; ++k) {
      VectorId id = 0;
      uint32_t entries = 0;
      if (!io::ReadPod(in, &id) || !io::ReadPod(in, &entries) ||
          !in_shard(id, static_cast<int>(s))) {
        return Status::InvalidArgument("corrupt tombstone block in '" +
                                       path + "'");
      }
      if (!tomb_buckets[ShardState::BucketOf(id)]
               .emplace(id, entries)
               .second) {
        return Status::InvalidArgument("duplicate tombstone in '" + path +
                                       "'");
      }
      tomb_entry_total += entries;
    }
    state->SetTombstones(std::move(tomb_buckets));
    std::vector<VectorId> removed;
    if (!io::ReadVector(in, &removed)) {
      return Status::InvalidArgument("corrupt removed-base block in '" +
                                     path + "'");
    }
    for (VectorId id : removed) {
      if (id >= base_n || !in_shard(id, static_cast<int>(s))) {
        return Status::InvalidArgument(
            "removed-base ids reference out-of-place vector ids");
      }
    }
    {
      std::array<ShardState::RemovedSet, ShardState::kInsertedBuckets>
          removed_buckets;
      for (VectorId id : removed) {
        removed_buckets[ShardState::BucketOf(id)].insert(id);
      }
      for (size_t b = 0; b < removed_buckets.size(); ++b) {
        if (removed_buckets[b].empty()) continue;
        state->removed_base[b] = std::make_shared<const ShardState::RemovedSet>(
            std::move(removed_buckets[b]));
      }
    }
    uint64_t inserted_count = 0;
    if (!io::ReadPod(in, &inserted_count) ||
        inserted_count > kMaxBlockCount) {
      return Status::InvalidArgument("corrupt inserted block in '" + path +
                                     "'");
    }
    PostingMap<VectorId, ShardState::InsertedVector> inserted;
    for (uint64_t k = 0; k < inserted_count; ++k) {
      VectorId id = 0;
      std::vector<ItemId> items;
      if (!io::ReadPod(in, &id) || !io::ReadVector(in, &items)) {
        return Status::InvalidArgument("corrupt inserted block in '" + path +
                                       "'");
      }
      if (id < base_n || !in_shard(id, static_cast<int>(s)) ||
          state->IsTombstoned(id)) {
        return Status::InvalidArgument(
            "inserted vectors reference out-of-place ids");
      }
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i] >= dist->dimension() ||
            (i > 0 && items[i] <= items[i - 1])) {
          return Status::InvalidArgument("inserted vector has invalid items");
        }
      }
      ShardState::InsertedVector record;
      record.items = std::move(items);
      inserted.emplace(id, std::move(record));
    }
    uint64_t live = 0, dead = 0;
    if (!io::ReadPod(in, &live) || !io::ReadPod(in, &dead)) {
      return Status::InvalidArgument("corrupt shard footer in '" + path +
                                     "'");
    }
    // Structural invariants the in-memory state maintains; reject files
    // that violate them rather than serving inconsistent accounting.
    const uint64_t physical =
        static_cast<uint64_t>(base->num_pairs()) + delta_entries;
    if (live + dead != physical || dead != tomb_entry_total) {
      return Status::InvalidArgument("inconsistent entry accounting in '" +
                                     path + "'");
    }
    state->live_entries = static_cast<size_t>(live);
    state->dead_entries = static_cast<size_t>(dead);

    // Recompute per-vector entry counts (not serialized) by scanning the
    // postings once: base ids into the shard's count map, inserted ids
    // into their records. Tombstoned ids may still appear in postings;
    // their counts are charged but never read again.
    auto base_counts = std::make_shared<PostingMap<VectorId, uint32_t>>();
    auto charge = [&](VectorId id) {
      if (id < base_n) {
        (*base_counts)[id]++;
      } else {
        auto it = inserted.find(id);
        if (it != inserted.end()) it->second.entries++;
      }
    };
    for (size_t k = 0; k < base->num_keys(); ++k) {
      for (VectorId id : base->postings_at(k)) charge(id);
    }
    state->ForEachDelta([&](uint64_t /*key*/, const auto& ids) {
      for (VectorId id : *ids) charge(id);
    });
    state->base_counts = std::move(base_counts);
    std::array<ShardState::InsertedMap, ShardState::kInsertedBuckets>
        buckets;
    for (auto& [id, record] : inserted) {
      buckets[ShardState::BucketOf(id)].emplace(
          id, std::make_shared<const ShardState::InsertedVector>(
                  std::move(record)));
    }
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].empty()) continue;
      state->inserted[b] = std::make_shared<const ShardState::InsertedMap>(
          std::move(buckets[b]));
    }

    auto shard = std::make_unique<Shard>();
    shard->state.store(state.get(), std::memory_order_seq_cst);
    shard->owner = std::move(state);
    shards.push_back(std::move(shard));
  }

  data_ = data;
  dist_ = dist;
  options_.index = header.options;
  options_.num_shards = shard_count;
  options_.compact_dead_fraction = compact_fraction;
  build_stats_ = header.stats;
  base_n_ = static_cast<size_t>(base_n);
  shards_ = std::move(shards);
  {
    std::lock_guard<std::mutex> lock(editions_mutex_);
    editions_ = std::move(editions);
    // The saved current edition, not editions_.back(): the file may
    // capture a rebuild mid-migration, where the newest edition is not
    // yet current. Restoring the true current keeps derived_n() honest
    // so the drift trigger can still fire and finish the migration.
    current_edition_.store(editions_[current_version].get(),
                           std::memory_order_seq_cst);
  }
  next_id_.store(next_id, std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  rebuilds_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace skewsearch
