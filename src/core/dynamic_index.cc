#include "core/dynamic_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "core/batch.h"
#include "core/index_io.h"
#include "sim/measures.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

constexpr char kDynamicMagic[4] = {'S', 'K', 'D', '1'};
constexpr int kMaxShards = 1 << 12;

}  // namespace

/// One hash partition of the online index. All mutable state is guarded
/// by `mutex`; the immutable pieces (family, base dataset) live outside.
struct DynamicIndex::Shard {
  mutable PaddedSharedMutex mutex;

  /// Frozen postings of the vectors present at Build()/last compaction.
  FilterTable base;

  /// Postings of vectors inserted since, keyed like the base table.
  std::unordered_map<uint64_t, std::vector<VectorId>> delta;

  /// Removed ids whose postings are still physically present. Cleared by
  /// compaction (which drops the postings themselves).
  std::unordered_set<VectorId> tombstones;

  /// Removed *base* ids, kept forever: the base dataset still contains
  /// these vectors, so liveness bookkeeping (IsLive/size/double-Remove)
  /// needs them even after compaction has dropped their postings.
  /// Removed inserted ids need no such record — they leave `inserted`.
  std::unordered_set<VectorId> removed_base;

  /// One live inserted vector: its items plus the posting-entry count it
  /// contributed (so Remove can charge dead entries in O(1)).
  struct InsertedVector {
    std::vector<ItemId> items;
    uint32_t entries = 0;
  };

  /// Live inserted vectors by id.
  std::unordered_map<VectorId, InsertedVector> inserted;

  /// Posting entries referencing live / tombstoned ids. A vector always
  /// contributes the same entry count it did at insert (filter keys are
  /// deterministic), so these stay exact.
  size_t live_entries = 0;
  size_t dead_entries = 0;
};

DynamicIndex::DynamicIndex() = default;
DynamicIndex::~DynamicIndex() = default;

Status DynamicIndex::Build(const Dataset* data,
                           const ProductDistribution* dist,
                           const DynamicIndexOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, 4096]");
  }
  if (!(options.compact_dead_fraction > 0.0) ||
      !std::isfinite(options.compact_dead_fraction)) {
    return Status::InvalidArgument(
        "compact_dead_fraction must be positive and finite");
  }
  Result<FilterFamily> family =
      FilterFamily::Create(dist, options.index, data->size());
  if (!family.ok()) return family.status();

  Timer timer;
  data_ = data;
  dist_ = dist;
  options_ = options;
  family_ = std::move(family).value();

  build_stats_ = IndexBuildStats{};
  build_stats_.repetitions = family_.repetitions();
  build_stats_.delta_used = family_.delta();
  std::vector<FilterTable> tables;
  SKEWSEARCH_RETURN_NOT_OK(sharded_internal::BuildShardTables(
      *data, family_, options.num_shards, options.index.build_threads,
      &build_stats_, &tables, &base_entry_counts_));

  shards_.clear();
  shards_.reserve(tables.size());
  for (FilterTable& table : tables) {
    auto shard = std::make_unique<Shard>();
    shard->base = std::move(table);
    shard->live_entries = shard->base.num_pairs();
    shards_.push_back(std::move(shard));
  }
  base_n_ = data->size();
  next_id_.store(static_cast<VectorId>(base_n_), std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  build_stats_.build_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Result<VectorId> DynamicIndex::Insert(std::span<const ItemId> items,
                                      size_t* num_filters) {
  if (!built()) return Status::InvalidArgument("index not built");
  if (items.empty()) {
    return Status::InvalidArgument("cannot insert an empty vector");
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] >= dist_->dimension()) {
      return Status::InvalidArgument(
          "item outside the distribution's universe");
    }
    if (i > 0 && items[i] <= items[i - 1]) {
      return Status::InvalidArgument(
          "items must be strictly increasing");
    }
  }
  const VectorId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (id < base_n_) {  // wrapped uint32 id space
    return Status::Internal("vector id space exhausted");
  }

  // Path generation happens outside any lock; the family is immutable.
  std::vector<uint64_t> keys;
  for (int rep = 0; rep < family_.repetitions(); ++rep) {
    family_.ComputeFilters(items, static_cast<uint32_t>(rep), &keys, nullptr);
  }
  if (num_filters != nullptr) *num_filters = keys.size();

  Shard& shard =
      *shards_[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards()))];
  WriterLock lock(shard.mutex);
  Shard::InsertedVector record;
  record.items.assign(items.begin(), items.end());
  record.entries = static_cast<uint32_t>(keys.size());
  shard.inserted.emplace(id, std::move(record));
  for (uint64_t key : keys) {
    // Keep each delta posting list sorted by id so the documented scan
    // order (key position, base-before-delta, id) holds regardless of
    // which writer won the lock first; ids mostly arrive in increasing
    // order, so this is an O(1) append in the common case.
    std::vector<VectorId>& ids = shard.delta[key];
    ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
  }
  shard.live_entries += keys.size();
  return id;
}

Status DynamicIndex::Remove(VectorId id) {
  if (!built()) return Status::InvalidArgument("index not built");
  if (id >= next_id_.load(std::memory_order_relaxed)) {
    return Status::NotFound("no such vector id");
  }
  Shard& shard =
      *shards_[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards()))];

  WriterLock lock(shard.mutex);
  size_t entries = 0;
  if (id < base_n_) {
    if (!shard.removed_base.insert(id).second) {
      return Status::NotFound("vector already removed");
    }
    entries = base_entry_counts_[id];
  } else {
    auto it = shard.inserted.find(id);
    if (it == shard.inserted.end()) {
      return Status::NotFound("no such vector id");
    }
    entries = it->second.entries;
    shard.inserted.erase(it);
  }
  shard.tombstones.insert(id);
  shard.dead_entries += entries;
  shard.live_entries -= std::min(shard.live_entries, entries);
  const size_t total = shard.live_entries + shard.dead_entries;
  if (total > 0 &&
      static_cast<double>(shard.dead_entries) >
          options_.compact_dead_fraction * static_cast<double>(total)) {
    CompactShardLocked(&shard);
  }
  return Status::OK();
}

void DynamicIndex::CompactShardLocked(Shard* shard) {
  FilterTable fresh;
  fresh.Reserve(shard->live_entries);
  for (size_t k = 0; k < shard->base.num_keys(); ++k) {
    const uint64_t key = shard->base.key_at(k);
    for (VectorId id : shard->base.postings_at(k)) {
      if (shard->tombstones.count(id) == 0) fresh.Add(key, id);
    }
  }
  for (const auto& [key, ids] : shard->delta) {
    for (VectorId id : ids) {
      if (shard->tombstones.count(id) == 0) fresh.Add(key, id);
    }
  }
  fresh.Freeze();
  shard->base = std::move(fresh);
  shard->delta.clear();
  shard->tombstones.clear();  // removed_base stays: liveness, not postings
  shard->live_entries = shard->base.num_pairs();
  shard->dead_entries = 0;
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

std::span<const ItemId> DynamicIndex::ItemsOf(const Shard& shard,
                                              VectorId id) const {
  if (id < base_n_) return data_->Get(id);
  auto it = shard.inserted.find(id);
  if (it == shard.inserted.end()) return {};
  return {it->second.items.data(), it->second.items.size()};
}

// Per-query workspace reused across a batch.
struct DynamicIndex::QueryScratch {
  std::vector<uint64_t> keys;
  std::vector<std::unordered_set<VectorId>> seen;
  PathGenStats path_gen;
};

DynamicIndex::RepHit DynamicIndex::ScanShardRep(
    const Shard& shard, std::span<const ItemId> query,
    const std::vector<uint64_t>& keys, std::unordered_set<VectorId>* seen,
    QueryStats* stats) const {
  RepHit hit;
  const double threshold = family_.verify_threshold();
  ReaderLock lock(shard.mutex);
  auto consider = [&](uint64_t /*key*/, size_t key_idx, uint8_t phase,
                      VectorId id) {
    if (!seen->insert(id).second) return false;
    if (shard.tombstones.count(id) > 0) return false;
    auto items = ItemsOf(shard, id);
    if (items.empty()) return false;
    stats->verifications++;
    double sim = Similarity(options_.index.verify_measure, query, items);
    if (sim >= threshold) {
      hit.found = true;
      hit.key_idx = key_idx;
      hit.phase = phase;
      hit.id = id;
      hit.similarity = sim;
      return true;
    }
    return false;
  };
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    auto postings = shard.base.Lookup(keys[ki]);
    stats->candidates += postings.size();
    for (VectorId id : postings) {
      if (consider(keys[ki], ki, 0, id)) return hit;
    }
    auto it = shard.delta.find(keys[ki]);
    if (it != shard.delta.end()) {
      stats->candidates += it->second.size();
      for (VectorId id : it->second) {
        if (consider(keys[ki], ki, 1, id)) return hit;
      }
    }
  }
  return hit;
}

std::optional<Match> DynamicIndex::Query(std::span<const ItemId> query,
                                         QueryStats* stats) const {
  QueryScratch scratch;
  return QueryImpl(query, stats, &scratch);
}

std::optional<Match> DynamicIndex::QueryImpl(std::span<const ItemId> query,
                                             QueryStats* stats,
                                             QueryScratch* scratch) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (built() && !query.empty()) {
    const size_t num = shards_.size();
    scratch->seen.resize(num);
    for (auto& seen : scratch->seen) seen.clear();
    for (int rep = 0; rep < family_.repetitions() && !found; ++rep) {
      scratch->keys.clear();
      PathGenStats gen;
      family_.ComputeFilters(query, static_cast<uint32_t>(rep),
                             &scratch->keys, &gen);
      AddPathGenStats(&scratch->path_gen, gen);
      local.filters += scratch->keys.size();
      const RepHit* best = nullptr;
      std::vector<RepHit> hits(num);
      for (size_t s = 0; s < num; ++s) {
        QueryStats shard_stats;
        hits[s] = ScanShardRep(*shards_[s], query, scratch->keys,
                               &scratch->seen[s], &shard_stats);
        local.candidates += shard_stats.candidates;
        local.verifications += shard_stats.verifications;
        const RepHit& hit = hits[s];
        if (!hit.found) continue;
        if (best == nullptr || hit.key_idx < best->key_idx ||
            (hit.key_idx == best->key_idx &&
             (hit.phase < best->phase ||
              (hit.phase == best->phase && hit.id < best->id)))) {
          best = &hits[s];
        }
      }
      if (best != nullptr) found = Match{best->id, best->similarity};
    }
    size_t distinct = 0;
    for (const auto& seen : scratch->seen) distinct += seen.size();
    local.distinct_candidates = distinct;
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<Match> DynamicIndex::QueryAll(std::span<const ItemId> query,
                                          double threshold,
                                          QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (built() && !query.empty()) {
    std::vector<uint64_t> keys;
    for (int rep = 0; rep < family_.repetitions(); ++rep) {
      family_.ComputeFilters(query, static_cast<uint32_t>(rep), &keys,
                             nullptr);
    }
    local.filters = keys.size();
    for (const auto& shard_ptr : shards_) {
      const Shard& shard = *shard_ptr;
      std::unordered_set<VectorId> seen;
      ReaderLock lock(shard.mutex);
      auto consider = [&](VectorId id) {
        if (!seen.insert(id).second) return;
        if (shard.tombstones.count(id) > 0) return;
        auto items = ItemsOf(shard, id);
        if (items.empty()) return;
        local.verifications++;
        double sim = Similarity(options_.index.verify_measure, query, items);
        if (sim >= threshold) out.push_back({id, sim});
      };
      for (uint64_t key : keys) {
        auto postings = shard.base.Lookup(key);
        local.candidates += postings.size();
        for (VectorId id : postings) consider(id);
        auto it = shard.delta.find(key);
        if (it != shard.delta.end()) {
          local.candidates += it->second.size();
          for (VectorId id : it->second) consider(id);
        }
      }
      local.distinct_candidates += seen.size();
    }
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<std::optional<Match>> DynamicIndex::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> DynamicIndex::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(queries.Get(static_cast<VectorId>(i)), query_stats,
                         scratch);
      },
      [](const QueryScratch& scratch, BatchQueryStats* agg) {
        AddPathGenStats(&agg->path_gen, scratch.path_gen);
      });
}

bool DynamicIndex::IsLive(VectorId id) const {
  if (!built() || id >= next_id_.load(std::memory_order_relaxed)) {
    return false;
  }
  const Shard& shard =
      *shards_[static_cast<size_t>(ShardedIndex::ShardOf(id, num_shards()))];
  ReaderLock lock(shard.mutex);
  if (id < base_n_) return shard.removed_base.count(id) == 0;
  return shard.inserted.count(id) > 0;
}

size_t DynamicIndex::size() const {
  if (!built()) return 0;
  size_t live = base_n_;
  for (const auto& shard_ptr : shards_) {
    ReaderLock lock(shard_ptr->mutex);
    live += shard_ptr->inserted.size();
    live -= shard_ptr->removed_base.size();
  }
  return live;
}

size_t DynamicIndex::num_tombstones() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    ReaderLock lock(shard_ptr->mutex);
    total += shard_ptr->tombstones.size();
  }
  return total;
}

size_t DynamicIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    ReaderLock lock(shard_ptr->mutex);
    const Shard& shard = *shard_ptr;
    total += shard.base.MemoryBytes();
    for (const auto& [key, ids] : shard.delta) {
      total += sizeof(key) + ids.capacity() * sizeof(VectorId);
    }
    total += shard.tombstones.size() * sizeof(VectorId);
    for (const auto& [id, vec] : shard.inserted) {
      total += sizeof(id) + vec.items.capacity() * sizeof(ItemId);
    }
  }
  return total;
}

Status DynamicIndex::Save(const std::string& path) const {
  namespace io = index_io_internal;
  if (!built()) {
    return Status::InvalidArgument("cannot save an unbuilt index");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  // Lock every shard (shared) so the snapshot is cross-shard consistent;
  // writers block on their one shard until we finish.
  std::vector<ReaderLock> locks;
  locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    locks.emplace_back(shard_ptr->mutex);
  }

  out.write(kDynamicMagic, sizeof(kDynamicMagic));
  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  const uint64_t base_n = base_n_;
  const uint32_t next_id = next_id_.load(std::memory_order_relaxed);
  bool ok = io::WriteParams(out, options_.index, family_.verify_threshold(),
                            build_stats_) &&
            io::WritePod(out, io::Fingerprint(*data_)) &&
            io::WritePod(out, num_shards) &&
            io::WritePod(out, options_.compact_dead_fraction) &&
            io::WritePod(out, base_n) && io::WritePod(out, next_id);
  if (!ok) return Status::IOError("header write to '" + path + "' failed");

  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    SKEWSEARCH_RETURN_NOT_OK(shard.base.WriteTo(&out));
    // Delta postings, key by key (posting order matters and is kept).
    uint64_t delta_keys = shard.delta.size();
    ok = io::WritePod(out, delta_keys);
    for (const auto& [key, ids] : shard.delta) {
      ok = ok && io::WritePod(out, key) && io::WriteVector(out, ids);
    }
    // Tombstones and removed base ids, sorted so identical states save
    // identical bytes.
    std::vector<VectorId> tombs(shard.tombstones.begin(),
                                shard.tombstones.end());
    std::sort(tombs.begin(), tombs.end());
    ok = ok && io::WriteVector(out, tombs);
    std::vector<VectorId> removed(shard.removed_base.begin(),
                                  shard.removed_base.end());
    std::sort(removed.begin(), removed.end());
    ok = ok && io::WriteVector(out, removed);
    // Inserted vectors, sorted by id for the same reason. Entry counts
    // are not serialized — Load recomputes them from the postings.
    std::vector<VectorId> ids;
    ids.reserve(shard.inserted.size());
    for (const auto& [id, vec] : shard.inserted) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    uint64_t inserted_count = ids.size();
    ok = ok && io::WritePod(out, inserted_count);
    for (VectorId id : ids) {
      ok = ok && io::WritePod(out, id) &&
           io::WriteVector(out, shard.inserted.at(id).items);
    }
    uint64_t live = shard.live_entries, dead = shard.dead_entries;
    ok = ok && io::WritePod(out, live) && io::WritePod(out, dead);
    if (!ok) return Status::IOError("shard write to '" + path + "' failed");
  }
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Status DynamicIndex::Load(const std::string& path, const Dataset* data,
                          const ProductDistribution* dist) {
  namespace io = index_io_internal;
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDynamicMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "'" + path + "' is not a skewsearch dynamic index file");
  }
  io::ParamHeader header;
  Status params = io::ReadParams(in, &header);
  if (!params.ok()) {
    return Status::InvalidArgument(params.message() + " in '" + path + "'");
  }
  uint64_t fingerprint = 0, base_n = 0;
  uint32_t num_shards = 0, next_id = 0;
  double compact_fraction = 0.0;
  if (!io::ReadPod(in, &fingerprint) || !io::ReadPod(in, &num_shards) ||
      !io::ReadPod(in, &compact_fraction) || !io::ReadPod(in, &base_n) ||
      !io::ReadPod(in, &next_id)) {
    return Status::InvalidArgument("truncated index header in '" + path +
                                   "'");
  }
  if (fingerprint != io::Fingerprint(*data)) {
    return Status::InvalidArgument(
        "dataset does not match the one this index was built from");
  }
  if (data->dimension() > dist->dimension()) {
    return Status::InvalidArgument(
        "dataset items exceed the distribution's universe");
  }
  if (base_n != data->size() || next_id < base_n) {
    return Status::InvalidArgument("corrupt id bounds in '" + path + "'");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("corrupt shard count in '" + path + "'");
  }
  if (!(compact_fraction > 0.0) || !std::isfinite(compact_fraction)) {
    return Status::InvalidArgument("corrupt compaction threshold in '" +
                                   path + "'");
  }
  Result<FilterFamily> family = FilterFamily::Restore(
      dist, header.options, data->size(), header.stats.repetitions,
      header.stats.delta_used, header.verify_threshold);
  if (!family.ok()) {
    return Status::InvalidArgument("corrupt index header in '" + path +
                                   "': " + family.status().message());
  }

  const int shard_count = static_cast<int>(num_shards);
  auto in_shard = [&](VectorId id, int s) {
    return id < next_id &&
           ShardedIndex::ShardOf(id, shard_count) == s;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    SKEWSEARCH_RETURN_NOT_OK(shard->base.ReadFrom(&in));
    for (size_t k = 0; k < shard->base.num_keys(); ++k) {
      for (VectorId id : shard->base.postings_at(k)) {
        if (id >= base_n || !in_shard(id, static_cast<int>(s))) {
          return Status::InvalidArgument(
              "shard table references out-of-place vector ids");
        }
      }
    }
    uint64_t delta_keys = 0;
    if (!io::ReadPod(in, &delta_keys) || delta_keys > (uint64_t{1} << 32)) {
      return Status::InvalidArgument("corrupt delta block in '" + path +
                                     "'");
    }
    for (uint64_t k = 0; k < delta_keys; ++k) {
      uint64_t key = 0;
      std::vector<VectorId> ids;
      if (!io::ReadPod(in, &key) || !io::ReadVector(in, &ids) ||
          ids.empty()) {
        return Status::InvalidArgument("corrupt delta block in '" + path +
                                       "'");
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] < base_n || !in_shard(ids[i], static_cast<int>(s))) {
          return Status::InvalidArgument(
              "delta postings reference out-of-place vector ids");
        }
        if (i > 0 && ids[i] < ids[i - 1]) {
          return Status::InvalidArgument(
              "delta postings not sorted by vector id");
        }
      }
      shard->delta.emplace(key, std::move(ids));
    }
    std::vector<VectorId> tombs;
    if (!io::ReadVector(in, &tombs)) {
      return Status::InvalidArgument("corrupt tombstone block in '" + path +
                                     "'");
    }
    for (VectorId id : tombs) {
      if (!in_shard(id, static_cast<int>(s))) {
        return Status::InvalidArgument(
            "tombstones reference out-of-place vector ids");
      }
    }
    shard->tombstones.insert(tombs.begin(), tombs.end());
    std::vector<VectorId> removed;
    if (!io::ReadVector(in, &removed)) {
      return Status::InvalidArgument("corrupt removed-base block in '" +
                                     path + "'");
    }
    for (VectorId id : removed) {
      if (id >= base_n || !in_shard(id, static_cast<int>(s))) {
        return Status::InvalidArgument(
            "removed-base ids reference out-of-place vector ids");
      }
    }
    shard->removed_base.insert(removed.begin(), removed.end());
    uint64_t inserted_count = 0;
    if (!io::ReadPod(in, &inserted_count) ||
        inserted_count > (uint64_t{1} << 32)) {
      return Status::InvalidArgument("corrupt inserted block in '" + path +
                                     "'");
    }
    for (uint64_t k = 0; k < inserted_count; ++k) {
      VectorId id = 0;
      std::vector<ItemId> items;
      if (!io::ReadPod(in, &id) || !io::ReadVector(in, &items)) {
        return Status::InvalidArgument("corrupt inserted block in '" + path +
                                       "'");
      }
      if (id < base_n || !in_shard(id, static_cast<int>(s)) ||
          shard->tombstones.count(id) > 0) {
        return Status::InvalidArgument(
            "inserted vectors reference out-of-place ids");
      }
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i] >= dist->dimension() ||
            (i > 0 && items[i] <= items[i - 1])) {
          return Status::InvalidArgument(
              "inserted vector has invalid items");
        }
      }
      Shard::InsertedVector record;
      record.items = std::move(items);
      shard->inserted.emplace(id, std::move(record));
    }
    uint64_t live = 0, dead = 0;
    if (!io::ReadPod(in, &live) || !io::ReadPod(in, &dead)) {
      return Status::InvalidArgument("corrupt shard footer in '" + path +
                                     "'");
    }
    shard->live_entries = static_cast<size_t>(live);
    shard->dead_entries = static_cast<size_t>(dead);
    shards.push_back(std::move(shard));
  }

  // Recompute per-vector entry counts (not serialized) by scanning the
  // postings once: base ids into the flat array, inserted ids into their
  // records. Tombstoned ids may still appear in postings; their counts
  // are charged but never read again.
  std::vector<uint32_t> entry_counts(static_cast<size_t>(base_n), 0);
  for (const auto& shard : shards) {
    auto charge = [&](VectorId id) {
      if (id < base_n) {
        entry_counts[id]++;
      } else {
        auto it = shard->inserted.find(id);
        if (it != shard->inserted.end()) it->second.entries++;
      }
    };
    for (size_t k = 0; k < shard->base.num_keys(); ++k) {
      for (VectorId id : shard->base.postings_at(k)) charge(id);
    }
    for (const auto& [key, ids] : shard->delta) {
      for (VectorId id : ids) charge(id);
    }
  }

  data_ = data;
  dist_ = dist;
  options_.index = header.options;
  options_.num_shards = shard_count;
  options_.compact_dead_fraction = compact_fraction;
  family_ = std::move(family).value();
  build_stats_ = header.stats;
  base_n_ = static_cast<size_t>(base_n);
  base_entry_counts_ = std::move(entry_counts);
  shards_ = std::move(shards);
  next_id_.store(next_id, std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace skewsearch
