#include "core/posting_table.h"

#include <algorithm>
#include <cassert>

namespace skewsearch {

void PostingArena::Reserve(size_t expected_pairs) {
  nodes_.reserve(expected_pairs);
}

void PostingArena::Add(uint64_t key, VectorId id) {
  assert(nodes_.size() < kNil && "posting arena overflow (2^32 - 1 pairs)");
  auto [it, inserted] = index_.emplace(key, 0);
  if (inserted) {
    it->second = static_cast<uint32_t>(slots_.size());
    slots_.push_back({key, kNil});
  }
  KeySlot& slot = slots_[it->second];
  nodes_.push_back({id, slot.head});
  slot.head = static_cast<uint32_t>(nodes_.size() - 1);
}

size_t PostingArena::MemoryBytes() const {
  return index_.MemoryBytes() + slots_.capacity() * sizeof(KeySlot) +
         nodes_.capacity() * sizeof(Node);
}

void PostingArena::Freeze(std::vector<uint64_t>* keys,
                          std::vector<uint32_t>* offsets,
                          std::vector<VectorId>* ids) {
  std::sort(slots_.begin(), slots_.end(),
            [](const KeySlot& a, const KeySlot& b) { return a.key < b.key; });
  keys->clear();
  offsets->clear();
  ids->clear();
  keys->reserve(slots_.size());
  offsets->reserve(slots_.size() + 1);
  ids->reserve(nodes_.size());
  for (const KeySlot& slot : slots_) {
    keys->push_back(slot.key);
    offsets->push_back(static_cast<uint32_t>(ids->size()));
    const size_t start = ids->size();
    // Chains link newest-first; the per-key ascending sort below both
    // restores and canonicalizes the order (duplicate ids survive).
    for (uint32_t n = slot.head; n != kNil; n = nodes_[n].next) {
      ids->push_back(nodes_[n].id);
    }
    std::sort(ids->begin() + static_cast<ptrdiff_t>(start), ids->end());
  }
  offsets->push_back(static_cast<uint32_t>(ids->size()));
  Clear();
}

void PostingArena::Clear() {
  index_ = PostingMap<uint64_t, uint32_t>();
  slots_.clear();
  slots_.shrink_to_fit();
  nodes_.clear();
  nodes_.shrink_to_fit();
}

PostingMap<uint64_t, uint32_t> BuildPostingKeyIndex(
    const std::vector<uint64_t>& keys) {
  PostingMap<uint64_t, uint32_t> index;
  index.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    index.emplace(keys[i], static_cast<uint32_t>(i));
  }
  return index;
}

}  // namespace skewsearch
