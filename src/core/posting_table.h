// Copyright 2026 The skewsearch Authors.
// PostingArena: arena-allocated staging for (filter key, vector id)
// posting pairs, the build-side half of the flat posting-table seam.
//
// The old FilterTable staged into one std::vector<Pair> and paid a global
// O(P log P) sort at Freeze(). The arena instead groups pairs by key as
// they arrive — a PostingMap probe to find the key's chain head plus one
// append into a contiguous node pool — so Freeze() only sorts the K
// distinct keys and each (typically short) per-key id list:
// O(K log K + sum |list| log |list|) instead of O(P log P), with no
// per-pair allocation anywhere. The frozen CSR output (sorted distinct
// keys, offsets, per-key ascending ids with duplicate pairs preserved) is
// byte-identical to the old sort-based Freeze, which tests assert.

#ifndef SKEWSEARCH_CORE_POSTING_TABLE_H_
#define SKEWSEARCH_CORE_POSTING_TABLE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/containers.h"

namespace skewsearch {

/// \brief Append-only arena of (key, id) posting pairs grouped by key.
///
/// Holds at most 2^32 - 1 pairs (node links and the frozen offsets are
/// 32-bit — the same bound the on-disk FilterTable format already has).
class PostingArena {
 public:
  /// Pre-allocates the node pool for \p expected_pairs pairs.
  void Reserve(size_t expected_pairs);

  /// Appends one (key, id) pair to the key's chain. Amortized O(1).
  void Add(uint64_t key, VectorId id);

  /// Number of staged pairs.
  size_t num_pairs() const { return nodes_.size(); }

  /// Number of distinct keys staged so far.
  size_t num_keys() const { return slots_.size(); }

  /// Approximate heap usage in bytes.
  size_t MemoryBytes() const;

  /// Drains the arena into frozen CSR form: \p keys gets the sorted
  /// distinct keys, \p offsets the keys->size()+1 offsets into \p ids,
  /// and \p ids each key's ids in ascending order (duplicate pairs
  /// preserved). The arena is left empty with its allocations released.
  void Freeze(std::vector<uint64_t>* keys, std::vector<uint32_t>* offsets,
              std::vector<VectorId>* ids);

  /// Drops all staged pairs and releases the allocations.
  void Clear();

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    VectorId id;
    uint32_t next;  // previous node of the same key's chain, or kNil
  };
  struct KeySlot {
    uint64_t key;
    uint32_t head;  // most recent node of this key's chain
  };

  PostingMap<uint64_t, uint32_t> index_;  // key -> position in slots_
  std::vector<KeySlot> slots_;
  std::vector<Node> nodes_;
};

/// Builds an O(1) probe index over the \p keys of a frozen posting table:
/// key -> position, usable with FilterTable-style positional accessors.
/// Keys must be distinct (the frozen-table invariant).
PostingMap<uint64_t, uint32_t> BuildPostingKeyIndex(
    const std::vector<uint64_t>& keys);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_POSTING_TABLE_H_
