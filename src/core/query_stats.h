// Copyright 2026 The skewsearch Authors.
// Query-side counters shared by the skewed index and the baselines, plus
// the aggregate view a batched (multithreaded) query run reports.

#ifndef SKEWSEARCH_CORE_QUERY_STATS_H_
#define SKEWSEARCH_CORE_QUERY_STATS_H_

#include <cstddef>

#include "core/path_engine.h"

namespace skewsearch {

/// \brief Counters from one query.
struct QueryStats {
  size_t filters = 0;              ///< |F(q)| across repetitions
  size_t candidates = 0;           ///< sum of posting-list sizes (the
                                   ///< paper's query-cost proxy)
  size_t distinct_candidates = 0;  ///< after deduplication
  size_t verifications = 0;        ///< full similarity computations
  double seconds = 0.0;
};

/// Element-wise accumulation (seconds add up too).
inline void AddQueryStats(QueryStats* total, const QueryStats& add) {
  total->filters += add.filters;
  total->candidates += add.candidates;
  total->distinct_candidates += add.distinct_candidates;
  total->verifications += add.verifications;
  total->seconds += add.seconds;
}

/// Accumulation for path-generation counters; cap_hit is sticky.
inline void AddPathGenStats(PathGenStats* total, const PathGenStats& add) {
  total->filters_emitted += add.filters_emitted;
  total->nodes_expanded += add.nodes_expanded;
  total->draws += add.draws;
  total->cap_hit = total->cap_hit || add.cap_hit;
}

/// \brief Aggregate counters from one BatchQuery() call.
struct BatchQueryStats {
  size_t queries = 0;       ///< batch size
  int threads = 1;          ///< worker slots actually used
  QueryStats totals;        ///< sum over the whole batch (seconds is the
                            ///< summed per-query time, not wall time)
  PathGenStats path_gen;    ///< summed over every path-engine invocation
                            ///< (zero for engines without a path stage)
  double wall_seconds = 0.0;  ///< end-to-end batch wall time
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_QUERY_STATS_H_
