#include "core/path_policy.h"

#include "core/rho.h"

namespace skewsearch {

double AdversarialPolicy::Threshold(size_t vec_size, int depth,
                                    ItemId /*item*/) const {
  double denom = b1_ * static_cast<double>(vec_size) - depth;
  if (denom <= 1.0) return 1.0;  // sample surely once the budget is spent
  return 1.0 / denom;
}

CorrelatedPolicy::CorrelatedPolicy(const ProductDistribution* dist,
                                   double alpha, double delta)
    : dist_(dist), alpha_(alpha), delta_(delta), m_(dist->SumP()) {}

double CorrelatedPolicy::Threshold(size_t /*vec_size*/, int depth,
                                   ItemId item) const {
  double p_hat = ConditionalProbability(dist_->p(item), alpha_);
  double denom = p_hat * m_ - depth;
  if (denom <= 1.0 + delta_) return 1.0;
  return (1.0 + delta_) / denom;
}

double ClassicChosenPathPolicy::Threshold(size_t vec_size, int /*depth*/,
                                          ItemId /*item*/) const {
  double denom = b1_ * static_cast<double>(vec_size);
  if (denom <= 1.0) return 1.0;
  return 1.0 / denom;
}

}  // namespace skewsearch
