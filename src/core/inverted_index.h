// Copyright 2026 The skewsearch Authors.
// FilterTable: the inverted index from filter keys to posting lists of
// vector ids ("for each filter f we can look up {x in S : f in F(x)}",
// Section 3). Shared by the paper's index and the Chosen Path baseline.
//
// Built by staging (key, id) pairs into a PostingArena (grouped by key as
// they arrive) and freezing into unique keys + offsets + ids. Compared to
// a per-key hash map of vectors this halves memory and is cache-friendly
// to build; lookups are one O(1) probe of a flat key -> position index
// (core/posting_table.h) over the (typically few million) distinct keys.
//
// A table can alternatively be a zero-copy *view* over externally owned
// frozen CSR arrays (AdoptFrozenView) — the accessor seam the mmap'd
// SKF1 shard files (core/frozen_shard.h) serve queries through. Views
// skip the O(num_keys) probe-index build so mapping stays O(1) in the
// index size; Lookup binary-searches the sorted key array instead.

#ifndef SKEWSEARCH_CORE_INVERTED_INDEX_H_
#define SKEWSEARCH_CORE_INVERTED_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/posting_table.h"
#include "data/dataset.h"
#include "util/containers.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Frozen multimap from 64-bit filter keys to vector ids.
class FilterTable {
 public:
  FilterTable() = default;
  /// Copies preserve semantics per mode: an owning table deep-copies its
  /// arrays (and re-points the internal views at the copies); a view
  /// table copies the spans, i.e. both alias the same external memory.
  FilterTable(const FilterTable& other) { CopyFrom(other); }
  FilterTable& operator=(const FilterTable& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  /// Moves are always safe: vector moves transfer their heap buffers, so
  /// views into them stay valid.
  FilterTable(FilterTable&&) = default;
  FilterTable& operator=(FilterTable&&) = default;

  /// Pre-allocates for \p expected_pairs (optional).
  void Reserve(size_t expected_pairs);

  /// Adds one (filter key, vector id) pair. Only valid before Freeze().
  void Add(uint64_t key, VectorId id);

  /// Sorts and deduplicates keys, building the posting lists. Must be
  /// called exactly once, after which Add is illegal.
  void Freeze();

  /// Replaces this table with a zero-copy view over externally owned
  /// frozen CSR arrays — typically sections of an mmap'd SKF1 file. The
  /// backing memory must stay valid and unchanged for the view's whole
  /// lifetime (copies included). Validates only the O(1) bracketing
  /// invariants (offsets.size() == keys.size() + 1, offsets[0] == 0,
  /// offsets.back() == ids.size()); key sortedness and id ranges are the
  /// caller's contract (the frozen-shard mapper checks them via its
  /// metadata checksum and, on request, a full payload verification).
  /// No probe index is built: Lookup binary-searches the keys.
  Status AdoptFrozenView(std::span<const uint64_t> keys,
                         std::span<const uint32_t> offsets,
                         std::span<const VectorId> ids);

  /// Posting list for \p key (empty when absent). Only valid after
  /// Freeze().
  std::span<const VectorId> Lookup(uint64_t key) const;

  /// \name Positional access to the frozen table (iteration order is by
  /// ascending key). Used by compaction, serialization and validation.
  /// Only valid after Freeze(); \p idx must be < num_keys().
  /// @{
  uint64_t key_at(size_t idx) const { return keys_view_[idx]; }
  std::span<const VectorId> postings_at(size_t idx) const {
    return {ids_view_.data() + offsets_view_[idx],
            static_cast<size_t>(offsets_view_[idx + 1] -
                                offsets_view_[idx])};
  }
  /// @}

  /// Number of stored (key, id) pairs. Counts the same pairs before and
  /// after Freeze(): the staging arena while building, the frozen posting
  /// lists afterwards (Freeze neither adds nor drops pairs).
  size_t num_pairs() const {
    return frozen_ ? ids_view_.size() : arena_.num_pairs();
  }

  /// Number of distinct keys (0 before Freeze()).
  size_t num_keys() const { return keys_view_.size(); }

  /// True once Freeze() (or ReadFrom()/AdoptFrozenView()) has produced
  /// posting lists.
  bool frozen() const { return frozen_; }

  /// True when this table is a non-owning view over external memory.
  bool is_view() const { return view_; }

  /// \name Raw frozen CSR arrays (serialization / the frozen-shard
  /// writer). Only valid after Freeze().
  /// @{
  std::span<const uint64_t> keys_span() const { return keys_view_; }
  std::span<const uint32_t> offsets_span() const { return offsets_view_; }
  std::span<const VectorId> ids_span() const { return ids_view_; }
  /// @}

  /// Approximate heap usage in bytes.
  size_t MemoryBytes() const;

  /// Serializes the frozen table (keys, offsets, ids) to \p out.
  /// Only valid after Freeze().
  Status WriteTo(std::ostream* out) const;

  /// Replaces this table with one read from \p in (already frozen).
  Status ReadFrom(std::istream* in);

 private:
  /// Deep-copies \p other; for owning tables the views are re-pointed at
  /// this table's own arrays, for view tables the spans are aliased.
  void CopyFrom(const FilterTable& other);

  /// Points the view spans at the owning arrays (after Freeze/ReadFrom
  /// or a deep copy mutated them).
  void RepointViewsAtOwned();

  PostingArena arena_;            // staging; drained by Freeze()
  std::vector<uint64_t> keys_;    // sorted distinct keys (empty in views)
  std::vector<uint32_t> offsets_; // keys_.size() + 1 offsets into ids_
  std::vector<VectorId> ids_;
  // All frozen accessors read through these spans. Owning tables point
  // them at keys_/offsets_/ids_; views point at external (mmap'd) memory.
  std::span<const uint64_t> keys_view_;
  std::span<const uint32_t> offsets_view_;
  std::span<const VectorId> ids_view_;
  // O(1) key -> position probe index; rebuilt by Freeze()/ReadFrom().
  // Left empty by AdoptFrozenView: views Lookup by binary search.
  PostingMap<uint64_t, uint32_t> key_index_;
  bool frozen_ = false;
  bool view_ = false;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_INVERTED_INDEX_H_
