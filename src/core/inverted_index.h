// Copyright 2026 The skewsearch Authors.
// FilterTable: the inverted index from filter keys to posting lists of
// vector ids ("for each filter f we can look up {x in S : f in F(x)}",
// Section 3). Shared by the paper's index and the Chosen Path baseline.
//
// Built by staging (key, id) pairs into a PostingArena (grouped by key as
// they arrive) and freezing into unique keys + offsets + ids. Compared to
// a per-key hash map of vectors this halves memory and is cache-friendly
// to build; lookups are one O(1) probe of a flat key -> position index
// (core/posting_table.h) over the (typically few million) distinct keys.

#ifndef SKEWSEARCH_CORE_INVERTED_INDEX_H_
#define SKEWSEARCH_CORE_INVERTED_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/posting_table.h"
#include "data/dataset.h"
#include "util/containers.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Frozen multimap from 64-bit filter keys to vector ids.
class FilterTable {
 public:
  /// Pre-allocates for \p expected_pairs (optional).
  void Reserve(size_t expected_pairs);

  /// Adds one (filter key, vector id) pair. Only valid before Freeze().
  void Add(uint64_t key, VectorId id);

  /// Sorts and deduplicates keys, building the posting lists. Must be
  /// called exactly once, after which Add is illegal.
  void Freeze();

  /// Posting list for \p key (empty when absent). Only valid after
  /// Freeze().
  std::span<const VectorId> Lookup(uint64_t key) const;

  /// \name Positional access to the frozen table (iteration order is by
  /// ascending key). Used by compaction, serialization and validation.
  /// Only valid after Freeze(); \p idx must be < num_keys().
  /// @{
  uint64_t key_at(size_t idx) const { return keys_[idx]; }
  std::span<const VectorId> postings_at(size_t idx) const {
    return {ids_.data() + offsets_[idx],
            static_cast<size_t>(offsets_[idx + 1] - offsets_[idx])};
  }
  /// @}

  /// Number of stored (key, id) pairs. Counts the same pairs before and
  /// after Freeze(): the staging arena while building, the frozen posting
  /// lists afterwards (Freeze neither adds nor drops pairs).
  size_t num_pairs() const {
    return frozen_ ? ids_.size() : arena_.num_pairs();
  }

  /// Number of distinct keys (0 before Freeze()).
  size_t num_keys() const { return keys_.size(); }

  /// True once Freeze() (or ReadFrom()) has produced posting lists.
  bool frozen() const { return frozen_; }

  /// Approximate heap usage in bytes.
  size_t MemoryBytes() const;

  /// Serializes the frozen table (keys, offsets, ids) to \p out.
  /// Only valid after Freeze().
  Status WriteTo(std::ostream* out) const;

  /// Replaces this table with one read from \p in (already frozen).
  Status ReadFrom(std::istream* in);

 private:
  PostingArena arena_;            // staging; drained by Freeze()
  std::vector<uint64_t> keys_;    // sorted distinct keys
  std::vector<uint32_t> offsets_; // keys_.size() + 1 offsets into ids_
  std::vector<VectorId> ids_;
  // O(1) key -> position probe index; rebuilt by Freeze()/ReadFrom().
  PostingMap<uint64_t, uint32_t> key_index_;
  bool frozen_ = false;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_INVERTED_INDEX_H_
