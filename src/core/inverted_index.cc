#include "core/inverted_index.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/index_io.h"

namespace skewsearch {

namespace {

template <typename T>
bool WriteVector(std::ostream* out, const std::vector<T>& values) {
  return index_io_internal::WriteVector(*out, values);
}

template <typename T>
bool ReadVector(std::istream* in, std::vector<T>* values) {
  return index_io_internal::ReadVector(*in, values);
}

// Span flavour of the vec<T> encoding (u64 count + raw elements), so a
// view table serializes byte-identically to the owning table it mirrors.
template <typename T>
bool WriteSpan(std::ostream* out, std::span<const T> values) {
  uint64_t count = values.size();
  if (!index_io_internal::WritePod(*out, count)) return false;
  if (count == 0) return true;
  out->write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(count * sizeof(T)));
  return out->good();
}

}  // namespace

void FilterTable::Reserve(size_t expected_pairs) {
  arena_.Reserve(expected_pairs);
}

void FilterTable::Add(uint64_t key, VectorId id) { arena_.Add(key, id); }

void FilterTable::Freeze() {
  arena_.Freeze(&keys_, &offsets_, &ids_);
  // Drop growth slack so MemoryBytes() reports the same frozen footprint
  // as a ReadFrom() of this table (which allocates exactly).
  keys_.shrink_to_fit();
  offsets_.shrink_to_fit();
  ids_.shrink_to_fit();
  key_index_ = BuildPostingKeyIndex(keys_);
  frozen_ = true;
  view_ = false;
  RepointViewsAtOwned();
}

void FilterTable::RepointViewsAtOwned() {
  keys_view_ = keys_;
  offsets_view_ = offsets_;
  ids_view_ = ids_;
}

void FilterTable::CopyFrom(const FilterTable& other) {
  arena_ = other.arena_;
  keys_ = other.keys_;
  offsets_ = other.offsets_;
  ids_ = other.ids_;
  key_index_ = other.key_index_;
  frozen_ = other.frozen_;
  view_ = other.view_;
  if (view_) {
    // Both copies alias the same external memory.
    keys_view_ = other.keys_view_;
    offsets_view_ = other.offsets_view_;
    ids_view_ = other.ids_view_;
  } else {
    RepointViewsAtOwned();
  }
}

Status FilterTable::AdoptFrozenView(std::span<const uint64_t> keys,
                                    std::span<const uint32_t> offsets,
                                    std::span<const VectorId> ids) {
  if (offsets.size() != keys.size() + 1) {
    return Status::InvalidArgument("frozen view offset/key count mismatch");
  }
  if (offsets.front() != 0 || offsets.back() != ids.size()) {
    return Status::InvalidArgument("frozen view offsets do not bracket ids");
  }
  FilterTable fresh;
  fresh.keys_view_ = keys;
  fresh.offsets_view_ = offsets;
  fresh.ids_view_ = ids;
  fresh.frozen_ = true;
  fresh.view_ = true;
  *this = std::move(fresh);
  return Status::OK();
}

std::span<const VectorId> FilterTable::Lookup(uint64_t key) const {
  size_t idx;
  if (view_) {
    // Views have no probe index; the keys are sorted and distinct, so a
    // binary search finds the position in O(log K) with zero heap.
    auto it = std::lower_bound(keys_view_.begin(), keys_view_.end(), key);
    if (it == keys_view_.end() || *it != key) return {};
    idx = static_cast<size_t>(it - keys_view_.begin());
  } else {
    auto it = key_index_.find(key);
    if (it == key_index_.end()) return {};
    idx = it->second;
  }
  return {ids_view_.data() + offsets_view_[idx],
          static_cast<size_t>(offsets_view_[idx + 1] - offsets_view_[idx])};
}

Status FilterTable::WriteTo(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (!WriteSpan(out, keys_view_) || !WriteSpan(out, offsets_view_) ||
      !WriteSpan(out, ids_view_)) {
    return Status::IOError("filter table write failed");
  }
  return Status::OK();
}

Status FilterTable::ReadFrom(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  FilterTable fresh;
  if (!ReadVector(in, &fresh.keys_) || !ReadVector(in, &fresh.offsets_) ||
      !ReadVector(in, &fresh.ids_)) {
    return Status::InvalidArgument("truncated or corrupt filter table");
  }
  // Structural validation: offsets bracket ids_, keys sorted.
  if (fresh.offsets_.size() != fresh.keys_.size() + 1 ||
      (fresh.offsets_.empty() && !fresh.keys_.empty())) {
    return Status::InvalidArgument("filter table offset/key mismatch");
  }
  if (!fresh.offsets_.empty() &&
      (fresh.offsets_.front() != 0 ||
       fresh.offsets_.back() != fresh.ids_.size())) {
    return Status::InvalidArgument("filter table offsets out of range");
  }
  for (size_t i = 1; i < fresh.keys_.size(); ++i) {
    if (fresh.keys_[i - 1] >= fresh.keys_[i]) {
      return Status::InvalidArgument("filter table keys not sorted");
    }
    if (fresh.offsets_[i] < fresh.offsets_[i - 1]) {
      return Status::InvalidArgument("filter table offsets not monotone");
    }
  }
  fresh.key_index_ = BuildPostingKeyIndex(fresh.keys_);
  fresh.frozen_ = true;
  fresh.RepointViewsAtOwned();
  *this = std::move(fresh);
  return Status::OK();
}

size_t FilterTable::MemoryBytes() const {
  return arena_.MemoryBytes() + keys_.capacity() * sizeof(uint64_t) +
         offsets_.capacity() * sizeof(uint32_t) +
         ids_.capacity() * sizeof(VectorId) + key_index_.MemoryBytes();
}

}  // namespace skewsearch
