#include "core/inverted_index.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/index_io.h"

namespace skewsearch {

namespace {

template <typename T>
bool WriteVector(std::ostream* out, const std::vector<T>& values) {
  return index_io_internal::WriteVector(*out, values);
}

template <typename T>
bool ReadVector(std::istream* in, std::vector<T>* values) {
  return index_io_internal::ReadVector(*in, values);
}

}  // namespace

void FilterTable::Reserve(size_t expected_pairs) {
  arena_.Reserve(expected_pairs);
}

void FilterTable::Add(uint64_t key, VectorId id) { arena_.Add(key, id); }

void FilterTable::Freeze() {
  arena_.Freeze(&keys_, &offsets_, &ids_);
  // Drop growth slack so MemoryBytes() reports the same frozen footprint
  // as a ReadFrom() of this table (which allocates exactly).
  keys_.shrink_to_fit();
  offsets_.shrink_to_fit();
  ids_.shrink_to_fit();
  key_index_ = BuildPostingKeyIndex(keys_);
  frozen_ = true;
}

std::span<const VectorId> FilterTable::Lookup(uint64_t key) const {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return {};
  size_t idx = it->second;
  return {ids_.data() + offsets_[idx],
          static_cast<size_t>(offsets_[idx + 1] - offsets_[idx])};
}

Status FilterTable::WriteTo(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (!WriteVector(out, keys_) || !WriteVector(out, offsets_) ||
      !WriteVector(out, ids_)) {
    return Status::IOError("filter table write failed");
  }
  return Status::OK();
}

Status FilterTable::ReadFrom(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  FilterTable fresh;
  if (!ReadVector(in, &fresh.keys_) || !ReadVector(in, &fresh.offsets_) ||
      !ReadVector(in, &fresh.ids_)) {
    return Status::InvalidArgument("truncated or corrupt filter table");
  }
  // Structural validation: offsets bracket ids_, keys sorted.
  if (fresh.offsets_.size() != fresh.keys_.size() + 1 ||
      (fresh.offsets_.empty() && !fresh.keys_.empty())) {
    return Status::InvalidArgument("filter table offset/key mismatch");
  }
  if (!fresh.offsets_.empty() &&
      (fresh.offsets_.front() != 0 ||
       fresh.offsets_.back() != fresh.ids_.size())) {
    return Status::InvalidArgument("filter table offsets out of range");
  }
  for (size_t i = 1; i < fresh.keys_.size(); ++i) {
    if (fresh.keys_[i - 1] >= fresh.keys_[i]) {
      return Status::InvalidArgument("filter table keys not sorted");
    }
    if (fresh.offsets_[i] < fresh.offsets_[i - 1]) {
      return Status::InvalidArgument("filter table offsets not monotone");
    }
  }
  fresh.key_index_ = BuildPostingKeyIndex(fresh.keys_);
  fresh.frozen_ = true;
  *this = std::move(fresh);
  return Status::OK();
}

size_t FilterTable::MemoryBytes() const {
  return arena_.MemoryBytes() + keys_.capacity() * sizeof(uint64_t) +
         offsets_.capacity() * sizeof(uint32_t) +
         ids_.capacity() * sizeof(VectorId) + key_index_.MemoryBytes();
}

}  // namespace skewsearch
