#include "core/split_search.h"

#include <algorithm>
#include <cmath>

#include "core/rho.h"
#include "sim/measures.h"
#include "util/math.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

// Chosen-Path exponent of a sub-search demanding projected similarity b1x
// against background similarity b2x.
//   b1x >= 1: the demand exceeds the projection — no point (close or far)
//             can qualify, the branch generates no work: exponent 0.
//   b2x >= b1x: the projection cannot distinguish close from far: brute
//             force, exponent 1.
double ProjectedRho(double b1x, double b2x) {
  if (b1x >= 1.0) return 0.0;
  if (b2x <= 0.0) return 0.0;
  if (b2x >= b1x) return 1.0;
  return Clamp(std::log(b1x) / std::log(b2x), 0.0, 1.0);
}

std::vector<ItemId> Project(std::span<const ItemId> ids,
                            const std::vector<bool>& is_frequent,
                            bool want_frequent) {
  std::vector<ItemId> out;
  for (ItemId id : ids) {
    if (is_frequent[id] == want_frequent) out.push_back(id);
  }
  return out;
}

}  // namespace

Result<SplitPlan> SplitSearcher::Analyze(const ProductDistribution& dist,
                                         size_t /*n*/, double b1,
                                         double frequency_split, double ell) {
  if (b1 <= 0.0 || b1 >= 1.0) {
    return Status::InvalidArgument("b1 must be in (0, 1)");
  }
  const auto& p = dist.probabilities();
  double pmin = 1.0, pmax = 0.0;
  for (double v : p) {
    pmin = std::min(pmin, v);
    pmax = std::max(pmax, v);
  }
  double split =
      frequency_split > 0.0 ? frequency_split : std::sqrt(pmin * pmax);

  SplitPlan plan;
  plan.split_probability = split;
  // m_x = E|q_x| (projected query weight); s_x = E|x n q| mass within the
  // side (sum of p^2), following the motivating example's i_frequent and
  // i_rare up to the projection normalization.
  double m = 0.0, m_f = 0.0, m_r = 0.0, s_f = 0.0, s_r = 0.0;
  for (double v : p) {
    m += v;
    if (v >= split) {
      plan.frequent_items++;
      m_f += v;
      s_f += v * v;
    } else {
      plan.rare_items++;
      m_r += v;
      s_r += v * v;
    }
  }
  plan.rho_unsplit = ProjectedRho(b1, (s_f + s_r) / m);

  auto eval = [&](double l) {
    double rho_f =
        m_f > 0.0 ? ProjectedRho(l * m / m_f, s_f / m_f) : 0.0;
    double rho_r =
        m_r > 0.0 ? ProjectedRho((b1 - l) * m / m_r, s_r / m_r) : 0.0;
    return std::make_pair(rho_f, rho_r);
  };

  if (ell > 0.0 && ell < b1) {
    plan.ell = ell;
    std::tie(plan.rho_frequent, plan.rho_rare) = eval(ell);
    return plan;
  }
  // Balance the two exponents on a grid; combined cost n^rho_f + n^rho_r
  // is dominated by the max.
  double best_cost = 2.0;
  for (int step = 1; step < 200; ++step) {
    double l = b1 * static_cast<double>(step) / 200.0;
    auto [rho_f, rho_r] = eval(l);
    double cost = std::max(rho_f, rho_r);
    if (cost < best_cost) {
      best_cost = cost;
      plan.ell = l;
      plan.rho_frequent = rho_f;
      plan.rho_rare = rho_r;
    }
  }
  return plan;
}

Status SplitSearcher::Build(const Dataset* data,
                            const ProductDistribution* dist,
                            const SplitSearchOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  auto plan = Analyze(*dist, data->size(), options.b1,
                      options.frequency_split, options.ell);
  if (!plan.ok()) return plan.status();
  plan_ = *plan;
  data_ = data;
  options_ = options;

  const auto& p = dist->probabilities();
  is_frequent_.assign(p.size(), false);
  for (size_t i = 0; i < p.size(); ++i) {
    is_frequent_[i] = p[i] >= plan_.split_probability;
  }

  // Sub-distributions share the id space; the "other" side's items get a
  // negligible probability (they never occur in the projected data, but
  // ProductDistribution requires p > 0).
  std::vector<double> pf(p.size(), 1e-12), pr(p.size(), 1e-12);
  double m_f = 0.0, m_r = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (is_frequent_[i]) {
      pf[i] = p[i];
      m_f += p[i];
    } else {
      pr[i] = p[i];
      m_r += p[i];
    }
  }
  auto fd = ProductDistribution::Create(std::move(pf));
  if (!fd.ok()) return fd.status();
  frequent_dist_ = std::move(fd.value());
  auto rd = ProductDistribution::Create(std::move(pr));
  if (!rd.ok()) return rd.status();
  rare_dist_ = std::move(rd.value());

  frequent_data_ = Dataset();
  rare_data_ = Dataset();
  for (VectorId id = 0; id < data->size(); ++id) {
    auto ids = data->Get(id);
    frequent_data_.Add(SparseVector::FromSorted(
        Project(ids, is_frequent_, /*want_frequent=*/true)));
    rare_data_.Add(SparseVector::FromSorted(
        Project(ids, is_frequent_, /*want_frequent=*/false)));
  }
  SKEWSEARCH_RETURN_NOT_OK(frequent_data_.SetDimension(dist->dimension()));
  SKEWSEARCH_RETURN_NOT_OK(rare_data_.SetDimension(dist->dimension()));

  const double m = dist->SumP();
  // Projected Braun-Blanquet thresholds implementing the overlap demands
  // ell*|q| and (b1-ell)*|q|; sizes concentrate around m, m_f, m_r.
  double b_f = m_f > 0.0 ? Clamp(plan_.ell * m / m_f, 0.02, 0.98) : 0.98;
  double b_r =
      m_r > 0.0 ? Clamp((options.b1 - plan_.ell) * m / m_r, 0.02, 0.98)
                : 0.98;

  SkewedIndexOptions sub = options.index;
  sub.mode = IndexMode::kAdversarial;
  sub.b1 = b_f;
  frequent_index_ = std::make_unique<SkewedPathIndex>();
  SKEWSEARCH_RETURN_NOT_OK(
      frequent_index_->Build(&frequent_data_, &frequent_dist_, sub));

  sub.b1 = b_r;
  sub.seed = options.index.seed ^ 0x9e3779b97f4a7c15ULL;
  rare_index_ = std::make_unique<SkewedPathIndex>();
  SKEWSEARCH_RETURN_NOT_OK(
      rare_index_->Build(&rare_data_, &rare_dist_, sub));
  return Status::OK();
}

std::optional<Match> SplitSearcher::Query(std::span<const ItemId> query,
                                          QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (frequent_index_ != nullptr) {
    SparseVector qf = SparseVector::FromSorted(
        Project(query, is_frequent_, /*want_frequent=*/true));
    SparseVector qr = SparseVector::FromSorted(
        Project(query, is_frequent_, /*want_frequent=*/false));
    // Candidates from either half; verification is always on the *full*
    // vectors against the overall threshold b1.
    for (int side = 0; side < 2 && !found; ++side) {
      const SkewedPathIndex& index =
          side == 0 ? *frequent_index_ : *rare_index_;
      const SparseVector& sub_query = side == 0 ? qf : qr;
      if (sub_query.empty()) continue;
      QueryStats qs;
      // Threshold 0: enumerate every candidate the sub-index surfaces.
      auto candidates = index.QueryAll(sub_query.span(), 0.0, &qs);
      local.filters += qs.filters;
      local.candidates += qs.candidates;
      local.distinct_candidates += qs.distinct_candidates;
      for (const Match& c : candidates) {
        local.verifications++;
        double sim = BraunBlanquet(query, data_->Get(c.id));
        if (sim >= options_.b1) {
          found = Match{c.id, sim};
          break;
        }
      }
    }
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

}  // namespace skewsearch
