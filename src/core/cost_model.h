// Copyright 2026 The skewsearch Authors.
// Analytic cost model: Lemma 6's recursion, evaluated numerically.
//
// Lemma 6 bounds E|F(x)| by tracking, per path, the accumulated
// "information" sum_k ln(1/p_{i_k}) (the quantity the stop rule compares
// against ln n) and the expected branching sum_i p_i * s(x, j, i). This
// module evaluates that recursion exactly (in the annealed / mean-field
// sense: expectation over both the data vector and the hash functions) by
// dynamic programming over (depth, consumed-budget) states, giving
// predictions for
//   * E|F(x)|: filters per element per repetition (index size, build work),
//   * E[nodes]: interior recursion nodes (filter-generation time),
//   * the depth profile of emitted filters.
//
// The same DP powers capacity planning (how much does delta or alpha cost
// me?) without building anything, and the tests validate it against
// measured builds.

#ifndef SKEWSEARCH_CORE_COST_MODEL_H_
#define SKEWSEARCH_CORE_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "core/skewed_index.h"
#include "data/distribution.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Parameters of a cost prediction.
struct CostModelOptions {
  IndexMode mode = IndexMode::kCorrelated;
  double alpha = 0.5;   ///< kCorrelated
  double delta = 0.1;   ///< kCorrelated sampling boost
  double b1 = 0.5;      ///< kAdversarial
  size_t n = 1024;      ///< dataset size (sets the stop threshold ln n)
  /// Budget discretization: number of bins for the accumulated
  /// ln(1/p) sum in [0, ln n). More bins = finer (default plenty).
  size_t budget_bins = 512;
  /// Hard cap on modeled depth (matches the engine's default).
  int max_depth = 64;
};

/// \brief Prediction output.
struct CostPrediction {
  double expected_filters = 0.0;   ///< E|F(x)| per repetition
  double expected_nodes = 0.0;     ///< expected interior nodes expanded
  double expected_draws = 0.0;     ///< expected hash evaluations
  std::vector<double> filters_by_depth;  ///< E[# filters of each length]
  double mean_filter_depth = 0.0;
};

/// Evaluates the Lemma 6 recursion for x ~ D under the given policy
/// parameters. The model treats item membership and hash draws in
/// expectation (exactly the quantity Lemma 6 bounds); it ignores the
/// without-replacement correction, which only reduces counts (paths are
/// short relative to |x| when C is large).
Result<CostPrediction> PredictFilterGeneration(const ProductDistribution& dist,
                                               const CostModelOptions& options);

/// Convenience: predicted filters per element for an index configuration
/// (multiplying by repetitions gives total table entries per element).
Result<double> PredictFiltersPerElement(const ProductDistribution& dist,
                                        const SkewedIndexOptions& options,
                                        size_t n);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_COST_MODEL_H_
