// Copyright 2026 The skewsearch Authors.
// Analytic cost model: Lemma 6's recursion, evaluated numerically.
//
// Lemma 6 bounds E|F(x)| by tracking, per path, the accumulated
// "information" sum_k ln(1/p_{i_k}) (the quantity the stop rule compares
// against ln n) and the expected branching sum_i p_i * s(x, j, i). This
// module evaluates that recursion exactly (in the annealed / mean-field
// sense: expectation over both the data vector and the hash functions) by
// dynamic programming over (depth, consumed-budget) states, giving
// predictions for
//   * E|F(x)|: filters per element per repetition (index size, build work),
//   * E[nodes]: interior recursion nodes (filter-generation time),
//   * the depth profile of emitted filters.
//
// The same DP powers capacity planning (how much does delta or alpha cost
// me?) without building anything, and the tests validate it against
// measured builds.

#ifndef SKEWSEARCH_CORE_COST_MODEL_H_
#define SKEWSEARCH_CORE_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "core/skewed_index.h"
#include "data/distribution.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Parameters of a cost prediction.
struct CostModelOptions {
  IndexMode mode = IndexMode::kCorrelated;
  double alpha = 0.5;   ///< kCorrelated
  double delta = 0.1;   ///< kCorrelated sampling boost
  double b1 = 0.5;      ///< kAdversarial
  size_t n = 1024;      ///< dataset size (sets the stop threshold ln n)
  /// Budget discretization: number of bins for the accumulated
  /// ln(1/p) sum in [0, ln n). More bins = finer (default plenty).
  size_t budget_bins = 512;
  /// Hard cap on modeled depth (matches the engine's default).
  int max_depth = 64;
};

/// \brief Prediction output.
struct CostPrediction {
  double expected_filters = 0.0;   ///< E|F(x)| per repetition
  double expected_nodes = 0.0;     ///< expected interior nodes expanded
  double expected_draws = 0.0;     ///< expected hash evaluations
  std::vector<double> filters_by_depth;  ///< E[# filters of each length]
  double mean_filter_depth = 0.0;
};

/// Evaluates the Lemma 6 recursion for x ~ D under the given policy
/// parameters. The model treats item membership and hash draws in
/// expectation (exactly the quantity Lemma 6 bounds); it ignores the
/// without-replacement correction, which only reduces counts (paths are
/// short relative to |x| when C is large).
Result<CostPrediction> PredictFilterGeneration(const ProductDistribution& dist,
                                               const CostModelOptions& options);

/// Convenience: predicted filters per element for an index configuration
/// (multiplying by repetitions gives total table entries per element).
Result<double> PredictFiltersPerElement(const ProductDistribution& dist,
                                        const SkewedIndexOptions& options,
                                        size_t n);

/// \brief Aggregate layout counters of an online (dynamic) index.
///
/// Produced by DynamicIndex::Profile(); the delta-aware model uses it to
/// scale frozen-table predictions to what the online read path actually
/// pays: tombstoned postings are scanned (and charged as candidates)
/// before being skipped, and delta lists add one hash-map probe per
/// touched key.
struct OnlineIndexProfile {
  size_t base_entries = 0;   ///< posting entries in the frozen shard tables
  size_t delta_entries = 0;  ///< posting entries held in delta lists
  size_t dead_entries = 0;   ///< posting entries referencing tombstoned ids
  size_t delta_keys = 0;     ///< distinct (shard, key) pairs with a delta list
};

/// \brief Delta-aware prediction of online-index query overheads.
struct OnlineCostPrediction {
  /// Scanned candidates per query relative to a fully compacted index
  /// of the same live content: 1 / (1 - dead_fraction). Dead postings
  /// are charged to the candidates counter and then skipped, so the
  /// posting-scan work of a query scales by exactly this factor.
  double candidate_factor = 1.0;

  /// Fraction of posting entries that are tombstoned.
  double dead_fraction = 0.0;

  /// Fraction of posting entries living in delta lists; each touched key
  /// additionally pays one hash-map probe per shard for them.
  double delta_fraction = 0.0;

  /// Query-side E|F(q)| per repetition from the Lemma 6 DP — multiply by
  /// repetitions for the number of keys a query probes.
  double expected_filters = 0.0;
};

/// Pure layout factor: scanned candidates on the online index divided by
/// scanned candidates on a compacted index with the same live content.
double PredictOnlineCandidateFactor(const OnlineIndexProfile& profile);

/// Full delta-aware prediction: evaluates the Lemma 6 recursion for the
/// configuration and scales it by the layout overheads of \p profile.
Result<OnlineCostPrediction> PredictOnlineQueryCost(
    const ProductDistribution& dist, const SkewedIndexOptions& options,
    size_t n, const OnlineIndexProfile& profile);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_COST_MODEL_H_
