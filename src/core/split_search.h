// Copyright 2026 The skewsearch Authors.
// The Section 1 motivating example, as a working component: split the
// universe into frequent and rare items, index both projections, and
// answer a search for overlap >= b1 |q| by searching for overlap
// >= ell |q| among frequent items OR >= (b1 - ell) |q| among rare items.
// For every ell one of the two must hold, so recall is preserved; choosing
// ell to balance the two sub-search exponents gives the speedup whenever
// the frequent and rare expected intersections differ (i.e. under skew).

#ifndef SKEWSEARCH_CORE_SPLIT_SEARCH_H_
#define SKEWSEARCH_CORE_SPLIT_SEARCH_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "sim/brute_force.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Configuration for the split searcher.
struct SplitSearchOptions {
  /// Overall Braun-Blanquet similarity the search targets.
  double b1 = 0.5;
  /// Budget given to the frequent half; negative auto-balances the two
  /// sub-exponents on a grid (see SplitPlan).
  double ell = -1.0;
  /// Items with p_i >= frequency_split are "frequent"; negative uses the
  /// geometric mean of the distribution's min and max probability.
  double frequency_split = -1.0;
  /// Options forwarded to both sub-indexes (mode is forced to
  /// kAdversarial; b1 is overridden per sub-index).
  SkewedIndexOptions index;
};

/// \brief The analytic plan behind a split (exposed for the bench).
struct SplitPlan {
  double ell = 0.0;            ///< chosen budget for the frequent half
  double rho_frequent = 1.0;   ///< sub-exponent of the frequent search
  double rho_rare = 1.0;       ///< sub-exponent of the rare search
  double rho_unsplit = 1.0;    ///< exponent of the single unsplit search
  double split_probability = 0.0;  ///< frequency threshold used
  size_t frequent_items = 0;
  size_t rare_items = 0;
};

/// \brief Two-sided frequent/rare searcher.
class SplitSearcher {
 public:
  SplitSearcher() = default;

  /// Partitions the universe, projects the dataset, and builds the two
  /// sub-indexes.
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const SplitSearchOptions& options);

  /// Returns a vector whose *full* similarity with \p query reaches
  /// b1 (verification always uses the unprojected vectors).
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// The analytic plan chosen at build time.
  const SplitPlan& plan() const { return plan_; }

  /// Computes the plan for a distribution without building (used by the
  /// motivating-example bench to sweep parameters cheaply).
  static Result<SplitPlan> Analyze(const ProductDistribution& dist, size_t n,
                                   double b1, double frequency_split = -1.0,
                                   double ell = -1.0);

 private:
  const Dataset* data_ = nullptr;
  SplitSearchOptions options_;
  SplitPlan plan_;
  std::vector<bool> is_frequent_;  // by item id
  Dataset frequent_data_;
  Dataset rare_data_;
  ProductDistribution frequent_dist_;
  ProductDistribution rare_dist_;
  std::unique_ptr<SkewedPathIndex> frequent_index_;
  std::unique_ptr<SkewedPathIndex> rare_index_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_SPLIT_SEARCH_H_
