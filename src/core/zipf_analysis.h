// Copyright 2026 The skewsearch Authors.
// Exploration of the paper's Section 9 open problem:
//
//   "One more often encounters distributions with much more gradual skew,
//    such as a Zipf distribution. Unfortunately, sets selected using a
//    Zipf distribution have very small expected size, which trivializes
//    the asymptotics. It would be interesting to find a class of
//    distributions that accurately characterizes the skew of real data
//    while remaining interesting for asymptotic analysis."
//
// This module formalizes candidate classes and measures, as n grows,
//   (a) whether the asymptotics stay "interesting" — the paper needs
//       sum_i p_i = C ln n with large C, i.e. C(n) must not vanish — and
//   (b) whether the skew advantage persists — the gap between our
//       Theorem 1 exponent and Chosen Path's.
//
// Classes implemented:
//   kPureZipf        p_j = p1 / j^s with d(n) = n:      C(n) -> constant
//                    (s = 1) or -> 0 (s > 1): trivializes, as the paper
//                    observes.
//   kScaledZipf      Zipf shape, but rescaled so that sum p = C0 ln n
//                    (density grows with n, shape fixed): C(n) = C0 by
//                    construction — asymptotics stay interesting, skew
//                    persists. A candidate answer to the open problem.
//   kPiecewiseZipf   the Section 8 observation: a flatter head plus a
//                    Zipf tail, head width Theta(ln n): keeps both the
//                    realistic profile and C(n) = Theta(1).

#ifndef SKEWSEARCH_CORE_ZIPF_ANALYSIS_H_
#define SKEWSEARCH_CORE_ZIPF_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "data/distribution.h"
#include "util/result.h"

namespace skewsearch {

/// Candidate distribution classes for the Section 9 open problem.
enum class ZipfClass {
  kPureZipf,
  kScaledZipf,
  kPiecewiseZipf,
};

/// \brief Parameters of a Zipf-class family.
struct ZipfClassOptions {
  ZipfClass kind = ZipfClass::kScaledZipf;
  double exponent = 1.0;  ///< Zipf decay s
  double c0 = 10.0;       ///< target C for the scaled/piecewise classes
  double alpha = 2.0 / 3.0;  ///< correlation for the exponent comparison
  /// Universe size as a function of n: d = universe_factor * n.
  double universe_factor = 1.0;
};

/// \brief One row of the asymptotic study.
struct ZipfClassPoint {
  size_t n = 0;
  double expected_size = 0.0;  ///< m(n) = sum p_i
  double c_of_n = 0.0;         ///< m(n) / ln n
  double rho_ours = 0.0;       ///< Theorem 1 exponent
  double rho_chosen_path = 0.0;
  double gap = 0.0;            ///< rho_cp - rho_ours (the skew advantage)
};

/// Materializes the class's distribution at size n.
Result<ProductDistribution> MakeZipfClassDistribution(
    const ZipfClassOptions& options, size_t n);

/// Computes the asymptotic study at each n: m(n), C(n) and the exponent
/// gap. Answers (a) and (b) above per class.
Result<std::vector<ZipfClassPoint>> AnalyzeZipfClass(
    const ZipfClassOptions& options, const std::vector<size_t>& ns);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_ZIPF_ANALYSIS_H_
