// Copyright 2026 The skewsearch Authors.
// Internal driver shared by the BatchQuery() implementations of
// SkewedPathIndex, ChosenPathIndex and MinHashLsh. Not part of the
// public API.
//
// The batch is sharded over a ThreadPool in dynamically scheduled chunks
// (skewed data means skewed per-query cost, so static splits strand
// workers behind hot queries). Each worker slot owns a Scratch instance
// whose buffers are reused across every query it answers; results and
// per-query stats land in positional slots, so output is identical to a
// serial run regardless of thread count or chunk schedule.

#ifndef SKEWSEARCH_CORE_BATCH_H_
#define SKEWSEARCH_CORE_BATCH_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "core/query_stats.h"
#include "data/dataset.h"
#include "sim/brute_force.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {
namespace batch_internal {

/// Shared threads-to-pool policy for the `int threads` BatchQuery
/// overloads: <= 1 runs serially (null pool), otherwise a transient
/// pool of \p threads workers lives for one call of \p fn.
template <typename PoolFn>
auto RunWithTransientPool(int threads, const PoolFn& fn) {
  if (threads <= 1) return fn(static_cast<ThreadPool*>(nullptr));
  ThreadPool pool(threads);
  return fn(&pool);
}

/// Answers every query in \p queries via
/// `query_one(i, &scratch, &query_stats)`, which yields an optional
/// Match per query,
/// using one Scratch per worker slot. \p reduce folds each slot's
/// scratch into the aggregate: `reduce(scratch, batch_stats)`.
/// A null (or single-threaded) \p pool runs serially on the caller.
template <typename Scratch, typename QueryOne, typename Reduce>
std::vector<std::optional<Match>> Run(const Dataset& queries, ThreadPool* pool,
                                      std::vector<QueryStats>* stats,
                                      BatchQueryStats* batch_stats,
                                      const QueryOne& query_one,
                                      const Reduce& reduce) {
  Timer timer;
  const size_t n = queries.size();
  std::vector<std::optional<Match>> results(n);
  if (stats != nullptr) stats->assign(n, QueryStats{});
  const int slots =
      (pool != nullptr && n > 1) ? std::max(1, pool->num_threads()) : 1;
  std::vector<Scratch> scratch(static_cast<size_t>(slots));
  // Per-slot totals avoid a shared accumulator (and its contention).
  std::vector<QueryStats> totals(static_cast<size_t>(slots));
  auto run_query = [&](size_t i, int slot) {
    QueryStats query_stats;
    results[i] = query_one(i, &scratch[static_cast<size_t>(slot)],
                           &query_stats);
    AddQueryStats(&totals[static_cast<size_t>(slot)], query_stats);
    if (stats != nullptr) (*stats)[i] = query_stats;
  };
  if (slots <= 1) {
    for (size_t i = 0; i < n; ++i) run_query(i, 0);
  } else {
    const size_t grain = std::clamp<size_t>(
        n / (8 * static_cast<size_t>(slots)), size_t{1}, size_t{64});
    pool->ParallelFor(n, grain, [&](size_t begin, size_t end, int slot) {
      for (size_t i = begin; i < end; ++i) run_query(i, slot);
    });
  }
  if (batch_stats != nullptr) {
    *batch_stats = BatchQueryStats{};
    batch_stats->queries = n;
    batch_stats->threads = slots;
    for (const QueryStats& t : totals) AddQueryStats(&batch_stats->totals, t);
    for (const Scratch& s : scratch) reduce(s, batch_stats);
    batch_stats->wall_seconds = timer.ElapsedSeconds();
  }
  return results;
}

}  // namespace batch_internal
}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_BATCH_H_
