// Copyright 2026 The skewsearch Authors.
// Similarity join via repeated similarity search (the paper's "Similarity
// joins" paragraph: index S, then probe with every r in R; preprocessing
// O(d |S|^{1+rho}), total join time O(d |R| |S|^rho) when the output is
// small).
//
// Pair emission is pluggable: the default backend probes one in-process
// index (monolithic, sharded or online per JoinOptions), while
// `JoinOptions::workers > 1` routes the same probes through the
// distributed driver (src/distributed/) — a planner/worker pipeline
// whose output is identical for every worker count. All backends emit
// into the same canonical (left, right)-sorted pair list, which is what
// makes them interchangeable and cross-checkable.

#ifndef SKEWSEARCH_CORE_SIMILARITY_JOIN_H_
#define SKEWSEARCH_CORE_SIMILARITY_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "maintenance/service.h"
#include "sim/brute_force.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Join configuration.
struct JoinOptions {
  /// Index configuration for the build side (mode, b1/alpha, seed, ...).
  SkewedIndexOptions index;
  /// Similarity pairs must reach; negative derives the index's
  /// verify threshold.
  double threshold = -1.0;
  /// Probe-side parallelism (<= 1 = serial). Probes are independent; the
  /// output is identical to a serial join.
  int probe_threads = 0;
  /// When > 1, the build side is a ShardedIndex with this many hash
  /// partitions instead of a monolithic SkewedPathIndex. Shard probes
  /// are byte-identical to unsharded ones, so the join output does not
  /// depend on this knob — only memory layout and parallelism do.
  int num_shards = 0;
  /// When true, the build side is the *online* DynamicIndex with a
  /// MaintenanceService attached for the duration of the join (the
  /// end-to-end drivable maintenance path). A fresh dynamic build
  /// answers QueryAll identically to the static index, so this changes
  /// which engine serves the probes, not the output.
  bool online = false;
  /// Maintenance policy when online; `maintenance_thread` also starts
  /// the background thread while the join runs.
  MaintenanceOptions maintenance;
  bool maintenance_thread = false;
  /// Online only: number of net no-op insert+remove cycles applied to
  /// the build side after the build. Each cycle inserts a copy of an
  /// existing build-side vector and immediately tombstones it, so the
  /// join output is unchanged — but the accumulated deltas and
  /// tombstones give the maintenance service real compaction work that
  /// overlaps the probe phase. (Being net no-op, the churn never moves
  /// the live count, so it exercises compaction but can never trip the
  /// drift-rebuild trigger.) With the background thread off,
  /// maintenance runs inline at intervals during the churn. 0 =
  /// pristine build side, in which case the service has nothing to do.
  size_t churn = 0;
  /// When > 1, pair emission runs on the distributed backend
  /// (src/distributed/) instead of the single-process probe loop: a
  /// PartitionPlanner splits the filter-key space across this many
  /// in-process workers (heavy keys sliced, light keys hashed once) and
  /// the coordinator merges and dedups the per-worker pair streams. The
  /// output is provably identical to the single-process backend for any
  /// worker count. Incompatible with `online` (the distributed build
  /// side is immutable); `num_shards` is ignored by this backend.
  int workers = 0;
  /// Distributed backend only: posting count above which the planner
  /// splits a filter key across workers (0 = auto).
  size_t heavy_threshold = 0;
  /// When non-empty, the distributed backend's workers are remote
  /// `join-worker` processes at these "host:port" endpoints, one per
  /// worker, reached over the TCP transport
  /// (distributed/transport/tcp_transport.h): the coordinator connects,
  /// ships each worker its posting-slice assignment, streams probe
  /// batches, and merges — output still byte-identical to every other
  /// backend. Implies the distributed backend even for a single
  /// endpoint; `workers` must be 0 or match the endpoint count.
  std::vector<std::string> remote_workers;
  /// Remote workers only: probes shipped per ProbeBatch frame (0 =
  /// each worker's whole queue in one frame). Batch size never changes
  /// the output, only the number of round trips.
  size_t probe_batch = 256;
  /// Remote workers only: ProbeBatch frames kept in flight per worker
  /// (default 2 hides each batch's round trip behind the previous
  /// batch's service time; 1 = strict send-then-wait). Never changes
  /// the output.
  size_t pipeline = 2;
  /// When non-empty, the path of an SKF1 frozen-shard file
  /// (core/frozen_shard.h) previously written by Freeze() over the
  /// build-side dataset. Implies the distributed backend: instead of
  /// rebuilding the posting table, the coordinator maps the file
  /// zero-copy and serves one worker per stored shard
  /// (DistributedJoin::BuildFromFrozen). `index`, `workers` and
  /// `heavy_threshold` are ignored — the file's parameter block and
  /// shard count govern. With `remote_workers` set (one endpoint per
  /// stored shard) the workers must have pre-mapped the same file via
  /// `join-worker --shard-file`. Output stays byte-identical to every
  /// other backend. Incompatible with `online`.
  std::string frozen_shards;
};

/// \brief Join counters.
struct JoinStats {
  size_t pairs = 0;
  size_t candidates = 0;       ///< summed posting-list work across probes
  size_t verifications = 0;
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
  size_t compactions = 0;      ///< online build side only
  size_t rebuilds = 0;         ///< online build side only
  /// Distributed backend only: data shipped to workers over one dataset
  /// copy (1.0 elsewhere), and the average workers contacted per probe.
  double duplication_factor = 1.0;
  double probe_fanout = 0.0;
  /// Remote workers only (zero otherwise): probe-phase frame bytes on
  /// the wire, ProbeBatch frames shipped, and the *exposed* round trips
  /// — receives no pipelined batch was hiding (see
  /// DistributedJoinStats::probe_round_trips).
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  size_t probe_round_trips = 0;
  size_t probe_batches_sent = 0;
  /// Remote workers only: workers whose slices were re-shipped to a
  /// survivor after their session died mid-join, and the ProbeBatch
  /// frames replayed to finish their queues.
  size_t worker_recoveries = 0;
  size_t replayed_batches = 0;
};

/// R-S join: returns all (r, s) with B(r, s) >= threshold found by probing
/// an index over \p right with every vector of \p left. `left` ids populate
/// JoinPair::left, `right` ids JoinPair::right. Being an LSF method the
/// join is probabilistic: each qualifying pair is reported with the
/// index's success probability (boost via index.repetition_boost).
Result<std::vector<JoinPair>> SimilarityJoin(const Dataset& left,
                                             const Dataset& right,
                                             const ProductDistribution& dist,
                                             const JoinOptions& options,
                                             JoinStats* stats = nullptr);

/// Self join: all pairs (i < j) within \p data with similarity >=
/// threshold (self-matches removed, pairs deduplicated).
Result<std::vector<JoinPair>> SelfSimilarityJoin(
    const Dataset& data, const ProductDistribution& dist,
    const JoinOptions& options, JoinStats* stats = nullptr);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CORE_SIMILARITY_JOIN_H_
