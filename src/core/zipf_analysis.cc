#include "core/zipf_analysis.h"

#include <cmath>

#include "core/rho.h"
#include "data/generators.h"

namespace skewsearch {

Result<ProductDistribution> MakeZipfClassDistribution(
    const ZipfClassOptions& options, size_t n) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (options.exponent <= 0.0) {
    return Status::InvalidArgument("exponent must be positive");
  }
  size_t d = std::max<size_t>(
      16, static_cast<size_t>(options.universe_factor *
                              static_cast<double>(n)));
  const double log_n = std::log(static_cast<double>(n));
  switch (options.kind) {
    case ZipfClass::kPureZipf:
      // Fixed head probability 1/2; expected size is whatever the
      // harmonic-like sum gives (Theta(log d) for s = 1, O(1) for s > 1).
      return ZipfProbabilities(d, options.exponent, 0.5);
    case ZipfClass::kScaledZipf: {
      // Zipf shape rescaled so sum p = c0 * ln n.
      auto shaped = ZipfProbabilities(d, options.exponent, 0.5);
      if (!shaped.ok()) return shaped.status();
      return ScaleToAverageSize(*shaped, options.c0 * log_n);
    }
    case ZipfClass::kPiecewiseZipf: {
      // Theta(ln n)-wide flat-ish head + Zipf tail, rescaled to c0 ln n.
      size_t head = std::max<size_t>(
          4, static_cast<size_t>(4.0 * options.c0 * log_n));
      head = std::min(head, d - 1);
      auto shaped = PiecewiseZipfProbabilities(
          {{head, 0.5, 0.1}, {d - head, 0.25, options.exponent}});
      if (!shaped.ok()) return shaped.status();
      return ScaleToAverageSize(*shaped, options.c0 * log_n);
    }
  }
  return Status::InvalidArgument("unknown Zipf class");
}

Result<std::vector<ZipfClassPoint>> AnalyzeZipfClass(
    const ZipfClassOptions& options, const std::vector<size_t>& ns) {
  if (ns.empty()) return Status::InvalidArgument("need at least one n");
  std::vector<ZipfClassPoint> points;
  points.reserve(ns.size());
  for (size_t n : ns) {
    auto dist = MakeZipfClassDistribution(options, n);
    if (!dist.ok()) return dist.status();
    ZipfClassPoint point;
    point.n = n;
    point.expected_size = dist->SumP();
    point.c_of_n = dist->CForN(n);
    auto rho = CorrelatedRho(*dist, options.alpha);
    if (!rho.ok()) return rho.status();
    point.rho_ours = *rho;
    point.rho_chosen_path = ChosenPathRhoForDistribution(*dist,
                                                         options.alpha);
    point.gap = point.rho_chosen_path - point.rho_ours;
    points.push_back(point);
  }
  return points;
}

}  // namespace skewsearch
