#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace skewsearch {

namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace

Summary Summarize(std::vector<double> values) {
  Summary out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  RunningStats stats;
  for (double v : values) stats.Add(v);
  out.count = stats.count();
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.min = stats.min();
  out.max = stats.max();
  out.p50 = Percentile(values, 0.50);
  out.p90 = Percentile(values, 0.90);
  out.p99 = Percentile(values, 0.99);
  return out;
}

}  // namespace skewsearch
