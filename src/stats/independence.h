// Copyright 2026 The skewsearch Authors.
// Independence-ratio estimation — Table 1 of the paper.
//
// For random item subsets I of size |I|, the ratio
//
//     E_I[ Pr_{x in S}(forall j in I: x_j = 1) ]  /  E_I[ prod_{j in I} p_j ]
//
// measures how far a dataset deviates from the product-distribution
// assumption (equation (2) of Section 8): ~1 for independent bits, > 1
// when dimensions co-occur more often than independence predicts.

#ifndef SKEWSEARCH_STATS_INDEPENDENCE_H_
#define SKEWSEARCH_STATS_INDEPENDENCE_H_

#include <cstddef>

#include "data/dataset.h"
#include "util/random.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Result of one independence-ratio estimate.
struct IndependenceEstimate {
  double ratio = 0.0;          ///< estimated ratio (1 = independent)
  double expected_observed = 0.0;  ///< E_I[Pr(all bits set)] estimate
  double expected_product = 0.0;   ///< E_I[prod p_j] estimate
  size_t samples = 0;
};

/// Estimates the Table 1 ratio for subsets of size \p set_size using
/// \p num_samples uniformly random subsets of [d]. Requires set_size >= 1
/// and a non-empty dataset. Unbiased but high-variance on sparse data —
/// prefer ExactIndependenceRatio for |I| <= 3.
Result<IndependenceEstimate> EstimateIndependenceRatio(const Dataset& data,
                                                       size_t set_size,
                                                       size_t num_samples,
                                                       Rng* rng);

/// Computes the Table 1 ratio exactly for |I| in {1, 2, 3}:
///   E_I[Pr_x(forall j in I: x_j=1)] = sum_x C(|x|, |I|) / (n * C(d, |I|))
///   E_I[prod p_j]                   = e_{|I|}(p_1..p_d) / C(d, |I|)
/// where e_k is the elementary symmetric polynomial of the empirical
/// frequencies (Newton's identities). No sampling noise; O(total items).
Result<IndependenceEstimate> ExactIndependenceRatio(const Dataset& data,
                                                    size_t set_size);

}  // namespace skewsearch

#endif  // SKEWSEARCH_STATS_INDEPENDENCE_H_
