// Copyright 2026 The skewsearch Authors.
// Power-law fitting of measured query costs: cost(n) ~ A * n^rho. The
// scaling benches compare the fitted rho-hat against the paper's analytic
// exponents.

#ifndef SKEWSEARCH_STATS_EXPONENT_FIT_H_
#define SKEWSEARCH_STATS_EXPONENT_FIT_H_

#include <vector>

#include "util/result.h"

namespace skewsearch {

/// \brief Result of a log-log least-squares fit.
struct ExponentFit {
  double exponent = 0.0;      ///< rho-hat: slope on the log-log plot
  double log_constant = 0.0;  ///< ln A
  double r_squared = 0.0;     ///< goodness of fit
};

/// Fits cost = A * n^rho through (n_values[i], costs[i]). Requires at
/// least two points, all positive.
Result<ExponentFit> FitPowerLaw(const std::vector<double>& n_values,
                                const std::vector<double>& costs);

}  // namespace skewsearch

#endif  // SKEWSEARCH_STATS_EXPONENT_FIT_H_
