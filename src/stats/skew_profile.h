// Copyright 2026 The skewsearch Authors.
// Item-frequency skew profiles — the measurement behind Figure 2 of the
// paper, which plots, for each dataset, 1 + log_n(p_j) against j/d (linear
// axis) and against log_d(j) (log axis), where p_j are the empirical item
// frequencies in decreasing order.

#ifndef SKEWSEARCH_STATS_SKEW_PROFILE_H_
#define SKEWSEARCH_STATS_SKEW_PROFILE_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace skewsearch {

/// \brief Empirical frequency profile of a dataset.
struct SkewProfile {
  /// Item frequencies p_j = count_j / n in decreasing order; items that
  /// never occur are dropped (their log-frequency is -inf).
  std::vector<double> frequencies;
  size_t n = 0;  ///< number of sets
  size_t d = 0;  ///< universe size (including never-occurring items)
};

/// One point of a Figure 2 series.
struct ProfilePoint {
  double x;
  double y;
};

/// Counts occurrences and sorts frequencies in decreasing order.
SkewProfile ComputeSkewProfile(const Dataset& data);

/// Figure 2, left: x = j/d, y = 1 + log_n(p_j); downsampled to at most
/// \p num_points evenly spaced ranks.
std::vector<ProfilePoint> LinearAxisSeries(const SkewProfile& profile,
                                           size_t num_points);

/// Figure 2, right: x = log_d(j), y = 1 + log_n(p_j); downsampled to at
/// most \p num_points geometrically spaced ranks.
std::vector<ProfilePoint> LogAxisSeries(const SkewProfile& profile,
                                        size_t num_points);

/// Least-squares slope of ln(p_j) vs ln(j) — the (negated) Zipf exponent
/// of the profile. A "plain Zipfian" dataset is linear on the log axis.
double FitZipfExponent(const SkewProfile& profile);

}  // namespace skewsearch

#endif  // SKEWSEARCH_STATS_SKEW_PROFILE_H_
