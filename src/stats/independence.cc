#include "stats/independence.h"

#include <algorithm>

#include "sim/intersect.h"

namespace skewsearch {

Result<IndependenceEstimate> EstimateIndependenceRatio(const Dataset& data,
                                                       size_t set_size,
                                                       size_t num_samples,
                                                       Rng* rng) {
  if (data.empty() || data.dimension() == 0) {
    return Status::InvalidArgument("dataset must be non-empty");
  }
  if (set_size < 1 || num_samples < 1 || rng == nullptr) {
    return Status::InvalidArgument(
        "set_size and num_samples must be >= 1 and rng non-null");
  }
  const size_t d = data.dimension();
  if (set_size > d) {
    return Status::InvalidArgument("set_size exceeds the universe");
  }
  const double n = static_cast<double>(data.size());

  // Inverted lists (sorted by construction order, which is increasing id).
  std::vector<std::vector<VectorId>> lists(d);
  for (VectorId id = 0; id < data.size(); ++id) {
    for (ItemId item : data.Get(id)) lists[item].push_back(id);
  }

  double sum_observed = 0.0;
  double sum_product = 0.0;
  std::vector<ItemId> subset;
  for (size_t s = 0; s < num_samples; ++s) {
    subset.clear();
    while (subset.size() < set_size) {
      ItemId candidate = static_cast<ItemId>(rng->NextBounded(d));
      if (std::find(subset.begin(), subset.end(), candidate) ==
          subset.end()) {
        subset.push_back(candidate);
      }
    }
    double product = 1.0;
    for (ItemId item : subset) {
      product *= static_cast<double>(lists[item].size()) / n;
    }
    sum_product += product;
    // Co-occurrence count: intersect the inverted lists, smallest first.
    std::sort(subset.begin(), subset.end(), [&](ItemId a, ItemId b) {
      return lists[a].size() < lists[b].size();
    });
    if (lists[subset[0]].empty()) continue;
    std::vector<VectorId> current = lists[subset[0]];
    for (size_t k = 1; k < subset.size() && !current.empty(); ++k) {
      const auto& other = lists[subset[k]];
      std::vector<VectorId> next;
      next.reserve(current.size());
      std::set_intersection(current.begin(), current.end(), other.begin(),
                            other.end(), std::back_inserter(next));
      current = std::move(next);
    }
    sum_observed += static_cast<double>(current.size()) / n;
  }

  IndependenceEstimate out;
  out.samples = num_samples;
  out.expected_observed = sum_observed / static_cast<double>(num_samples);
  out.expected_product = sum_product / static_cast<double>(num_samples);
  out.ratio = out.expected_product > 0.0
                  ? out.expected_observed / out.expected_product
                  : 0.0;
  return out;
}

Result<IndependenceEstimate> ExactIndependenceRatio(const Dataset& data,
                                                    size_t set_size) {
  if (data.empty() || data.dimension() == 0) {
    return Status::InvalidArgument("dataset must be non-empty");
  }
  if (set_size < 1 || set_size > 3) {
    return Status::InvalidArgument(
        "exact computation supports |I| in {1, 2, 3}");
  }
  const double n = static_cast<double>(data.size());
  const double d = static_cast<double>(data.dimension());
  if (static_cast<double>(set_size) > d) {
    return Status::InvalidArgument("set_size exceeds the universe");
  }

  // Numerator: average over subsets I of the co-occurrence probability,
  // i.e. sum over vectors of C(|x|, k), normalized.
  auto choose = [](double m, size_t k) {
    double out = 1.0;
    for (size_t j = 0; j < k; ++j) out *= (m - static_cast<double>(j));
    for (size_t j = 2; j <= k; ++j) out /= static_cast<double>(j);
    return out > 0.0 ? out : 0.0;
  };
  double subset_count = choose(d, set_size);
  double observed_sum = 0.0;
  std::vector<double> counts(data.dimension(), 0.0);
  for (VectorId id = 0; id < data.size(); ++id) {
    observed_sum += choose(static_cast<double>(data.SizeOf(id)), set_size);
    for (ItemId item : data.Get(id)) counts[item] += 1.0;
  }

  // Denominator: elementary symmetric polynomial of the empirical
  // frequencies via power sums (Newton's identities).
  double s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (double c : counts) {
    double p = c / n;
    s1 += p;
    s2 += p * p;
    s3 += p * p * p;
  }
  double ek = 0.0;
  switch (set_size) {
    case 1:
      ek = s1;
      break;
    case 2:
      ek = (s1 * s1 - s2) / 2.0;
      break;
    case 3:
      ek = (s1 * s1 * s1 - 3.0 * s1 * s2 + 2.0 * s3) / 6.0;
      break;
    default:
      break;
  }

  IndependenceEstimate out;
  out.samples = static_cast<size_t>(subset_count);
  out.expected_observed = observed_sum / (n * subset_count);
  out.expected_product = ek / subset_count;
  out.ratio = out.expected_product > 0.0
                  ? out.expected_observed / out.expected_product
                  : 0.0;
  return out;
}

}  // namespace skewsearch
