#include "stats/skew_profile.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace skewsearch {

SkewProfile ComputeSkewProfile(const Dataset& data) {
  SkewProfile profile;
  profile.n = data.size();
  profile.d = data.dimension();
  std::vector<uint32_t> counts(data.dimension(), 0);
  for (VectorId id = 0; id < data.size(); ++id) {
    for (ItemId item : data.Get(id)) counts[item]++;
  }
  for (uint32_t c : counts) {
    if (c > 0) {
      profile.frequencies.push_back(static_cast<double>(c) /
                                    static_cast<double>(data.size()));
    }
  }
  std::sort(profile.frequencies.begin(), profile.frequencies.end(),
            std::greater<double>());
  return profile;
}

namespace {

double YValue(const SkewProfile& profile, size_t j) {
  // 1 + log_n(p_j) in [0, 1] for p_j >= 1/n.
  return 1.0 + std::log(profile.frequencies[j]) /
                   std::log(static_cast<double>(profile.n));
}

}  // namespace

std::vector<ProfilePoint> LinearAxisSeries(const SkewProfile& profile,
                                           size_t num_points) {
  std::vector<ProfilePoint> out;
  size_t m = profile.frequencies.size();
  if (m == 0 || profile.n < 2 || profile.d == 0) return out;
  size_t points = std::min(num_points, m);
  for (size_t k = 0; k < points; ++k) {
    size_t j = k * (m - 1) / std::max<size_t>(1, points - 1);
    out.push_back({static_cast<double>(j + 1) /
                       static_cast<double>(profile.d),
                   YValue(profile, j)});
  }
  return out;
}

std::vector<ProfilePoint> LogAxisSeries(const SkewProfile& profile,
                                        size_t num_points) {
  std::vector<ProfilePoint> out;
  size_t m = profile.frequencies.size();
  if (m == 0 || profile.n < 2 || profile.d < 2) return out;
  size_t points = std::min(num_points, m);
  double log_d = std::log(static_cast<double>(profile.d));
  double log_m = std::log(static_cast<double>(m));
  for (size_t k = 0; k < points; ++k) {
    // Geometric rank spacing from 1 to m.
    double t = static_cast<double>(k) /
               static_cast<double>(std::max<size_t>(1, points - 1));
    size_t j = static_cast<size_t>(std::exp(t * log_m)) - 1;
    j = std::min(j, m - 1);
    out.push_back({std::log(static_cast<double>(j + 1)) / log_d,
                   YValue(profile, j)});
  }
  return out;
}

double FitZipfExponent(const SkewProfile& profile) {
  size_t m = profile.frequencies.size();
  if (m < 2) return 0.0;
  std::vector<double> xs, ys;
  xs.reserve(m);
  ys.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    xs.push_back(std::log(static_cast<double>(j + 1)));
    ys.push_back(std::log(profile.frequencies[j]));
  }
  double slope = 0.0, intercept = 0.0;
  if (!LinearFit(xs, ys, &slope, &intercept)) return 0.0;
  return -slope;
}

}  // namespace skewsearch
