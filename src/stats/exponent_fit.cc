#include "stats/exponent_fit.h"

#include <cmath>

#include "util/math.h"

namespace skewsearch {

Result<ExponentFit> FitPowerLaw(const std::vector<double>& n_values,
                                const std::vector<double>& costs) {
  if (n_values.size() != costs.size() || n_values.size() < 2) {
    return Status::InvalidArgument("need >= 2 (n, cost) points");
  }
  std::vector<double> xs, ys;
  xs.reserve(n_values.size());
  ys.reserve(costs.size());
  for (size_t i = 0; i < n_values.size(); ++i) {
    if (n_values[i] <= 0.0 || costs[i] <= 0.0) {
      return Status::InvalidArgument("points must be positive");
    }
    xs.push_back(std::log(n_values[i]));
    ys.push_back(std::log(costs[i]));
  }
  ExponentFit fit;
  if (!LinearFit(xs, ys, &fit.exponent, &fit.log_constant)) {
    return Status::InvalidArgument("degenerate fit (all n equal?)");
  }
  // R^2 = 1 - SS_res / SS_tot.
  double mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < ys.size(); ++i) {
    double pred = fit.exponent * xs[i] + fit.log_constant;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace skewsearch
