// Copyright 2026 The skewsearch Authors.
// Sample summaries (mean / spread / percentiles) used when reporting
// per-query costs in tests and benches.

#ifndef SKEWSEARCH_STATS_SUMMARY_H_
#define SKEWSEARCH_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace skewsearch {

/// \brief Five-number-style summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes the summary (sorts a copy; nearest-rank percentiles).
Summary Summarize(std::vector<double> values);

}  // namespace skewsearch

#endif  // SKEWSEARCH_STATS_SUMMARY_H_
