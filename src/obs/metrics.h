// Copyright 2026 The skewsearch Authors.
// Process-wide metrics registry: named counters, gauges and
// log-bucketed latency histograms with text/JSON exposition.
//
// Every layer of the system records into one shared registry
// (MetricsRegistry::Global()) through stable metric pointers that call
// sites look up once and cache — typically via a function-local static,
// which is what the SKEWSEARCH_SPAN macro (obs/span.h) does. The hot
// path is a single relaxed atomic add on a cache-line-padded cell
// (util/sync.h), so instrumented readers stay wait-free and
// instrumentation never introduces a lock into a query. Registration
// (the first lookup of a name) takes a mutex; after that the pointer is
// immortal — the registry never deletes a metric.
//
// The same snapshot feeds four consumers: the text exposition scraped
// by `join-stats`, the JSON exposition behind `--metrics-dump`, the
// StatsResponse wire frame (transport/wire.h), and the bench harness's
// registry dump. docs/OBSERVABILITY.md catalogs the metric names.

#ifndef SKEWSEARCH_OBS_METRICS_H_
#define SKEWSEARCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace skewsearch::obs {

/// \brief Monotonic event count (queries served, bytes shipped, ...).
///
/// Increment() is one relaxed fetch_add on a padded atomic — wait-free
/// and safe from any thread. Readers see a value that is never exact
/// "now" but is always some value the counter actually held.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds \p delta (default 1) to the count.
  void Increment(uint64_t delta = 1) {
    cell_.value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current count.
  uint64_t Value() const {
    return cell_.value.load(std::memory_order_relaxed);
  }

  /// Registered metric name.
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  PaddedAtomicU64 cell_;
};

/// \brief Instantaneous signed level (active sessions, epoch backlog).
///
/// Stored as a two's-complement uint64 in a padded atomic so Add() of a
/// negative delta is a plain wrapping fetch_add — still one wait-free
/// relaxed RMW on the hot path.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// Overwrites the level.
  void Set(int64_t value) {
    cell_.value.store(static_cast<uint64_t>(value),
                      std::memory_order_relaxed);
  }

  /// Adjusts the level by \p delta (may be negative).
  void Add(int64_t delta) {
    cell_.value.fetch_add(static_cast<uint64_t>(delta),
                          std::memory_order_relaxed);
  }

  /// Current level.
  int64_t Value() const {
    return static_cast<int64_t>(
        cell_.value.load(std::memory_order_relaxed));
  }

  /// Registered metric name.
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  PaddedAtomicU64 cell_;
};

/// \brief A read-only copy of one histogram's state.
///
/// `buckets` holds only the nonzero buckets as (index, count) pairs in
/// ascending index order — the form the JSON exposition and the
/// StatsResponse wire frame serialize directly.
struct HistogramData {
  /// Total number of recorded samples.
  uint64_t count = 0;

  /// Sum of all recorded values.
  uint64_t sum = 0;

  /// Largest recorded value (exact, not a bucket bound).
  uint64_t max = 0;

  /// Nonzero (bucket index, sample count) pairs, ascending by index.
  std::vector<std::pair<uint8_t, uint64_t>> buckets;

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the inclusive
  /// upper bound of the bucket holding the rank-⌈q·count⌉ sample,
  /// clamped to `max`. Returns 0 when the histogram is empty.
  uint64_t Quantile(double q) const;
};

/// \brief Log-bucketed latency histogram (nanosecond samples).
///
/// Bucket b >= 1 covers values of bit-width b, i.e. [2^(b-1), 2^b - 1];
/// bucket 0 holds exact zeros. 65 buckets cover the full uint64 range,
/// so Record() is branch-light: one bit_width, three relaxed adds and a
/// CAS-max. Quantiles are bucket-resolution estimates (within 2x),
/// `max` is exact.
class Histogram {
 public:
  /// Bucket count: index 0 (zeros) plus one bucket per bit width 1..64.
  static constexpr int kNumBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index holding \p value: 0 for 0, else bit_width(value).
  static int BucketIndex(uint64_t value) {
    return value == 0 ? 0 : std::bit_width(value);
  }

  /// Inclusive upper bound of bucket \p index.
  static uint64_t BucketUpperBound(int index) {
    if (index <= 0) return 0;
    if (index >= 64) return ~uint64_t{0};
    return (uint64_t{1} << index) - 1;
  }

  /// Records one sample. Wait-free apart from the max update, whose CAS
  /// loop retries only while other threads are raising the max past
  /// \p value.
  void Record(uint64_t value) {
    buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.value.fetch_add(1, std::memory_order_relaxed);
    sum_.value.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.value.load(std::memory_order_relaxed);
    while (prev < value && !max_.value.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  /// Total number of recorded samples.
  uint64_t Count() const {
    return count_.value.load(std::memory_order_relaxed);
  }

  /// Copies the current state. Concurrent Record() calls may be torn
  /// across fields (count/sum/buckets are read independently), which is
  /// fine for monitoring; tests quiesce writers before snapshotting.
  HistogramData Snapshot() const;

  /// Registered metric name.
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  PaddedAtomicU64 count_;
  PaddedAtomicU64 sum_;
  PaddedAtomicU64 max_;
};

/// Discriminates the three metric kinds in snapshots and on the wire
/// (the values are the wire encoding — see docs/WIRE_PROTOCOL.md).
enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// \brief One metric's name, kind and value, decoupled from the live
/// atomics — the unit of exposition and of the StatsResponse frame.
struct MetricSnapshot {
  /// Registered metric name.
  std::string name;

  /// Which of the value fields below is meaningful.
  MetricKind kind = MetricKind::kCounter;

  /// Counter value (kind == kCounter).
  uint64_t counter_value = 0;

  /// Gauge level (kind == kGauge).
  int64_t gauge_value = 0;

  /// Histogram state (kind == kHistogram).
  HistogramData histogram;
};

/// \brief Named registry of counters, gauges and histograms.
///
/// Get*() registers on first use and afterwards returns the same
/// pointer, which stays valid for the registry's lifetime — call sites
/// cache it (function-local static) so steady state never touches the
/// registration mutex. Instances are independent (tests build their
/// own); production code records into Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented layer records into.
  static MetricsRegistry& Global();

  /// Returns the counter registered under \p name, creating it on
  /// first use. The pointer is stable until the registry is destroyed.
  Counter* GetCounter(std::string_view name);

  /// Returns the gauge registered under \p name, creating it on first
  /// use. The pointer is stable until the registry is destroyed.
  Gauge* GetGauge(std::string_view name);

  /// Returns the histogram registered under \p name, creating it on
  /// first use. The pointer is stable until the registry is destroyed.
  Histogram* GetHistogram(std::string_view name);

  /// Copies every registered metric, sorted by name (kinds interleaved;
  /// by convention names are unique across kinds).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable exposition, one metric per line:
  /// `counter <name> <value>`, `gauge <name> <value>`, or
  /// `histogram <name> count=<n> sum=<s> p50=<..> p90=<..> p99=<..>
  /// max=<m>`. Sorted by name; the format `join-stats` prints.
  std::string TextExposition() const;

  /// JSON exposition: `{"metrics": {<name>: {...}, ...}}` with
  /// per-kind value objects (see docs/OBSERVABILITY.md). Sorted by
  /// name, deterministic for golden tests; the `--metrics-dump` format.
  std::string JsonExposition() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// Renders a snapshot in the TextExposition() line format — shared by
/// the registry itself and by `join-stats`, which prints a snapshot
/// decoded from a StatsResponse frame rather than a live registry.
std::string RenderText(const std::vector<MetricSnapshot>& metrics);

/// Renders a snapshot in the JsonExposition() format (same sharing
/// rationale as RenderText()).
std::string RenderJson(const std::vector<MetricSnapshot>& metrics);

}  // namespace skewsearch::obs

#endif  // SKEWSEARCH_OBS_METRICS_H_
