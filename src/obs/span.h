// Copyright 2026 The skewsearch Authors.
// Trace spans: per-phase wall time recorded into the metrics registry.
//
// `SKEWSEARCH_SPAN("probe.verify");` times the enclosing scope into the
// global histogram `span.probe.verify` — the histogram pointer is
// looked up once per call site (function-local static) and each pass
// costs two clock reads plus one Histogram::Record(), so spans are
// cheap enough for per-query phases. When a ScopedTrace is live on the
// current thread, every span additionally appends a (name, nanos)
// entry to it — the per-query trace dump behind the CLI's `--trace`.
// Span naming conventions live in docs/OBSERVABILITY.md.

#ifndef SKEWSEARCH_OBS_SPAN_H_
#define SKEWSEARCH_OBS_SPAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace skewsearch::obs {

/// \brief One completed span observed by a ScopedTrace.
struct TraceEntry {
  /// The span's metric name (a string literal; `span.`-prefixed).
  std::string_view name;

  /// The span's measured wall time in nanoseconds.
  uint64_t nanos = 0;
};

/// \brief Collects every span that completes on this thread while the
/// ScopedTrace is alive — the per-query trace dump.
///
/// Installation is thread-local and nests: an inner ScopedTrace
/// shadows the outer one until it is destroyed. Not thread-safe; a
/// trace observes its own thread only.
class ScopedTrace {
 public:
  ScopedTrace();
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  /// Spans completed so far, in completion order (inner spans first).
  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// The calling thread's innermost live trace, or nullptr. Code that
  /// measures a phase by hand (without a SpanTimer) uses this to feed
  /// the same trace dump: `if (auto* t = ScopedTrace::Current())
  /// t->Add(...)`.
  static ScopedTrace* Current();

  /// Appends one completed span. \p name must outlive the trace (span
  /// names are string literals).
  void Add(std::string_view name, uint64_t nanos) {
    entries_.push_back(TraceEntry{name, nanos});
  }

 private:
  ScopedTrace* prev_;
  std::vector<TraceEntry> entries_;
};

namespace internal {

/// The thread's innermost live ScopedTrace, or nullptr.
ScopedTrace*& ActiveTrace();

}  // namespace internal

/// \brief RAII body of SKEWSEARCH_SPAN: starts a Timer on construction
/// and records ElapsedNanos() into the histogram (and the thread's
/// active trace, if any) on destruction.
class SpanTimer {
 public:
  /// \p histogram may be null (record to trace only); \p name must
  /// outlive the timer — the macro passes a string literal.
  SpanTimer(Histogram* histogram, std::string_view name)
      : histogram_(histogram), name_(name) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    auto nanos = static_cast<uint64_t>(timer_.ElapsedNanos());
    if (histogram_ != nullptr) histogram_->Record(nanos);
    if (ScopedTrace* trace = internal::ActiveTrace()) {
      trace->Add(name_, nanos);
    }
  }

 private:
  Histogram* histogram_;
  std::string_view name_;
  Timer timer_;
};

}  // namespace skewsearch::obs

// Two-step paste so __LINE__ expands before concatenation.
#define SKEWSEARCH_OBS_CONCAT_INNER_(a, b) a##b
#define SKEWSEARCH_OBS_CONCAT_(a, b) SKEWSEARCH_OBS_CONCAT_INNER_(a, b)

/// Times the enclosing scope into the global histogram `span.<name>`.
/// \p name must be a string literal, dot-separated layer.phase (see
/// docs/OBSERVABILITY.md).
#define SKEWSEARCH_SPAN(name)                                        \
  static ::skewsearch::obs::Histogram* const SKEWSEARCH_OBS_CONCAT_( \
      skewsearch_span_hist_, __LINE__) =                             \
      ::skewsearch::obs::MetricsRegistry::Global().GetHistogram(     \
          "span." name);                                             \
  ::skewsearch::obs::SpanTimer SKEWSEARCH_OBS_CONCAT_(               \
      skewsearch_span_timer_, __LINE__)(                             \
      SKEWSEARCH_OBS_CONCAT_(skewsearch_span_hist_, __LINE__),       \
      "span." name)

#endif  // SKEWSEARCH_OBS_SPAN_H_
