// Copyright 2026 The skewsearch Authors.

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace skewsearch::obs {

namespace {

// Appends `printf`-formatted text to *out (exposition is cold path).
void AppendF(std::string* out, const char* fmt, auto... args) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

uint64_t HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) {
      return std::min(Histogram::BucketUpperBound(index), max);
    }
  }
  return max;  // Racy snapshot undercounted the buckets; max still holds.
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.count = count_.value.load(std::memory_order_relaxed);
  data.sum = sum_.value.load(std::memory_order_relaxed);
  data.max = max_.value.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (n != 0) data.buckets.emplace_back(static_cast<uint8_t>(i), n);
  }
  return data;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Immortal.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::kCounter;
      snap.counter_value = counter->Value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::kGauge;
      snap.gauge_value = gauge->Value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, histogram] : histograms_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::kHistogram;
      snap.histogram = histogram->Snapshot();
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string RenderText(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        AppendF(&out, "counter %s %llu\n", m.name.c_str(),
                static_cast<unsigned long long>(m.counter_value));
        break;
      case MetricKind::kGauge:
        AppendF(&out, "gauge %s %lld\n", m.name.c_str(),
                static_cast<long long>(m.gauge_value));
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        AppendF(&out,
                "histogram %s count=%llu sum=%llu p50=%llu p90=%llu "
                "p99=%llu max=%llu\n",
                m.name.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                static_cast<unsigned long long>(h.Quantile(0.50)),
                static_cast<unsigned long long>(h.Quantile(0.90)),
                static_cast<unsigned long long>(h.Quantile(0.99)),
                static_cast<unsigned long long>(h.max));
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<MetricSnapshot>& metrics) {
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendF(&out, "    \"%s\": {", m.name.c_str());
    switch (m.kind) {
      case MetricKind::kCounter:
        AppendF(&out, "\"type\": \"counter\", \"value\": %llu",
                static_cast<unsigned long long>(m.counter_value));
        break;
      case MetricKind::kGauge:
        AppendF(&out, "\"type\": \"gauge\", \"value\": %lld",
                static_cast<long long>(m.gauge_value));
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        AppendF(&out,
                "\"type\": \"histogram\", \"count\": %llu, \"sum\": %llu, "
                "\"max\": %llu, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
                "\"buckets\": [",
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                static_cast<unsigned long long>(h.max),
                static_cast<unsigned long long>(h.Quantile(0.50)),
                static_cast<unsigned long long>(h.Quantile(0.90)),
                static_cast<unsigned long long>(h.Quantile(0.99)));
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          AppendF(&out, "%s[%d, %llu]", i == 0 ? "" : ", ",
                  static_cast<int>(h.buckets[i].first),
                  static_cast<unsigned long long>(h.buckets[i].second));
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::TextExposition() const {
  return RenderText(Snapshot());
}

std::string MetricsRegistry::JsonExposition() const {
  return RenderJson(Snapshot());
}

}  // namespace skewsearch::obs
