// Copyright 2026 The skewsearch Authors.

#include "obs/span.h"

namespace skewsearch::obs {

namespace internal {

ScopedTrace*& ActiveTrace() {
  thread_local ScopedTrace* active = nullptr;
  return active;
}

}  // namespace internal

ScopedTrace::ScopedTrace() : prev_(internal::ActiveTrace()) {
  internal::ActiveTrace() = this;
}

ScopedTrace::~ScopedTrace() { internal::ActiveTrace() = prev_; }

ScopedTrace* ScopedTrace::Current() { return internal::ActiveTrace(); }

}  // namespace skewsearch::obs
