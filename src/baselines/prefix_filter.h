// Copyright 2026 The skewsearch Authors.
// Prefix filtering (Chaudhuri et al. '06 / Bayardo et al. '07) — the exact,
// deterministic heuristic the paper identifies as the practical
// state-of-the-art for *highly* skewed data, and which it matches in the
// extreme-skew limit while beating it in between.
//
// Tokens are globally ordered by ascending document frequency (rarest
// first). If |x n q| >= o, then the prefixes of x and q of lengths
// |x| - o + 1 and |q| - o + 1 must share a token; indexing the prefixes
// under the Braun-Blanquet bound o >= ceil(b1 * max(|x|, |q|)) and probing
// with the query's prefix gives an exact (no-false-negative) candidate
// set, which is verified explicitly. A size filter
// (b1 |q| <= |x| <= |q| / b1) prunes candidates that cannot qualify.

#ifndef SKEWSEARCH_BASELINES_PREFIX_FILTER_H_
#define SKEWSEARCH_BASELINES_PREFIX_FILTER_H_

#include <optional>
#include <span>
#include <vector>

#include "core/skewed_index.h"
#include "data/dataset.h"
#include "sim/brute_force.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Options for the prefix-filter baseline.
struct PrefixFilterOptions {
  /// Braun-Blanquet threshold the structure answers exactly.
  double b1 = 0.5;
};

/// \brief Exact prefix-filter search index.
class PrefixFilterIndex {
 public:
  PrefixFilterIndex() = default;

  /// Computes global token frequencies, re-orders every vector by
  /// (frequency, id), and indexes each vector's prefix.
  Status Build(const Dataset* data, const PrefixFilterOptions& options);

  /// Exact: returns a vector with B >= b1 iff one exists (modulo nothing —
  /// this baseline is deterministic).
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// All vectors with B >= b1, sorted by descending similarity.
  std::vector<Match> QueryAll(std::span<const ItemId> query,
                              QueryStats* stats = nullptr) const;

  /// Exact self-join (AllPairs-style): every unordered pair (i < j) of
  /// indexed vectors with B >= b1, sorted by (left, right). Probes the
  /// index with each vector, so total work is the sum of per-query costs.
  std::vector<JoinPair> SelfJoin(QueryStats* stats = nullptr) const;

  /// The global rank (0 = rarest) used for ordering (exposed for tests).
  size_t TokenRank(ItemId item) const;

  size_t MemoryBytes() const;

 private:
  /// Query items re-ordered by global rank.
  std::vector<ItemId> RankSorted(std::span<const ItemId> ids) const;

  const Dataset* data_ = nullptr;
  PrefixFilterOptions options_;
  std::vector<uint32_t> rank_;          // item id -> frequency rank
  std::vector<ItemId> rank_to_item_;    // inverse permutation
  // Inverted lists over prefix tokens, keyed by rank.
  std::vector<uint32_t> posting_offsets_;
  std::vector<VectorId> postings_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_BASELINES_PREFIX_FILTER_H_
