#include "baselines/chosen_path.h"

#include <algorithm>
#include <cmath>
// std::unordered_set stays here on purpose: baselines are comparison
// yardsticks, not hot paths, so they keep the std containers rather
// than the util/containers.h posting-path aliases.
#include <unordered_set>

#include "core/batch.h"
#include "sim/measures.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

Status ChosenPathIndex::Build(const Dataset* data,
                              const ProductDistribution* dist,
                              const ChosenPathOptions& options) {
  if (data == nullptr || dist == nullptr) {
    return Status::InvalidArgument("data and dist must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (options.b1 <= 0.0 || options.b1 >= 1.0 || options.b2 <= 0.0 ||
      options.b2 >= options.b1) {
    return Status::InvalidArgument("need 0 < b2 < b1 < 1");
  }

  Timer timer;
  data_ = data;
  options_ = options;
  const size_t n = data->size();
  const double log_n = std::log(static_cast<double>(n));
  depth_ = std::max(1, static_cast<int>(
                           std::ceil(log_n / std::log(1.0 / options.b2))));
  verify_threshold_ =
      options.verify_threshold >= 0.0 ? options.verify_threshold : options.b1;

  int reps = options.repetitions;
  if (reps <= 0) {
    reps = static_cast<int>(
        std::ceil(options.repetition_boost * std::max(1.0, log_n)));
  }

  policy_ = std::make_unique<ClassicChosenPathPolicy>(options.b1);
  hasher_ = std::make_unique<PathHasher>(options.seed, depth_ + 1,
                                         options.hash_engine);
  PathEngineOptions engine_options;
  engine_options.stop_rule = StopRule::kFixedDepth;
  engine_options.fixed_depth = depth_;
  engine_options.max_depth = depth_ + 1;
  engine_options.max_paths = options.max_paths_per_element;
  engine_options.without_replacement = false;  // classic CP replaces
  engine_ = std::make_unique<PathEngine>(dist, policy_.get(), hasher_.get(),
                                         engine_options);

  build_stats_ = IndexBuildStats{};
  build_stats_.repetitions = reps;
  table_ = FilterTable();
  std::vector<uint64_t> keys;
  for (VectorId id = 0; id < n; ++id) {
    auto x = data->Get(id);
    for (int rep = 0; rep < reps; ++rep) {
      keys.clear();
      PathGenStats gen;
      engine_->ComputeFilters(x, static_cast<uint32_t>(rep), &keys, &gen);
      build_stats_.nodes_expanded += gen.nodes_expanded;
      if (gen.cap_hit) build_stats_.cap_hits++;
      for (uint64_t key : keys) table_.Add(key, id);
      build_stats_.total_filters += keys.size();
    }
  }
  table_.Freeze();
  build_stats_.distinct_keys = table_.num_keys();
  build_stats_.avg_filters_per_element =
      static_cast<double>(build_stats_.total_filters) /
      (static_cast<double>(n) * std::max(1, reps));
  build_stats_.build_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

// Reusable per-thread query workspace; see SkewedPathIndex::QueryScratch.
struct ChosenPathIndex::QueryScratch {
  std::vector<uint64_t> keys;
  std::unordered_set<VectorId> seen;
  PathGenStats path_gen;
};

std::optional<Match> ChosenPathIndex::Query(std::span<const ItemId> query,
                                            QueryStats* stats) const {
  QueryScratch scratch;
  return QueryImpl(query, stats, &scratch);
}

std::optional<Match> ChosenPathIndex::QueryImpl(std::span<const ItemId> query,
                                                QueryStats* stats,
                                                QueryScratch* scratch) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (engine_ != nullptr && !query.empty()) {
    std::vector<uint64_t>& keys = scratch->keys;
    std::unordered_set<VectorId>& seen = scratch->seen;
    seen.clear();
    for (int rep = 0; rep < build_stats_.repetitions && !found; ++rep) {
      keys.clear();
      PathGenStats gen;
      engine_->ComputeFilters(query, static_cast<uint32_t>(rep), &keys,
                              &gen);
      AddPathGenStats(&scratch->path_gen, gen);
      local.filters += keys.size();
      for (uint64_t key : keys) {
        auto postings = table_.Lookup(key);
        local.candidates += postings.size();
        for (VectorId id : postings) {
          if (!seen.insert(id).second) continue;
          local.verifications++;
          double sim = BraunBlanquet(query, data_->Get(id));
          if (sim >= verify_threshold_) {
            found = Match{id, sim};
            break;
          }
        }
        if (found) break;
      }
    }
    local.distinct_candidates = seen.size();
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<std::optional<Match>> ChosenPathIndex::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> ChosenPathIndex::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(queries.Get(static_cast<VectorId>(i)), query_stats,
                         scratch);
      },
      [](const QueryScratch& scratch, BatchQueryStats* agg) {
        AddPathGenStats(&agg->path_gen, scratch.path_gen);
      });
}

std::vector<Match> ChosenPathIndex::QueryAll(std::span<const ItemId> query,
                                             double threshold,
                                             QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (engine_ != nullptr && !query.empty()) {
    std::vector<uint64_t> keys;
    std::unordered_set<VectorId> seen;
    for (int rep = 0; rep < build_stats_.repetitions; ++rep) {
      keys.clear();
      engine_->ComputeFilters(query, static_cast<uint32_t>(rep), &keys,
                              nullptr);
      local.filters += keys.size();
      for (uint64_t key : keys) {
        auto postings = table_.Lookup(key);
        local.candidates += postings.size();
        for (VectorId id : postings) {
          if (!seen.insert(id).second) continue;
          local.verifications++;
          double sim = BraunBlanquet(query, data_->Get(id));
          if (sim >= threshold) out.push_back({id, sim});
        }
      }
    }
    local.distinct_candidates = seen.size();
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace skewsearch
