#include "baselines/minhash_lsh.h"

#include <algorithm>
#include <cmath>
#include <limits>
// std::unordered_set stays here on purpose: baselines are comparison
// yardsticks, not hot paths, so they keep the std containers rather
// than the util/containers.h posting-path aliases.
#include <unordered_set>

#include "core/batch.h"
#include "hashing/mix.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {

Status MinHashLsh::Build(const Dataset* data, const MinHashOptions& options) {
  if (data == nullptr) {
    return Status::InvalidArgument("data must be non-null");
  }
  if (data->size() < 2) {
    return Status::InvalidArgument("dataset needs at least 2 vectors");
  }
  if (options.j1 <= 0.0 || options.j1 >= 1.0) {
    return Status::InvalidArgument("j1 must be in (0, 1)");
  }
  data_ = data;
  options_ = options;
  const double n = static_cast<double>(data->size());

  rows_ = options.rows;
  bands_ = options.bands;
  if (rows_ <= 0 || bands_ <= 0) {
    if (options.j2 <= 0.0 || options.j2 >= options.j1) {
      return Status::InvalidArgument(
          "auto geometry needs 0 < j2 < j1 < 1");
    }
    // Far pairs (j2) should collide in a band with probability ~ 1/n:
    // rows = ln n / ln(1/j2). Close pairs then collide per band with
    // probability j1^rows = n^-rho, so bands ~ n^rho repetitions.
    rows_ = std::max(1, static_cast<int>(std::ceil(
                            std::log(n) / std::log(1.0 / options.j2))));
    double per_band = std::pow(options.j1, rows_);
    bands_ = std::max(
        1, static_cast<int>(std::ceil(2.0 / std::max(1e-12, per_band))));
    bands_ = std::min(bands_, 4096);  // practical cap
  }
  verify_threshold_ =
      options.verify_threshold >= 0.0 ? options.verify_threshold : options.j1;

  Rng rng(options.seed);
  row_seeds_.clear();
  for (int i = 0; i < bands_ * rows_; ++i) {
    row_seeds_.push_back(rng.NextUint64());
  }

  table_ = FilterTable();
  table_.Reserve(data->size() * static_cast<size_t>(bands_));
  for (VectorId id = 0; id < data->size(); ++id) {
    auto ids = data->Get(id);
    if (ids.empty()) continue;
    for (int band = 0; band < bands_; ++band) {
      table_.Add(BandKey(band, ids), id);
    }
  }
  table_.Freeze();
  return Status::OK();
}

uint64_t MinHashLsh::RowMin(int row, std::span<const ItemId> ids) const {
  uint64_t seed = row_seeds_[static_cast<size_t>(row)];
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (ItemId item : ids) {
    best = std::min(best, Mix64(seed ^ Mix64(item + 0x9e37ULL)));
  }
  return best;
}

uint64_t MinHashLsh::BandKey(int band, std::span<const ItemId> ids) const {
  uint64_t key = Mix64(0xbadd0000ULL + static_cast<uint64_t>(band));
  for (int r = 0; r < rows_; ++r) {
    key = MixPair(key, RowMin(band * rows_ + r, ids));
  }
  return key;
}

// Reusable per-thread query workspace: keeps the dedup set's buckets
// allocated across the queries one worker slot answers.
struct MinHashLsh::QueryScratch {
  std::unordered_set<VectorId> seen;
};

std::optional<Match> MinHashLsh::Query(std::span<const ItemId> query,
                                       QueryStats* stats) const {
  QueryScratch scratch;
  return QueryImpl(query, stats, &scratch);
}

std::optional<Match> MinHashLsh::QueryImpl(std::span<const ItemId> query,
                                           QueryStats* stats,
                                           QueryScratch* scratch) const {
  Timer timer;
  QueryStats local;
  std::optional<Match> found;
  if (data_ != nullptr && !query.empty()) {
    std::unordered_set<VectorId>& seen = scratch->seen;
    seen.clear();
    for (int band = 0; band < bands_ && !found; ++band) {
      local.filters++;
      auto postings = table_.Lookup(BandKey(band, query));
      local.candidates += postings.size();
      for (VectorId id : postings) {
        if (!seen.insert(id).second) continue;
        local.verifications++;
        double sim =
            Similarity(options_.verify_measure, query, data_->Get(id));
        if (sim >= verify_threshold_) {
          found = Match{id, sim};
          break;
        }
      }
    }
    local.distinct_candidates = seen.size();
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return found;
}

std::vector<std::optional<Match>> MinHashLsh::BatchQuery(
    const Dataset& queries, int threads, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::RunWithTransientPool(threads, [&](ThreadPool* pool) {
    return BatchQuery(queries, pool, stats, batch_stats);
  });
}

std::vector<std::optional<Match>> MinHashLsh::BatchQuery(
    const Dataset& queries, ThreadPool* pool, std::vector<QueryStats>* stats,
    BatchQueryStats* batch_stats) const {
  return batch_internal::Run<QueryScratch>(
      queries, pool, stats, batch_stats,
      [&](size_t i, QueryScratch* scratch, QueryStats* query_stats) {
        return QueryImpl(queries.Get(static_cast<VectorId>(i)), query_stats,
                         scratch);
      },
      [](const QueryScratch&, BatchQueryStats*) {});
}

std::vector<Match> MinHashLsh::QueryAll(std::span<const ItemId> query,
                                        double threshold,
                                        QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (data_ != nullptr && !query.empty()) {
    std::unordered_set<VectorId> seen;
    for (int band = 0; band < bands_; ++band) {
      local.filters++;
      auto postings = table_.Lookup(BandKey(band, query));
      local.candidates += postings.size();
      for (VectorId id : postings) {
        if (!seen.insert(id).second) continue;
        local.verifications++;
        double sim =
            Similarity(options_.verify_measure, query, data_->Get(id));
        if (sim >= threshold) out.push_back({id, sim});
      }
    }
    local.distinct_candidates = seen.size();
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace skewsearch
