#include "baselines/prefix_filter.h"

#include <algorithm>
#include <cmath>
#include <numeric>
// std::unordered_set stays here on purpose: baselines are comparison
// yardsticks, not hot paths, so they keep the std containers rather
// than the util/containers.h posting-path aliases.
#include <unordered_set>

#include "sim/measures.h"
#include "util/timer.h"

namespace skewsearch {

namespace {

// Minimum overlap implied by B(x, q) >= b1 for a vector of size `size`
// paired with anything at least as large: o >= ceil(b1 * size).
size_t MinOverlap(double b1, size_t size) {
  return static_cast<size_t>(
      std::ceil(b1 * static_cast<double>(size) - 1e-9));
}

// Prefix length |x| - o + 1 clamped into [1, |x|] (0 for empty vectors).
size_t PrefixLength(double b1, size_t size) {
  if (size == 0) return 0;
  size_t o = std::max<size_t>(1, MinOverlap(b1, size));
  if (o >= size) return 1;
  return size - o + 1;
}

}  // namespace

Status PrefixFilterIndex::Build(const Dataset* data,
                                const PrefixFilterOptions& options) {
  if (data == nullptr) {
    return Status::InvalidArgument("data must be non-null");
  }
  if (options.b1 <= 0.0 || options.b1 > 1.0) {
    return Status::InvalidArgument("b1 must be in (0, 1]");
  }
  data_ = data;
  options_ = options;
  const size_t d = data->dimension();

  // Global order: ascending document frequency, ties by item id.
  std::vector<uint32_t> counts(d, 0);
  for (VectorId id = 0; id < data->size(); ++id) {
    for (ItemId item : data->Get(id)) counts[item]++;
  }
  rank_to_item_.resize(d);
  std::iota(rank_to_item_.begin(), rank_to_item_.end(), 0);
  std::sort(rank_to_item_.begin(), rank_to_item_.end(),
            [&](ItemId a, ItemId b) {
              if (counts[a] != counts[b]) return counts[a] < counts[b];
              return a < b;
            });
  rank_.resize(d);
  for (size_t r = 0; r < d; ++r) {
    rank_[rank_to_item_[r]] = static_cast<uint32_t>(r);
  }

  // Index each vector's prefix (its rarest tokens) into per-rank lists.
  std::vector<uint32_t> sizes(d, 0);
  std::vector<std::pair<uint32_t, VectorId>> entries;
  for (VectorId id = 0; id < data->size(); ++id) {
    auto ids = data->Get(id);
    std::vector<ItemId> by_rank = RankSorted(ids);
    size_t len = PrefixLength(options.b1, by_rank.size());
    for (size_t k = 0; k < len; ++k) {
      entries.push_back({rank_[by_rank[k]], id});
    }
  }
  for (const auto& [r, id] : entries) sizes[r]++;
  posting_offsets_.assign(d + 1, 0);
  for (size_t r = 0; r < d; ++r) {
    posting_offsets_[r + 1] = posting_offsets_[r] + sizes[r];
  }
  postings_.resize(entries.size());
  std::vector<uint32_t> cursor(posting_offsets_.begin(),
                               posting_offsets_.end() - 1);
  for (const auto& [r, id] : entries) {
    postings_[cursor[r]++] = id;
  }
  return Status::OK();
}

size_t PrefixFilterIndex::TokenRank(ItemId item) const {
  return rank_[item];
}

std::vector<ItemId> PrefixFilterIndex::RankSorted(
    std::span<const ItemId> ids) const {
  std::vector<ItemId> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end(), [&](ItemId a, ItemId b) {
    return rank_[a] < rank_[b];
  });
  return out;
}

std::vector<Match> PrefixFilterIndex::QueryAll(std::span<const ItemId> query,
                                               QueryStats* stats) const {
  Timer timer;
  QueryStats local;
  std::vector<Match> out;
  if (data_ != nullptr && !query.empty()) {
    const double b1 = options_.b1;
    const size_t q_size = query.size();
    std::vector<ItemId> by_rank = RankSorted(query);
    size_t len = PrefixLength(b1, q_size);
    local.filters = len;
    std::unordered_set<VectorId> seen;
    for (size_t k = 0; k < len; ++k) {
      uint32_t r = rank_[by_rank[k]];
      for (uint32_t idx = posting_offsets_[r]; idx < posting_offsets_[r + 1];
           ++idx) {
        VectorId id = postings_[idx];
        local.candidates++;
        if (!seen.insert(id).second) continue;
        // Size filter: B >= b1 forces b1 |q| <= |x| <= |q| / b1.
        size_t x_size = data_->SizeOf(id);
        double xs = static_cast<double>(x_size);
        double qs = static_cast<double>(q_size);
        if (xs < b1 * qs - 1e-9 || xs > qs / b1 + 1e-9) continue;
        local.verifications++;
        double sim = BraunBlanquet(query, data_->Get(id));
        if (sim >= b1) out.push_back({id, sim});
      }
    }
    local.distinct_candidates = seen.size();
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<JoinPair> PrefixFilterIndex::SelfJoin(QueryStats* stats) const {
  QueryStats total;
  std::vector<JoinPair> out;
  if (data_ != nullptr) {
    for (VectorId id = 0; id < data_->size(); ++id) {
      QueryStats qs;
      auto matches = QueryAll(data_->Get(id), &qs);
      total.filters += qs.filters;
      total.candidates += qs.candidates;
      total.verifications += qs.verifications;
      for (const Match& m : matches) {
        if (m.id > id) out.push_back({id, m.id, m.similarity});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  if (stats != nullptr) *stats = total;
  return out;
}

std::optional<Match> PrefixFilterIndex::Query(std::span<const ItemId> query,
                                              QueryStats* stats) const {
  auto all = QueryAll(query, stats);
  if (all.empty()) return std::nullopt;
  return all.front();
}

size_t PrefixFilterIndex::MemoryBytes() const {
  return rank_.capacity() * sizeof(uint32_t) +
         rank_to_item_.capacity() * sizeof(ItemId) +
         posting_offsets_.capacity() * sizeof(uint32_t) +
         postings_.capacity() * sizeof(VectorId);
}

}  // namespace skewsearch
