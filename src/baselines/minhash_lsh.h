// Copyright 2026 The skewsearch Authors.
// MinHash LSH (Broder '97 + banding) — the classic randomized baseline for
// Jaccard similarity search, which Chosen Path (and hence the paper's
// structure) strictly improves on for sparse vectors.
//
// Signatures use one hash-permutation per row; bands of `rows` rows are
// concatenated into bucket keys. A pair with Jaccard similarity j collides
// in one band with probability j^rows.

#ifndef SKEWSEARCH_BASELINES_MINHASH_LSH_H_
#define SKEWSEARCH_BASELINES_MINHASH_LSH_H_

#include <optional>
#include <span>
#include <vector>

#include "core/inverted_index.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "sim/brute_force.h"
#include "sim/measures.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Options for the MinHash LSH baseline.
struct MinHashOptions {
  /// Jaccard similarity of sought pairs (used to auto-derive bands/rows and
  /// as the default verification threshold).
  double j1 = 0.5;
  /// Jaccard similarity of far pairs (auto-derivation: rows so that far
  /// pairs collide with probability ~1/n).
  double j2 = 0.25;
  /// Explicit geometry; 0 = derive from (j1, j2, n).
  int bands = 0;
  int rows = 0;
  uint64_t seed = 0x315a6bcdULL;
  /// Verification measure/threshold; negative threshold uses j1.
  Measure verify_measure = Measure::kJaccard;
  double verify_threshold = -1.0;
};

/// \brief Banded MinHash index.
class MinHashLsh {
 public:
  MinHashLsh() = default;

  /// Computes signatures for all vectors and fills the band buckets.
  Status Build(const Dataset* data, const MinHashOptions& options);

  /// First match with similarity >= verify threshold, or nullopt.
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// All distinct candidates with similarity >= \p threshold.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr) const;

  /// Answers every vector of \p queries as a Query() on \p threads
  /// workers from a transient pool (<= 1 = serial); results are
  /// identical to serial execution for every thread count.
  /// (batch_stats->path_gen stays zero: MinHash has no path stage.)
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, sharded onto a caller-owned (reusable) \p pool; null = serial.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  int bands() const { return bands_; }
  int rows() const { return rows_; }
  double verify_threshold() const { return verify_threshold_; }
  size_t MemoryBytes() const { return table_.MemoryBytes(); }

 private:
  /// Per-thread reusable query workspace (defined in minhash_lsh.cc).
  struct QueryScratch;
  std::optional<Match> QueryImpl(std::span<const ItemId> query,
                                 QueryStats* stats,
                                 QueryScratch* scratch) const;

  /// MinHash value of one row over a set of items.
  uint64_t RowMin(int row, std::span<const ItemId> ids) const;
  /// Bucket key of one band.
  uint64_t BandKey(int band, std::span<const ItemId> ids) const;

  const Dataset* data_ = nullptr;
  MinHashOptions options_;
  int bands_ = 0;
  int rows_ = 0;
  double verify_threshold_ = 0.0;
  std::vector<uint64_t> row_seeds_;
  FilterTable table_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_BASELINES_MINHASH_LSH_H_
