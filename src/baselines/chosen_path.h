// Copyright 2026 The skewsearch Authors.
// Classic Chosen Path (Christiani & Pagh, STOC 2017) — the worst-case
// optimal Braun-Blanquet similarity search the paper builds on and
// compares against (Figure 1's blue curve).
//
// Differences from the paper's skew-adaptive index:
//   * fixed path depth k = ceil(ln n / ln(1/b2)) instead of the
//     probability stop rule,
//   * a flat threshold s(x) = 1/(b1 |x|) independent of the item and of
//     the distribution,
//   * sampling with replacement.
// Consequently its exponent rho_CP = log(b1)/log(b2) cannot exploit skew.

#ifndef SKEWSEARCH_BASELINES_CHOSEN_PATH_H_
#define SKEWSEARCH_BASELINES_CHOSEN_PATH_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/inverted_index.h"
#include "core/path_engine.h"
#include "core/path_policy.h"
#include "core/skewed_index.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "hashing/path_hasher.h"
#include "sim/brute_force.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Options for the Chosen Path baseline.
struct ChosenPathOptions {
  /// Similarity of the sought ("close") vectors.
  double b1 = 0.5;
  /// Similarity of "far" vectors; sets the depth k = ceil(ln n / ln(1/b2)).
  double b2 = 0.25;
  /// Repetitions; 0 derives ceil(repetition_boost * ln n).
  int repetitions = 0;
  double repetition_boost = 2.0;
  uint64_t seed = 0xc405e9a7ULL;
  /// Similarity a candidate must reach to be returned; negative uses b1.
  double verify_threshold = -1.0;
  size_t max_paths_per_element = size_t{1} << 20;
  HashEngine hash_engine = HashEngine::kMixer;
};

/// \brief Fixed-depth chosen-path index (skew-oblivious baseline).
class ChosenPathIndex {
 public:
  ChosenPathIndex() = default;

  /// Builds the index. The distribution is only used for bookkeeping
  /// (the classic scheme never looks at p_i).
  Status Build(const Dataset* data, const ProductDistribution* dist,
               const ChosenPathOptions& options);

  /// First match with similarity >= verify threshold, or nullopt.
  std::optional<Match> Query(std::span<const ItemId> query,
                             QueryStats* stats = nullptr) const;

  /// All distinct candidates with similarity >= \p threshold.
  std::vector<Match> QueryAll(std::span<const ItemId> query, double threshold,
                              QueryStats* stats = nullptr) const;

  /// Answers every vector of \p queries as a Query() on \p threads
  /// workers from a transient pool (<= 1 = serial); results are
  /// identical to serial execution for every thread count.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, int threads = 0,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  /// Same, sharded onto a caller-owned (reusable) \p pool; null = serial.
  std::vector<std::optional<Match>> BatchQuery(
      const Dataset& queries, ThreadPool* pool,
      std::vector<QueryStats>* stats = nullptr,
      BatchQueryStats* batch_stats = nullptr) const;

  bool built() const { return engine_ != nullptr; }
  const IndexBuildStats& build_stats() const { return build_stats_; }
  int depth() const { return depth_; }
  double verify_threshold() const { return verify_threshold_; }
  size_t MemoryBytes() const { return table_.MemoryBytes(); }

 private:
  /// Per-thread reusable query workspace (defined in chosen_path.cc).
  struct QueryScratch;
  std::optional<Match> QueryImpl(std::span<const ItemId> query,
                                 QueryStats* stats,
                                 QueryScratch* scratch) const;

  const Dataset* data_ = nullptr;
  ChosenPathOptions options_;
  int depth_ = 0;
  double verify_threshold_ = 0.0;
  std::unique_ptr<ClassicChosenPathPolicy> policy_;
  std::unique_ptr<PathHasher> hasher_;
  std::unique_ptr<PathEngine> engine_;
  FilterTable table_;
  IndexBuildStats build_stats_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_BASELINES_CHOSEN_PATH_H_
