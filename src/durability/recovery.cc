// Copyright 2026 The skewsearch Authors.

#include "durability/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/metrics.h"

namespace skewsearch {

Status WalJournal::LogInsert(VectorId id, std::span<const ItemId> items) {
  return wal_->Append(WalRecord::Type::kInsert, id, items).status();
}

Status WalJournal::LogRemove(VectorId id) {
  return wal_->Append(WalRecord::Type::kRemove, id, {}).status();
}

Status ReplayWal(std::span<const WalRecord> records, DynamicIndex* index,
                 RecoveryStats* stats) {
  static obs::Counter* const replayed_metric =
      obs::MetricsRegistry::Global().GetCounter("recovery.replayed");
  for (const WalRecord& record : records) {
    Result<bool> applied =
        record.type == WalRecord::Type::kInsert
            ? index->ReplayInsert(record.id, record.items)
            : index->ReplayRemove(record.id);
    SKEWSEARCH_RETURN_NOT_OK(applied.status());
    if (stats != nullptr) {
      if (*applied) {
        ++stats->replayed;
      } else {
        ++stats->skipped;
      }
    }
    if (*applied) replayed_metric->Increment();
  }
  return Status::OK();
}

std::string DurableIndex::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.skd";
}

std::string DurableIndex::WalPath(const std::string& dir) {
  return dir + "/wal.skw";
}

DurableIndex::~DurableIndex() { Close().ok(); }

Status DurableIndex::Open(const Dataset* data,
                          const ProductDistribution* dist,
                          const DynamicIndexOptions& index_options,
                          const DurableOptions& durable,
                          RecoveryStats* stats) {
  static obs::Counter* const truncations_metric =
      obs::MetricsRegistry::Global().GetCounter("recovery.truncated");
  static obs::Counter* const truncated_bytes_metric =
      obs::MetricsRegistry::Global().GetCounter("recovery.truncated_bytes");
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durable index already open");
  }
  if (durable.dir.empty()) {
    return Status::InvalidArgument("durable dir must be non-empty");
  }
  options_ = durable;
  std::error_code ec;
  std::filesystem::create_directories(durable.dir, ec);
  if (ec) {
    return Status::IOError("cannot create '" + durable.dir +
                           "': " + ec.message());
  }

  const std::string snapshot_path = SnapshotPath(durable.dir);
  const std::string wal_path = WalPath(durable.dir);

  const bool have_snapshot = std::filesystem::exists(snapshot_path);
  if (have_snapshot) {
    SKEWSEARCH_RETURN_NOT_OK(index_.Load(snapshot_path, data, dist));
  } else {
    SKEWSEARCH_RETURN_NOT_OK(index_.Build(data, dist, index_options));
  }
  if (stats != nullptr) stats->snapshot_loaded = have_snapshot;

  // Decode the log; a missing file is simply a fresh one.
  uint64_t existing_bytes = 0;
  uint64_t next_seq = 1;
  Result<WalReadResult> log = ReadWal(wal_path);
  if (log.ok()) {
    if (log->truncated) {
      // Deterministic truncation: physically drop the torn tail so the
      // reopened writer appends after the last intact record and every
      // future recovery of these files decodes identically.
      const uint64_t file_size = std::filesystem::file_size(wal_path, ec);
      const uint64_t dropped =
          ec ? 0 : file_size - std::min<uint64_t>(file_size, log->valid_bytes);
      if (::truncate(wal_path.c_str(), static_cast<off_t>(log->valid_bytes)) !=
          0) {
        return Status::IOError("cannot truncate torn wal tail of '" +
                               wal_path + "'");
      }
      SKEWSEARCH_RETURN_NOT_OK(wal_internal::FsyncPath(wal_path));
      truncations_metric->Increment();
      truncated_bytes_metric->Increment(dropped);
      if (stats != nullptr) {
        stats->truncated = true;
        stats->truncated_bytes = dropped;
        stats->truncate_reason = log->truncate_reason;
      }
    }
    SKEWSEARCH_RETURN_NOT_OK(ReplayWal(log->records, &index_, stats));
    existing_bytes = log->valid_bytes;
    next_seq = log->next_seq;
  } else if (log.status().code() != Status::Code::kNotFound) {
    return log.status();
  }
  if (stats != nullptr) stats->next_seq = next_seq;

  WalWriterOptions writer_options;
  writer_options.sync_policy = durable.sync_policy;
  writer_options.interval_ms = durable.interval_ms;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(wal_path, writer_options, existing_bytes, next_seq);
  SKEWSEARCH_RETURN_NOT_OK(writer.status());
  wal_ = std::move(writer).value();
  journal_ = std::make_unique<WalJournal>(wal_.get());
  index_.SetMutationJournal(journal_.get());
  last_checkpoint_ = std::chrono::steady_clock::now();
  return Status::OK();
}

bool DurableIndex::CheckpointDue() {
  if (wal_ == nullptr) return false;
  const uint64_t payload =
      wal_->bytes() -
      std::min<uint64_t>(wal_->bytes(), wal_internal::kFileHeaderSize);
  if (payload == 0) return false;  // nothing to fold in
  if (options_.checkpoint_bytes > 0 &&
      wal_->bytes() >= options_.checkpoint_bytes) {
    return true;
  }
  if (options_.checkpoint_age_ms > 0 &&
      std::chrono::steady_clock::now() - last_checkpoint_ >=
          std::chrono::milliseconds(options_.checkpoint_age_ms)) {
    return true;
  }
  return false;
}

Status DurableIndex::Checkpoint() {
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durable index not open");
  }
  // The cut is read *before* Save pins its snapshot: every record with
  // seq <= cut was applied before the pin, hence is inside the
  // snapshot; records the snapshot additionally absorbed but that were
  // logged after the cut stay in the retained suffix and are skipped by
  // idempotent replay (see ReplayInsert/ReplayRemove).
  const uint64_t cut = wal_->last_appended_seq();

  const std::string snapshot_path = SnapshotPath(options_.dir);
  const std::string tmp = snapshot_path + ".tmp";
  SKEWSEARCH_RETURN_NOT_OK(index_.Save(tmp));
  SKEWSEARCH_RETURN_NOT_OK(wal_internal::FsyncPath(tmp));
  if (::rename(tmp.c_str(), snapshot_path.c_str()) != 0) {
    return Status::IOError("rename '" + tmp + "' -> '" + snapshot_path +
                           "' failed");
  }
  SKEWSEARCH_RETURN_NOT_OK(wal_internal::FsyncPath(options_.dir));
  // A crash here leaves the new snapshot with the untruncated log —
  // safe, because replay against it is idempotent.
  SKEWSEARCH_RETURN_NOT_OK(wal_->Truncate(cut));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status DurableIndex::Close() {
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  if (wal_ == nullptr) return Status::OK();
  index_.SetMutationJournal(nullptr);
  Status synced = wal_->Sync();
  wal_.reset();
  journal_.reset();
  return synced;
}

}  // namespace skewsearch
