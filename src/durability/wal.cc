// Copyright 2026 The skewsearch Authors.

#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "core/frozen_shard.h"  // frozen_internal::Checksum64 (shared FNV-1a)
#include "obs/metrics.h"

namespace skewsearch {
namespace {

using wal_internal::kFileHeaderSize;
using wal_internal::kMaxPayloadSize;
using wal_internal::kRecordHeaderSize;
using wal_internal::kWalMagic;

template <typename T>
void AppendPod(const T& value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T LoadPod(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

/// Production sink: POSIX fd opened for appending, fsync as the
/// barrier.
class PosixFileSink : public WalSink {
 public:
  explicit PosixFileSink(int fd) : fd_(fd) {}
  ~PosixFileSink() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t size) override {
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
      ssize_t n = ::write(fd_, p, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("wal append: write failed: ") +
                               std::strerror(errno));
      }
      p += n;
      size -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(std::string("wal fsync failed: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed for '" + path + "'");
  return Status::OK();
}

uint64_t RecordChecksum(const char* header16, std::span<const char> payload) {
  frozen_internal::Checksum64 crc;
  crc.Update(header16, kRecordHeaderSize - sizeof(uint64_t));
  crc.Update(payload.data(), payload.size());
  return crc.digest();
}

}  // namespace

Result<SyncPolicy> ParseSyncPolicy(std::string_view name) {
  if (name == "none") return SyncPolicy::kNone;
  if (name == "interval") return SyncPolicy::kInterval;
  if (name == "group") return SyncPolicy::kGroup;
  if (name == "always") return SyncPolicy::kAlways;
  return Status::InvalidArgument(
      "unknown sync policy '" + std::string(name) +
      "' (expected none|interval|group|always)");
}

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kInterval:
      return "interval";
    case SyncPolicy::kGroup:
      return "group";
    case SyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<std::unique_ptr<WalSink>> OpenFileSink(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("cannot open wal '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<WalSink>(new PosixFileSink(fd));
}

namespace wal_internal {

void EncodeRecord(WalRecord::Type type, uint64_t seq, VectorId id,
                  std::span<const ItemId> items, std::string* out) {
  std::string payload;
  payload.reserve(sizeof(VectorId) +
                  (type == WalRecord::Type::kInsert
                       ? sizeof(uint32_t) + items.size() * sizeof(ItemId)
                       : 0));
  AppendPod(id, &payload);
  if (type == WalRecord::Type::kInsert) {
    AppendPod(static_cast<uint32_t>(items.size()), &payload);
    if (!items.empty()) {
      payload.append(reinterpret_cast<const char*>(items.data()),
                     items.size() * sizeof(ItemId));
    }
  }

  char header[kRecordHeaderSize - sizeof(uint64_t)] = {};
  header[0] = static_cast<char>(type);
  const uint32_t payload_size = static_cast<uint32_t>(payload.size());
  std::memcpy(header + 4, &payload_size, sizeof(uint32_t));
  std::memcpy(header + 8, &seq, sizeof(uint64_t));
  const uint64_t crc = RecordChecksum(header, payload);

  out->append(header, sizeof(header));
  AppendPod(crc, out);
  out->append(payload);
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::IOError("fsync of '" + path +
                             "' failed: " + std::strerror(errno));
  }
  ::close(fd);
  return status;
}

}  // namespace wal_internal

Result<WalReadResult> DecodeWal(std::span<const char> bytes) {
  WalReadResult result;
  if (bytes.empty()) return result;  // a fresh (never-written) log
  if (bytes.size() < kFileHeaderSize) {
    // The header itself was torn: nothing valid, truncate to zero.
    result.truncated = true;
    result.truncate_reason = "torn file header";
    return result;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("not a SKW1 write-ahead log (bad magic)");
  }
  if (LoadPod<uint32_t>(bytes.data() + 4) != 0) {
    return Status::IOError("SKW1 header reserved field is nonzero");
  }
  result.valid_bytes = kFileHeaderSize;

  size_t pos = kFileHeaderSize;
  auto stop = [&](const char* reason) -> Result<WalReadResult> {
    result.truncated = true;
    result.truncate_reason = reason;
    result.next_seq =
        result.records.empty() ? 1 : result.records.back().seq + 1;
    return result;
  };
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderSize) {
      return stop("torn record header");
    }
    const char* header = bytes.data() + pos;
    const uint8_t type_byte = static_cast<uint8_t>(header[0]);
    if (type_byte != static_cast<uint8_t>(WalRecord::Type::kInsert) &&
        type_byte != static_cast<uint8_t>(WalRecord::Type::kRemove)) {
      return stop("unknown record type");
    }
    if (header[1] != 0 || header[2] != 0 || header[3] != 0) {
      return stop("nonzero record padding");
    }
    const uint32_t payload_size = LoadPod<uint32_t>(header + 4);
    if (payload_size > kMaxPayloadSize) {
      return stop("payload length past the decode bound");
    }
    const uint64_t seq = LoadPod<uint64_t>(header + 8);
    const uint64_t crc = LoadPod<uint64_t>(header + 16);
    if (bytes.size() - pos - kRecordHeaderSize < payload_size) {
      return stop("torn record payload");
    }
    std::span<const char> payload(header + kRecordHeaderSize, payload_size);
    if (RecordChecksum(header, payload) != crc) {
      return stop("record checksum mismatch");
    }
    // Seqs are assigned consecutively by the writer and rotation keeps
    // a contiguous suffix, so any gap or regression is damage.
    if (!result.records.empty() &&
        seq != result.records.back().seq + 1) {
      return stop("non-consecutive record seq");
    }
    if (seq == 0) return stop("record seq zero");

    WalRecord record;
    record.type = static_cast<WalRecord::Type>(type_byte);
    record.seq = seq;
    if (record.type == WalRecord::Type::kInsert) {
      if (payload_size < sizeof(VectorId) + sizeof(uint32_t)) {
        return stop("insert payload too short");
      }
      record.id = LoadPod<VectorId>(payload.data());
      const uint32_t count = LoadPod<uint32_t>(payload.data() + 4);
      if (payload_size !=
          sizeof(VectorId) + sizeof(uint32_t) + count * sizeof(ItemId)) {
        return stop("insert item count disagrees with payload length");
      }
      record.items.resize(count);
      std::memcpy(record.items.data(), payload.data() + 8,
                  count * sizeof(ItemId));
    } else {
      if (payload_size != sizeof(VectorId)) {
        return stop("remove payload length mismatch");
      }
      record.id = LoadPod<VectorId>(payload.data());
    }
    result.records.push_back(std::move(record));
    pos += kRecordHeaderSize + payload_size;
    result.valid_bytes = pos;
  }
  result.next_seq =
      result.records.empty() ? 1 : result.records.back().seq + 1;
  return result;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::string bytes;
  SKEWSEARCH_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  return DecodeWal(bytes);
}

WalWriter::WalWriter(std::unique_ptr<WalSink> sink, std::string path,
                     const WalWriterOptions& options, uint64_t next_seq,
                     uint64_t existing_bytes)
    : sink_(std::move(sink)),
      path_(std::move(path)),
      options_(options),
      last_sync_time_(std::chrono::steady_clock::now()),
      next_seq_(next_seq),
      last_appended_seq_(next_seq > 0 ? next_seq - 1 : 0),
      last_synced_seq_(next_seq > 0 ? next_seq - 1 : 0),
      bytes_(existing_bytes) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const WalWriterOptions& options,
    uint64_t existing_bytes, uint64_t next_seq) {
  if (next_seq == 0) {
    return Status::InvalidArgument("wal seqs start at 1");
  }
  Result<std::unique_ptr<WalSink>> sink = OpenFileSink(path);
  SKEWSEARCH_RETURN_NOT_OK(sink.status());
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(
      std::move(sink).value(), path, options, next_seq, existing_bytes));
  if (existing_bytes == 0) {
    std::string header(kWalMagic, sizeof(kWalMagic));
    header.append(sizeof(uint32_t), '\0');
    SKEWSEARCH_RETURN_NOT_OK(writer->sink_->Append(header.data(),
                                                   header.size()));
    writer->bytes_.store(kFileHeaderSize, std::memory_order_release);
  }
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenWithSink(
    std::unique_ptr<WalSink> sink, const WalWriterOptions& options,
    uint64_t next_seq, bool write_header) {
  if (next_seq == 0) {
    return Status::InvalidArgument("wal seqs start at 1");
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(std::move(sink), std::string(), options, next_seq, 0));
  if (write_header) {
    std::string header(kWalMagic, sizeof(kWalMagic));
    header.append(sizeof(uint32_t), '\0');
    SKEWSEARCH_RETURN_NOT_OK(writer->sink_->Append(header.data(),
                                                   header.size()));
    writer->bytes_.store(kFileHeaderSize, std::memory_order_release);
  }
  return writer;
}

Result<uint64_t> WalWriter::Append(WalRecord::Type type, VectorId id,
                                   std::span<const ItemId> items) {
  static obs::Counter* const appends_metric =
      obs::MetricsRegistry::Global().GetCounter("wal.appends");
  static obs::Counter* const bytes_metric =
      obs::MetricsRegistry::Global().GetCounter("wal.bytes");
  if (type == WalRecord::Type::kRemove && !items.empty()) {
    return Status::InvalidArgument("remove records carry no items");
  }
  uint64_t seq = 0;
  size_t encoded = 0;
  {
    std::lock_guard<std::mutex> lock(append_mutex_);
    if (poisoned_) {
      return Status::IOError(
          "wal writer poisoned by an earlier append failure");
    }
    seq = next_seq_.load(std::memory_order_relaxed);
    if (seq == std::numeric_limits<uint64_t>::max()) {
      return Status::Internal("wal seq space exhausted");
    }
    scratch_.clear();
    wal_internal::EncodeRecord(type, seq, id, items, &scratch_);
    Status appended = sink_->Append(scratch_.data(), scratch_.size());
    if (!appended.ok()) {
      // The file may now end mid-record; anything appended after the
      // tear would be unreachable to recovery, so refuse to continue.
      poisoned_ = true;
      return appended;
    }
    encoded = scratch_.size();
    next_seq_.store(seq + 1, std::memory_order_release);
    bytes_.fetch_add(encoded, std::memory_order_acq_rel);
    appends_.fetch_add(1, std::memory_order_relaxed);
    last_appended_seq_.store(seq, std::memory_order_release);
  }
  appends_metric->Increment();
  bytes_metric->Increment(encoded);

  switch (options_.sync_policy) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kAlways:
      SKEWSEARCH_RETURN_NOT_OK(SyncUpTo(seq, /*strict=*/true));
      break;
    case SyncPolicy::kGroup:
      SKEWSEARCH_RETURN_NOT_OK(SyncUpTo(seq, /*strict=*/false));
      break;
    case SyncPolicy::kInterval: {
      bool due = false;
      {
        std::lock_guard<std::mutex> lock(sync_mutex_);
        due = std::chrono::steady_clock::now() - last_sync_time_ >=
              std::chrono::milliseconds(options_.interval_ms);
      }
      if (due) SKEWSEARCH_RETURN_NOT_OK(SyncUpTo(seq, /*strict=*/false));
      break;
    }
  }
  return seq;
}

Status WalWriter::Sync() {
  const uint64_t target = last_appended_seq_.load(std::memory_order_acquire);
  return SyncUpTo(target, /*strict=*/false);
}

Status WalWriter::SyncUpTo(uint64_t seq, bool strict) {
  static obs::Counter* const fsyncs_metric =
      obs::MetricsRegistry::Global().GetCounter("wal.fsyncs");
  std::unique_lock<std::mutex> lock(sync_mutex_);
  while (true) {
    if (!strict && last_synced_seq_.load(std::memory_order_relaxed) >= seq) {
      return Status::OK();  // a concurrent leader's fsync covered us
    }
    if (!sync_in_progress_) break;
    sync_cv_.wait(lock);
  }
  sync_in_progress_ = true;
  // Every byte appended before this load was written before the fsync
  // below starts, so the barrier covers through `target`.
  const uint64_t target = last_appended_seq_.load(std::memory_order_acquire);
  lock.unlock();
  Status synced = sink_->Sync();
  lock.lock();
  sync_in_progress_ = false;
  if (synced.ok()) {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    fsyncs_metric->Increment();
    last_sync_time_ = std::chrono::steady_clock::now();
    if (target > last_synced_seq_.load(std::memory_order_relaxed)) {
      last_synced_seq_.store(target, std::memory_order_release);
    }
  }
  sync_cv_.notify_all();
  return synced;
}

Status WalWriter::Truncate(uint64_t cut_seq) {
  if (path_.empty()) {
    return Status::NotSupported("truncate requires a path-backed wal");
  }
  std::lock_guard<std::mutex> append_lock(append_mutex_);
  if (poisoned_) {
    return Status::IOError("wal writer poisoned by an earlier append failure");
  }
  std::unique_lock<std::mutex> sync_lock(sync_mutex_);
  sync_cv_.wait(sync_lock, [&] { return !sync_in_progress_; });
  // Exclusive now: appends hold append_mutex_, fsyncs hold the
  // sync_in_progress_ token, and both are excluded for the duration.

  std::string bytes;
  SKEWSEARCH_RETURN_NOT_OK(ReadFileBytes(path_, &bytes));
  Result<WalReadResult> decoded = DecodeWal(bytes);
  SKEWSEARCH_RETURN_NOT_OK(decoded.status());
  if (decoded->truncated) {
    return Status::Internal("live wal decodes with a torn tail: " +
                            decoded->truncate_reason);
  }

  std::string fresh(kWalMagic, sizeof(kWalMagic));
  fresh.append(sizeof(uint32_t), '\0');
  for (const WalRecord& record : decoded->records) {
    if (record.seq <= cut_seq) continue;
    wal_internal::EncodeRecord(record.type, record.seq, record.id,
                               record.items, &fresh);
  }

  const std::string tmp = path_ + ".tmp";
  {
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      return Status::IOError("cannot open '" + tmp +
                             "': " + std::strerror(errno));
    }
    PosixFileSink tmp_sink(fd);
    Status written = tmp_sink.Append(fresh.data(), fresh.size());
    if (written.ok()) written = tmp_sink.Sync();
    SKEWSEARCH_RETURN_NOT_OK(written);
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename '" + tmp + "' -> '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  const size_t slash = path_.find_last_of('/');
  SKEWSEARCH_RETURN_NOT_OK(wal_internal::FsyncPath(
      slash == std::string::npos ? "." : path_.substr(0, slash)));

  Result<std::unique_ptr<WalSink>> sink = OpenFileSink(path_);
  SKEWSEARCH_RETURN_NOT_OK(sink.status());
  sink_ = std::move(sink).value();
  bytes_.store(fresh.size(), std::memory_order_release);
  // The rewritten file was fsync'd whole, so everything appended so far
  // is durable.
  last_synced_seq_.store(last_appended_seq_.load(std::memory_order_acquire),
                         std::memory_order_release);
  truncations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace skewsearch
