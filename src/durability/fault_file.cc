// Copyright 2026 The skewsearch Authors.

#include "durability/fault_file.h"

#include <algorithm>
#include <fstream>

namespace skewsearch {

Status FaultFile::Append(const void* data, size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_.size() + size > fail_after_) {
    return Status::IOError("fault injection: append budget exhausted");
  }
  data_.append(static_cast<const char*>(data), size);
  return Status::OK();
}

Status FaultFile::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  synced_size_ = data_.size();
  ++num_syncs_;
  return Status::OK();
}

void FaultFile::set_fail_after(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_after_ = bytes;
}

std::string FaultFile::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

uint64_t FaultFile::synced_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return synced_size_;
}

size_t FaultFile::num_syncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_syncs_;
}

std::string FaultFile::CrashImage(
    uint64_t keep_bytes, uint64_t shorten_tail,
    std::span<const Corruption> corruptions) const {
  std::string image;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    image = data_.substr(0, std::min<uint64_t>(keep_bytes, data_.size()));
  }
  image.resize(image.size() - std::min<uint64_t>(shorten_tail, image.size()));
  for (const Corruption& c : corruptions) {
    if (c.offset < image.size()) {
      image[c.offset] = static_cast<char>(image[c.offset] ^ c.xor_mask);
    }
  }
  return image;
}

Status FaultFile::MaterializeCrash(
    const std::string& path, uint64_t keep_bytes, uint64_t shorten_tail,
    std::span<const Corruption> corruptions) const {
  const std::string image = CrashImage(keep_bytes, shorten_tail, corruptions);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "'");
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.close();
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace skewsearch
