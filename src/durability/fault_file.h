// Copyright 2026 The skewsearch Authors.
// FaultFile: the fault-injecting WalSink behind the crash-matrix tests.
//
// A real crash is nondeterministic twice over — the kernel loses an
// arbitrary unsynced suffix, and a torn sector can shear a record
// anywhere. FaultFile makes both deterministic: it captures every
// appended byte in memory, records the high-water mark of the last
// Sync(), and can then materialize any "post-crash disk image" on
// demand — all synced bytes, any shorter prefix (a torn write), and
// any set of single-byte corruptions (bit rot under the checksum).
// Tests drive a WalWriter through it, pick a crash point, write the
// image to a real file, and assert that recovery stops exactly at the
// last intact record. It can also be armed to fail appends past a
// byte budget, which exercises the writer's poisoning path (an
// acknowledged-but-unloggable mutation must surface as an error, never
// as a silent gap).

#ifndef SKEWSEARCH_DURABILITY_FAULT_FILE_H_
#define SKEWSEARCH_DURABILITY_FAULT_FILE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>

#include "durability/wal.h"

namespace skewsearch {

/// \brief In-memory WalSink that models crash-prone storage.
///
/// Thread-safe (a group-commit Sync may race an Append, as with a real
/// fd).
class FaultFile : public WalSink {
 public:
  /// One deliberate byte corruption in a materialized crash image.
  struct Corruption {
    uint64_t offset = 0;   ///< byte position in the image
    uint8_t xor_mask = 0;  ///< XORed into the byte (0 would be a no-op)
  };

  FaultFile() = default;

  /// Appends into the capture buffer; fails with IOError once the
  /// armed byte budget (set_fail_after) is exhausted.
  Status Append(const void* data, size_t size) override;

  /// Marks everything appended so far as surviving a crash.
  Status Sync() override;

  /// Arms append failure: appends that would push the total past
  /// \p bytes return IOError (and capture nothing).
  void set_fail_after(uint64_t bytes);

  /// Every byte accepted so far (what a crash-free close would leave).
  std::string bytes() const;

  /// Bytes covered by the last Sync() — the most a crash can keep.
  uint64_t synced_size() const;

  size_t num_syncs() const;

  /// Builds a post-crash image: the first \p keep_bytes bytes (clamped
  /// to what was appended), minus \p shorten_tail bytes off the end
  /// (a torn write), with \p corruptions XORed in (out-of-range
  /// offsets are ignored). Passing synced_size() as \p keep_bytes
  /// models a kernel that lost every unsynced write.
  std::string CrashImage(uint64_t keep_bytes, uint64_t shorten_tail = 0,
                         std::span<const Corruption> corruptions = {}) const;

  /// CrashImage() written to \p path (overwriting), ready for recovery
  /// to open.
  Status MaterializeCrash(const std::string& path, uint64_t keep_bytes,
                          uint64_t shorten_tail = 0,
                          std::span<const Corruption> corruptions = {}) const;

 private:
  mutable std::mutex mutex_;
  std::string data_;
  uint64_t synced_size_ = 0;
  size_t num_syncs_ = 0;
  uint64_t fail_after_ = UINT64_MAX;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DURABILITY_FAULT_FILE_H_
