// Copyright 2026 The skewsearch Authors.
// SKW1 write-ahead log: the durability primitive of the online index.
//
// A WAL file is a fixed 8-byte header followed by length-prefixed,
// individually checksummed mutation records (one per acknowledged
// Insert/Remove). The format is deliberately dumb — append-only,
// byte-order fixed, no compression — because its one job is to make
// the *torn tail* after a crash unambiguous: a reader walks records
// front to back and stops at the first one whose length prefix or
// FNV-1a checksum does not hold, and everything before that point is
// exactly the prefix of mutations the writer acknowledged durable.
// docs/FILE_FORMATS.md holds the normative layout; wal_internal below
// mirrors it field for field.
//
// Durability policy is a seam, not a constant: WalWriter::Append makes
// the record *durable before returning* under SyncPolicy::kAlways and
// kGroupCommit (concurrent committers share one fsync via a
// leader/follower protocol), lazily under kInterval (piggybacked
// time-based syncs), and not at all under kNone (the OS decides).
// The byte sink the writer appends through is itself a seam (WalSink):
// production uses a POSIX fd + fsync; tests substitute FaultFile
// (durability/fault_file.h) to materialize deterministic crash images
// with any suffix of unsynced writes dropped, shortened or corrupted.

#ifndef SKEWSEARCH_DURABILITY_WAL_H_
#define SKEWSEARCH_DURABILITY_WAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

/// \brief When an acknowledged append is made durable (fsync'd).
enum class SyncPolicy {
  kNone = 0,      ///< never fsync; the OS writes back when it pleases
  kInterval = 1,  ///< fsync at most every interval_ms, piggybacked on appends
  kGroup = 2,     ///< fsync before ack; concurrent committers share one fsync
  kAlways = 3,    ///< one fsync per acknowledged append, no sharing
};

/// Parses "none" / "interval" / "group" / "always" (CLI surface).
Result<SyncPolicy> ParseSyncPolicy(std::string_view name);

/// The canonical spelling ParseSyncPolicy accepts.
std::string_view SyncPolicyName(SyncPolicy policy);

/// \brief One decoded WAL record: a single acknowledged mutation.
struct WalRecord {
  /// Record kinds (the `type` byte of the on-disk header).
  enum class Type : uint8_t {
    kInsert = 1,  ///< payload: id + item list
    kRemove = 2,  ///< payload: id
  };

  Type type = Type::kInsert;
  /// Commit sequence number; consecutive within a file.
  uint64_t seq = 0;
  /// The mutated vector id.
  VectorId id = 0;
  /// Inserted items (empty for kRemove).
  std::vector<ItemId> items;
};

/// \brief Byte sink the WAL writes through (the fault-injection seam).
///
/// Append() buffers or writes bytes; Sync() is the durability barrier:
/// after it returns OK, every byte appended before the call must
/// survive a crash. Implementations must be thread-safe (appends are
/// serialized by WalWriter, but Sync may race Append).
class WalSink {
 public:
  virtual ~WalSink() = default;

  /// Appends \p size bytes at the current end.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Durability barrier for every previously appended byte.
  virtual Status Sync() = 0;
};

/// Opens \p path for appending (created if absent) as a POSIX-fd sink
/// whose Sync() is fsync(2).
Result<std::unique_ptr<WalSink>> OpenFileSink(const std::string& path);

/// \brief Writer-side policy knobs.
struct WalWriterOptions {
  SyncPolicy sync_policy = SyncPolicy::kGroup;
  /// kInterval only: maximum staleness between piggybacked fsyncs.
  int interval_ms = 5;
};

/// \brief Outcome of decoding a WAL file: the valid record prefix plus
/// where (and why) decoding stopped.
struct WalReadResult {
  /// Records of the valid prefix, in commit order.
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (file header + intact records). A file
  /// may deterministically be truncated to this length to drop a torn
  /// tail.
  uint64_t valid_bytes = 0;
  /// One past the last valid record's seq (1 for an empty log).
  uint64_t next_seq = 1;
  /// True when bytes beyond valid_bytes exist but do not form an
  /// intact record (torn tail or corruption).
  bool truncated = false;
  /// Human-readable reason decoding stopped early (empty when clean).
  std::string truncate_reason;
};

/// Decodes an in-memory SKW1 image. Fails loudly (IOError) only when
/// the 8-byte file header itself is present-but-wrong (not a WAL); a
/// short header or any record-level damage is the torn-tail case and
/// reports a truncated valid prefix instead.
Result<WalReadResult> DecodeWal(std::span<const char> bytes);

/// Reads and decodes \p path (NotFound when the file does not exist).
Result<WalReadResult> ReadWal(const std::string& path);

/// \brief Appends SKW1 records with a configurable durability policy.
///
/// Thread-safe: any number of threads may Append concurrently; records
/// are assigned consecutive seqs in append order. A failed sink append
/// poisons the writer (the file may now end mid-record, so further
/// appends would be unrecoverable noise behind the tear). Create via
/// Open (POSIX file) or OpenWithSink (tests).
class WalWriter {
 public:
  /// Opens \p path for appending. The caller is responsible for having
  /// truncated any torn tail first (see ReadWal / recovery.h); \p
  /// existing_bytes is the current file size (0 writes a fresh header)
  /// and \p next_seq the seq the next record gets.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, const WalWriterOptions& options,
      uint64_t existing_bytes, uint64_t next_seq);

  /// Wraps an arbitrary sink (fault injection). When \p write_header is
  /// true an 8-byte SKW1 header is appended first. Truncate() is
  /// unavailable on sink-backed writers.
  static Result<std::unique_ptr<WalWriter>> OpenWithSink(
      std::unique_ptr<WalSink> sink, const WalWriterOptions& options,
      uint64_t next_seq, bool write_header);

  /// Appends one record and applies the sync policy; after an OK return
  /// under kAlways/kGroup the record is durable. Returns the assigned
  /// seq. \p items must be empty for kRemove.
  Result<uint64_t> Append(WalRecord::Type type, VectorId id,
                          std::span<const ItemId> items);

  /// Forces durability of every record appended so far (used on close
  /// and before checkpoint renames), regardless of policy.
  Status Sync();

  /// Rewrites the log keeping only records with seq > \p cut_seq
  /// (checkpoint truncation): the retained suffix goes to a temp file
  /// that is fsync'd and atomically renamed over the log. Blocks
  /// appends for the duration; the surviving records are durable when
  /// this returns. Path-backed writers only (NotSupported otherwise).
  Status Truncate(uint64_t cut_seq);

  /// \name Introspection (tests, checkpoint policy, stats lines).
  /// @{
  uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_acquire);
  }
  uint64_t last_appended_seq() const {
    return last_appended_seq_.load(std::memory_order_acquire);
  }
  uint64_t last_synced_seq() const {
    return last_synced_seq_.load(std::memory_order_acquire);
  }
  /// Current log size in bytes (header included).
  uint64_t bytes() const { return bytes_.load(std::memory_order_acquire); }
  uint64_t num_appends() const {
    return appends_.load(std::memory_order_relaxed);
  }
  uint64_t num_fsyncs() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }
  uint64_t num_truncations() const {
    return truncations_.load(std::memory_order_relaxed);
  }
  const WalWriterOptions& options() const { return options_; }
  /// @}

 private:
  WalWriter(std::unique_ptr<WalSink> sink, std::string path,
            const WalWriterOptions& options, uint64_t next_seq,
            uint64_t existing_bytes);

  /// Leader/follower shared fsync: returns once every record with
  /// seq <= \p seq is durable. \p strict forces a dedicated fsync even
  /// when a concurrent one already covered seq (the kAlways contract).
  Status SyncUpTo(uint64_t seq, bool strict);

  std::unique_ptr<WalSink> sink_;
  const std::string path_;  // empty for sink-backed writers
  const WalWriterOptions options_;

  std::mutex append_mutex_;  // serializes record encoding + sink appends
  bool poisoned_ = false;    // guarded by append_mutex_
  std::string scratch_;      // guarded by append_mutex_

  std::mutex sync_mutex_;  // guards the group-commit protocol below
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;
  std::chrono::steady_clock::time_point last_sync_time_;  // kInterval

  std::atomic<uint64_t> next_seq_;
  std::atomic<uint64_t> last_appended_seq_;
  std::atomic<uint64_t> last_synced_seq_;
  std::atomic<uint64_t> bytes_;
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> truncations_{0};
};

namespace wal_internal {

/// Normative SKW1 constants (docs/FILE_FORMATS.md).
inline constexpr char kWalMagic[4] = {'S', 'K', 'W', '1'};
inline constexpr size_t kFileHeaderSize = 8;   // magic + u32 reserved
inline constexpr size_t kRecordHeaderSize = 24;  // type+pad+len+seq+crc
/// Decode-side allocation bound: a length prefix past this is treated
/// as corruption, not a request for memory.
inline constexpr uint32_t kMaxPayloadSize = 64u << 20;

/// Serializes one record (header + payload) onto \p out.
void EncodeRecord(WalRecord::Type type, uint64_t seq, VectorId id,
                  std::span<const ItemId> items, std::string* out);

/// fsync(2) of \p path (a file or a directory — the latter pins a
/// rename into the directory entry).
Status FsyncPath(const std::string& path);

}  // namespace wal_internal

}  // namespace skewsearch

#endif  // SKEWSEARCH_DURABILITY_WAL_H_
