// Copyright 2026 The skewsearch Authors.
// Recovery: snapshot (SKD2) + WAL tail = a restartable online index.
//
// A durable index directory holds two files: `snapshot.skd`, the last
// checkpoint written through DynamicIndex::Save's pinned-snapshot
// path, and `wal.skw`, the SKW1 log of every mutation acknowledged
// since. Opening the directory is deterministic recovery: load the
// snapshot (or Build fresh when none exists), read the log, truncate
// the torn tail at the first damaged record, and replay the intact
// records through DynamicIndex::ReplayInsert/ReplayRemove. Replay is
// idempotent against the snapshot — a record whose effect the
// checkpoint already captured is skipped — which is what makes the
// checkpoint itself safe to take while writers are running: the WAL
// cut is read *before* the snapshot is pinned, so every record at or
// below the cut is provably inside the snapshot, and the retained
// suffix can only re-deliver mutations the snapshot may already hold.
//
// Checkpoints (snapshot + log truncate) are driven by the maintenance
// thread: DurableIndex implements maintenance/service.h's
// CheckpointDriver, with due-ness decided by the log-size/age
// thresholds in DurableOptions.

#ifndef SKEWSEARCH_DURABILITY_RECOVERY_H_
#define SKEWSEARCH_DURABILITY_RECOVERY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "core/dynamic_index.h"
#include "durability/wal.h"
#include "maintenance/service.h"
#include "util/status.h"

namespace skewsearch {

/// \brief Durability policy of a DurableIndex.
struct DurableOptions {
  /// Directory holding snapshot.skd + wal.skw (created if absent).
  std::string dir;

  /// When an acknowledged mutation is fsync'd (see durability/wal.h).
  SyncPolicy sync_policy = SyncPolicy::kGroup;

  /// kInterval only: maximum staleness between piggybacked fsyncs.
  int interval_ms = 5;

  /// Checkpoint once the log exceeds this many bytes (0 = no size
  /// trigger).
  uint64_t checkpoint_bytes = 8ull << 20;

  /// Checkpoint once the log is older than this and non-empty (0 = no
  /// age trigger).
  int checkpoint_age_ms = 0;
};

/// \brief What recovery found and did while opening a directory.
struct RecoveryStats {
  bool snapshot_loaded = false;   ///< snapshot.skd existed and was loaded
  size_t replayed = 0;            ///< WAL records applied
  size_t skipped = 0;             ///< WAL records the snapshot already held
  bool truncated = false;         ///< the log had a torn/corrupt tail
  uint64_t truncated_bytes = 0;   ///< bytes dropped with that tail
  std::string truncate_reason;    ///< why decoding stopped (diagnostics)
  uint64_t next_seq = 1;          ///< first seq the reopened writer assigns
};

/// \brief MutationJournal that appends every acknowledged mutation to a
/// WalWriter (the production durability seam of DynamicIndex).
class WalJournal : public MutationJournal {
 public:
  /// Wraps \p wal (borrowed; must outlive the journal registration).
  explicit WalJournal(WalWriter* wal) : wal_(wal) {}

  Status LogInsert(VectorId id, std::span<const ItemId> items) override;
  Status LogRemove(VectorId id) override;

 private:
  WalWriter* wal_;
};

/// Replays decoded WAL \p records into \p index (which must not have a
/// journal attached), counting applied vs skipped records in \p stats
/// (may be null). A record that is semantically impossible against the
/// restored snapshot (an insert colliding with the base dataset, an
/// invalid item list) fails loudly: that is a snapshot/log mismatch,
/// not a torn tail.
Status ReplayWal(std::span<const WalRecord> records, DynamicIndex* index,
                 RecoveryStats* stats);

/// \brief A DynamicIndex whose acknowledged mutations survive crashes.
///
/// Open() performs recovery and attaches the WAL journal; from then on
/// every Insert/Remove on index() is durable per the sync policy
/// before it returns. Checkpoint() (usually via the maintenance
/// thread, see SetCheckpointDriver) bounds recovery time by folding
/// the log into a fresh snapshot. Close() detaches and syncs. The
/// index is usable after Close(), just no longer journaled.
class DurableIndex : public CheckpointDriver {
 public:
  DurableIndex() = default;
  ~DurableIndex() override;
  DurableIndex(const DurableIndex&) = delete;
  DurableIndex& operator=(const DurableIndex&) = delete;

  /// Recovers (or initializes) the directory `durable.dir` and attaches
  /// the journal. \p data / \p dist are the base dataset the snapshot
  /// was built over (fingerprint-checked on load); \p index_options is
  /// used only when no snapshot exists yet.
  Status Open(const Dataset* data, const ProductDistribution* dist,
              const DynamicIndexOptions& index_options,
              const DurableOptions& durable, RecoveryStats* stats = nullptr);

  /// The recovered, journaled index. Valid after a successful Open().
  DynamicIndex& index() { return index_; }
  const DynamicIndex& index() const { return index_; }

  /// The log writer (stats surface; null before Open/after Close).
  WalWriter* wal() { return wal_.get(); }

  /// CheckpointDriver: log-size/age policy from DurableOptions.
  bool CheckpointDue() override;

  /// CheckpointDriver: pinned-snapshot Save to a temp file, atomic
  /// rename over snapshot.skd, then WAL truncation at the pre-pin cut.
  /// Safe against concurrent Insert/Remove/Query traffic; serializes
  /// with itself.
  Status Checkpoint() override;

  size_t num_checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// Final sync + journal detach. Idempotent.
  Status Close();

  /// Layout of a durable directory (shared with tests and tooling).
  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  DynamicIndex index_;
  DurableOptions options_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<WalJournal> journal_;

  std::mutex checkpoint_mutex_;  // serializes Checkpoint/Close
  std::atomic<size_t> checkpoints_{0};
  std::chrono::steady_clock::time_point last_checkpoint_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DURABILITY_RECOVERY_H_
