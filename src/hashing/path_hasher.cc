#include "hashing/path_hasher.h"

#include "hashing/mix.h"
#include "util/random.h"

namespace skewsearch {

PathHasher::PathHasher(uint64_t seed, int max_level, HashEngine engine)
    : seed_(seed), max_level_(max_level), engine_(engine) {
  Rng rng(Mix64(seed ^ 0x5ca1ab1e0ddba11ULL));
  level_salts_.reserve(static_cast<size_t>(max_level));
  for (int level = 0; level < max_level; ++level) {
    level_salts_.push_back(rng.NextUint64());
  }
  if (engine_ == HashEngine::kPairwise) {
    level_hashes_.reserve(static_cast<size_t>(max_level));
    for (int level = 0; level < max_level; ++level) {
      level_hashes_.emplace_back(&rng);
    }
  }
}

uint64_t PathHasher::RootKey(uint32_t rep) const {
  return MixPair(Mix64(seed_), Mix64(0xabcdef12345678ULL + rep));
}

uint64_t PathHasher::ExtendKey(uint64_t path_key, uint32_t item) const {
  return MixPair(path_key, Mix64(0x1234567890abcdefULL ^ item));
}

double PathHasher::LevelDraw(int level, uint64_t path_key,
                             uint32_t item) const {
  size_t idx = static_cast<size_t>(level - 1) % level_salts_.size();
  // The draw must identify the *child* path (v o i); combining the parent
  // key with the item gives exactly that identity.
  uint64_t child = MixPair(path_key ^ level_salts_[idx],
                           Mix64(0x9e3779b97f4a7c15ULL ^ item));
  if (engine_ == HashEngine::kPairwise) {
    return level_hashes_[idx].HashUnit(child);
  }
  return ToUnitInterval(Avalanche64(child));
}

}  // namespace skewsearch
