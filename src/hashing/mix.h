// Copyright 2026 The skewsearch Authors.
// 64-bit mixing / finalization primitives.
//
// These are the raw building blocks for the path hashes of Section 3 of the
// paper: fast avalanche mixers used to (a) derive path keys incrementally
// and (b) produce per-(path, item) uniform values in [0,1). A genuinely
// pairwise-independent alternative lives in hashing/pairwise.h.

#ifndef SKEWSEARCH_HASHING_MIX_H_
#define SKEWSEARCH_HASHING_MIX_H_

#include <cstdint>

namespace skewsearch {

/// MurmurHash3 fmix64 finalizer: bijective avalanche mix of 64 bits.
uint64_t Mix64(uint64_t x);

/// xxHash3-style avalanche (distinct constants from Mix64).
uint64_t Avalanche64(uint64_t x);

/// Combines two words into one well-mixed word (non-commutative, so order
/// matters — required for hashing *ordered* paths).
uint64_t MixPair(uint64_t a, uint64_t b);

/// Maps 64 random bits to a double uniform in [0, 1) (53-bit mantissa).
double ToUnitInterval(uint64_t bits);

}  // namespace skewsearch

#endif  // SKEWSEARCH_HASHING_MIX_H_
