#include "hashing/mix.h"

namespace skewsearch {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t Avalanche64(uint64_t x) {
  x ^= x >> 37;
  x *= 0x165667919e3779f9ULL;
  x ^= x >> 32;
  return x;
}

uint64_t MixPair(uint64_t a, uint64_t b) {
  // Asymmetric combination: rotating one side breaks commutativity so that
  // MixPair(a, b) != MixPair(b, a) in general.
  uint64_t x = a + 0x9e3779b97f4a7c15ULL;
  x ^= (b << 23) | (b >> 41);
  x = Mix64(x);
  x += b;
  return Avalanche64(x);
}

double ToUnitInterval(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace skewsearch
