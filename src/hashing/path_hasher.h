// Copyright 2026 The skewsearch Authors.
// PathHasher: the randomness source of the chosen-path recursion.
//
// The paper (Section 3) fixes k hash functions h_j : [d]^j -> [0,1], one
// per path length, drawn from a pairwise-independent family. A path
// v = (i_1, ..., i_j) is extended by item i iff h_{j+1}(v o i) < s(x, j, i).
//
// We represent a path by a 64-bit *key* built incrementally:
//
//   key(empty, rep)   = Mix(seed, rep)            -- one root per repetition
//   key(v o i)        = MixPair(key(v), Mix(i))
//
// Distinct paths map to distinct keys up to 64-bit collisions (birthday
// bound; ~2^24 live paths => collision probability < 2^-16 per build, and a
// key collision can only *add* candidate checks, never lose the planted
// match, so correctness is unaffected).
//
// The level draw h_{j+1}(v o i) is a function of (level, key(v), i) only —
// crucially NOT of x — so data vectors and queries make identical decisions
// on identical path prefixes, which is what makes F(x) and F(q) intersect.

#ifndef SKEWSEARCH_HASHING_PATH_HASHER_H_
#define SKEWSEARCH_HASHING_PATH_HASHER_H_

#include <cstdint>
#include <vector>

#include "hashing/pairwise.h"

namespace skewsearch {

/// Selects the hash engine behind the level draws.
enum class HashEngine {
  /// Seeded xxhash/murmur-style mixer. Fastest; passes our statistical
  /// independence tests; the default.
  kMixer,
  /// Degree-one polynomial over 2^61-1 applied to the mixed key: genuinely
  /// pairwise independent, matching the paper's assumption exactly.
  kPairwise,
};

/// \brief Deterministic randomness for path growth and path identity.
///
/// Thread-safe for concurrent reads after construction.
class PathHasher {
 public:
  /// \param seed   master seed; everything is a deterministic function of it.
  /// \param max_level  largest path length that will be queried.
  /// \param engine     hash engine for the level draws.
  PathHasher(uint64_t seed, int max_level,
             HashEngine engine = HashEngine::kMixer);

  /// Root key for repetition \p rep (the empty path of that repetition).
  uint64_t RootKey(uint32_t rep) const;

  /// Key of the path v o i given the key of v.
  uint64_t ExtendKey(uint64_t path_key, uint32_t item) const;

  /// The level draw h_{level}(v o i) in [0, 1): the uniform variate compared
  /// against the sampling threshold s(x, j, i). \p level is the length of
  /// the path being created (j + 1), 1-based.
  double LevelDraw(int level, uint64_t path_key, uint32_t item) const;

  /// Number of per-level hash functions owned (== max_level).
  int max_level() const { return max_level_; }

 private:
  uint64_t seed_;
  int max_level_;
  HashEngine engine_;
  std::vector<uint64_t> level_salts_;       // one per level, for kMixer
  std::vector<PairwiseHash> level_hashes_;  // one per level, for kPairwise
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_HASHING_PATH_HASHER_H_
