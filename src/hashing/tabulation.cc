#include "hashing/tabulation.h"

#include "hashing/mix.h"

namespace skewsearch {

TabulationHash::TabulationHash(Rng* rng) {
  for (auto& table : tables_) {
    for (auto& entry : table) entry = rng->NextUint64();
  }
}

uint64_t TabulationHash::Hash(uint64_t key) const {
  uint64_t h = 0;
  for (size_t byte = 0; byte < 8; ++byte) {
    h ^= tables_[byte][(key >> (8 * byte)) & 0xff];
  }
  return h;
}

double TabulationHash::HashUnit(uint64_t key) const {
  return ToUnitInterval(Hash(key));
}

}  // namespace skewsearch
