#include "hashing/pairwise.h"

namespace skewsearch {

uint64_t ModMersenne61(uint64_t x) {
  // x = hi * 2^61 + lo  =>  x mod p = hi + lo (mod p) since 2^61 = 1 (mod p).
  uint64_t r = (x & kMersenne61) + (x >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

uint64_t MulModMersenne61(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod) & kMersenne61;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + ModMersenne61(hi);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

PairwiseHash::PairwiseHash(Rng* rng)
    : a_(1 + rng->NextBounded(kMersenne61 - 1)),
      b_(rng->NextBounded(kMersenne61)) {}

PairwiseHash::PairwiseHash(uint64_t a, uint64_t b)
    : a_(ModMersenne61(a)), b_(ModMersenne61(b)) {
  if (a_ == 0) a_ = 1;
}

uint64_t PairwiseHash::HashInt(uint64_t key) const {
  uint64_t x = ModMersenne61(key);
  uint64_t r = MulModMersenne61(a_, x) + b_;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

double PairwiseHash::HashUnit(uint64_t key) const {
  return static_cast<double>(HashInt(key)) /
         static_cast<double>(kMersenne61);
}

}  // namespace skewsearch
