// Copyright 2026 The skewsearch Authors.
// Simple tabulation hashing (Zobrist / Patrascu-Thorup).
//
// 3-independent and extremely fast in practice; offered as an alternative
// hash engine for the inverted index and available to users who want
// stronger-than-mixer guarantees without the modular arithmetic of
// hashing/pairwise.h.

#ifndef SKEWSEARCH_HASHING_TABULATION_H_
#define SKEWSEARCH_HASHING_TABULATION_H_

#include <array>
#include <cstdint>

#include "util/random.h"

namespace skewsearch {

/// \brief Simple tabulation hash on 64-bit keys.
///
/// Splits the key into 8 bytes and XORs 8 random table lookups. The table
/// (16 KiB) is filled from the supplied RNG at construction.
class TabulationHash {
 public:
  /// Fills the lookup tables from \p rng.
  explicit TabulationHash(Rng* rng);

  /// Returns the 64-bit hash of \p key.
  uint64_t Hash(uint64_t key) const;

  /// Returns the hash scaled to [0, 1).
  double HashUnit(uint64_t key) const;

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_HASHING_TABULATION_H_
