// Copyright 2026 The skewsearch Authors.
// FastSketcher: all t similarity-sketch coordinates in one data pass.
//
// The classic MinHash sketch runs t independent passes over the input
// set — t hash evaluations per element. "Fast Similarity Sketching"
// (Dahlgaard, Knudsen, Thorup, FOCS 2017; see PAPERS.md) computes an
// equally concentrated t-coordinate sketch in a *single* element-major
// pass:
//
//   For element x, round i = 0, 1, ..., t-1 draws
//     value_i(x)  = (i + u_i(x)) / t       with u_i(x) uniform in [0,1)
//     bucket_i(x) = P_x(i)                 the i-th entry of a per-element
//                                          random permutation of [t]
//   and coordinate b of the sketch is the minimum value ever assigned
//   to bucket b. The permutation guarantees every element touches every
//   bucket exactly once, so all coordinates are filled after any single
//   element's t rounds; the strictly increasing value envelope
//   (value_i >= i / t) lets an element STOP as soon as i / t clears the
//   current maximum coordinate — none of its remaining rounds can win a
//   minimum. Later elements therefore run only O(log t) expected rounds
//   once the sketch is warm, for O(t log t + n) expected hash work total
//   versus the classic O(t * n).
//
// Two sketches estimate the Jaccard similarity of their sets by the
// fraction of coordinates on which they agree exactly (the minimizing
// (element, round) pair is shared with probability ~J per coordinate;
// the coordinates are not independent, but the paper proves the mean
// concentrates like an independent sum).
//
// The early exit is a pure pruning rule: SketchReference() runs every
// element for all t rounds and is *bit-identical* to Sketch() — the
// differential test in hashing_sketch_test.cc holds them equal.

#ifndef SKEWSEARCH_HASHING_SKETCH_H_
#define SKEWSEARCH_HASHING_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/sparse_vector.h"

namespace skewsearch {

/// \brief One-pass t-coordinate similarity sketcher.
///
/// Deterministic: a sketch is a pure function of (length, seed, set).
/// Instances are immutable after construction and safe to share across
/// threads; Sketch() allocates its scratch locally.
class FastSketcher {
 public:
  /// \param length number of sketch coordinates t (>= 1).
  /// \param seed randomness seed shared by both sketch parties.
  FastSketcher(uint32_t length, uint64_t seed);

  /// Computes the t-coordinate sketch of \p items into \p out (resized
  /// to length()). Duplicates in \p items are harmless (minima absorb
  /// them). An empty set yields all coordinates == +infinity.
  void Sketch(std::span<const ItemId> items, std::vector<double>* out) const;

  /// The same sketch without the early-exit pruning: every element runs
  /// all t rounds. Bit-identical to Sketch() by construction — exists as
  /// the differential-test oracle and the honest cost baseline.
  void SketchReference(std::span<const ItemId> items,
                       std::vector<double>* out) const;

  /// Classic t-independent-pass MinHash (coordinate k = min over
  /// elements of the k-th hash). NOT the same sketch values as Sketch();
  /// same estimator family, t hash evaluations per element. Kept as the
  /// speed yardstick the fast path is measured against.
  void SketchClassic(std::span<const ItemId> items,
                     std::vector<double>* out) const;

  /// Fraction of coordinates on which \p a and \p b agree exactly — the
  /// Jaccard estimate when both are sketches from the same
  /// (length, seed). Spans must be non-empty and equal length.
  static double EstimateSimilarity(std::span<const double> a,
                                   std::span<const double> b);

  uint32_t length() const { return length_; }
  uint64_t seed() const { return seed_; }

 private:
  /// Shared round body: runs \p items through rounds [0, t) updating the
  /// minima in \p out, pruning an element's tail rounds iff \p prune.
  void SketchImpl(std::span<const ItemId> items, bool prune,
                  std::vector<double>* out) const;

  uint32_t length_;
  uint64_t seed_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_HASHING_SKETCH_H_
