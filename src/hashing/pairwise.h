// Copyright 2026 The skewsearch Authors.
// Pairwise-independent hash families.
//
// Section 3 of the paper draws the level hashes h_j from "a family H of
// pairwise independent hash functions". We provide the classic degree-one
// polynomial family over the Mersenne prime p = 2^61 - 1:
//
//   h_{a,b}(x) = ((a * x + b) mod p) mod m,      a in [1, p), b in [0, p)
//
// which is pairwise independent on [p]. Keys that are full 64-bit words are
// first reduced mod p; the resulting bias is < 2^-58 and irrelevant here.

#ifndef SKEWSEARCH_HASHING_PAIRWISE_H_
#define SKEWSEARCH_HASHING_PAIRWISE_H_

#include <cstdint>

#include "util/random.h"

namespace skewsearch {

/// The Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Reduces a 64-bit value modulo 2^61 - 1.
uint64_t ModMersenne61(uint64_t x);

/// Computes (a * b) mod (2^61 - 1) without overflow.
uint64_t MulModMersenne61(uint64_t a, uint64_t b);

/// \brief One member of the pairwise-independent polynomial family.
///
/// Maps 64-bit keys to [0, 1) (via a 61-bit intermediate value). For any two
/// distinct inputs the pair of outputs is uniform on [p]^2 over the draw of
/// (a, b) — the property required by Lemma 5's second-moment argument.
class PairwiseHash {
 public:
  /// Draws (a, b) from \p rng.
  explicit PairwiseHash(Rng* rng);

  /// Constructs from explicit coefficients (used by tests).
  PairwiseHash(uint64_t a, uint64_t b);

  /// Returns h(key) as a 61-bit integer in [0, 2^61 - 1).
  uint64_t HashInt(uint64_t key) const;

  /// Returns h(key) scaled to [0, 1).
  double HashUnit(uint64_t key) const;

 private:
  uint64_t a_;
  uint64_t b_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_HASHING_PAIRWISE_H_
