#include "hashing/sketch.h"

#include <algorithm>
#include <limits>

#include "hashing/mix.h"

namespace skewsearch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Domain-separation salts: the value stream, the permutation stream and
/// the classic-MinHash stream must be mutually independent.
constexpr uint64_t kElementSalt = 0x5851f42d4c957f2dULL;
constexpr uint64_t kPermSalt = 0x14057b7ef767814fULL;
constexpr uint64_t kClassicSalt = 0x27d4eb2f165667c5ULL;

}  // namespace

FastSketcher::FastSketcher(uint32_t length, uint64_t seed)
    : length_(std::max<uint32_t>(1, length)), seed_(seed) {}

void FastSketcher::SketchImpl(std::span<const ItemId> items, bool prune,
                              std::vector<double>* out) const {
  const uint32_t t = length_;
  out->assign(t, kInf);
  if (items.empty()) return;

  // Lazy Fisher-Yates scratch, epoch-stamped so each element's
  // permutation starts from the identity without an O(t) reset.
  std::vector<uint32_t> perm_val(t, 0);
  std::vector<uint32_t> perm_epoch(t, 0);
  uint32_t epoch = 0;
  auto perm_get = [&](uint32_t j) {
    return perm_epoch[j] == epoch ? perm_val[j] : j;
  };
  auto perm_set = [&](uint32_t j, uint32_t v) {
    perm_val[j] = v;
    perm_epoch[j] = epoch;
  };

  const double inv_t = 1.0 / static_cast<double>(t);
  uint32_t filled = 0;
  // Upper bound on max(out) once every coordinate is finite; +inf until
  // then, so the pruning test below cannot fire early. Coordinates only
  // decrease, so a stale bound stays sound (pruned rounds have value
  // >= i/t >= bound >= every coordinate); the O(t) rescan is amortized
  // by only refreshing after t/8 coordinate decreases, since the bound
  // cannot have improved without any.
  double bound = kInf;
  uint32_t decreases = 0;

  for (ItemId item : items) {
    if (filled == t && (bound == kInf || decreases * 8 >= t)) {
      bound = *std::max_element(out->begin(), out->end());
      decreases = 0;
    }
    const uint64_t elem_key = Mix64(seed_ ^ kElementSalt ^
                                    static_cast<uint64_t>(item));
    ++epoch;
    for (uint32_t i = 0; i < t; ++i) {
      if (prune && static_cast<double>(i) * inv_t >= bound) break;
      const uint64_t bits = MixPair(elem_key, static_cast<uint64_t>(i));
      // i-th entry of this element's random permutation of [t].
      const uint32_t r =
          i + static_cast<uint32_t>(Mix64(bits ^ kPermSalt) %
                                    static_cast<uint64_t>(t - i));
      const uint32_t bucket = perm_get(r);
      perm_set(r, perm_get(i));
      const double value =
          (static_cast<double>(i) + ToUnitInterval(bits)) * inv_t;
      double& slot = (*out)[static_cast<size_t>(bucket)];
      if (value < slot) {
        if (slot == kInf) ++filled;
        slot = value;
        ++decreases;
      }
    }
  }
}

void FastSketcher::Sketch(std::span<const ItemId> items,
                          std::vector<double>* out) const {
  SketchImpl(items, /*prune=*/true, out);
}

void FastSketcher::SketchReference(std::span<const ItemId> items,
                                   std::vector<double>* out) const {
  SketchImpl(items, /*prune=*/false, out);
}

void FastSketcher::SketchClassic(std::span<const ItemId> items,
                                 std::vector<double>* out) const {
  const uint32_t t = length_;
  out->assign(t, kInf);
  for (ItemId item : items) {
    const uint64_t elem_key = Mix64(seed_ ^ kClassicSalt ^
                                    static_cast<uint64_t>(item));
    for (uint32_t k = 0; k < t; ++k) {
      const double value =
          ToUnitInterval(MixPair(elem_key, static_cast<uint64_t>(k)));
      double& slot = (*out)[k];
      if (value < slot) slot = value;
    }
  }
}

double FastSketcher::EstimateSimilarity(std::span<const double> a,
                                        std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(n);
}

}  // namespace skewsearch
