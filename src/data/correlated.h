// Copyright 2026 The skewsearch Authors.
// Alpha-correlated query sampling (Definition 3 of the paper).
//
// q ~ D_alpha(x): independently per dimension i, q_i = x_i with probability
// alpha, otherwise q_i ~ Bernoulli(p_i). Marginally q ~ D, and each (q_i,
// x_i) pair has Pearson correlation alpha.

#ifndef SKEWSEARCH_DATA_CORRELATED_H_
#define SKEWSEARCH_DATA_CORRELATED_H_

#include <span>

#include "data/distribution.h"
#include "data/sparse_vector.h"
#include "util/random.h"

namespace skewsearch {

/// \brief Samples queries alpha-correlated with a given vector.
///
/// Implementation note: materializing the per-dimension copy/resample coin
/// for all d dimensions would cost O(d) per query. Instead the coin for
/// dimension i is a hash of (per-query nonce, i): deterministic within one
/// query, independent across queries, and only evaluated for the O(|x|+|y|)
/// dimensions that could possibly be set — so sampling costs O(|x| + |y|).
class CorrelatedQuerySampler {
 public:
  /// \param dist  the data distribution D (not owned; must outlive this).
  /// \param alpha correlation in [0, 1].
  CorrelatedQuerySampler(const ProductDistribution* dist, double alpha);

  /// Draws q ~ D_alpha(x).
  SparseVector SampleCorrelated(std::span<const ItemId> x, Rng* rng) const;

  /// The correlation parameter.
  double alpha() const { return alpha_; }

 private:
  const ProductDistribution* dist_;
  double alpha_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_CORRELATED_H_
