// Copyright 2026 The skewsearch Authors.
// Distribution builders and dataset generators for every workload the
// paper's analysis and evaluation rely on:
//   - uniform p (no skew; Chosen Path's home turf),
//   - two-block distributions (Figure 1 and the Section 7 examples),
//   - the harmonic distribution of the Section 1 motivating example,
//   - (piecewise-)Zipfian profiles matching Section 8's real-data study,
//   - planted-pair "light bulb" instances,
//   - topic-model datasets with *dependent* bits (Table 1 / robustness).

#ifndef SKEWSEARCH_DATA_GENERATORS_H_
#define SKEWSEARCH_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/distribution.h"
#include "util/random.h"
#include "util/result.h"

namespace skewsearch {

/// All d items set with the same probability p (the no-skew case; our data
/// structure must match Chosen Path here).
Result<ProductDistribution> UniformProbabilities(size_t d, double p);

/// d_frequent items at p_frequent followed by d_rare items at p_rare.
/// The Figure 1 setting is TwoBlock(d/2, p, d/2, p/8).
Result<ProductDistribution> TwoBlockProbabilities(size_t d_frequent,
                                                  double p_frequent,
                                                  size_t d_rare,
                                                  double p_rare);

/// The motivating example's "harmonic" distribution: p_k = min(cap, 1/k),
/// k = 1..d. (The paper's p_1 = 1 is capped to keep probabilities < 1.)
Result<ProductDistribution> HarmonicProbabilities(size_t d, double cap = 0.5);

/// Zipfian: p_j proportional to 1/(j+1)^exponent, scaled so the maximum is
/// p_head (then capped at `cap`).
Result<ProductDistribution> ZipfProbabilities(size_t d, double exponent,
                                              double p_head,
                                              double cap = 0.5);

/// One segment of a piecewise-Zipfian profile (Section 8 observes that real
/// data is approximately piecewise Zipfian).
struct ZipfSegment {
  size_t count;     ///< number of items in the segment
  double p_head;    ///< probability of the segment's most frequent item
  double exponent;  ///< Zipf decay within the segment
};

/// Concatenates Zipf segments into one profile (capped at `cap`).
Result<ProductDistribution> PiecewiseZipfProbabilities(
    const std::vector<ZipfSegment>& segments, double cap = 0.5);

/// Rescales probabilities (multiplicatively, then capped at `cap`) so the
/// expected set size becomes `target_avg_size`. Used to match real-dataset
/// densities. Iterates because the cap makes scaling nonlinear.
Result<ProductDistribution> ScaleToAverageSize(const ProductDistribution& dist,
                                               double target_avg_size,
                                               double cap = 0.5);

/// Samples n i.i.d. vectors from \p dist.
Dataset GenerateDataset(const ProductDistribution& dist, size_t n, Rng* rng);

/// \brief A "light bulb" instance: i.i.d. background plus one planted
/// alpha-correlated pair.
struct PlantedPairInstance {
  Dataset data;
  VectorId first;   ///< index of x
  VectorId second;  ///< index of the vector alpha-correlated with x
};

/// Generates n-1 i.i.d. vectors plus one vector alpha-correlated with a
/// random one of them, at shuffled positions.
PlantedPairInstance GeneratePlantedPair(const ProductDistribution& dist,
                                        size_t n, double alpha, Rng* rng);

/// \brief Options for the topic-model generator (dependent bits).
///
/// Each vector draws an independent background sample from `background`,
/// then activates each of `num_topics` topics independently with
/// probability `activation_prob`; an active topic contributes each item of
/// its (fixed, size `topic_size`) item set with probability `include_prob`.
/// Items inside a topic therefore co-occur more often than independence
/// predicts — exactly the effect Table 1 measures on real data.
struct TopicModelOptions {
  size_t num_topics = 50;
  size_t topic_size = 20;
  double activation_prob = 0.05;
  double include_prob = 0.5;
  /// When > 0, the number of active topics per vector is heavy-tailed
  /// instead of Bernoulli-per-topic: Pr[active >= k] ~ (k+1)^{-exponent}.
  /// Occasional vectors activate many topics at once, producing the
  /// heavy-tailed set sizes and strong |I|=3 co-occurrence that the
  /// paper's Table 1 reports for KOSARAK/NETFLIX/ORKUT/SPOTIFY.
  double heavy_tail_exponent = 0.0;
};

/// \brief Generator producing positively-correlated datasets.
class TopicModelGenerator {
 public:
  /// Topics are drawn once from \p rng over [0, background.dimension()).
  TopicModelGenerator(const ProductDistribution& background,
                      TopicModelOptions options, Rng* rng);

  /// Samples one vector (background + active-topic items).
  SparseVector Sample(Rng* rng) const;

  /// Samples a whole dataset of n vectors.
  Dataset Generate(size_t n, Rng* rng) const;

  /// The fixed item set of topic t (for tests).
  const std::vector<ItemId>& topic(size_t t) const { return topics_[t]; }

 private:
  const ProductDistribution* background_;
  TopicModelOptions options_;
  std::vector<std::vector<ItemId>> topics_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_GENERATORS_H_
