#include "data/remap.h"

#include <algorithm>
#include <numeric>

namespace skewsearch {

ItemRemap::ItemRemap(std::vector<ItemId> forward)
    : forward_(std::move(forward)) {
  backward_.resize(forward_.size());
  for (size_t old_id = 0; old_id < forward_.size(); ++old_id) {
    backward_[forward_[old_id]] = static_cast<ItemId>(old_id);
  }
}

ItemRemap ItemRemap::Identity(size_t d) {
  std::vector<ItemId> forward(d);
  std::iota(forward.begin(), forward.end(), 0);
  return ItemRemap(std::move(forward));
}

namespace {

// Builds old->new from a ranking of old ids (rank 0 = new id 0).
std::vector<ItemId> ForwardFromRanking(std::vector<ItemId> ranking) {
  std::vector<ItemId> forward(ranking.size());
  for (size_t rank = 0; rank < ranking.size(); ++rank) {
    forward[ranking[rank]] = static_cast<ItemId>(rank);
  }
  return forward;
}

}  // namespace

ItemRemap ItemRemap::ByFrequency(const Dataset& data) {
  std::vector<uint32_t> counts(data.dimension(), 0);
  for (VectorId id = 0; id < data.size(); ++id) {
    for (ItemId item : data.Get(id)) counts[item]++;
  }
  std::vector<ItemId> ranking(data.dimension());
  std::iota(ranking.begin(), ranking.end(), 0);
  std::sort(ranking.begin(), ranking.end(), [&](ItemId a, ItemId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  return ItemRemap(ForwardFromRanking(std::move(ranking)));
}

ItemRemap ItemRemap::ByProbability(const ProductDistribution& dist) {
  std::vector<ItemId> ranking(dist.dimension());
  std::iota(ranking.begin(), ranking.end(), 0);
  std::sort(ranking.begin(), ranking.end(), [&](ItemId a, ItemId b) {
    if (dist.p(a) != dist.p(b)) return dist.p(a) > dist.p(b);
    return a < b;
  });
  return ItemRemap(ForwardFromRanking(std::move(ranking)));
}

SparseVector ItemRemap::Apply(const SparseVector& vec) const {
  std::vector<ItemId> ids;
  ids.reserve(vec.size());
  for (ItemId item : vec.ids()) ids.push_back(forward_[item]);
  return SparseVector::FromIds(std::move(ids));
}

Dataset ItemRemap::Apply(const Dataset& data) const {
  Dataset out;
  std::vector<ItemId> ids;
  for (VectorId id = 0; id < data.size(); ++id) {
    ids.clear();
    for (ItemId item : data.Get(id)) ids.push_back(forward_[item]);
    out.Add(SparseVector::FromIds(ids));
  }
  Status s = out.SetDimension(dimension());
  (void)s;  // forward_ is a bijection into [dimension())
  return out;
}

Result<ProductDistribution> ItemRemap::Apply(
    const ProductDistribution& dist) const {
  if (dist.dimension() != dimension()) {
    return Status::InvalidArgument("remap/distribution dimension mismatch");
  }
  std::vector<double> p(dimension());
  for (size_t old_id = 0; old_id < dimension(); ++old_id) {
    p[forward_[old_id]] = dist.p(static_cast<ItemId>(old_id));
  }
  return ProductDistribution::Create(std::move(p));
}

}  // namespace skewsearch
