#include "data/sparse_vector.h"

#include <algorithm>
#include <cassert>

namespace skewsearch {

SparseVector SparseVector::FromIds(std::vector<ItemId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return SparseVector(std::move(ids));
}

SparseVector SparseVector::FromSorted(std::vector<ItemId> ids) {
#ifndef NDEBUG
  for (size_t i = 1; i < ids.size(); ++i) {
    assert(ids[i - 1] < ids[i] &&
           "FromSorted requires strictly increasing ids");
  }
#endif
  return SparseVector(std::move(ids));
}

SparseVector SparseVector::Of(std::initializer_list<ItemId> ids) {
  return FromIds(std::vector<ItemId>(ids));
}

bool SparseVector::Contains(ItemId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

}  // namespace skewsearch
