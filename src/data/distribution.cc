#include "data/distribution.h"

#include <cmath>
#include <string>

#include "util/math.h"

namespace skewsearch {

Result<ProductDistribution> ProductDistribution::Create(
    std::vector<double> p) {
  if (p.empty()) {
    return Status::InvalidArgument("distribution needs at least one item");
  }
  for (size_t i = 0; i < p.size(); ++i) {
    if (!(p[i] > 0.0) || !(p[i] < 1.0)) {
      return Status::InvalidArgument(
          "p[" + std::to_string(i) + "] = " + std::to_string(p[i]) +
          " outside (0, 1)");
    }
  }
  return ProductDistribution(std::move(p));
}

ProductDistribution::ProductDistribution(std::vector<double> p)
    : p_(std::move(p)) {
  log_inv_p_.resize(p_.size());
  std::vector<double> copy(p_);
  sum_p_ = StableSum(copy);
  for (size_t i = 0; i < p_.size(); ++i) {
    log_inv_p_[i] = -std::log(p_[i]);
    max_p_ = std::max(max_p_, p_[i]);
  }
  // Greedy blocking: extend the current block while the max/min probability
  // ratio stays <= 2, which bounds the thinning rejection rate by 1/2.
  ItemId begin = 0;
  double bmin = p_[0];
  double bmax = p_[0];
  for (ItemId i = 1; i < p_.size(); ++i) {
    double nmin = std::min(bmin, p_[i]);
    double nmax = std::max(bmax, p_[i]);
    if (nmax > 2.0 * nmin) {
      blocks_.push_back({begin, i, bmax});
      begin = i;
      bmin = bmax = p_[i];
    } else {
      bmin = nmin;
      bmax = nmax;
    }
  }
  blocks_.push_back({begin, static_cast<ItemId>(p_.size()), bmax});
}

double ProductDistribution::CForN(size_t n) const {
  if (n < 2) return 0.0;
  return sum_p_ / std::log(static_cast<double>(n));
}

bool ProductDistribution::SatisfiesHalfAssumption(double eps) const {
  return max_p_ <= 0.5 + eps;
}

SparseVector ProductDistribution::Sample(Rng* rng) const {
  std::vector<ItemId> ids;
  ids.reserve(static_cast<size_t>(sum_p_ * 1.5) + 8);
  for (const Block& block : blocks_) {
    ItemId pos = block.begin;
    while (true) {
      uint64_t skip = rng->NextGeometricSkips(block.p_max);
      uint64_t candidate = static_cast<uint64_t>(pos) + skip;
      if (candidate >= block.end) break;
      ItemId item = static_cast<ItemId>(candidate);
      // Thinning: candidate fired at rate p_max; accept at p_i / p_max to
      // realize exact Bernoulli(p_i).
      double accept = p_[item] / block.p_max;
      if (accept >= 1.0 || rng->NextBernoulli(accept)) {
        ids.push_back(item);
      }
      pos = item + 1;
      if (pos >= block.end) break;
    }
  }
  return SparseVector::FromSorted(std::move(ids));
}

}  // namespace skewsearch
