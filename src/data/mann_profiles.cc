#include "data/mann_profiles.h"

#include <cmath>

namespace skewsearch {

std::vector<MannProfileSpec> AllMannProfiles() {
  // Shapes chosen per the published dataset statistics (Mann et al. 2016,
  // Table 1) with n and d scaled to ~10-20k sets. `topic_strength` is the
  // topic activation probability; profiles whose measured independence
  // ratios in the paper's Table 1 are close to 1 get strength 0, the four
  // strongly-dependent datasets get increasing strengths (SPOTIFY, whose
  // |I|=3 ratio is 6022, gets the largest).
  // clang-format off
  return {
      // name          n      d      avg    zipf  headfr headexp topic tsz  tail
      {"AOL",          20000, 48000, 3.0,   1.05, 0.02,  0.35,   0.0,  0,   0.0},
      {"BMS-POS",      16000, 1657,  6.5,   0.95, 0.05,  0.30,   0.0,  0,   0.0},
      {"DBLP",         16000, 6900,  10.2,  0.80, 0.05,  0.30,   0.0,  0,   0.0},
      {"ENRON",        12000, 60000, 135.0, 0.75, 0.03,  0.25,   0.02, 110, 1.45},
      {"FLICKR",       18000, 26000, 10.1,  0.90, 0.04,  0.30,   0.01, 16,  2.6},
      {"KOSARAK",      16000, 18000, 11.9,  1.10, 0.02,  0.20,   0.06, 24,  1.75},
      {"LIVEJOURNAL",  14000, 52000, 35.1,  0.85, 0.03,  0.30,   0.02, 40,  1.8},
      {"NETFLIX",      10000, 8900,  209.3, 0.65, 0.08,  0.20,   0.05, 170, 1.45},
      {"ORKUT",        12000, 64000, 119.7, 0.70, 0.04,  0.25,   0.05, 120, 1.4},
      {"SPOTIFY",      14000, 38000, 12.8,  1.20, 0.01,  0.15,   0.12, 56,  1.0},
  };
  // clang-format on
}

Result<MannProfileSpec> FindMannProfile(const std::string& name) {
  for (const MannProfileSpec& spec : AllMannProfiles()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no Mann profile named '" + name + "'");
}

Result<MannInstance> BuildMannInstance(const MannProfileSpec& spec, Rng* rng) {
  // Two Zipf segments: a flatter "head" (very frequent items, e.g. stop
  // words / blockbuster movies) and a steeper tail — the piecewise-Zipfian
  // shape Section 8 reports for all ten datasets.
  size_t head = std::max<size_t>(1, static_cast<size_t>(
                                        spec.head_fraction *
                                        static_cast<double>(spec.d)));
  size_t tail = spec.d > head ? spec.d - head : 1;
  std::vector<ZipfSegment> segments = {
      {head, 0.5, spec.head_exponent},
      {tail, 0.5 / std::pow(static_cast<double>(head), 0.5),
       spec.zipf_exponent},
  };
  auto shaped = PiecewiseZipfProbabilities(segments);
  if (!shaped.ok()) return shaped.status();
  auto scaled = ScaleToAverageSize(*shaped, spec.avg_size);
  if (!scaled.ok()) return scaled.status();

  MannInstance out{spec, std::move(scaled.value()), Dataset()};
  if (spec.topic_strength > 0.0) {
    TopicModelOptions topic_options;
    topic_options.num_topics = 64;
    topic_options.topic_size = spec.topic_size;
    topic_options.activation_prob = spec.topic_strength;
    topic_options.include_prob = 0.6;
    topic_options.heavy_tail_exponent = spec.heavy_tail;
    TopicModelGenerator gen(out.distribution, topic_options, rng);
    out.data = gen.Generate(spec.n, rng);
  } else {
    out.data = GenerateDataset(out.distribution, spec.n, rng);
  }
  return out;
}

}  // namespace skewsearch
