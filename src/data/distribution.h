// Copyright 2026 The skewsearch Authors.
// The paper's data model: a product distribution D[p_1, ..., p_d] over
// {0,1}^d (Section 2, following Kirsch et al.). Pr[x_i = 1] = p_i
// independently; all item-level probabilities are assumed < 1 and the
// theory additionally assumes p_i <= 1/2.

#ifndef SKEWSEARCH_DATA_DISTRIBUTION_H_
#define SKEWSEARCH_DATA_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "data/sparse_vector.h"
#include "util/random.h"
#include "util/result.h"

namespace skewsearch {

/// \brief A known product distribution over sparse boolean vectors.
///
/// Sampling is O(E[|x|] + #blocks) expected, not O(d): consecutive
/// dimensions with similar probabilities are grouped into blocks at
/// construction, and sampling uses geometric skips at the block's maximum
/// probability followed by acceptance thinning (exact, not approximate).
/// This is what makes laptop-scale experiments with d in the millions
/// feasible.
class ProductDistribution {
 public:
  ProductDistribution() = default;

  /// Validates 0 < p_i < 1 for all i and builds the sampling blocks.
  static Result<ProductDistribution> Create(std::vector<double> p);

  /// Universe size d.
  size_t dimension() const { return p_.size(); }

  /// Item-level probability p_i.
  double p(ItemId i) const { return p_[i]; }

  /// All probabilities.
  const std::vector<double>& probabilities() const { return p_; }

  /// Precomputed ln(1/p_i), used by the path stop rule.
  double LogInvP(ItemId i) const { return log_inv_p_[i]; }

  /// Sum of all p_i — the expected vector size, equal to C * ln n in the
  /// paper's parameterization.
  double SumP() const { return sum_p_; }

  /// The paper's constant C for a given dataset size: SumP() / ln n.
  double CForN(size_t n) const;

  /// Largest item probability.
  double MaxP() const { return max_p_; }

  /// True iff all p_i <= 1/2 + eps (the paper's model assumption).
  bool SatisfiesHalfAssumption(double eps = 1e-9) const;

  /// Draws one vector x ~ D.
  SparseVector Sample(Rng* rng) const;

  /// Number of equal-ish-probability blocks used by the sampler
  /// (exposed for tests/diagnostics).
  size_t NumSamplingBlocks() const { return blocks_.size(); }

 private:
  struct Block {
    ItemId begin;
    ItemId end;  // exclusive
    double p_max;
  };

  explicit ProductDistribution(std::vector<double> p);

  std::vector<double> p_;
  std::vector<double> log_inv_p_;
  std::vector<Block> blocks_;
  double sum_p_ = 0.0;
  double max_p_ = 0.0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_DISTRIBUTION_H_
