#include "data/estimate.h"

#include "util/math.h"

namespace skewsearch {

Result<ProductDistribution> EstimateFrequencies(
    const Dataset& data, const EstimateOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot estimate from an empty dataset");
  }
  if (data.dimension() == 0) {
    return Status::InvalidArgument("dataset has zero dimension");
  }
  const double n = static_cast<double>(data.size());
  double min_p = options.min_p > 0.0 ? options.min_p : 1.0 / (2.0 * n);

  std::vector<double> counts(data.dimension(), 0.0);
  for (VectorId id = 0; id < data.size(); ++id) {
    for (ItemId item : data.Get(id)) counts[item] += 1.0;
  }
  std::vector<double> p(data.dimension());
  for (size_t i = 0; i < p.size(); ++i) {
    double estimate =
        (counts[i] + options.smoothing) / (n + 2.0 * options.smoothing);
    p[i] = Clamp(estimate, min_p, options.max_p);
  }
  return ProductDistribution::Create(std::move(p));
}

}  // namespace skewsearch
