#include "data/dataset.h"

#include <algorithm>
#include <string>

namespace skewsearch {

VectorId Dataset::Add(const SparseVector& vec) { return Add(vec.span()); }

VectorId Dataset::Add(std::span<const ItemId> sorted_ids) {
  items_.insert(items_.end(), sorted_ids.begin(), sorted_ids.end());
  offsets_.push_back(items_.size());
  if (!sorted_ids.empty()) {
    dim_ = std::max(dim_, static_cast<size_t>(sorted_ids.back()) + 1);
  }
  return static_cast<VectorId>(offsets_.size() - 2);
}

Status Dataset::SetDimension(size_t d) {
  if (d < dim_) {
    return Status::InvalidArgument(
        "dimension " + std::to_string(d) + " smaller than max item id + 1 (" +
        std::to_string(dim_) + ")");
  }
  dim_ = d;
  return Status::OK();
}

SparseVector Dataset::GetVector(VectorId id) const {
  auto span = Get(id);
  return SparseVector::FromSorted(
      std::vector<ItemId>(span.begin(), span.end()));
}

double Dataset::AverageSize() const {
  if (empty()) return 0.0;
  return static_cast<double>(items_.size()) / static_cast<double>(size());
}

size_t Dataset::MemoryBytes() const {
  return items_.size() * sizeof(ItemId) + offsets_.size() * sizeof(size_t);
}

}  // namespace skewsearch
