// Copyright 2026 The skewsearch Authors.
// Frequency estimation from data (the paper's Section 9 open question:
// "one can estimate each p_i to very high precision by counting the
// occurrences in the dataset itself"). This module is the basis of the
// estimated-vs-known-p ablation in bench/ablation_estimated_p.

#ifndef SKEWSEARCH_DATA_ESTIMATE_H_
#define SKEWSEARCH_DATA_ESTIMATE_H_

#include "data/dataset.h"
#include "data/distribution.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Options for EstimateFrequencies.
struct EstimateOptions {
  /// Additive (Laplace) smoothing so unseen items keep nonzero probability.
  double smoothing = 0.5;
  /// Lower clamp; <= 0 means 1 / (2n) (an item absent from the data).
  double min_p = -1.0;
  /// Upper clamp; the model requires probabilities below 1 and the theory
  /// prefers <= 1/2.
  double max_p = 0.5;
};

/// Estimates D[p_1..p_d] from item occurrence counts:
/// p_i = (count_i + smoothing) / (n + 2 * smoothing), clamped into
/// [min_p, max_p]. The universe size is data.dimension().
Result<ProductDistribution> EstimateFrequencies(
    const Dataset& data, const EstimateOptions& options = {});

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_ESTIMATE_H_
