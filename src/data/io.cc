#include "data/io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "data/sparse_vector.h"

namespace skewsearch {

Status WriteTransactions(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  }
  for (VectorId id = 0; id < data.size(); ++id) {
    auto items = data.Get(id);
    for (size_t k = 0; k < items.size(); ++k) {
      if (k > 0) out << ' ';
      out << items[k];
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

namespace {

constexpr char kBinaryMagic[4] = {'S', 'K', 'S', '1'};

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteBinary(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  uint64_t n = data.size();
  uint64_t dim = data.dimension();
  uint64_t total = data.TotalItems();
  if (!WritePod(out, n) || !WritePod(out, dim) || !WritePod(out, total)) {
    return Status::IOError("header write to '" + path + "' failed");
  }
  uint64_t offset = 0;
  if (!WritePod(out, offset)) return Status::IOError("offset write failed");
  for (VectorId id = 0; id < data.size(); ++id) {
    offset += data.SizeOf(id);
    if (!WritePod(out, offset)) {
      return Status::IOError("offset write to '" + path + "' failed");
    }
  }
  for (VectorId id = 0; id < data.size(); ++id) {
    auto items = data.Get(id);
    out.write(reinterpret_cast<const char*>(items.data()),
              static_cast<std::streamsize>(items.size() * sizeof(ItemId)));
    if (!out) {
      return Status::IOError("item write to '" + path + "' failed");
    }
  }
  out.flush();
  if (!out) return Status::IOError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a skewsearch binary dataset");
  }
  uint64_t n = 0, dim = 0, total = 0;
  if (!ReadPod(in, &n) || !ReadPod(in, &dim) || !ReadPod(in, &total)) {
    return Status::InvalidArgument("truncated header in '" + path + "'");
  }
  std::vector<uint64_t> offsets(n + 1);
  for (auto& offset : offsets) {
    if (!ReadPod(in, &offset)) {
      return Status::InvalidArgument("truncated offsets in '" + path + "'");
    }
  }
  if (offsets.front() != 0 || offsets.back() != total) {
    return Status::InvalidArgument("inconsistent offsets in '" + path + "'");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::InvalidArgument("decreasing offsets in '" + path + "'");
    }
  }
  Dataset data;
  std::vector<ItemId> buffer;
  for (size_t i = 0; i < n; ++i) {
    size_t count = offsets[i + 1] - offsets[i];
    buffer.resize(count);
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(count * sizeof(ItemId)));
    if (!in) {
      return Status::InvalidArgument("truncated items in '" + path + "'");
    }
    for (size_t k = 1; k < buffer.size(); ++k) {
      if (buffer[k - 1] >= buffer[k]) {
        return Status::InvalidArgument(
            "vector " + std::to_string(i) + " in '" + path +
            "' is not strictly sorted");
      }
    }
    data.Add(std::span<const ItemId>(buffer));
  }
  if (dim > 0) {
    SKEWSEARCH_RETURN_NOT_OK(data.SetDimension(dim));
  }
  return data;
}

Result<Dataset> ReadTransactions(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  Dataset data;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::vector<ItemId> ids;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      errno = 0;
      char* end = nullptr;
      unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
          value > 0xffffffffULL) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + " of '" + path +
            "': bad item token '" + token + "'");
      }
      ids.push_back(static_cast<ItemId>(value));
    }
    data.Add(SparseVector::FromIds(std::move(ids)));
  }
  return data;
}

}  // namespace skewsearch
