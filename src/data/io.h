// Copyright 2026 The skewsearch Authors.
// Dataset (de)serialization in the "transaction" text format used by the
// set-similarity-join benchmark ecosystem: one set per line, items as
// whitespace-separated non-negative integers.

#ifndef SKEWSEARCH_DATA_IO_H_
#define SKEWSEARCH_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace skewsearch {

/// Writes \p data to \p path, one line per set.
Status WriteTransactions(const Dataset& data, const std::string& path);

/// Reads a transaction file. Items on each line are sorted and deduplicated;
/// empty lines become empty sets. Fails with IOError / InvalidArgument on
/// unreadable files or non-numeric tokens.
Result<Dataset> ReadTransactions(const std::string& path);

/// Writes \p data in the skewsearch binary format (magic "SKS1",
/// little-endian u64 header fields, u64 offsets, u32 items). Roughly 5x
/// faster and 2-3x smaller than the text format for typical datasets.
Status WriteBinary(const Dataset& data, const std::string& path);

/// Reads a binary dataset written by WriteBinary. Validates the magic,
/// header consistency, and that item arrays are sorted; fails with
/// IOError / InvalidArgument on malformed files.
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_IO_H_
