// Copyright 2026 The skewsearch Authors.
// Dataset: the collection S of n sparse vectors, stored CSR-style.

#ifndef SKEWSEARCH_DATA_DATASET_H_
#define SKEWSEARCH_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/sparse_vector.h"
#include "util/status.h"

namespace skewsearch {

/// Index of a vector within a Dataset.
using VectorId = uint32_t;

/// \brief An immutable-after-build collection of sparse vectors.
///
/// Storage is a single concatenated item array plus offsets (CSR), which
/// keeps the n * E[|x|] ids cache-friendly during index construction and
/// brute-force verification.
class Dataset {
 public:
  Dataset() = default;

  /// Appends one vector; returns its id.
  VectorId Add(const SparseVector& vec);

  /// Appends a vector given as a sorted id span (avoids a copy).
  VectorId Add(std::span<const ItemId> sorted_ids);

  /// Number of vectors n.
  size_t size() const { return offsets_.size() - 1; }

  /// True iff the dataset holds no vectors.
  bool empty() const { return size() == 0; }

  /// Universe size d = 1 + max item id seen (0 for an empty dataset), unless
  /// overridden by SetDimension.
  size_t dimension() const { return dim_; }

  /// Declares the universe size explicitly (must be > max item id seen).
  Status SetDimension(size_t d);

  /// Sorted items of vector \p id (undefined for out-of-range ids).
  std::span<const ItemId> Get(VectorId id) const {
    return {items_.data() + offsets_[id],
            offsets_[id + 1] - offsets_[id]};
  }

  /// Copies vector \p id into a SparseVector.
  SparseVector GetVector(VectorId id) const;

  /// Size |x| of vector \p id.
  size_t SizeOf(VectorId id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// Total number of stored ids (sum of |x| over the dataset).
  size_t TotalItems() const { return items_.size(); }

  /// Mean vector size (0 for an empty dataset).
  double AverageSize() const;

  /// Bytes of payload storage (items + offsets).
  size_t MemoryBytes() const;

 private:
  std::vector<ItemId> items_;
  std::vector<size_t> offsets_ = {0};
  size_t dim_ = 0;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_DATASET_H_
