// Copyright 2026 The skewsearch Authors.
// Synthetic stand-ins for the ten real datasets of the set-similarity
// benchmark of Mann, Augsten & Bouros (PVLDB 2016), which the paper uses in
// Section 8 (Figure 2: frequency skew; Table 1: independence ratios).
//
// SUBSTITUTION (documented in DESIGN.md §5): the original datasets are not
// redistributable here, so each profile below is a *shape-matched,
// scaled-down* synthetic model: a piecewise-Zipfian item-frequency curve
// (Section 8's empirical finding is precisely that the real curves are
// close to piecewise Zipfian) with n, d and average set size scaled to
// laptop size while preserving density and skew, plus — for the datasets
// where the paper measured strong positive dependence (KOSARAK, NETFLIX,
// ORKUT, SPOTIFY in Table 1) — a topic-model component that plants
// co-occurrence of matching strength.

#ifndef SKEWSEARCH_DATA_MANN_PROFILES_H_
#define SKEWSEARCH_DATA_MANN_PROFILES_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/distribution.h"
#include "data/generators.h"
#include "util/random.h"
#include "util/result.h"

namespace skewsearch {

/// \brief Parameters of one synthetic stand-in profile.
struct MannProfileSpec {
  std::string name;        ///< original dataset name (e.g. "KOSARAK")
  size_t n;                ///< number of sets (scaled down)
  size_t d;                ///< universe size (scaled down)
  double avg_size;         ///< target average set size (matches original)
  double zipf_exponent;    ///< dominant Zipf decay of the frequency curve
  double head_fraction;    ///< fraction of dimensions in the flatter head
  double head_exponent;    ///< Zipf decay within the head segment
  double topic_strength;   ///< 0 = independent; >0 plants dependence
  size_t topic_size;       ///< items per planted topic (if any)
  double heavy_tail;       ///< >0: heavy-tailed topic activation exponent
                           ///< (smaller = heavier tail; see
                           ///< TopicModelOptions::heavy_tail_exponent)
};

/// All ten profiles in the paper's Table 1 order.
std::vector<MannProfileSpec> AllMannProfiles();

/// Looks up a profile by (case-sensitive) name.
Result<MannProfileSpec> FindMannProfile(const std::string& name);

/// \brief A realized stand-in: the frequency model plus a sampled dataset.
struct MannInstance {
  MannProfileSpec spec;
  ProductDistribution distribution;  ///< the piecewise-Zipfian marginals
  Dataset data;                      ///< sampled (independent or topic) data
};

/// Builds the distribution and samples the dataset for \p spec.
/// When spec.topic_strength > 0 the dataset is sampled from the topic model
/// (so its bits are positively dependent); the returned `distribution`
/// still describes the background marginals used for generation.
Result<MannInstance> BuildMannInstance(const MannProfileSpec& spec, Rng* rng);

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_MANN_PROFILES_H_
