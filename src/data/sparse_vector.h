// Copyright 2026 The skewsearch Authors.
// Sparse 0/1 vectors, the element type of the paper's model.
//
// A vector x in {0,1}^d is stored as the strictly increasing list of its
// set-bit indices ("items"). All similarity measures and the path recursion
// operate on this representation.

#ifndef SKEWSEARCH_DATA_SPARSE_VECTOR_H_
#define SKEWSEARCH_DATA_SPARSE_VECTOR_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace skewsearch {

/// Index of a dimension / item of the universe [d].
using ItemId = uint32_t;

/// \brief A sparse boolean vector: the sorted set of its 1-bits.
///
/// Invariant: ids are strictly increasing (no duplicates). Construct via
/// FromIds (sorts and dedupes) or FromSorted (trusts the caller, checked
/// with assertions in debug builds).
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from arbitrary ids: sorts and removes duplicates.
  static SparseVector FromIds(std::vector<ItemId> ids);

  /// Builds from ids that are already strictly increasing.
  static SparseVector FromSorted(std::vector<ItemId> ids);

  /// Convenience literal constructor (sorts and dedupes).
  static SparseVector Of(std::initializer_list<ItemId> ids);

  /// Number of set bits (|x|, the Hamming weight).
  size_t size() const { return ids_.size(); }

  /// True iff no bit is set.
  bool empty() const { return ids_.empty(); }

  /// Sorted set-bit indices.
  const std::vector<ItemId>& ids() const { return ids_; }

  /// Read-only view of the ids.
  std::span<const ItemId> span() const { return {ids_.data(), ids_.size()}; }

  /// Membership test by binary search (O(log |x|)).
  bool Contains(ItemId id) const;

  /// The i-th smallest set bit.
  ItemId operator[](size_t i) const { return ids_[i]; }

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.ids_ == b.ids_;
  }

 private:
  explicit SparseVector(std::vector<ItemId> sorted_ids)
      : ids_(std::move(sorted_ids)) {}

  std::vector<ItemId> ids_;
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_SPARSE_VECTOR_H_
