// Copyright 2026 The skewsearch Authors.
// Frequency-ordered item relabeling.
//
// Real-world token ids are arbitrary, which hurts two things this library
// cares about: (a) the product-distribution sampler's block detection
// (similar probabilities scattered across the id space fragment into many
// blocks), and (b) prefix-filter locality. Relabeling items so that id 0
// is the most frequent makes probabilities monotone along the id axis,
// collapsing the sampler's blocks to O(log d) and matching the layout the
// paper's two-block/Zipf analyses assume. All similarity measures are
// invariant under the relabeling (it is a bijection on items).

#ifndef SKEWSEARCH_DATA_REMAP_H_
#define SKEWSEARCH_DATA_REMAP_H_

#include <vector>

#include "data/dataset.h"
#include "data/distribution.h"
#include "data/sparse_vector.h"
#include "util/result.h"

namespace skewsearch {

/// \brief A bijective item relabeling (old id <-> new id).
class ItemRemap {
 public:
  /// Identity remap over a universe of size d.
  static ItemRemap Identity(size_t d);

  /// Orders items by descending occurrence count in \p data
  /// (ties by old id).
  static ItemRemap ByFrequency(const Dataset& data);

  /// Orders items by descending probability in \p dist (ties by old id).
  static ItemRemap ByProbability(const ProductDistribution& dist);

  /// New id of an old item.
  ItemId Forward(ItemId old_id) const { return forward_[old_id]; }

  /// Old id of a new item.
  ItemId Backward(ItemId new_id) const { return backward_[new_id]; }

  /// Universe size.
  size_t dimension() const { return forward_.size(); }

  /// Relabels one vector (result re-sorted).
  SparseVector Apply(const SparseVector& vec) const;

  /// Relabels a whole dataset (dimension preserved).
  Dataset Apply(const Dataset& data) const;

  /// Permutes a distribution's probabilities into the new id order.
  Result<ProductDistribution> Apply(const ProductDistribution& dist) const;

 private:
  explicit ItemRemap(std::vector<ItemId> forward);

  std::vector<ItemId> forward_;   // old -> new
  std::vector<ItemId> backward_;  // new -> old
};

}  // namespace skewsearch

#endif  // SKEWSEARCH_DATA_REMAP_H_
