#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "data/correlated.h"
#include "util/math.h"

namespace skewsearch {

Result<ProductDistribution> UniformProbabilities(size_t d, double p) {
  return ProductDistribution::Create(std::vector<double>(d, p));
}

Result<ProductDistribution> TwoBlockProbabilities(size_t d_frequent,
                                                  double p_frequent,
                                                  size_t d_rare,
                                                  double p_rare) {
  std::vector<double> p;
  p.reserve(d_frequent + d_rare);
  p.insert(p.end(), d_frequent, p_frequent);
  p.insert(p.end(), d_rare, p_rare);
  return ProductDistribution::Create(std::move(p));
}

Result<ProductDistribution> HarmonicProbabilities(size_t d, double cap) {
  std::vector<double> p(d);
  for (size_t k = 0; k < d; ++k) {
    p[k] = std::min(cap, 1.0 / static_cast<double>(k + 1));
  }
  return ProductDistribution::Create(std::move(p));
}

Result<ProductDistribution> ZipfProbabilities(size_t d, double exponent,
                                              double p_head, double cap) {
  std::vector<double> p(d);
  for (size_t j = 0; j < d; ++j) {
    p[j] = std::min(cap, p_head / std::pow(static_cast<double>(j + 1),
                                           exponent));
  }
  return ProductDistribution::Create(std::move(p));
}

Result<ProductDistribution> PiecewiseZipfProbabilities(
    const std::vector<ZipfSegment>& segments, double cap) {
  std::vector<double> p;
  for (const ZipfSegment& seg : segments) {
    for (size_t j = 0; j < seg.count; ++j) {
      p.push_back(std::min(
          cap, seg.p_head / std::pow(static_cast<double>(j + 1),
                                     seg.exponent)));
    }
  }
  return ProductDistribution::Create(std::move(p));
}

Result<ProductDistribution> ScaleToAverageSize(const ProductDistribution& dist,
                                               double target_avg_size,
                                               double cap) {
  if (target_avg_size <= 0.0) {
    return Status::InvalidArgument("target average size must be positive");
  }
  std::vector<double> p = dist.probabilities();
  // The cap makes the map scale -> E|x| piecewise linear; a few fixpoint
  // rounds converge far closer than sampling noise.
  double scale = 1.0;
  for (int round = 0; round < 64; ++round) {
    double sum = 0.0;
    for (double v : p) sum += std::min(cap, v * scale);
    if (std::abs(sum - target_avg_size) < 1e-9 * target_avg_size) break;
    if (sum <= 0.0) break;
    scale *= target_avg_size / sum;
  }
  for (double& v : p) {
    v = Clamp(v * scale, 1e-12, cap);
  }
  return ProductDistribution::Create(std::move(p));
}

Dataset GenerateDataset(const ProductDistribution& dist, size_t n, Rng* rng) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    data.Add(dist.Sample(rng));
  }
  Status s = data.SetDimension(dist.dimension());
  (void)s;  // dimension() of samples never exceeds dist.dimension()
  return data;
}

PlantedPairInstance GeneratePlantedPair(const ProductDistribution& dist,
                                        size_t n, double alpha, Rng* rng) {
  PlantedPairInstance out;
  std::vector<SparseVector> vectors;
  vectors.reserve(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    vectors.push_back(dist.Sample(rng));
  }
  CorrelatedQuerySampler sampler(&dist, alpha);
  size_t base = rng->NextBounded(vectors.size());
  vectors.push_back(sampler.SampleCorrelated(vectors[base].span(), rng));

  // Shuffle positions while remembering where the pair lands.
  std::vector<size_t> perm(vectors.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng->Shuffle(&perm);
  std::vector<size_t> where(perm.size());
  for (size_t slot = 0; slot < perm.size(); ++slot) where[perm[slot]] = slot;

  std::vector<const SparseVector*> ordered(vectors.size());
  for (size_t slot = 0; slot < perm.size(); ++slot) {
    ordered[slot] = &vectors[perm[slot]];
  }
  for (const SparseVector* v : ordered) out.data.Add(*v);
  Status s = out.data.SetDimension(dist.dimension());
  (void)s;
  out.first = static_cast<VectorId>(where[base]);
  out.second = static_cast<VectorId>(where[vectors.size() - 1]);
  return out;
}

TopicModelGenerator::TopicModelGenerator(const ProductDistribution& background,
                                         TopicModelOptions options, Rng* rng)
    : background_(&background), options_(options) {
  topics_.resize(options_.num_topics);
  const uint64_t d = background.dimension();
  for (auto& topic : topics_) {
    // Sample topic_size distinct items uniformly from the universe.
    std::vector<ItemId> items;
    while (items.size() < options_.topic_size &&
           items.size() < static_cast<size_t>(d)) {
      ItemId candidate = static_cast<ItemId>(rng->NextBounded(d));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    std::sort(items.begin(), items.end());
    topic = std::move(items);
  }
}

SparseVector TopicModelGenerator::Sample(Rng* rng) const {
  SparseVector base = background_->Sample(rng);
  std::vector<ItemId> ids(base.ids());
  auto include_topic = [&](const std::vector<ItemId>& topic) {
    for (ItemId item : topic) {
      if (rng->NextBernoulli(options_.include_prob)) ids.push_back(item);
    }
  };
  if (options_.heavy_tail_exponent > 0.0 && !topics_.empty()) {
    // Pareto-like count: Pr[active >= k] = (k+1)^{-exponent}.
    double u = rng->NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    double raw =
        std::floor(std::pow(u, -1.0 / options_.heavy_tail_exponent));
    size_t active = static_cast<size_t>(
        std::min<double>(raw - 1.0, static_cast<double>(topics_.size())));
    // Distinct random topics; for small `active` the retry loop is cheap.
    std::vector<size_t> chosen;
    while (chosen.size() < active) {
      size_t t = static_cast<size_t>(rng->NextBounded(topics_.size()));
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
        include_topic(topics_[t]);
      }
    }
  } else {
    for (const auto& topic : topics_) {
      if (!rng->NextBernoulli(options_.activation_prob)) continue;
      include_topic(topic);
    }
  }
  return SparseVector::FromIds(std::move(ids));
}

Dataset TopicModelGenerator::Generate(size_t n, Rng* rng) const {
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(Sample(rng));
  Status s = data.SetDimension(background_->dimension());
  (void)s;
  return data;
}

}  // namespace skewsearch
