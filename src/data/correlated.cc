#include "data/correlated.h"

#include "hashing/mix.h"
#include "util/math.h"

namespace skewsearch {

namespace {

// Copy-coin for dimension `item` under query nonce `nonce`: true means
// "q_i copies x_i", false means "q_i is resampled from Bernoulli(p_i)".
inline bool CopyCoin(uint64_t nonce, ItemId item, double alpha) {
  return ToUnitInterval(Mix64(nonce ^ Mix64(0xc0ffee123457ULL + item))) <
         alpha;
}

}  // namespace

CorrelatedQuerySampler::CorrelatedQuerySampler(const ProductDistribution* dist,
                                               double alpha)
    : dist_(dist), alpha_(Clamp(alpha, 0.0, 1.0)) {}

SparseVector CorrelatedQuerySampler::SampleCorrelated(
    std::span<const ItemId> x, Rng* rng) const {
  const uint64_t nonce = rng->NextUint64();
  std::vector<ItemId> ids;
  ids.reserve(x.size() + 8);
  // Dimensions where the coin says "copy" take x's bit; only set bits of x
  // can contribute.
  for (ItemId item : x) {
    if (CopyCoin(nonce, item, alpha_)) ids.push_back(item);
  }
  // Dimensions where the coin says "resample" take a fresh Bernoulli(p_i);
  // only set bits of an independent sample y ~ D can contribute. The two
  // branches are disjoint by construction (a coin is either copy or
  // resample), so no dimension is added twice.
  SparseVector fresh = dist_->Sample(rng);
  for (ItemId item : fresh.ids()) {
    if (!CopyCoin(nonce, item, alpha_)) ids.push_back(item);
  }
  return SparseVector::FromIds(std::move(ids));
}

}  // namespace skewsearch
