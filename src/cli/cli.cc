#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <thread>

#include <memory>

#include "core/cost_model.h"
#include "core/dynamic_index.h"
#include "core/frozen_shard.h"
#include "core/index_io.h"
#include "core/sharded_index.h"
#include "core/similarity_join.h"
#include "core/skewed_index.h"
#include "distributed/server.h"
#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "maintenance/service.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/mann_profiles.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/independence.h"
#include "stats/skew_profile.h"
#include "util/logging.h"
#include "util/random.h"

namespace skewsearch {

namespace {

constexpr char kUsage[] = R"(skewsearch_cli — set similarity search for skewed data

Usage: skewsearch_cli <command> [--flag value]...

Commands:
  generate --kind uniform|twoblock|zipf|harmonic --n N --d N --out FILE
           [--p X] [--p2 X] [--d2 N] [--exp X] [--avg X] [--seed S] [--binary]
  mann     --name NAME --out FILE [--n N] [--seed S] [--binary]
  profile  --in FILE [--binary]
  independence --in FILE [--binary]
  query-bench --in FILE --alpha A [--queries N] [--seed S] [--shards K]
           [--mmap] [--freeze FILE] [--online] [--maintenance 0|1]
           [--drift-factor F] [--dead-ratio R] [--churn N] [--trace]
           [--wal DIR] [--sync-policy none|interval|group|always]
           [--checkpoint-bytes N] [--dump-matches FILE] [--probes N]
           [--binary]
  freeze   --in FILE --out FILE [--b1 X | --alpha A] [--seed S]
           [--shards K] [--binary]
  selfjoin --in FILE --b1 X [--seed S] [--shards K] [--online]
           [--maintenance 0|1] [--drift-factor F] [--dead-ratio R]
           [--churn N] [--workers W] [--heavy-threshold T]
           [--frozen FILE] [--connect HOST:PORT,...] [--probe-batch N]
           [--pipeline N] [--dump-pairs FILE] [--wal DIR]
           [--sync-policy none|interval|group|always]
           [--checkpoint-bytes N] [--binary]
  join     --left FILE --right FILE --b1 X [--seed S] [--workers W]
           [--heavy-threshold T] [--frozen FILE]
           [--connect HOST:PORT,...] [--probe-batch N] [--pipeline N]
           [--dump-pairs FILE] [--binary]
  join-worker [--listen PORT] [--max-sessions N] [--idle-timeout MS]
           [--shard-file FILE --data FILE] [--die-after-batches N]
           [--metrics-dump FILE] [--summary-interval SEC] [--binary]
  join-stats --connect HOST:PORT [--json]
  help

--shards K > 1 builds the hash-sharded index instead of the monolithic
one; results are identical, memory and parallelism differ.

--workers W > 1 (selfjoin) runs the distributed all-pairs backend: the
filter-key space is partitioned across W in-process workers with
skew-aware heavy-key splitting (--heavy-threshold T overrides the
split point, default auto), and the coordinator merges the per-worker
pair streams. The pair output is identical to the single-process join.
Incompatible with --online.

join runs the R-S join: --right is indexed, every --left vector
probes it, and pairs are (left id, right id, similarity). It shares
every distributed/remote flag with selfjoin; the estimated item
universe is widened to cover both files.

--connect HOST:PORT,... (selfjoin, join) serves the distributed
backend from remote join-worker processes instead of in-process
workers: one endpoint per worker (--workers, if given, must match the
endpoint count). The coordinator ships each worker its posting-slice
assignment over the TCP transport, streams probe batches of
--probe-batch N requests per frame (default 256, 0 = one frame per
worker) with up to --pipeline N frames in flight per worker (default
2, 1 = send-then-wait), and merges — the pair output is still
identical. If a worker dies mid-join the coordinator re-ships its
slices to a survivor, replays the unacknowledged batches, and reports
the recovery. See docs/WIRE_PROTOCOL.md for the wire format and the
README for a walkthrough.

join-worker hosts workers of distributed joins: it listens on
--listen PORT (default 0 = any free port, printed on stdout) and
serves every coordinator session that connects, each on its own
thread, until SIGTERM/SIGINT asks it to drain (live sessions finish,
then it exits 0). --max-sessions N caps the concurrent sessions
(default unlimited); --idle-timeout MS exits once no coordinator has
connected for that long and nothing is being served (default: wait
forever); --die-after-batches N makes the process vanish mid-stream
after answering N probe batches in a session — the fault-injection
hook the kill-recovery smoke test uses. Session completions are logged
one line each; --summary-interval SEC additionally logs a one-line
served-work summary every SEC seconds, and --metrics-dump FILE writes
the full metrics registry as JSON to FILE on exit and again whenever
the process receives SIGUSR1.

join-stats scrapes a live join-worker's metrics registry over the wire
(a protocol-v2 scrape-only session: Hello, StatsRequest, Shutdown) and
prints every counter, gauge, and latency histogram as text — or as
JSON with --json. It works mid-join: batch and byte counters advance
while probe streams are being served. docs/OBSERVABILITY.md has the
metric catalog.

freeze builds the index over --in and persists it as an SKF1
frozen-shard file (docs/FILE_FORMATS.md): page-aligned, checksummed,
and served zero-copy by mmap. --b1 X builds the adversarial-mode
index the joins use (selfjoin's defaults); --alpha A (default) the
correlated-mode one; --shards K > 1 partitions the id space into K
shards inside the one file.

--frozen FILE (selfjoin, join) serves the build side from a frozen
file instead of rebuilding it: the coordinator maps FILE zero-copy
and runs the distributed backend with one worker per stored shard
(the file's parameters override --b1/--seed; FILE must have been
frozen from the --in/--right dataset). With --connect, the remote
join-worker processes must have pre-mapped the byte-identical file
via --shard-file — the coordinator then ships only a tiny shard
assignment per worker instead of O(index) posting slices. The pair
output is byte-identical to every other backend.

join-worker --shard-file FILE --data FILE pre-maps a frozen file (and
loads the dataset it was frozen from) so protocol-v3 coordinators can
open frozen-shard sessions against it; classic ship-everything
sessions still work on the same worker.

query-bench --mmap freezes the built index to --freeze FILE (default:
the input path + ".skf"), re-opens it zero-copy through mmap, and
serves the bench from the mapped index — same recall and candidate
counts, O(1) start time. bench_mmap_load measures the gap.

query-bench --trace runs one extra query after the bench inside a
trace and prints the per-phase span timings (filters, verify, total)
the observability layer recorded for that query.

--dump-pairs FILE (selfjoin) writes every emitted pair as one
"left right similarity" line — what the multi-process smoke test
diffs across backends.

--online (implied by any --maintenance/--drift-factor/--dead-ratio/
--churn flag) serves from the online DynamicIndex with the maintenance
subsystem attached: --maintenance 1 (default) runs the background
thread, --dead-ratio sets the compaction trigger, --drift-factor the
live-rebuild trigger, and --churn N applies N remove+insert pairs before
querying so compaction and drift actually fire. For selfjoin the churn
is net no-op (insert a copy, tombstone it) so the pair output is
unchanged while the service still gets real compaction work.

--wal DIR (query-bench, selfjoin; implies --online) makes the online
index durable: DIR/snapshot.skd + DIR/wal.skw are recovered on open
(a "recovery:" line reports what replayed) and every acknowledged
Insert/Remove is journaled per --sync-policy (default group: shared
fsync before ack; always: dedicated fsync per ack; interval: lazy;
none: never) before the call returns. --checkpoint-bytes N (default
8M) lets the maintenance thread fold the log into a fresh snapshot
once it outgrows N. query-bench --dump-matches FILE writes the
QueryAll answers of --probes N (default 64) seeded probe vectors in
round-tripping precision — the crash smoke test diffs these dumps
across killed and clean runs. See docs/FILE_FORMATS.md (SKW1) and
docs/ARCHITECTURE.md for the recovery contract.
)";

/// Parsed "--key value" flags.
class Flags {
 public:
  static std::optional<Flags> Parse(const std::vector<std::string>& args,
                                    size_t start) {
    Flags flags;
    for (size_t i = start; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        return std::nullopt;
      }
      std::string key = arg.substr(2);
      if (key == "binary" || key == "online" || key == "json" ||
          key == "trace" || key == "mmap") {  // boolean flags
        static const std::string kTrue = "1";
        flags.values_.insert_or_assign(key, kTrue);
        continue;
      }
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        return std::nullopt;
      }
      flags.values_[key] = args[++i];
    }
    return flags;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  // Numeric getters fall back (with a warning) on malformed values rather
  // than throwing out of main.
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "warning: --%s '%s' is not a number; using %g\n",
                   key.c_str(), it->second.c_str(), fallback);
      return fallback;
    }
    return value;
  }
  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr,
                   "warning: --%s '%s' is not an integer; using %llu\n",
                   key.c_str(), it->second.c_str(),
                   static_cast<unsigned long long>(fallback));
      return fallback;
    }
    return static_cast<uint64_t>(value);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Dataset> LoadDataset(const Flags& flags) {
  std::string path = flags.Get("in", "");
  if (path.empty()) {
    return Status::InvalidArgument("--in FILE is required");
  }
  return flags.Has("binary") ? ReadBinary(path) : ReadTransactions(path);
}

Status SaveDataset(const Dataset& data, const Flags& flags) {
  std::string path = flags.Get("out", "");
  if (path.empty()) {
    return Status::InvalidArgument("--out FILE is required");
  }
  return flags.Has("binary") ? WriteBinary(data, path)
                             : WriteTransactions(data, path);
}

int CmdGenerate(const Flags& flags) {
  std::string kind = flags.Get("kind", "zipf");
  size_t n = flags.GetUint("n", 10000);
  size_t d = flags.GetUint("d", 10000);
  Result<ProductDistribution> dist = Status::InvalidArgument("unset");
  if (kind == "uniform") {
    dist = UniformProbabilities(d, flags.GetDouble("p", 0.1));
  } else if (kind == "twoblock") {
    size_t d2 = flags.GetUint("d2", d);
    dist = TwoBlockProbabilities(d, flags.GetDouble("p", 0.25), d2,
                                 flags.GetDouble("p2", 0.01));
  } else if (kind == "zipf") {
    dist = ZipfProbabilities(d, flags.GetDouble("exp", 1.0),
                             flags.GetDouble("p", 0.5));
  } else if (kind == "harmonic") {
    dist = HarmonicProbabilities(d);
  } else {
    std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
    return 1;
  }
  if (!dist.ok()) return Fail(dist.status());
  if (flags.Has("avg")) {
    dist = ScaleToAverageSize(*dist, flags.GetDouble("avg", 10.0));
    if (!dist.ok()) return Fail(dist.status());
  }
  Rng rng(flags.GetUint("seed", 1));
  Dataset data = GenerateDataset(*dist, n, &rng);
  Status s = SaveDataset(data, flags);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu vectors (d=%zu, avg |x| = %.2f) to %s\n",
              data.size(), data.dimension(), data.AverageSize(),
              flags.Get("out", "").c_str());
  return 0;
}

int CmdMann(const Flags& flags) {
  auto spec = FindMannProfile(flags.Get("name", ""));
  if (!spec.ok()) return Fail(spec.status());
  MannProfileSpec profile = *spec;
  if (flags.Has("n")) profile.n = flags.GetUint("n", profile.n);
  Rng rng(flags.GetUint("seed", 1));
  auto inst = BuildMannInstance(profile, &rng);
  if (!inst.ok()) return Fail(inst.status());
  Status s = SaveDataset(inst->data, flags);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s stand-in: %zu vectors, d=%zu, avg |x| = %.2f\n",
              profile.name.c_str(), inst->data.size(),
              inst->data.dimension(), inst->data.AverageSize());
  return 0;
}

int CmdProfile(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  SkewProfile profile = ComputeSkewProfile(*data);
  std::printf("n = %zu, d = %zu, avg |x| = %.2f, distinct items = %zu\n",
              data->size(), data->dimension(), data->AverageSize(),
              profile.frequencies.size());
  std::printf("fitted Zipf exponent = %.3f\n", FitZipfExponent(profile));
  std::printf("log-rank skew profile (x = log_d j, y = 1 + log_n p_j):\n");
  for (const ProfilePoint& pt : LogAxisSeries(profile, 12)) {
    std::printf("  %.3f  %.3f\n", pt.x, pt.y);
  }
  return 0;
}

int CmdIndependence(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  for (size_t k : {1u, 2u, 3u}) {
    auto est = ExactIndependenceRatio(*data, k);
    if (!est.ok()) return Fail(est.status());
    std::printf("|I| = %zu: ratio = %.3f (observed %.3e, independent "
                "prediction %.3e)\n",
                k, est->ratio, est->expected_observed,
                est->expected_product);
  }
  return 0;
}

bool WantsOnline(const Flags& flags) {
  return flags.Has("online") || flags.Has("maintenance") ||
         flags.Has("drift-factor") || flags.Has("dead-ratio") ||
         flags.Has("churn") || flags.Has("wal");
}

/// --wal DIR / --sync-policy P / --checkpoint-bytes N (query-bench,
/// selfjoin). Fails on an unknown policy name.
Result<DurableOptions> DurableFromFlags(const Flags& flags) {
  DurableOptions options;
  options.dir = flags.Get("wal", "");
  Result<SyncPolicy> policy =
      ParseSyncPolicy(flags.Get("sync-policy", "group"));
  SKEWSEARCH_RETURN_NOT_OK(policy.status());
  options.sync_policy = *policy;
  options.checkpoint_bytes = flags.GetUint("checkpoint-bytes", 8ull << 20);
  return options;
}

void PrintRecoveryLine(const RecoveryStats& stats) {
  std::string torn;
  if (stats.truncated) {
    torn = ", torn tail truncated (" +
           std::to_string(stats.truncated_bytes) + " bytes)";
  }
  std::printf("recovery: snapshot %s, %zu replayed, %zu skipped%s, next "
              "seq %llu\n",
              stats.snapshot_loaded ? "loaded" : "absent", stats.replayed,
              stats.skipped, torn.c_str(),
              static_cast<unsigned long long>(stats.next_seq));
}

void PrintWalLine(const WalWriter& wal, size_t checkpoints) {
  std::printf("wal: %llu append(s), %llu fsync(s), %llu bytes, %zu "
              "checkpoint(s), policy %.*s\n",
              static_cast<unsigned long long>(wal.num_appends()),
              static_cast<unsigned long long>(wal.num_fsyncs()),
              static_cast<unsigned long long>(wal.bytes()), checkpoints,
              static_cast<int>(SyncPolicyName(wal.options().sync_policy)
                                   .size()),
              SyncPolicyName(wal.options().sync_policy).data());
}

/// --dump-matches FILE: QueryAll answers for a probe set derived only
/// from the dataset's distribution and --seed (never from index
/// layout), written with round-tripping precision — two dumps are
/// equal iff the answer sets are identical. The crash-recovery smoke
/// test diffs these across killed vs clean runs.
int DumpMatches(const Flags& flags, const DynamicIndex& index,
                const ProductDistribution& dist) {
  const std::string path = flags.Get("dump-matches", "");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  constexpr double kDumpThreshold = 0.25;
  Rng rng(flags.GetUint("seed", 1) ^ 0x9e3779b97f4a7c15ull);
  const size_t probes = flags.GetUint("probes", 64);
  size_t matches = 0;
  for (size_t p = 0; p < probes; ++p) {
    SparseVector q = dist.Sample(&rng);
    if (q.span().empty()) continue;
    for (const Match& m : index.QueryAll(q.span(), kDumpThreshold)) {
      std::fprintf(out, "q%zu %u %.17g\n", p, m.id, m.similarity);
      ++matches;
    }
  }
  std::fclose(out);
  std::printf("wrote %zu match(es) over %zu probe(s) to %s\n", matches,
              probes, path.c_str());
  return 0;
}

MaintenanceOptions MaintenanceFromFlags(const Flags& flags) {
  MaintenanceOptions options;
  options.dead_ratio = flags.GetDouble("dead-ratio", -1.0);
  options.drift_factor = flags.GetDouble("drift-factor", 2.0);
  options.poll_interval_ms = 5;
  options.min_rebuild_n = 2;
  return options;
}

/// --trace: runs one extra query inside a ScopedTrace and prints the
/// spans the observability layer recorded for it, innermost first.
template <typename QueryFn>
void PrintQueryTrace(QueryFn&& run_query) {
  obs::ScopedTrace trace;
  run_query();
  std::printf("trace of one query (%zu span(s)):\n", trace.entries().size());
  for (const obs::TraceEntry& entry : trace.entries()) {
    std::printf("  %-24.*s %12.1f us\n",
                static_cast<int>(entry.name.size()), entry.name.data(),
                static_cast<double>(entry.nanos) / 1e3);
  }
}

/// The online serving path: DynamicIndex + MaintenanceService, churned
/// so compaction (and, with a low --drift-factor, a live rebuild)
/// actually runs, then benched like the static path.
int CmdQueryBenchOnline(const Flags& flags, const Dataset& data,
                        const ProductDistribution& dist, double alpha) {
  DynamicIndexOptions options;
  options.index.mode = IndexMode::kCorrelated;
  options.index.alpha = alpha;
  options.index.seed = flags.GetUint("seed", 1);
  options.num_shards =
      std::max(1, static_cast<int>(flags.GetUint("shards", 1)));
  // --wal DIR: recover (or initialize) a durable directory and serve
  // the journaled index from it; otherwise a plain in-memory build.
  const bool durable_mode = flags.Has("wal");
  DurableIndex durable;
  DynamicIndex local;
  if (durable_mode) {
    Result<DurableOptions> dopts = DurableFromFlags(flags);
    if (!dopts.ok()) return Fail(dopts.status());
    RecoveryStats rstats;
    Status opened = durable.Open(&data, &dist, options, *dopts, &rstats);
    if (!opened.ok()) return Fail(opened);
    PrintRecoveryLine(rstats);
  } else {
    Status built = local.Build(&data, &dist, options);
    if (!built.ok()) return Fail(built);
  }
  DynamicIndex& index = durable_mode ? durable.index() : local;
  MaintenanceService service;
  Status attached = service.Attach(&index, MaintenanceFromFlags(flags));
  if (!attached.ok()) return Fail(attached);
  if (durable_mode) service.SetCheckpointDriver(&durable);
  // Final dump + durable teardown shared by every exit path.
  auto finish = [&]() -> int {
    int rc = 0;
    if (flags.Has("dump-matches")) rc = DumpMatches(flags, index, dist);
    if (durable_mode) {
      PrintWalLine(*durable.wal(), durable.num_checkpoints());
      Status closed = durable.Close();
      if (!closed.ok()) return Fail(closed);
    }
    return rc;
  };
  const bool thread = flags.GetUint("maintenance", 1) != 0;
  if (thread) {
    Status started = service.Start();
    if (!started.ok()) return Fail(started);
  }
  std::printf("online index: %d shard(s), %d repetitions, maintenance "
              "thread %s\n",
              index.num_shards(), index.repetitions(),
              thread ? "on" : "off");

  // Churn: tombstone random base vectors and insert fresh samples so the
  // delta/tombstone machinery (and the service) has real work. With the
  // thread off, drive the service inline every so often — unmaintained
  // churn grows the per-shard delta without bound, and the COW write
  // path pays for its accumulated size on every mutation.
  Rng churn_rng(flags.GetUint("seed", 1) ^ 0x5eed);
  const size_t churn = flags.GetUint("churn", data.size() / 5);
  const size_t maintenance_stride = std::max<size_t>(1, data.size() / 4);
  size_t removed = 0, inserted = 0;
  for (size_t i = 0; i < churn; ++i) {
    VectorId victim =
        static_cast<VectorId>(churn_rng.NextBounded(data.size()));
    if (index.Remove(victim).ok()) ++removed;
    SparseVector fresh = dist.Sample(&churn_rng);
    if (!fresh.span().empty() && index.Insert(fresh.span()).ok()) {
      ++inserted;
    }
    if (!thread && (i + 1) % maintenance_stride == 0) {
      Status pass = service.RunOnce();
      if (!pass.ok()) return Fail(pass);
    }
  }
  Status pass = service.RunOnce();  // deterministic flush of queued work
  if (!pass.ok()) return Fail(pass);
  std::printf("churn: %zu removed, %zu inserted -> live %zu, tombstones "
              "%zu, compactions %zu, rebuilds %zu\n",
              removed, inserted, index.size(), index.num_tombstones(),
              index.num_compactions(), index.num_rebuilds());

  // Delta-aware cost model against the current layout.
  auto prediction = PredictOnlineQueryCost(dist, options.index,
                                           index.size(), index.Profile());
  if (prediction.ok()) {
    std::printf("cost model: dead fraction %.3f, delta fraction %.3f, "
                "predicted candidate factor %.3f\n",
                prediction->dead_fraction, prediction->delta_fraction,
                prediction->candidate_factor);
  }

  // Query targets: the base vectors that survived the churn (a heavy
  // --churn can tombstone every one of them).
  std::vector<VectorId> live_targets;
  live_targets.reserve(data.size());
  for (VectorId id = 0; id < data.size(); ++id) {
    if (index.IsLive(id)) live_targets.push_back(id);
  }
  if (live_targets.empty()) {
    service.Detach();
    std::printf("queries: skipped (churn removed every base vector)\n");
    return finish();
  }
  CorrelatedQuerySampler sampler(&dist, alpha);
  Rng rng(flags.GetUint("seed", 1) ^ 0xabcdef);
  const size_t queries = flags.GetUint("queries", 100);
  size_t found = 0, candidates = 0;
  double seconds = 0;
  for (size_t t = 0; t < queries; ++t) {
    VectorId target = live_targets[static_cast<size_t>(
        rng.NextBounded(live_targets.size()))];
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
    QueryStats stats;
    auto hit = index.Query(q.span(), &stats);
    found += (hit && hit->id == target);
    candidates += stats.candidates;
    seconds += stats.seconds;
  }
  service.Detach();
  std::printf("queries: %zu, recall %.2f, %.1f candidates/query, "
              "%.1f us/query\n",
              queries, static_cast<double>(found) / queries,
              static_cast<double>(candidates) / queries,
              1e6 * seconds / queries);
  if (flags.Has("trace")) {
    PrintQueryTrace([&] {
      VectorId target = live_targets[static_cast<size_t>(
          rng.NextBounded(live_targets.size()))];
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats stats;
      auto hit = index.Query(q.span(), &stats);
      (void)hit;
    });
  }
  return finish();
}

int CmdQueryBench(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  double alpha = flags.GetDouble("alpha", 0.7);
  auto dist = EstimateFrequencies(*data);
  if (!dist.ok()) return Fail(dist.status());
  if (WantsOnline(flags)) {
    if (flags.Has("mmap")) {
      std::fprintf(stderr,
                   "--mmap serves the static frozen index; drop --online\n");
      return 1;
    }
    return CmdQueryBenchOnline(flags, *data, *dist, alpha);
  }

  const int shards = static_cast<int>(flags.GetUint("shards", 1));
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  options.seed = flags.GetUint("seed", 1);
  SkewedPathIndex index;
  ShardedIndex sharded;
  const bool use_shards = shards > 1;
  if (use_shards) {
    ShardedIndexOptions sharded_options;
    sharded_options.index = options;
    sharded_options.num_shards = shards;
    Status s = sharded.Build(&*data, &*dist, sharded_options);
    if (!s.ok()) return Fail(s);
  } else {
    Status s = index.Build(&*data, &*dist, options);
    if (!s.ok()) return Fail(s);
  }
  const IndexView& view = use_shards ? static_cast<const IndexView&>(sharded)
                                     : static_cast<const IndexView&>(index);
  const IndexBuildStats& build_stats = view.build_stats();
  std::printf("index: %d shard(s), %d repetitions, %.1f filters/element, "
              "%.1f MB, built in %.2fs\n",
              use_shards ? shards : 1, build_stats.repetitions,
              build_stats.avg_filters_per_element,
              static_cast<double>(view.MemoryBytes()) / 1e6,
              build_stats.build_seconds);

  // --mmap: freeze the just-built index and serve the bench from a
  // zero-copy mapping of the file instead. Queries are byte-identical
  // (same recall/candidates); only the load path differs.
  SkewedPathIndex mapped_index;
  ShardedIndex mapped_sharded;
  const bool use_mmap = flags.Has("mmap");
  if (use_mmap) {
    const std::string frozen_path =
        flags.Get("freeze", flags.Get("in", "index") + ".skf");
    Status frozen =
        use_shards ? sharded.Freeze(frozen_path) : index.Freeze(frozen_path);
    if (!frozen.ok()) return Fail(frozen);
    const auto map_start = std::chrono::steady_clock::now();
    Status mapped =
        use_shards ? mapped_sharded.MapFrozen(frozen_path, &*data, &*dist)
                   : mapped_index.MapFrozen(frozen_path, &*data, &*dist);
    if (!mapped.ok()) return Fail(mapped);
    const double map_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - map_start)
            .count();
    std::printf("mmap: froze to %s, mapped zero-copy in %.3f ms "
                "(heap build took %.2fs)\n",
                frozen_path.c_str(), map_ms, build_stats.build_seconds);
  }
  const SkewedPathIndex& query_index = use_mmap ? mapped_index : index;
  const ShardedIndex& query_sharded = use_mmap ? mapped_sharded : sharded;

  CorrelatedQuerySampler sampler(&*dist, alpha);
  Rng rng(flags.GetUint("seed", 1) ^ 0xabcdef);
  const size_t queries = flags.GetUint("queries", 100);
  size_t found = 0, candidates = 0;
  double seconds = 0;
  for (size_t t = 0; t < queries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data->size()));
    SparseVector q = sampler.SampleCorrelated(data->Get(target), &rng);
    QueryStats stats;
    auto hit = use_shards ? query_sharded.Query(q.span(), &stats)
                          : query_index.Query(q.span(), &stats);
    found += (hit && hit->id == target);
    candidates += stats.candidates;
    seconds += stats.seconds;
  }
  std::printf("queries: %zu, recall %.2f, %.1f candidates/query, "
              "%.1f us/query\n",
              queries, static_cast<double>(found) / queries,
              static_cast<double>(candidates) / queries,
              1e6 * seconds / queries);
  if (flags.Has("trace")) {
    PrintQueryTrace([&] {
      VectorId target = static_cast<VectorId>(rng.NextBounded(data->size()));
      SparseVector q = sampler.SampleCorrelated(data->Get(target), &rng);
      QueryStats stats;
      auto hit = use_shards ? query_sharded.Query(q.span(), &stats)
                            : query_index.Query(q.span(), &stats);
      (void)hit;
    });
  }
  return 0;
}

int CmdFreeze(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "freeze needs --out FILE\n");
    return 1;
  }
  auto dist = EstimateFrequencies(*data);
  if (!dist.ok()) return Fail(dist.status());
  SkewedIndexOptions options;
  if (flags.Has("b1")) {
    options.mode = IndexMode::kAdversarial;
    options.b1 = flags.GetDouble("b1", 0.7);
  } else {
    options.mode = IndexMode::kCorrelated;
    options.alpha = flags.GetDouble("alpha", 0.7);
  }
  options.seed = flags.GetUint("seed", 1);
  const int shards = static_cast<int>(flags.GetUint("shards", 1));
  Status frozen;
  if (shards > 1) {
    ShardedIndexOptions sharded_options;
    sharded_options.index = options;
    sharded_options.num_shards = shards;
    ShardedIndex index;
    Status built = index.Build(&*data, &*dist, sharded_options);
    if (!built.ok()) return Fail(built);
    frozen = index.Freeze(out);
  } else {
    SkewedPathIndex index;
    Status built = index.Build(&*data, &*dist, options);
    if (!built.ok()) return Fail(built);
    frozen = index.Freeze(out);
  }
  if (!frozen.ok()) return Fail(frozen);
  std::printf("froze %zu vectors into %d shard(s) at %s\n", data->size(),
              std::max(shards, 1), out.c_str());
  return 0;
}

/// The flags selfjoin and join share for the distributed/remote
/// backend. Returns false (after printing) on a malformed --connect.
bool ApplyJoinBackendFlags(const Flags& flags, JoinOptions* options) {
  options->workers = static_cast<int>(flags.GetUint("workers", 0));
  options->heavy_threshold = flags.GetUint("heavy-threshold", 0);
  options->probe_batch =
      static_cast<size_t>(flags.GetUint("probe-batch", 256));
  options->pipeline = static_cast<size_t>(flags.GetUint("pipeline", 2));
  options->frozen_shards = flags.Get("frozen", "");
  if (flags.Has("connect")) {
    const std::string endpoints = flags.Get("connect", "");
    std::string token;
    for (size_t i = 0; i <= endpoints.size(); ++i) {
      if (i == endpoints.size() || endpoints[i] == ',') {
        if (!token.empty()) options->remote_workers.push_back(token);
        token.clear();
      } else {
        token.push_back(endpoints[i]);
      }
    }
    if (options->remote_workers.empty()) {
      std::fprintf(stderr, "--connect needs at least one host:port\n");
      return false;
    }
  }
  return true;
}

/// The report lines selfjoin and join share: distributed/wire/recovery
/// counters, the first pairs, and the --dump-pairs file.
int ReportJoinOutput(const Flags& flags, const JoinOptions& options,
                     const JoinStats& stats,
                     const std::vector<JoinPair>& pairs) {
  if (!options.frozen_shards.empty()) {
    std::printf("frozen shards: build side served zero-copy from %s%s\n",
                options.frozen_shards.c_str(),
                options.remote_workers.empty() ? ""
                                               : " (workers pre-mapped)");
  }
  if (options.workers > 1 || !options.remote_workers.empty()) {
    const int workers = options.remote_workers.empty()
                            ? options.workers
                            : static_cast<int>(options.remote_workers.size());
    std::printf("distributed backend: %d workers%s, duplication factor "
                "%.2f, probe fan-out %.2f\n",
                workers, options.remote_workers.empty() ? "" : " (remote)",
                stats.duplication_factor, stats.probe_fanout);
  }
  if (!options.remote_workers.empty()) {
    std::printf("wire: %.1f KB sent, %.1f KB received, %zu batches in "
                "%zu exposed round trips (pipeline %zu)\n",
                static_cast<double>(stats.wire_bytes_sent) / 1e3,
                static_cast<double>(stats.wire_bytes_received) / 1e3,
                stats.probe_batches_sent, stats.probe_round_trips,
                options.pipeline);
    if (stats.worker_recoveries > 0) {
      // The smoke test greps for this line after killing a worker.
      std::printf("recovered %zu worker(s), replayed %zu batch(es)\n",
                  stats.worker_recoveries, stats.replayed_batches);
    }
  }
  if (options.online) {
    std::printf("online build side: maintenance thread %s, %zu "
                "compactions, %zu rebuilds\n",
                options.maintenance_thread ? "on" : "off",
                stats.compactions, stats.rebuilds);
  }
  for (size_t k = 0; k < std::min<size_t>(10, pairs.size()); ++k) {
    const JoinPair& pr = pairs[k];
    std::printf("  %u ~ %u  (%.3f)\n", pr.left, pr.right, pr.similarity);
  }
  if (flags.Has("dump-pairs")) {
    const std::string path = flags.Get("dump-pairs", "");
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   path.c_str());
      return 1;
    }
    // %.17g round-trips every double exactly, so two dumps are equal
    // iff the pair lists are byte-identical.
    for (const JoinPair& pr : pairs) {
      std::fprintf(out, "%u %u %.17g\n", pr.left, pr.right, pr.similarity);
    }
    std::fclose(out);
    std::printf("wrote %zu pairs to %s\n", pairs.size(), path.c_str());
  }
  return 0;
}

int CmdSelfJoin(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  double b1 = flags.GetDouble("b1", 0.7);
  auto dist = EstimateFrequencies(*data);
  if (!dist.ok()) return Fail(dist.status());

  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.seed = flags.GetUint("seed", 1);
  options.threshold = b1;
  options.num_shards = static_cast<int>(flags.GetUint("shards", 1));
  if (!ApplyJoinBackendFlags(flags, &options)) return 1;
  if (WantsOnline(flags)) {
    options.online = true;
    options.maintenance = MaintenanceFromFlags(flags);
    options.maintenance_thread = flags.GetUint("maintenance", 1) != 0;
    options.churn = flags.GetUint("churn", data->size() / 5);
  }

  // --wal DIR: a durable churn phase ahead of the join — open the
  // directory (recovering whatever an earlier run left), journal a
  // deterministic seeded mutation stream, sync, close, and print the
  // flushed "wal:" marker. The durability smoke test SIGKILLs the
  // process after that marker (or mid-churn) and asserts a reopened
  // index answers probes identically to an uninterrupted run.
  if (flags.Has("wal")) {
    Result<DurableOptions> dopts = DurableFromFlags(flags);
    if (!dopts.ok()) return Fail(dopts.status());
    DynamicIndexOptions ioptions;
    ioptions.index = options.index;
    ioptions.num_shards = std::max(1, options.num_shards);
    DurableIndex durable;
    RecoveryStats rstats;
    Status opened = durable.Open(&*data, &*dist, ioptions, *dopts, &rstats);
    if (!opened.ok()) return Fail(opened);
    PrintRecoveryLine(rstats);
    Rng wal_rng(flags.GetUint("seed", 1) ^ 0xd0d0);
    const size_t churn = flags.GetUint("churn", data->size() / 5);
    for (size_t i = 0; i < churn; ++i) {
      SparseVector fresh = dist->Sample(&wal_rng);
      if (!fresh.span().empty()) {
        Result<VectorId> id = durable.index().Insert(fresh.span());
        if (!id.ok()) return Fail(id.status());
      }
      if (i % 3 == 2) {
        // Interleave base-vector removes so the journaled state is
        // materially different from the base dataset.
        VectorId victim =
            static_cast<VectorId>(wal_rng.NextBounded(data->size()));
        Status gone = durable.index().Remove(victim);
        if (!gone.ok() && gone.code() != Status::Code::kNotFound) {
          return Fail(gone);
        }
      }
    }
    PrintWalLine(*durable.wal(), durable.num_checkpoints());
    Status closed = durable.Close();
    if (!closed.ok()) return Fail(closed);
    std::fflush(stdout);
  }

  JoinStats stats;
  auto pairs = SelfSimilarityJoin(*data, *dist, options, &stats);
  if (!pairs.ok()) return Fail(pairs.status());
  std::printf("self-join at B >= %.2f: %zu pairs (build %.2fs, probe "
              "%.2fs, %zu candidates)\n",
              b1, pairs->size(), stats.build_seconds, stats.probe_seconds,
              stats.candidates);
  return ReportJoinOutput(flags, options, stats, *pairs);
}

int CmdJoin(const Flags& flags) {
  const std::string left_path = flags.Get("left", "");
  const std::string right_path = flags.Get("right", "");
  if (left_path.empty() || right_path.empty()) {
    std::fprintf(stderr, "join needs --left FILE and --right FILE\n");
    return 1;
  }
  auto load = [&](const std::string& path) {
    return flags.Has("binary") ? ReadBinary(path) : ReadTransactions(path);
  };
  auto left = load(left_path);
  if (!left.ok()) return Fail(left.status());
  auto right = load(right_path);
  if (!right.ok()) return Fail(right.status());
  double b1 = flags.GetDouble("b1", 0.7);
  // The index (and the skew plan) is derived from the build side, but
  // its estimated universe must also cover every probe-side item:
  // widen it before estimating, so left-only items get the smoothed
  // unseen-item probability instead of being out of range.
  if (left->dimension() > right->dimension()) {
    Status widened = right->SetDimension(left->dimension());
    if (!widened.ok()) return Fail(widened);
  }
  auto dist = EstimateFrequencies(*right);
  if (!dist.ok()) return Fail(dist.status());

  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.seed = flags.GetUint("seed", 1);
  options.threshold = b1;
  if (!ApplyJoinBackendFlags(flags, &options)) return 1;
  JoinStats stats;
  auto pairs = SimilarityJoin(*left, *right, *dist, options, &stats);
  if (!pairs.ok()) return Fail(pairs.status());
  std::printf("R-S join at B >= %.2f: %zu probes x %zu indexed -> %zu "
              "pairs (build %.2fs, probe %.2fs, %zu candidates)\n",
              b1, left->size(), right->size(), pairs->size(),
              stats.build_seconds, stats.probe_seconds, stats.candidates);
  return ReportJoinOutput(flags, options, stats, *pairs);
}

/// The server the drain signals land on. Set for the lifetime of
/// CmdJoinWorker's Serve(); RequestDrain is async-signal-safe.
std::atomic<WorkerServer*> g_drain_target{nullptr};

extern "C" void HandleDrainSignal(int /*signum*/) {
  WorkerServer* server = g_drain_target.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
}

/// Set by SIGUSR1; the watcher thread turns it into a --metrics-dump
/// write (registry serialization is not async-signal-safe, so the
/// handler only raises the flag).
std::atomic<bool> g_dump_requested{false};

extern "C" void HandleDumpSignal(int /*signum*/) {
  g_dump_requested.store(true, std::memory_order_release);
}

/// Writes the global registry's JSON exposition to \p path (the
/// --metrics-dump format, same as the benches' "obs" block).
bool WriteMetricsDump(const std::string& path) {
  const std::string json = obs::MetricsRegistry::Global().JsonExposition();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for metrics dump\n",
                 path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  return true;
}

/// The --summary-interval one-liner: cumulative served work from the
/// global registry, cheap enough to log every few seconds.
void LogWorkerSummary() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  SKEWSEARCH_LOG(kInfo)
      << "served " << registry.GetCounter("worker.batches")->Value()
      << " batches / " << registry.GetCounter("worker.probes")->Value()
      << " probes, " << registry.GetCounter("worker.matches")->Value()
      << " matches, "
      << registry.GetGauge("worker.sessions.active")->Value()
      << " active session(s), "
      << registry.GetCounter("worker.wire.bytes_received")->Value()
      << " B in / "
      << registry.GetCounter("worker.wire.bytes_sent")->Value() << " B out";
}

int CmdJoinWorker(const Flags& flags) {
  const uint64_t requested = flags.GetUint("listen", 0);
  if (requested > 65535) {
    std::fprintf(stderr, "error: --listen %llu is not a valid port\n",
                 static_cast<unsigned long long>(requested));
    return 1;
  }
  const uint16_t port = static_cast<uint16_t>(requested);
  auto listener = TcpListener::Listen(port);
  if (!listener.ok()) return Fail(listener.status());

  WorkerServerOptions options;
  options.max_sessions =
      static_cast<uint32_t>(flags.GetUint("max-sessions", 0));
  options.idle_timeout_ms =
      static_cast<uint32_t>(flags.GetUint("idle-timeout", 0));
  options.serve.fail_after_batches = flags.GetUint("die-after-batches", 0);
  const bool die_on_trip = options.serve.fail_after_batches > 0;
  // Session completions go through the logger, pre-formatted so each
  // line is a single write — concurrent session threads never
  // interleave mid-line.
  options.on_session_done = [die_on_trip](uint64_t session_id,
                                          const WorkerServeStats& stats,
                                          const Status& status) {
    char line[512];
    if (status.ok()) {
      std::snprintf(line, sizeof(line),
                    "session %llu: worker %u served %llu probes in %llu "
                    "batches, %llu matches, %llu reassignment(s) "
                    "(%.1f KB in, %.1f KB out)",
                    static_cast<unsigned long long>(session_id),
                    stats.worker_id,
                    static_cast<unsigned long long>(stats.probes),
                    static_cast<unsigned long long>(stats.batches),
                    static_cast<unsigned long long>(stats.matches),
                    static_cast<unsigned long long>(stats.reassignments),
                    static_cast<double>(stats.wire.bytes_received) / 1e3,
                    static_cast<double>(stats.wire.bytes_sent) / 1e3);
    } else {
      std::snprintf(line, sizeof(line),
                    "session %llu: worker %u ended after %llu batches: %s",
                    static_cast<unsigned long long>(session_id),
                    stats.worker_id,
                    static_cast<unsigned long long>(stats.batches),
                    status.ToString().c_str());
    }
    SKEWSEARCH_LOG(kInfo) << line;
    if (die_on_trip && status.IsAborted()) {
      // --die-after-batches: the whole point is a process that
      // vanishes mid-stream, so no drain, no cleanup, no exit hooks.
      std::_Exit(3);
    }
  };

  // --shard-file: pre-map a frozen SKF1 file (and load the dataset it
  // was frozen from) so version >= 3 coordinators can open frozen-shard
  // sessions with a tiny ShardAssignment instead of shipping slices.
  // Both live here, above the server, for the whole Serve() lifetime.
  std::shared_ptr<const FrozenShardFile> frozen_file;
  Dataset frozen_data;
  const std::string shard_file = flags.Get("shard-file", "");
  if (!shard_file.empty()) {
    const std::string data_path = flags.Get("data", "");
    if (data_path.empty()) {
      std::fprintf(stderr, "--shard-file needs --data FILE (the dataset "
                           "the file was frozen from)\n");
      return 1;
    }
    auto loaded = flags.Has("binary") ? ReadBinary(data_path)
                                      : ReadTransactions(data_path);
    if (!loaded.ok()) return Fail(loaded.status());
    frozen_data = std::move(loaded).value();
    auto mapped = FrozenShardFile::Map(shard_file);
    if (!mapped.ok()) return Fail(mapped.status());
    frozen_file = std::move(mapped).value();
    if (frozen_file->fingerprint() !=
        index_io_internal::Fingerprint(frozen_data)) {
      return Fail(Status::InvalidArgument(
          "--data does not match the dataset '" + shard_file +
          "' was frozen from"));
    }
    options.serve.frozen_file = frozen_file.get();
    options.serve.frozen_data = &frozen_data;
    std::printf("mapped %d frozen shard(s) from %s (%zu vectors)\n",
                frozen_file->num_shards(), shard_file.c_str(),
                frozen_data.size());
  }

  // Session lines and summaries are kInfo; a worker process exists to
  // be observed, so raise the default kWarning filter.
  SetLogLevel(LogLevel::kInfo);
  const std::string dump_path = flags.Get("metrics-dump", "");
  const uint64_t summary_interval = flags.GetUint("summary-interval", 0);

  WorkerServer server(std::move(listener).value(), std::move(options));
  g_drain_target.store(&server, std::memory_order_release);
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  if (!dump_path.empty()) std::signal(SIGUSR1, HandleDumpSignal);

  // The watcher turns SIGUSR1 flags into dump files and emits the
  // periodic summaries; polling (not signaling) keeps every
  // registry access off the signal handler.
  std::atomic<bool> stop_watcher{false};
  std::thread watcher;
  if (!dump_path.empty() || summary_interval > 0) {
    watcher = std::thread([&stop_watcher, &dump_path, summary_interval] {
      auto last_summary = std::chrono::steady_clock::now();
      while (!stop_watcher.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (g_dump_requested.exchange(false, std::memory_order_acq_rel) &&
            !dump_path.empty() && WriteMetricsDump(dump_path)) {
          SKEWSEARCH_LOG(kInfo) << "metrics dumped to " << dump_path;
        }
        const auto now = std::chrono::steady_clock::now();
        if (summary_interval > 0 &&
            now - last_summary >= std::chrono::seconds(summary_interval)) {
          last_summary = now;
          LogWorkerSummary();
        }
      }
    });
  }

  // The smoke script and any process manager parse this line (and port
  // 0 resolves to the kernel's pick), so flush it before blocking.
  std::printf("join-worker listening on port %u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  Status served = server.Serve();
  g_drain_target.store(nullptr, std::memory_order_release);
  stop_watcher.store(true, std::memory_order_release);
  if (watcher.joinable()) watcher.join();
  if (!dump_path.empty()) WriteMetricsDump(dump_path);
  if (!served.ok()) return Fail(served);
  const WorkerServerStats totals = server.stats();
  std::printf("join-worker drained%s: %llu session(s) accepted, %llu ok, "
              "%llu failed\n",
              totals.idle_timeout_hit ? " (idle timeout)" : "",
              static_cast<unsigned long long>(totals.sessions_accepted),
              static_cast<unsigned long long>(totals.sessions_ok),
              static_cast<unsigned long long>(totals.sessions_failed));
  return 0;
}

int CmdJoinStats(const Flags& flags) {
  const std::string endpoint = flags.Get("connect", "");
  if (endpoint.empty()) {
    std::fprintf(stderr, "join-stats needs --connect HOST:PORT\n");
    return 1;
  }
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "--connect '%s' is not HOST:PORT\n",
                 endpoint.c_str());
    return 1;
  }
  char* end = nullptr;
  const unsigned long port =
      std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    std::fprintf(stderr, "--connect '%s' has an invalid port\n",
                 endpoint.c_str());
    return 1;
  }
  auto connection =
      TcpConnect(endpoint.substr(0, colon), static_cast<uint16_t>(port));
  if (!connection.ok()) return Fail(connection.status());
  auto stats = ScrapeWorkerStats(connection->get());
  if (!stats.ok()) return Fail(stats.status());
  const std::string rendered = flags.Has("json")
                                   ? obs::RenderJson(stats->metrics)
                                   : obs::RenderText(stats->metrics);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    std::printf("%s", kUsage);
    return args.empty() ? 1 : 0;
  }
  auto flags = Flags::Parse(args, 1);
  if (!flags) return 1;
  const std::string& command = args[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "mann") return CmdMann(*flags);
  if (command == "profile") return CmdProfile(*flags);
  if (command == "independence") return CmdIndependence(*flags);
  if (command == "query-bench") return CmdQueryBench(*flags);
  if (command == "freeze") return CmdFreeze(*flags);
  if (command == "selfjoin") return CmdSelfJoin(*flags);
  if (command == "join") return CmdJoin(*flags);
  if (command == "join-worker") return CmdJoinWorker(*flags);
  if (command == "join-stats") return CmdJoinStats(*flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 1;
}

}  // namespace skewsearch
