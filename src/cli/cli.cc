#include "cli/cli.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "core/sharded_index.h"
#include "core/similarity_join.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/mann_profiles.h"
#include "stats/independence.h"
#include "stats/skew_profile.h"
#include "util/random.h"

namespace skewsearch {

namespace {

constexpr char kUsage[] = R"(skewsearch_cli — set similarity search for skewed data

Usage: skewsearch_cli <command> [--flag value]...

Commands:
  generate --kind uniform|twoblock|zipf|harmonic --n N --d N --out FILE
           [--p X] [--p2 X] [--d2 N] [--exp X] [--avg X] [--seed S] [--binary]
  mann     --name NAME --out FILE [--n N] [--seed S] [--binary]
  profile  --in FILE [--binary]
  independence --in FILE [--binary]
  query-bench --in FILE --alpha A [--queries N] [--seed S] [--shards K]
           [--binary]
  selfjoin --in FILE --b1 X [--seed S] [--shards K] [--binary]
  help

--shards K > 1 builds the hash-sharded index instead of the monolithic
one; results are identical, memory and parallelism differ.
)";

/// Parsed "--key value" flags.
class Flags {
 public:
  static std::optional<Flags> Parse(const std::vector<std::string>& args,
                                    size_t start) {
    Flags flags;
    for (size_t i = start; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        return std::nullopt;
      }
      std::string key = arg.substr(2);
      if (key == "binary") {  // boolean flag
        static const std::string kTrue = "1";
        flags.values_.insert_or_assign(key, kTrue);
        continue;
      }
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        return std::nullopt;
      }
      flags.values_[key] = args[++i];
    }
    return flags;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  // Numeric getters fall back (with a warning) on malformed values rather
  // than throwing out of main.
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "warning: --%s '%s' is not a number; using %g\n",
                   key.c_str(), it->second.c_str(), fallback);
      return fallback;
    }
    return value;
  }
  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr,
                   "warning: --%s '%s' is not an integer; using %llu\n",
                   key.c_str(), it->second.c_str(),
                   static_cast<unsigned long long>(fallback));
      return fallback;
    }
    return static_cast<uint64_t>(value);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Dataset> LoadDataset(const Flags& flags) {
  std::string path = flags.Get("in", "");
  if (path.empty()) {
    return Status::InvalidArgument("--in FILE is required");
  }
  return flags.Has("binary") ? ReadBinary(path) : ReadTransactions(path);
}

Status SaveDataset(const Dataset& data, const Flags& flags) {
  std::string path = flags.Get("out", "");
  if (path.empty()) {
    return Status::InvalidArgument("--out FILE is required");
  }
  return flags.Has("binary") ? WriteBinary(data, path)
                             : WriteTransactions(data, path);
}

int CmdGenerate(const Flags& flags) {
  std::string kind = flags.Get("kind", "zipf");
  size_t n = flags.GetUint("n", 10000);
  size_t d = flags.GetUint("d", 10000);
  Result<ProductDistribution> dist = Status::InvalidArgument("unset");
  if (kind == "uniform") {
    dist = UniformProbabilities(d, flags.GetDouble("p", 0.1));
  } else if (kind == "twoblock") {
    size_t d2 = flags.GetUint("d2", d);
    dist = TwoBlockProbabilities(d, flags.GetDouble("p", 0.25), d2,
                                 flags.GetDouble("p2", 0.01));
  } else if (kind == "zipf") {
    dist = ZipfProbabilities(d, flags.GetDouble("exp", 1.0),
                             flags.GetDouble("p", 0.5));
  } else if (kind == "harmonic") {
    dist = HarmonicProbabilities(d);
  } else {
    std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
    return 1;
  }
  if (!dist.ok()) return Fail(dist.status());
  if (flags.Has("avg")) {
    dist = ScaleToAverageSize(*dist, flags.GetDouble("avg", 10.0));
    if (!dist.ok()) return Fail(dist.status());
  }
  Rng rng(flags.GetUint("seed", 1));
  Dataset data = GenerateDataset(*dist, n, &rng);
  Status s = SaveDataset(data, flags);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu vectors (d=%zu, avg |x| = %.2f) to %s\n",
              data.size(), data.dimension(), data.AverageSize(),
              flags.Get("out", "").c_str());
  return 0;
}

int CmdMann(const Flags& flags) {
  auto spec = FindMannProfile(flags.Get("name", ""));
  if (!spec.ok()) return Fail(spec.status());
  MannProfileSpec profile = *spec;
  if (flags.Has("n")) profile.n = flags.GetUint("n", profile.n);
  Rng rng(flags.GetUint("seed", 1));
  auto inst = BuildMannInstance(profile, &rng);
  if (!inst.ok()) return Fail(inst.status());
  Status s = SaveDataset(inst->data, flags);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s stand-in: %zu vectors, d=%zu, avg |x| = %.2f\n",
              profile.name.c_str(), inst->data.size(),
              inst->data.dimension(), inst->data.AverageSize());
  return 0;
}

int CmdProfile(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  SkewProfile profile = ComputeSkewProfile(*data);
  std::printf("n = %zu, d = %zu, avg |x| = %.2f, distinct items = %zu\n",
              data->size(), data->dimension(), data->AverageSize(),
              profile.frequencies.size());
  std::printf("fitted Zipf exponent = %.3f\n", FitZipfExponent(profile));
  std::printf("log-rank skew profile (x = log_d j, y = 1 + log_n p_j):\n");
  for (const ProfilePoint& pt : LogAxisSeries(profile, 12)) {
    std::printf("  %.3f  %.3f\n", pt.x, pt.y);
  }
  return 0;
}

int CmdIndependence(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  for (size_t k : {1u, 2u, 3u}) {
    auto est = ExactIndependenceRatio(*data, k);
    if (!est.ok()) return Fail(est.status());
    std::printf("|I| = %zu: ratio = %.3f (observed %.3e, independent "
                "prediction %.3e)\n",
                k, est->ratio, est->expected_observed,
                est->expected_product);
  }
  return 0;
}

int CmdQueryBench(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  double alpha = flags.GetDouble("alpha", 0.7);
  auto dist = EstimateFrequencies(*data);
  if (!dist.ok()) return Fail(dist.status());

  const int shards = static_cast<int>(flags.GetUint("shards", 1));
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  options.seed = flags.GetUint("seed", 1);
  SkewedPathIndex index;
  ShardedIndex sharded;
  const bool use_shards = shards > 1;
  if (use_shards) {
    ShardedIndexOptions sharded_options;
    sharded_options.index = options;
    sharded_options.num_shards = shards;
    Status s = sharded.Build(&*data, &*dist, sharded_options);
    if (!s.ok()) return Fail(s);
  } else {
    Status s = index.Build(&*data, &*dist, options);
    if (!s.ok()) return Fail(s);
  }
  const IndexBuildStats& build_stats =
      use_shards ? sharded.build_stats() : index.build_stats();
  std::printf("index: %d shard(s), %d repetitions, %.1f filters/element, "
              "%.1f MB, built in %.2fs\n",
              use_shards ? shards : 1, build_stats.repetitions,
              build_stats.avg_filters_per_element,
              static_cast<double>(use_shards ? sharded.MemoryBytes()
                                             : index.MemoryBytes()) /
                  1e6,
              build_stats.build_seconds);

  CorrelatedQuerySampler sampler(&*dist, alpha);
  Rng rng(flags.GetUint("seed", 1) ^ 0xabcdef);
  const size_t queries = flags.GetUint("queries", 100);
  size_t found = 0, candidates = 0;
  double seconds = 0;
  for (size_t t = 0; t < queries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data->size()));
    SparseVector q = sampler.SampleCorrelated(data->Get(target), &rng);
    QueryStats stats;
    auto hit = use_shards ? sharded.Query(q.span(), &stats)
                          : index.Query(q.span(), &stats);
    found += (hit && hit->id == target);
    candidates += stats.candidates;
    seconds += stats.seconds;
  }
  std::printf("queries: %zu, recall %.2f, %.1f candidates/query, "
              "%.1f us/query\n",
              queries, static_cast<double>(found) / queries,
              static_cast<double>(candidates) / queries,
              1e6 * seconds / queries);
  return 0;
}

int CmdSelfJoin(const Flags& flags) {
  auto data = LoadDataset(flags);
  if (!data.ok()) return Fail(data.status());
  double b1 = flags.GetDouble("b1", 0.7);
  auto dist = EstimateFrequencies(*data);
  if (!dist.ok()) return Fail(dist.status());

  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.seed = flags.GetUint("seed", 1);
  options.threshold = b1;
  options.num_shards = static_cast<int>(flags.GetUint("shards", 1));
  JoinStats stats;
  auto pairs = SelfSimilarityJoin(*data, *dist, options, &stats);
  if (!pairs.ok()) return Fail(pairs.status());
  std::printf("self-join at B >= %.2f: %zu pairs (build %.2fs, probe "
              "%.2fs, %zu candidates)\n",
              b1, pairs->size(), stats.build_seconds, stats.probe_seconds,
              stats.candidates);
  for (size_t k = 0; k < std::min<size_t>(10, pairs->size()); ++k) {
    const JoinPair& pr = (*pairs)[k];
    std::printf("  %u ~ %u  (%.3f)\n", pr.left, pr.right, pr.similarity);
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    std::printf("%s", kUsage);
    return args.empty() ? 1 : 0;
  }
  auto flags = Flags::Parse(args, 1);
  if (!flags) return 1;
  const std::string& command = args[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "mann") return CmdMann(*flags);
  if (command == "profile") return CmdProfile(*flags);
  if (command == "independence") return CmdIndependence(*flags);
  if (command == "query-bench") return CmdQueryBench(*flags);
  if (command == "selfjoin") return CmdSelfJoin(*flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 1;
}

}  // namespace skewsearch
