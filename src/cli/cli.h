// Copyright 2026 The skewsearch Authors.
// Command-line interface, packaged as a library so the binary stays a
// three-line main() and the command logic is unit-testable.
//
// Subcommands:
//   generate      sample a dataset from a synthetic distribution
//   mann          materialize one of the Mann-et-al. stand-in datasets
//   profile       dataset statistics + frequency-skew profile (Figure 2)
//   independence  exact independence ratios |I| = 1..3 (Table 1)
//   query-bench   build the index on a dataset file and measure recall /
//                 candidate cost on correlated queries
//   selfjoin      similarity self-join of a dataset file
//
// Run `skewsearch_cli help` for flags.

#ifndef SKEWSEARCH_CLI_CLI_H_
#define SKEWSEARCH_CLI_CLI_H_

#include <string>
#include <vector>

namespace skewsearch {

/// Executes one CLI invocation. \p args excludes the program name
/// (e.g. {"generate", "--kind", "zipf", ...}). Output goes to stdout,
/// errors to stderr. Returns a process exit code (0 on success).
int RunCli(const std::vector<std::string>& args);

}  // namespace skewsearch

#endif  // SKEWSEARCH_CLI_CLI_H_
