#!/usr/bin/env bash
# Multi-process smoke test of the distributed join's TCP transport:
# launches two real `join-worker` OS processes, runs a coordinator
# `selfjoin --connect` against them, and asserts the dumped pair list is
# byte-identical to the single-process join — the acceptance criterion
# of the transport layer, checked end to end through the CLI (CI runs
# this; see docs/WIRE_PROTOCOL.md for what crosses the wire).
#
# Usage: tools/distributed_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/skewsearch_cli"

if [ ! -x "$CLI" ]; then
  echo "error: '$CLI' not built (cmake --build $BUILD --target skewsearch_cli)" >&2
  exit 2
fi

TMP="$(mktemp -d)"
WORKER_PIDS=()
cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    kill "$pid" 2> /dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# A dataset dense enough that the self-join has a non-trivial output
# (the identity check would be vacuous on zero pairs).
"$CLI" generate --kind zipf --n 600 --d 300 --p 0.9 --exp 1.2 --avg 8 \
  --seed 7 --out "$TMP/data.txt"

echo "--- single-process baseline"
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 --dump-pairs "$TMP/single.txt"

pair_count="$(wc -l < "$TMP/single.txt")"
if [ "$pair_count" -eq 0 ]; then
  echo "error: baseline produced zero pairs; the identity check is vacuous" >&2
  exit 2
fi

# Two worker processes on kernel-chosen ports (parsed from their
# "listening on port N" line; each serves one session and exits 0 on an
# orderly shutdown).
start_worker() {
  local log="$1"
  "$CLI" join-worker > "$log" &
  WORKER_PIDS+=("$!")
  for _ in $(seq 1 100); do
    if grep -q 'listening on port' "$log"; then return 0; fi
    sleep 0.1
  done
  echo "error: worker never started listening ($log)" >&2
  return 2
}

echo "--- starting 2 join-worker processes"
start_worker "$TMP/worker1.log"
start_worker "$TMP/worker2.log"
PORT1="$(grep -o 'port [0-9]*' "$TMP/worker1.log" | cut -d' ' -f2)"
PORT2="$(grep -o 'port [0-9]*' "$TMP/worker2.log" | cut -d' ' -f2)"
echo "workers listening on ports $PORT1 and $PORT2"

echo "--- coordinator over TCP"
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 \
  --connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  --dump-pairs "$TMP/tcp.txt"

# Orderly shutdown: both worker processes must exit 0 on their own.
for pid in "${WORKER_PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "error: worker process $pid exited non-zero" >&2
    cat "$TMP"/worker*.log >&2
    exit 1
  fi
done
WORKER_PIDS=()
cat "$TMP/worker1.log" "$TMP/worker2.log"

echo "--- comparing pair dumps"
if ! diff -u "$TMP/single.txt" "$TMP/tcp.txt"; then
  echo "FAIL: distributed output differs from the single-process join" >&2
  exit 1
fi
echo "PASS: $pair_count pairs byte-identical across 2 worker processes"
