#!/usr/bin/env bash
# Multi-process smoke test of the distributed join service: one pool of
# real `join-worker` OS processes serves (a) two concurrent coordinator
# sessions whose dumped pair lists must both be byte-identical to the
# single-process join, and (b) a kill-recovery round where one worker
# deliberately dies mid-probe-stream (--die-after-batches) and the
# coordinator must report the recovery and still produce byte-identical
# output — the acceptance criteria of the transport layer, checked end
# to end through the CLI (CI runs this; see docs/WIRE_PROTOCOL.md for
# what crosses the wire). Along the way the workers are scraped live
# with `join-stats` (the stats surface of docs/OBSERVABILITY.md):
# mid-join while both coordinators are in flight, after round 1 to
# assert nonzero batch counters, and after the kill round to assert a
# survivor counted the reassignment.
#
# Usage: tools/distributed_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/skewsearch_cli"

if [ ! -x "$CLI" ]; then
  echo "error: '$CLI' not built (cmake --build $BUILD --target skewsearch_cli)" >&2
  exit 2
fi

TMP="$(mktemp -d)"
WORKER_PIDS=()

# Last-resort cleanup: SIGTERM each surviving worker, give it a bounded
# 5s to drain, then SIGKILL — and fail the script loudly if the
# escalation was ever needed, because a worker that ignores SIGTERM is
# itself a bug.
cleanup() {
  local escalated=0
  for pid in "${WORKER_PIDS[@]:-}"; do
    if kill -0 "$pid" 2> /dev/null; then
      kill "$pid" 2> /dev/null || true
      for _ in $(seq 1 50); do
        kill -0 "$pid" 2> /dev/null || break
        sleep 0.1
      done
      if kill -0 "$pid" 2> /dev/null; then
        echo "error: worker $pid ignored SIGTERM for 5s; sending SIGKILL" >&2
        kill -9 "$pid" 2> /dev/null || true
        escalated=1
      fi
    fi
  done
  rm -rf "$TMP"
  if [ "$escalated" -ne 0 ]; then
    echo "FAIL: leaked worker process(es) had to be SIGKILLed" >&2
    exit 1
  fi
}
trap cleanup EXIT

# Orderly shutdown used on the success path: SIGTERM, bounded wait,
# assert the worker drained and exited 0 on its own.
stop_worker() {
  local pid="$1"
  kill "$pid" 2> /dev/null || true
  for _ in $(seq 1 50); do
    if ! kill -0 "$pid" 2> /dev/null; then
      local status=0
      wait "$pid" || status=$?
      if [ "$status" -ne 0 ]; then
        echo "error: worker $pid exited $status after SIGTERM drain" >&2
        return 1
      fi
      return 0
    fi
    sleep 0.1
  done
  echo "error: worker $pid did not drain within 5s of SIGTERM" >&2
  return 1
}

# Scrape one counter off a live worker over the wire protocol; prints
# its value (0 if the worker has never touched it). A failed scrape
# session fails the script via pipefail.
scrape_counter() {
  local endpoint="$1" name="$2"
  "$CLI" join-stats --connect "$endpoint" \
    | awk -v n="$name" '$1 == "counter" && $2 == n { print $3; found = 1 }
                        END { if (!found) print 0 }'
}

# A dataset dense enough that the self-join has a non-trivial output
# (the identity check would be vacuous on zero pairs).
"$CLI" generate --kind zipf --n 600 --d 300 --p 0.9 --exp 1.2 --avg 8 \
  --seed 7 --out "$TMP/data.txt"

echo "--- single-process baselines (selfjoin + R-S join)"
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 --dump-pairs "$TMP/single.txt"
"$CLI" join --left "$TMP/data.txt" --right "$TMP/data.txt" --b1 0.6 \
  --dump-pairs "$TMP/rs_single.txt"

pair_count="$(wc -l < "$TMP/single.txt")"
if [ "$pair_count" -eq 0 ]; then
  echo "error: baseline produced zero pairs; the identity check is vacuous" >&2
  exit 2
fi

# One pool of three worker processes on kernel-chosen ports (parsed
# from their "listening on port N" line). Workers 1 and 2 are healthy
# long-running servers; worker 3 is rigged to drop its connection after
# 2 answered batches and exit nonzero — the crash the recovery round
# must absorb.
start_worker() {
  local log="$1"
  shift
  "$CLI" join-worker "$@" > "$log" &
  WORKER_PIDS+=("$!")
  for _ in $(seq 1 100); do
    if grep -q 'listening on port' "$log"; then return 0; fi
    sleep 0.1
  done
  echo "error: worker never started listening ($log)" >&2
  return 2
}

echo "--- starting a pool of 3 join-worker processes"
start_worker "$TMP/worker1.log"
start_worker "$TMP/worker2.log"
start_worker "$TMP/worker3.log" --die-after-batches 2
PORT1="$(grep -o 'port [0-9]*' "$TMP/worker1.log" | cut -d' ' -f2)"
PORT2="$(grep -o 'port [0-9]*' "$TMP/worker2.log" | cut -d' ' -f2)"
PORT3="$(grep -o 'port [0-9]*' "$TMP/worker3.log" | cut -d' ' -f2)"
echo "workers listening on ports $PORT1, $PORT2, $PORT3 (worker 3 rigged to die)"

echo "--- round 1: two concurrent coordinators against the same pool"
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 --probe-batch 32 \
  --connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  --dump-pairs "$TMP/tcp_a.txt" > "$TMP/coord_a.log" 2>&1 &
COORD_A=$!
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 --probe-batch 32 \
  --connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  --dump-pairs "$TMP/tcp_b.txt" > "$TMP/coord_b.log" 2>&1 &
COORD_B=$!

# Scrape worker 1 while both coordinators are in flight: a stats-only
# session must coexist with live probe sessions on the same process.
# The counters may legitimately still be near zero this early, so the
# assertion here is only that the scrape session itself succeeded (the
# response always carries the scrape it is answering).
"$CLI" join-stats --connect "127.0.0.1:$PORT1" > "$TMP/scrape_midjoin.txt"
if ! grep -Eq '^counter worker\.stats_scrapes [1-9]' "$TMP/scrape_midjoin.txt"; then
  echo "FAIL: mid-join scrape of worker 1 did not return a stats snapshot" >&2
  cat "$TMP/scrape_midjoin.txt" >&2
  exit 1
fi
echo "mid-join scrape of worker 1 answered alongside live sessions"

for coord in "$COORD_A" "$COORD_B"; do
  if ! wait "$coord"; then
    echo "error: coordinator $coord failed" >&2
    cat "$TMP"/coord_*.log "$TMP"/worker*.log >&2
    exit 1
  fi
done
for dump in tcp_a tcp_b; do
  if ! diff -u "$TMP/single.txt" "$TMP/$dump.txt"; then
    echo "FAIL: concurrent coordinator '$dump' diverged from the baseline" >&2
    exit 1
  fi
done
echo "both concurrent coordinators byte-identical ($pair_count pairs each)"

# With both sessions drained, the registry must show the work: two
# coordinators' probe batches answered and real bytes on the wire.
batches="$(scrape_counter "127.0.0.1:$PORT1" worker.batches)"
bytes_in="$(scrape_counter "127.0.0.1:$PORT1" worker.wire.bytes_received)"
if [ "$batches" -eq 0 ] || [ "$bytes_in" -eq 0 ]; then
  echo "FAIL: worker 1 served two joins but scraped worker.batches=$batches" \
    "worker.wire.bytes_received=$bytes_in" >&2
  exit 1
fi
echo "worker 1 stats after round 1: $batches batches, $bytes_in bytes received"

echo "--- round 2: R-S join with a worker dying mid-stream"
if ! "$CLI" join --left "$TMP/data.txt" --right "$TMP/data.txt" --b1 0.6 \
  --probe-batch 16 \
  --connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2,127.0.0.1:$PORT3" \
  --dump-pairs "$TMP/rs_tcp.txt" | tee "$TMP/coord_recovery.log"; then
  echo "error: recovery coordinator failed" >&2
  cat "$TMP"/worker*.log >&2
  exit 1
fi
if ! grep -q 'recovered 1 worker(s)' "$TMP/coord_recovery.log"; then
  echo "FAIL: coordinator did not report the worker recovery" >&2
  cat "$TMP/coord_recovery.log" "$TMP/worker3.log" >&2
  exit 1
fi
if ! diff -u "$TMP/rs_single.txt" "$TMP/rs_tcp.txt"; then
  echo "FAIL: recovered R-S join diverged from the single-process join" >&2
  exit 1
fi

# The survivor that adopted the dead worker's slices must have counted
# the reassignment — scrape both live workers and require it somewhere.
reassign1="$(scrape_counter "127.0.0.1:$PORT1" worker.reassignments)"
reassign2="$(scrape_counter "127.0.0.1:$PORT2" worker.reassignments)"
if [ "$((reassign1 + reassign2))" -lt 1 ]; then
  echo "FAIL: no surviving worker counted a reassignment after the kill" \
    "round (worker1=$reassign1 worker2=$reassign2)" >&2
  exit 1
fi
echo "reassignment visible in survivor stats (worker1=$reassign1 worker2=$reassign2)"

# The rigged worker must be gone on its own, with the distinct
# die-after-batches exit code (3) — not killed by our cleanup.
W3_PID="${WORKER_PIDS[2]}"
w3_status=0
wait "$W3_PID" || w3_status=$?
if [ "$w3_status" -ne 3 ]; then
  echo "error: rigged worker exited $w3_status, expected 3" >&2
  cat "$TMP/worker3.log" >&2
  exit 1
fi

echo "--- round 3: frozen-shard workers (SKF1 pre-mapped, zero-copy serve)"
# Freeze the same dataset with the same index parameters (b1 0.6, seed
# default) into a 2-shard SKF1 file, start two fresh workers that
# pre-map it via --shard-file, and run the self-join against them with
# --frozen: the coordinator ships only tiny ShardAssignment frames (no
# posting payload crosses the wire) yet the dumped pairs must still be
# byte-identical to the single-process baseline of round 1.
"$CLI" freeze --in "$TMP/data.txt" --out "$TMP/data.skf" --b1 0.6 --shards 2
start_worker "$TMP/worker4.log" --shard-file "$TMP/data.skf" --data "$TMP/data.txt"
start_worker "$TMP/worker5.log" --shard-file "$TMP/data.skf" --data "$TMP/data.txt"
PORT4="$(grep -o 'port [0-9]*' "$TMP/worker4.log" | cut -d' ' -f2)"
PORT5="$(grep -o 'port [0-9]*' "$TMP/worker5.log" | cut -d' ' -f2)"
if ! grep -q 'mapped 2 frozen shard(s)' "$TMP/worker4.log"; then
  echo "FAIL: frozen worker did not report mapping the SKF1 file" >&2
  cat "$TMP/worker4.log" >&2
  exit 1
fi
echo "frozen workers listening on ports $PORT4, $PORT5"

if ! "$CLI" selfjoin --in "$TMP/data.txt" --b1 0.6 --probe-batch 32 \
  --frozen "$TMP/data.skf" --connect "127.0.0.1:$PORT4,127.0.0.1:$PORT5" \
  --dump-pairs "$TMP/frozen_tcp.txt" | tee "$TMP/coord_frozen.log"; then
  echo "error: frozen-shard coordinator failed" >&2
  cat "$TMP/worker4.log" "$TMP/worker5.log" >&2
  exit 1
fi
if ! grep -q 'served zero-copy' "$TMP/coord_frozen.log"; then
  echo "FAIL: coordinator did not report the frozen build side" >&2
  cat "$TMP/coord_frozen.log" >&2
  exit 1
fi
if ! diff -u "$TMP/single.txt" "$TMP/frozen_tcp.txt"; then
  echo "FAIL: frozen-shard join diverged from the single-process baseline" >&2
  exit 1
fi
echo "frozen-shard join byte-identical to the baseline ($pair_count pairs)"

echo "--- draining the surviving workers (SIGTERM)"
stop_worker "${WORKER_PIDS[0]}"
stop_worker "${WORKER_PIDS[1]}"
stop_worker "${WORKER_PIDS[3]}"
stop_worker "${WORKER_PIDS[4]}"
WORKER_PIDS=()
cat "$TMP/worker1.log" "$TMP/worker2.log" "$TMP/worker3.log" \
  "$TMP/worker4.log" "$TMP/worker5.log"

echo "PASS: 2 concurrent coordinators byte-identical ($pair_count pairs)," \
  "the R-S join recovered a killed worker with byte-identical output," \
  "and the frozen-shard (--shard-file/--frozen) round matched it too"
