#!/usr/bin/env bash
# Documentation lint: compile every public header of the documented
# layers standalone under clang's doxygen checker. Fails on any
# -Wdocumentation diagnostic (mismatched \param names, \return on a
# void function, malformed comment markup), so the doc-comment blocks
# the architecture docs link to cannot rot silently.
#
# Usage: tools/check_docs.sh [clang++ binary]
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-clang++}"

if ! command -v "$CXX" > /dev/null; then
  echo "error: '$CXX' not found (pass a clang++ binary as \$1)" >&2
  exit 2
fi
if ! "$CXX" --version | grep -qi clang; then
  echo "error: '$CXX' is not clang (-Wdocumentation needs clang)" >&2
  exit 2
fi

status=0
for header in src/core/*.h src/maintenance/*.h src/distributed/*.h \
              src/distributed/transport/*.h src/obs/*.h \
              src/durability/*.h \
              src/util/containers.h src/util/mapped_file.h \
              src/hashing/sketch.h; do
  if ! "$CXX" -std=c++20 -fsyntax-only -Isrc \
       -Wdocumentation -Werror=documentation "$header"; then
    echo "FAIL: $header" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "docs check passed: all public headers clean under -Wdocumentation"
fi
exit "$status"
