#!/usr/bin/env bash
# Crash-durability smoke test of the WAL + recovery layer, end to end
# through the CLI: a `selfjoin --online --wal` run journals a seeded
# mutation stream into a durable directory and prints a flushed "wal:"
# marker once the log is synced and closed. Round 1 SIGKILLs one run
# right after that marker and requires a recovered index to answer a
# seeded probe set byte-identically to an uninterrupted run of the same
# command. Round 2 SIGKILLs a run *mid-churn* — the log ends wherever
# the kill landed — and requires recovery to be deterministic: two
# successive recoveries of the same directory must dump identical
# answers, with a nonzero number of replayed records so the round is
# not vacuous. (CI runs this; docs/FILE_FORMATS.md "SKW1" has the
# truncation rule under test.)
#
# Usage: tools/durability_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/skewsearch_cli"

if [ ! -x "$CLI" ]; then
  echo "error: '$CLI' not built (cmake --build $BUILD --target skewsearch_cli)" >&2
  exit 2
fi

TMP="$(mktemp -d)"
KILL_PIDS=()

cleanup() {
  for pid in "${KILL_PIDS[@]:-}"; do
    kill -9 "$pid" 2> /dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

"$CLI" generate --kind zipf --n 500 --d 1000 --p 0.9 --exp 1.2 --avg 8 \
  --seed 7 --out "$TMP/data.txt"

# Recovers a durable dir (read-only: --churn 0 appends nothing) and
# dumps the QueryAll answers of the fixed seeded probe set. The
# "recovery:" line lands in the named log for later assertions.
probe_dump() {
  local dir="$1" out="$2" log="$3"
  "$CLI" query-bench --in "$TMP/data.txt" --alpha 0.7 --online \
    --maintenance 0 --wal "$dir" --churn 0 --queries 0 --probes 96 \
    --dump-matches "$out" --seed 9 > "$log"
}

# Starts the durable selfjoin against $1 in the background, logging to
# $2; the caller decides when (and whether) to kill it.
start_selfjoin() {
  local dir="$1" log="$2" churn="$3"
  "$CLI" selfjoin --in "$TMP/data.txt" --b1 0.5 --shards 2 --online \
    --maintenance 0 --wal "$dir" --sync-policy always --churn "$churn" \
    --seed 9 > "$log" 2>&1 &
  KILL_PIDS+=("$!")
}

echo "--- round 1: SIGKILL after the flushed wal marker"
# Run A: uninterrupted reference.
"$CLI" selfjoin --in "$TMP/data.txt" --b1 0.5 --shards 2 --online \
  --maintenance 0 --wal "$TMP/wal_a" --sync-policy always --churn 80 \
  --seed 9 > "$TMP/run_a.log" 2>&1
grep '^wal:' "$TMP/run_a.log"
probe_dump "$TMP/wal_a" "$TMP/dump_a.txt" "$TMP/dump_a.log"

# Run B: identical command, SIGKILLed right after the marker (the log
# is synced and closed by then; the process is mid-join).
start_selfjoin "$TMP/wal_b" "$TMP/run_b.log" 80
RUN_B="${KILL_PIDS[0]}"
for _ in $(seq 1 300); do
  if grep -q '^wal:' "$TMP/run_b.log"; then break; fi
  if ! kill -0 "$RUN_B" 2> /dev/null; then break; fi
  sleep 0.1
done
if ! grep -q '^wal:' "$TMP/run_b.log"; then
  echo "FAIL: run B never printed its wal marker" >&2
  cat "$TMP/run_b.log" >&2
  exit 1
fi
kill -9 "$RUN_B" 2> /dev/null || true
wait "$RUN_B" 2> /dev/null || true
echo "run B killed -9 after its wal marker"

probe_dump "$TMP/wal_b" "$TMP/dump_b.txt" "$TMP/dump_b.log"
if ! diff -u "$TMP/dump_a.txt" "$TMP/dump_b.txt"; then
  echo "FAIL: recovered index (killed run) diverged from the clean run" >&2
  cat "$TMP/dump_a.log" "$TMP/dump_b.log" >&2
  exit 1
fi
match_count="$(wc -l < "$TMP/dump_a.txt")"
if [ "$match_count" -eq 0 ]; then
  echo "FAIL: probe dumps are empty; the identity check is vacuous" >&2
  exit 1
fi
echo "killed and clean runs answer identically ($match_count match lines)"

echo "--- round 2: SIGKILL mid-churn, then recover twice"
# A churn far larger than round 1's so the kill lands inside the
# journaled mutation stream, not after it.
start_selfjoin "$TMP/wal_c" "$TMP/run_c.log" 20000
RUN_C="${KILL_PIDS[1]}"
for _ in $(seq 1 300); do
  size="$(stat -c %s "$TMP/wal_c/wal.skw" 2> /dev/null || echo 0)"
  if [ "$size" -gt 8192 ]; then break; fi
  if ! kill -0 "$RUN_C" 2> /dev/null; then break; fi
  sleep 0.05
done
kill -9 "$RUN_C" 2> /dev/null || true
wait "$RUN_C" 2> /dev/null || true
if [ ! -s "$TMP/wal_c/wal.skw" ]; then
  echo "FAIL: mid-churn kill left no log to recover" >&2
  cat "$TMP/run_c.log" >&2
  exit 1
fi
echo "run C killed -9 mid-churn ($(stat -c %s "$TMP/wal_c/wal.skw") log bytes)"

probe_dump "$TMP/wal_c" "$TMP/dump_c1.txt" "$TMP/dump_c1.log"
probe_dump "$TMP/wal_c" "$TMP/dump_c2.txt" "$TMP/dump_c2.log"
grep '^recovery:' "$TMP/dump_c1.log"
if ! diff -u "$TMP/dump_c1.txt" "$TMP/dump_c2.txt"; then
  echo "FAIL: two recoveries of the same directory dumped different answers" >&2
  cat "$TMP/dump_c1.log" "$TMP/dump_c2.log" >&2
  exit 1
fi
replayed="$(grep -o '[0-9]* replayed' "$TMP/dump_c1.log" | cut -d' ' -f1)"
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
  echo "FAIL: mid-churn recovery replayed nothing; the round is vacuous" >&2
  cat "$TMP/dump_c1.log" >&2
  exit 1
fi
echo "mid-churn recovery deterministic ($replayed records replayed twice)"

KILL_PIDS=()
echo "PASS: post-marker kill recovered byte-identically to the clean run" \
  "($match_count match lines), and the mid-churn kill recovered" \
  "deterministically ($replayed records)"
