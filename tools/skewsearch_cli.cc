// Command-line entry point; all logic lives in src/cli (unit-tested).

#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return skewsearch::RunCli(args);
}
