#!/usr/bin/env python3
"""Compare bench JSON outputs against the committed baseline.

Every bench binary writes, via ``--json FILE``, one document of the form

    {"bench": "<name>",
     "metrics": {"<metric>": {"value": <number|null>,
                              "stable": true|false,
                              "unit": "<string>"}, ...}}

The committed baseline (``BENCH_baseline.json``) holds one such metrics
block per bench, keyed by bench name:

    {"benches": {"<name>": {"<metric>": {...}, ...}, ...}}

Comparison policy (the perf-regression contract, see docs/BENCHMARKS.md):

  * *stable* metrics are deterministic for a fixed seed on 1 CPU
    (counts, sizes, agreement flags). Any relative drift beyond
    ``--tolerance`` (default 10%) FAILS, as does a stable metric that
    is present in the baseline but missing from the current run.
  * *advisory* metrics (wall clock, speedups) are printed for the log
    but never fail the run — CI machines are too noisy to gate on them.
  * metrics new in the current run are reported as such; commit a
    refreshed baseline to start tracking them.

Usage:
    tools/bench_compare.py --baseline BENCH_baseline.json \
        BENCH_micro_intersect.json BENCH_batch_throughput.json
    tools/bench_compare.py --update-baseline BENCH_baseline.json *.json

Exit status: 0 clean, 1 stable-metric regression or missing metric,
2 usage/parse error.
"""

import argparse
import json
import sys


def load_run(path):
    """Loads one bench run document; returns (bench_name, metrics)."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "bench" not in doc or "metrics" not in doc:
        raise ValueError(f"{path}: not a bench JSON document "
                         "(missing 'bench' or 'metrics')")
    return doc["bench"], doc["metrics"]


def rel_diff(old, new):
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new))
    return abs(new - old) / denom if denom > 0 else float("inf")


def compare(baseline, runs, tolerance):
    """Returns the number of failures; prints a per-metric report."""
    failures = 0
    for bench, metrics in runs:
        base = baseline.get(bench)
        print(f"\n== {bench} ==")
        if base is None:
            print(f"  (no baseline entry for '{bench}'; nothing enforced — "
                  "commit a refreshed baseline to start tracking it)")
            continue
        for name, entry in base.items():
            if not entry.get("stable", False):
                continue
            if name not in metrics:
                print(f"  FAIL {name}: stable metric missing from current run")
                failures += 1
                continue
            old, new = entry.get("value"), metrics[name].get("value")
            if old is None or new is None:
                # Non-finite values serialize as null; nothing to enforce.
                print(f"  skip {name}: non-finite value")
                continue
            diff = rel_diff(old, new)
            if diff > tolerance:
                print(f"  FAIL {name}: {old:g} -> {new:g} "
                      f"({diff:.1%} > {tolerance:.0%} tolerance)")
                failures += 1
            else:
                print(f"  ok   {name}: {old:g} -> {new:g} ({diff:.1%})")
        for name, entry in metrics.items():
            value = entry.get("value")
            shown = "null" if value is None else f"{value:g}"
            unit = entry.get("unit", "")
            if name not in base:
                print(f"  new  {name}: {shown} {unit} (not in baseline)")
            elif not entry.get("stable", False):
                print(f"  info {name}: {shown} {unit} (advisory)")
    return failures


def update_baseline(path, runs):
    benches = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            benches = json.load(f).get("benches", {})
    except FileNotFoundError:
        pass
    for bench, metrics in runs:
        benches[bench] = metrics
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"benches": benches}, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline written: {path} ({len(benches)} benches)")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff bench JSON runs against a committed baseline.")
    parser.add_argument("runs", nargs="+", help="bench --json output files")
    parser.add_argument("--baseline", help="committed baseline to enforce")
    parser.add_argument("--update-baseline", metavar="PATH",
                        help="write/refresh a baseline from the runs instead "
                             "of comparing")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift for stable metrics "
                             "(default 0.10)")
    args = parser.parse_args(argv)

    try:
        runs = [load_run(path) for path in args.runs]
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.update_baseline:
        update_baseline(args.update_baseline, runs)
        return 0

    if not args.baseline:
        print("error: need --baseline (or --update-baseline)",
              file=sys.stderr)
        return 2
    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f).get("benches", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read baseline: {err}", file=sys.stderr)
        return 2

    failures = compare(baseline, runs, args.tolerance)
    if failures:
        print(f"\nbench_compare: {failures} stable-metric failure(s)")
        return 1
    print("\nbench_compare: all stable metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
