#include "sim/measures.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/random.h"

namespace skewsearch {
namespace {

const std::vector<ItemId> kA{1, 2, 3, 4};        // |A| = 4
const std::vector<ItemId> kB{3, 4, 5, 6, 7, 8};  // |B| = 6, |A n B| = 2

TEST(MeasuresTest, BraunBlanquet) {
  EXPECT_DOUBLE_EQ(BraunBlanquet(kA, kB), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(BraunBlanquet(kA, kA), 1.0);
}

TEST(MeasuresTest, Jaccard) {
  EXPECT_DOUBLE_EQ(Jaccard(kA, kB), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(Jaccard(kA, kA), 1.0);
}

TEST(MeasuresTest, Dice) {
  EXPECT_DOUBLE_EQ(Dice(kA, kB), 4.0 / 10.0);
}

TEST(MeasuresTest, Overlap) {
  EXPECT_DOUBLE_EQ(Overlap(kA, kB), 2.0 / 4.0);
}

TEST(MeasuresTest, Cosine) {
  EXPECT_DOUBLE_EQ(Cosine(kA, kB), 2.0 / std::sqrt(24.0));
}

TEST(MeasuresTest, EmptyYieldsZero) {
  std::vector<ItemId> empty;
  for (Measure m : {Measure::kBraunBlanquet, Measure::kJaccard,
                    Measure::kDice, Measure::kOverlap, Measure::kCosine}) {
    EXPECT_EQ(Similarity(m, kA, empty), 0.0);
    EXPECT_EQ(Similarity(m, empty, empty), 0.0);
  }
}

TEST(MeasuresTest, DispatchMatchesDirect) {
  EXPECT_EQ(Similarity(Measure::kBraunBlanquet, kA, kB),
            BraunBlanquet(kA, kB));
  EXPECT_EQ(Similarity(Measure::kJaccard, kA, kB), Jaccard(kA, kB));
}

TEST(MeasuresTest, FromCountsMatches) {
  EXPECT_EQ(SimilarityFromCounts(Measure::kBraunBlanquet, 4, 6, 2),
            BraunBlanquet(kA, kB));
  EXPECT_EQ(SimilarityFromCounts(Measure::kJaccard, 4, 6, 2),
            Jaccard(kA, kB));
}

TEST(MeasuresTest, OrderingInvariants) {
  // Known chain for any pair: BB <= Jaccard' relations — specifically
  // Jaccard <= Dice <= Overlap and BB <= Cosine <= Overlap.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<ItemId> sa, sb;
    while (sa.size() < 10) sa.insert(static_cast<ItemId>(rng.NextBounded(40)));
    while (sb.size() < 15) sb.insert(static_cast<ItemId>(rng.NextBounded(40)));
    std::vector<ItemId> a(sa.begin(), sa.end()), b(sb.begin(), sb.end());
    double bb = BraunBlanquet(a, b);
    double jac = Jaccard(a, b);
    double dice = Dice(a, b);
    double over = Overlap(a, b);
    double cos = Cosine(a, b);
    EXPECT_LE(jac, dice + 1e-12);
    EXPECT_LE(dice, over + 1e-12);
    EXPECT_LE(bb, cos + 1e-12);
    EXPECT_LE(cos, over + 1e-12);
    EXPECT_LE(bb, jac * 2 + 1e-12);
    // All in [0, 1].
    for (double v : {bb, jac, dice, over, cos}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(MeasuresTest, SymmetryProperty) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<ItemId> sa, sb;
    while (sa.size() < 8) sa.insert(static_cast<ItemId>(rng.NextBounded(30)));
    while (sb.size() < 12) sb.insert(static_cast<ItemId>(rng.NextBounded(30)));
    std::vector<ItemId> a(sa.begin(), sa.end()), b(sb.begin(), sb.end());
    for (Measure m : {Measure::kBraunBlanquet, Measure::kJaccard,
                      Measure::kDice, Measure::kOverlap, Measure::kCosine}) {
      EXPECT_DOUBLE_EQ(Similarity(m, a, b), Similarity(m, b, a));
    }
  }
}

TEST(MeasuresTest, EmpiricalPearsonPerfectAndZero) {
  std::vector<ItemId> a{1, 2, 3};
  EXPECT_NEAR(EmpiricalPearson(a, a, 10), 1.0, 1e-12);
  std::vector<ItemId> b{4, 5, 6};
  // Disjoint equal-sized sets in d=6: perfectly anti-correlated.
  EXPECT_NEAR(EmpiricalPearson(a, b, 6), -1.0, 1e-12);
  EXPECT_EQ(EmpiricalPearson(a, b, 0), 0.0);
}

TEST(MeasuresTest, BraunBlanquetJaccardConversionRoundTrip) {
  for (double b : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    double j = BraunBlanquetToJaccardEquivalent(b);
    EXPECT_NEAR(JaccardToBraunBlanquetEquivalent(j), b, 1e-12);
  }
  // Equal-size sets: the conversion is exact.
  std::vector<ItemId> a{1, 2, 3, 4}, b{3, 4, 5, 6};
  EXPECT_NEAR(BraunBlanquetToJaccardEquivalent(BraunBlanquet(a, b)),
              Jaccard(a, b), 1e-12);
}

}  // namespace
}  // namespace skewsearch
