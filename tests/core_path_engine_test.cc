#include "core/path_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

// A policy with a fixed threshold, for controlled engine tests.
class FixedPolicy : public ThresholdPolicy {
 public:
  explicit FixedPolicy(double s) : s_(s) {}
  double Threshold(size_t, int, ItemId) const override { return s_; }

 private:
  double s_;
};

// Engine variant that records full paths by re-running the recursion
// manually — used to validate invariants. We reconstruct paths by walking
// the same decisions the engine makes.
struct TestContext {
  ProductDistribution dist;
  PathHasher hasher;
  TestContext(ProductDistribution d, uint64_t seed, int levels)
      : dist(std::move(d)), hasher(seed, levels) {}
};

TEST(PathEngineTest, EmptyVectorProducesNoFilters) {
  auto dist = UniformProbabilities(10, 0.3).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(1, 8);
  PathEngineOptions options;
  options.log_n = std::log(100.0);
  PathEngine engine(&dist, &policy, &hasher, options);
  std::vector<uint64_t> out;
  PathGenStats stats;
  engine.ComputeFilters({}, 0, &out, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.filters_emitted, 0u);
}

TEST(PathEngineTest, DeterministicAcrossCalls) {
  auto dist = UniformProbabilities(100, 0.25).value();
  FixedPolicy policy(0.3);
  PathHasher hasher(7, 16);
  PathEngineOptions options;
  options.log_n = std::log(1000.0);
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({1, 5, 9, 20, 33, 47, 60, 78, 90});
  std::vector<uint64_t> a, b;
  engine.ComputeFilters(x.span(), 0, &a, nullptr);
  engine.ComputeFilters(x.span(), 0, &b, nullptr);
  EXPECT_EQ(a, b);
}

TEST(PathEngineTest, RepetitionsProduceDifferentFilters) {
  auto dist = UniformProbabilities(100, 0.25).value();
  FixedPolicy policy(0.3);
  PathHasher hasher(7, 16);
  PathEngineOptions options;
  options.log_n = std::log(1000.0);
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({1, 5, 9, 20, 33, 47, 60, 78, 90});
  std::vector<uint64_t> a, b;
  engine.ComputeFilters(x.span(), 0, &a, nullptr);
  engine.ComputeFilters(x.span(), 1, &b, nullptr);
  std::set<uint64_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::vector<uint64_t> common;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

TEST(PathEngineTest, StopRuleBoundsPathProbability) {
  // With threshold 1 (take every item) and all p = 0.5 the engine must
  // emit exactly the paths of length ceil(log2 n): each path stops at the
  // first length where (1/2)^len <= 1/n.
  const size_t n = 100;
  auto dist = UniformProbabilities(8, 0.5).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(11, 16);
  PathEngineOptions options;
  options.log_n = std::log(static_cast<double>(n));
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<uint64_t> out;
  PathGenStats stats;
  engine.ComputeFilters(x.span(), 0, &out, &stats);
  // ceil(log2 100) = 7; paths = 8 P 7 ordered selections without
  // replacement = 8!/(8-7)! = 40320... all chosen since threshold 1.
  // Depth: ln(100)/ln(2) = 6.64 -> length 7.
  size_t expected = 1;
  for (size_t k = 8; k > 1; --k) expected *= k;  // 8*7*6*5*4*3*2 = 40320
  EXPECT_EQ(out.size(), expected);
}

TEST(PathEngineTest, RareItemsShortenPaths) {
  // One ultra-rare item: a path through it should stop immediately
  // (p <= 1/n), giving length-1 filters.
  const size_t n = 1000;
  std::vector<double> p{0.0005, 0.5, 0.5, 0.5};
  auto dist = ProductDistribution::Create(p).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(13, 16);
  PathEngineOptions options;
  options.log_n = std::log(static_cast<double>(n));
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({0});
  std::vector<uint64_t> out;
  engine.ComputeFilters(x.span(), 0, &out, nullptr);
  // Only the single path (0), which stops right away.
  EXPECT_EQ(out.size(), 1u);
}

TEST(PathEngineTest, WithoutReplacementNeverRepeatsItems) {
  // With only 3 items of p = 0.5 and n = 1000 (needs depth 10), paths can
  // never reach the stop rule without repeating; without replacement the
  // recursion must die out, emitting nothing, rather than looping.
  auto dist = UniformProbabilities(3, 0.5).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(17, 16);
  PathEngineOptions options;
  options.log_n = std::log(1000.0);
  options.without_replacement = true;
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({0, 1, 2});
  std::vector<uint64_t> out;
  engine.ComputeFilters(x.span(), 0, &out, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(PathEngineTest, WithReplacementCanRepeat) {
  // Same setup but with replacement: paths of length 10 exist.
  auto dist = UniformProbabilities(3, 0.5).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(17, 16);
  PathEngineOptions options;
  options.log_n = std::log(1000.0);
  options.without_replacement = false;
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({0, 1, 2});
  std::vector<uint64_t> out;
  engine.ComputeFilters(x.span(), 0, &out, nullptr);
  // 3^10 paths all taken with threshold 1.
  EXPECT_EQ(out.size(), static_cast<size_t>(std::pow(3, 10)));
}

TEST(PathEngineTest, FixedDepthStopRule) {
  auto dist = UniformProbabilities(5, 0.5).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(19, 8);
  PathEngineOptions options;
  options.stop_rule = StopRule::kFixedDepth;
  options.fixed_depth = 2;
  options.without_replacement = false;
  PathEngine engine(&dist, &policy, &hasher, options);
  SparseVector x = SparseVector::Of({0, 1, 2, 3, 4});
  std::vector<uint64_t> out;
  engine.ComputeFilters(x.span(), 0, &out, nullptr);
  EXPECT_EQ(out.size(), 25u);  // 5^2 ordered pairs with replacement
}

TEST(PathEngineTest, ThresholdScalesFilterCount) {
  // Halving the threshold should roughly quarter depth-2 path counts.
  auto dist = UniformProbabilities(200, 0.5).value();
  PathHasher hasher(23, 8);
  PathEngineOptions options;
  options.stop_rule = StopRule::kFixedDepth;
  options.fixed_depth = 2;
  options.without_replacement = false;

  auto count_for = [&](double s) {
    FixedPolicy policy(s);
    PathEngine engine(&dist, &policy, &hasher, options);
    SparseVector x = SparseVector::FromSorted([] {
      std::vector<ItemId> ids(200);
      for (ItemId i = 0; i < 200; ++i) ids[i] = i;
      return ids;
    }());
    double total = 0;
    for (uint32_t rep = 0; rep < 50; ++rep) {
      std::vector<uint64_t> out;
      engine.ComputeFilters(x.span(), rep, &out, nullptr);
      total += static_cast<double>(out.size());
    }
    return total / 50.0;
  };
  double full = count_for(0.2);   // E = (200*0.2)^2 = 1600
  double half = count_for(0.1);   // E = (200*0.1)^2 = 400
  EXPECT_NEAR(full / half, 4.0, 0.8);
}

TEST(PathEngineTest, CapTruncatesAndReports) {
  auto dist = UniformProbabilities(50, 0.5).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(29, 8);
  PathEngineOptions options;
  options.stop_rule = StopRule::kFixedDepth;
  options.fixed_depth = 4;
  options.without_replacement = false;
  options.max_paths = 1000;  // far below 50^4
  PathEngine engine(&dist, &policy, &hasher, options);
  std::vector<ItemId> ids(50);
  for (ItemId i = 0; i < 50; ++i) ids[i] = i;
  SparseVector x = SparseVector::FromSorted(ids);
  std::vector<uint64_t> out;
  PathGenStats stats;
  engine.ComputeFilters(x.span(), 0, &out, &stats);
  EXPECT_TRUE(stats.cap_hit);
  EXPECT_LE(out.size(), 1001u);
}

TEST(PathEngineTest, StatsCountNodesAndDraws) {
  auto dist = UniformProbabilities(20, 0.5).value();
  FixedPolicy policy(0.5);
  PathHasher hasher(31, 8);
  PathEngineOptions options;
  options.stop_rule = StopRule::kFixedDepth;
  options.fixed_depth = 2;
  options.without_replacement = false;
  PathEngine engine(&dist, &policy, &hasher, options);
  std::vector<ItemId> ids(20);
  for (ItemId i = 0; i < 20; ++i) ids[i] = i;
  SparseVector x = SparseVector::FromSorted(ids);
  std::vector<uint64_t> out;
  PathGenStats stats;
  engine.ComputeFilters(x.span(), 0, &out, &stats);
  EXPECT_GT(stats.nodes_expanded, 0u);
  EXPECT_GE(stats.draws, stats.nodes_expanded);  // >= |x| draws per node
  EXPECT_EQ(stats.filters_emitted, out.size());
}

TEST(PathEngineTest, SharedItemsYieldSharedFilters) {
  // Two vectors sharing most items should share filters; disjoint vectors
  // share none. This is the collision property the index relies on.
  auto dist = UniformProbabilities(300, 0.05).value();
  AdversarialPolicy policy(0.5);
  PathHasher hasher(37, 16);
  PathEngineOptions options;
  options.log_n = std::log(500.0);
  PathEngine engine(&dist, &policy, &hasher, options);

  std::vector<ItemId> base;
  for (ItemId i = 0; i < 40; ++i) base.push_back(i);
  SparseVector x = SparseVector::FromSorted(base);
  std::vector<ItemId> mostly = base;
  mostly.erase(mostly.begin(), mostly.begin() + 4);  // drop 4 of 40
  for (ItemId i = 100; i < 104; ++i) mostly.push_back(i);
  SparseVector y = SparseVector::FromIds(mostly);
  std::vector<ItemId> other;
  for (ItemId i = 200; i < 240; ++i) other.push_back(i);
  SparseVector z = SparseVector::FromSorted(other);

  size_t shared_xy = 0, shared_xz = 0;
  for (uint32_t rep = 0; rep < 30; ++rep) {
    std::vector<uint64_t> fx, fy, fz;
    engine.ComputeFilters(x.span(), rep, &fx, nullptr);
    engine.ComputeFilters(y.span(), rep, &fy, nullptr);
    engine.ComputeFilters(z.span(), rep, &fz, nullptr);
    std::set<uint64_t> sx(fx.begin(), fx.end());
    for (uint64_t k : fy) shared_xy += sx.count(k);
    for (uint64_t k : fz) shared_xz += sx.count(k);
  }
  EXPECT_GT(shared_xy, 0u);
  EXPECT_EQ(shared_xz, 0u);
}

TEST(PathEngineTest, FusedAllRepsMatchesPerRepByteForByte) {
  // The fused level-synchronous pass must reproduce each repetition's
  // key stream exactly — same keys, same order — and sum the stats.
  auto dist = TwoBlockProbabilities(20, 0.3, 300, 0.01).value();
  FixedPolicy policy(0.25);
  PathHasher hasher(11, 32);
  PathEngineOptions options;
  options.log_n = std::log(2000.0);
  PathEngine engine(&dist, &policy, &hasher, options);

  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector x = dist.Sample(&rng);
    const uint32_t reps = 1 + static_cast<uint32_t>(trial % 7);

    std::vector<uint64_t> fused;
    std::vector<size_t> offsets;
    PathGenStats fused_stats;
    size_t capped = 0;
    engine.ComputeFiltersAllReps(x.span(), reps, &fused, &offsets,
                                 &fused_stats, &capped);
    ASSERT_EQ(offsets.size(), reps + 1);
    ASSERT_EQ(offsets.front(), 0u);
    ASSERT_EQ(offsets.back(), fused.size());
    EXPECT_EQ(capped, 0u);

    size_t emitted = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      std::vector<uint64_t> single;
      PathGenStats stats;
      engine.ComputeFilters(x.span(), rep, &single, &stats);
      emitted += stats.filters_emitted;
      ASSERT_EQ(offsets[rep + 1] - offsets[rep], single.size()) << rep;
      for (size_t i = 0; i < single.size(); ++i) {
        ASSERT_EQ(fused[offsets[rep] + i], single[i])
            << "rep " << rep << " pos " << i;
      }
    }
    EXPECT_EQ(fused_stats.filters_emitted, emitted);
  }
}

TEST(PathEngineTest, FusedAllRepsHandlesEmptyVectorAndZeroReps) {
  auto dist = UniformProbabilities(10, 0.3).value();
  FixedPolicy policy(1.0);
  PathHasher hasher(1, 8);
  PathEngineOptions options;
  options.log_n = std::log(100.0);
  PathEngine engine(&dist, &policy, &hasher, options);

  std::vector<uint64_t> keys;
  std::vector<size_t> offsets;
  engine.ComputeFiltersAllReps({}, 4, &keys, &offsets, nullptr);
  EXPECT_TRUE(keys.empty());
  ASSERT_EQ(offsets.size(), 5u);

  SparseVector x = SparseVector::Of({1, 3, 5});
  engine.ComputeFiltersAllReps(x.span(), 0, &keys, &offsets, nullptr);
  EXPECT_TRUE(keys.empty());
  ASSERT_EQ(offsets.size(), 1u);
}

}  // namespace
}  // namespace skewsearch
