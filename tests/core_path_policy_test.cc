#include "core/path_policy.h"

#include <gtest/gtest.h>

#include "core/rho.h"
#include "data/generators.h"

namespace skewsearch {
namespace {

TEST(AdversarialPolicyTest, MatchesFormula) {
  AdversarialPolicy policy(0.5);
  // s = 1 / (b1 |x| - j).
  EXPECT_DOUBLE_EQ(policy.Threshold(100, 0, 7), 1.0 / 50.0);
  EXPECT_DOUBLE_EQ(policy.Threshold(100, 10, 7), 1.0 / 40.0);
}

TEST(AdversarialPolicyTest, ItemIndependent) {
  AdversarialPolicy policy(0.3);
  EXPECT_EQ(policy.Threshold(50, 3, 0), policy.Threshold(50, 3, 999));
}

TEST(AdversarialPolicyTest, ClampsWhenBudgetSpent) {
  AdversarialPolicy policy(0.5);
  // b1|x| - j <= 1 => sample surely.
  EXPECT_DOUBLE_EQ(policy.Threshold(10, 4, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.Threshold(10, 9, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.Threshold(2, 0, 0), 1.0);
}

TEST(AdversarialPolicyTest, MonotoneInDepth) {
  AdversarialPolicy policy(0.4);
  double prev = 0.0;
  for (int j = 0; j < 30; ++j) {
    double s = policy.Threshold(100, j, 0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(CorrelatedPolicyTest, RareItemsSampledMoreAggressively) {
  auto dist = TwoBlockProbabilities(100, 0.4, 100, 0.01).value();
  CorrelatedPolicy policy(&dist, 0.5, 0.1);
  // p_hat(rare) < p_hat(frequent) => larger threshold for rare items.
  double s_frequent = policy.Threshold(50, 0, 0);
  double s_rare = policy.Threshold(50, 0, 150);
  EXPECT_GT(s_rare, s_frequent);
}

TEST(CorrelatedPolicyTest, MatchesFormula) {
  auto dist = UniformProbabilities(100, 0.25).value();
  const double alpha = 0.5, delta = 0.2;
  CorrelatedPolicy policy(&dist, alpha, delta);
  double p_hat = ConditionalProbability(0.25, alpha);
  double m = dist.SumP();  // 25
  for (int j : {0, 3, 9}) {
    EXPECT_DOUBLE_EQ(policy.Threshold(77, j, 5),
                     (1.0 + delta) / (p_hat * m - j))
        << "depth " << j;
  }
}

TEST(CorrelatedPolicyTest, SizeIndependent) {
  auto dist = UniformProbabilities(100, 0.25).value();
  CorrelatedPolicy policy(&dist, 0.5, 0.1);
  EXPECT_EQ(policy.Threshold(10, 2, 5), policy.Threshold(1000, 2, 5));
}

TEST(CorrelatedPolicyTest, ClampsToOneForDeepPaths) {
  // Small universe: p_hat * m barely exceeds j quickly.
  auto dist = UniformProbabilities(4, 0.4).value();  // m = 1.6
  CorrelatedPolicy policy(&dist, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(policy.Threshold(4, 3, 0), 1.0);
}

TEST(CorrelatedPolicyTest, HigherAlphaLowersRareThreshold) {
  // Larger alpha raises p_hat for rare items => smaller threshold needed.
  auto dist = TwoBlockProbabilities(10, 0.3, 10, 0.001).value();
  CorrelatedPolicy lo(&dist, 0.2, 0.1);
  CorrelatedPolicy hi(&dist, 0.9, 0.1);
  EXPECT_GT(lo.Threshold(10, 0, 15), hi.Threshold(10, 0, 15));
}

TEST(ClassicChosenPathPolicyTest, DepthAndItemIndependent) {
  ClassicChosenPathPolicy policy(0.5);
  EXPECT_DOUBLE_EQ(policy.Threshold(80, 0, 1), 1.0 / 40.0);
  EXPECT_EQ(policy.Threshold(80, 0, 1), policy.Threshold(80, 17, 999));
}

TEST(ClassicChosenPathPolicyTest, ClampsTinyVectors) {
  ClassicChosenPathPolicy policy(0.5);
  EXPECT_DOUBLE_EQ(policy.Threshold(1, 0, 0), 1.0);
}

TEST(PolicyTest, ExpectedBranchingNearOneForCorrelatedPair) {
  // Lemma 11's engine: for x n q distributed as p_i * p_hat_i, the expected
  // number of sampled children per shared path is ~ (1 + delta).
  auto dist = TwoBlockProbabilities(500, 0.25, 20000, 0.005).value();
  const double alpha = 0.6, delta = 0.15;
  CorrelatedPolicy policy(&dist, alpha, delta);
  double expected_branching = 0.0;
  for (ItemId i = 0; i < dist.dimension(); ++i) {
    double p_joint =
        dist.p(i) * ConditionalProbability(dist.p(i), alpha);
    expected_branching += p_joint * policy.Threshold(0, 0, i);
  }
  EXPECT_NEAR(expected_branching, 1.0 + delta, 0.02);
}

}  // namespace
}  // namespace skewsearch
