#include "stats/exponent_fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace skewsearch {
namespace {

TEST(ExponentFitTest, ExactPowerLaw) {
  std::vector<double> ns, costs;
  for (double n : {1000.0, 2000.0, 4000.0, 8000.0, 16000.0}) {
    ns.push_back(n);
    costs.push_back(3.5 * std::pow(n, 0.42));
  }
  auto fit = FitPowerLaw(ns, costs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 0.42, 1e-9);
  EXPECT_NEAR(std::exp(fit->log_constant), 3.5, 1e-6);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

TEST(ExponentFitTest, NoisyPowerLawStillClose) {
  Rng rng(1);
  std::vector<double> ns, costs;
  for (int k = 10; k <= 17; ++k) {
    double n = std::pow(2.0, k);
    ns.push_back(n);
    double noise = 1.0 + 0.1 * (rng.NextDouble() - 0.5);
    costs.push_back(2.0 * std::pow(n, 0.3) * noise);
  }
  auto fit = FitPowerLaw(ns, costs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 0.3, 0.03);
  EXPECT_GT(fit->r_squared, 0.98);
}

TEST(ExponentFitTest, ConstantCostsGiveZeroExponent) {
  auto fit = FitPowerLaw({100.0, 1000.0, 10000.0}, {5.0, 5.0, 5.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 0.0, 1e-12);
}

TEST(ExponentFitTest, Validates) {
  EXPECT_FALSE(FitPowerLaw({1.0}, {1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, -2.0}, {1.0, 1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {0.0, 1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({5.0, 5.0}, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace skewsearch
