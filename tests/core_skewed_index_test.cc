#include "core/skewed_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/correlated.h"
#include "data/generators.h"
#include "sim/measures.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(SkewedIndexTest, BuildValidatesArguments) {
  SkewedPathIndex index;
  SkewedIndexOptions options;
  auto dist = UniformProbabilities(10, 0.2).value();
  Dataset data;
  EXPECT_TRUE(index.Build(nullptr, &dist, options).IsInvalidArgument());
  EXPECT_TRUE(index.Build(&data, nullptr, options).IsInvalidArgument());
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());

  data.Add(SparseVector::Of({1}));
  data.Add(SparseVector::Of({2}));
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.0;
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
  options.b1 = 1.0;
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());

  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.0;
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
  options.alpha = 1.2;
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
}

TEST(SkewedIndexTest, BuildRejectsDimensionMismatch) {
  SkewedPathIndex index;
  SkewedIndexOptions options;
  auto dist = UniformProbabilities(5, 0.2).value();
  Dataset data;
  data.Add(SparseVector::Of({100}));
  data.Add(SparseVector::Of({1}));
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
}

TEST(SkewedIndexTest, NotBuiltQueriesReturnNothing) {
  SkewedPathIndex index;
  EXPECT_FALSE(index.built());
  SparseVector q = SparseVector::Of({1, 2});
  EXPECT_FALSE(index.Query(q.span()).has_value());
  EXPECT_TRUE(index.QueryAll(q.span(), 0.0).empty());
  EXPECT_TRUE(index.ComputeFilterKeys(q.span()).empty());
}

TEST(SkewedIndexTest, DerivedParametersPopulated) {
  auto dist = UniformProbabilities(2000, 0.05).value();  // m = 100
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 256, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  EXPECT_TRUE(index.built());
  EXPECT_GT(index.repetitions(), 0);
  EXPECT_NEAR(index.verify_threshold(), 0.8 / 1.3, 1e-12);
  EXPECT_GT(index.build_stats().total_filters, 0u);
  EXPECT_GT(index.build_stats().delta_used, 0.0);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(SkewedIndexTest, ExplicitRepetitionsHonored) {
  auto dist = UniformProbabilities(500, 0.1).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 64, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  options.repetitions = 7;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  EXPECT_EQ(index.repetitions(), 7);
}

TEST(SkewedIndexTest, FindsExactDuplicateAdversarial) {
  auto dist = UniformProbabilities(3000, 0.03).value();  // E|x| = 90
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 300, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.7;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  // Query with an exact copy of a stored vector: B = 1 >= b1; Lemma 5
  // across ~2 ln n repetitions should find it virtually always.
  int found = 0;
  for (VectorId id = 0; id < 50; ++id) {
    auto hit = index.Query(data.Get(id));
    if (hit && hit->id == id) ++found;
  }
  EXPECT_GE(found, 45);
}

TEST(SkewedIndexTest, CorrelatedQueriesRecallPlantedTarget) {
  const double alpha = 0.75;
  auto dist = TwoBlockProbabilities(400, 0.25, 30000, 0.004).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, 512, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  CorrelatedQuerySampler sampler(&dist, alpha);
  int found = 0;
  const int kQueries = 60;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
    auto hit = index.Query(q.span());
    // Any returned match must clear the verify threshold; the planted
    // target is the overwhelmingly likely unique match (Lemma 10).
    if (hit && hit->id == target) ++found;
  }
  EXPECT_GE(found, kQueries * 8 / 10);
}

TEST(SkewedIndexTest, ReturnedMatchesMeetThreshold) {
  auto dist = UniformProbabilities(1500, 0.05).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 200, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.6;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  for (VectorId id = 0; id < 20; ++id) {
    auto hit = index.Query(data.Get(id));
    if (hit) {
      EXPECT_GE(hit->similarity, index.verify_threshold());
      EXPECT_DOUBLE_EQ(hit->similarity,
                       BraunBlanquet(data.Get(id), data.Get(hit->id)));
    }
  }
}

TEST(SkewedIndexTest, QueryAllFindsAllNearDuplicates) {
  // Three near-identical vectors planted among noise; QueryAll must
  // surface all of them (with enough repetitions).
  auto dist = UniformProbabilities(4000, 0.02).value();
  Rng rng(6);
  Dataset data;
  SparseVector base = dist.Sample(&rng);
  data.Add(base);
  // Two copies with one item changed.
  for (int c = 0; c < 2; ++c) {
    std::vector<ItemId> ids(base.ids());
    ids[static_cast<size_t>(c)] = 3999 - static_cast<ItemId>(c);
    data.Add(SparseVector::FromIds(ids));
  }
  for (int i = 0; i < 200; ++i) data.Add(dist.Sample(&rng));
  ASSERT_TRUE(data.SetDimension(4000).ok());

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.8;
  options.repetition_boost = 3.0;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  auto matches = index.QueryAll(base.span(), 0.8);
  // Expect to see ids 0, 1, 2.
  std::set<VectorId> ids;
  for (const auto& m : matches) ids.insert(m.id);
  EXPECT_TRUE(ids.count(0));
  EXPECT_GE(ids.size(), 2u);
}

TEST(SkewedIndexTest, QueryStatsAreConsistent) {
  auto dist = UniformProbabilities(1000, 0.05).value();
  Rng rng(7);
  Dataset data = GenerateDataset(dist, 128, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  CorrelatedQuerySampler sampler(&dist, 0.7);
  QueryStats stats;
  SparseVector q = sampler.SampleCorrelated(data.Get(0), &rng);
  index.QueryAll(q.span(), 0.0, &stats);
  EXPECT_GE(stats.candidates, stats.distinct_candidates);
  EXPECT_EQ(stats.verifications, stats.distinct_candidates);
  EXPECT_GE(stats.filters, 0u);
}

TEST(SkewedIndexTest, DeterministicForFixedSeed) {
  auto dist = UniformProbabilities(800, 0.06).value();
  Rng rng(8);
  Dataset data = GenerateDataset(dist, 100, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  options.seed = 1234;
  SkewedPathIndex a, b;
  ASSERT_TRUE(a.Build(&data, &dist, options).ok());
  ASSERT_TRUE(b.Build(&data, &dist, options).ok());
  SparseVector q = data.GetVector(3);
  EXPECT_EQ(a.ComputeFilterKeys(q.span()), b.ComputeFilterKeys(q.span()));
  EXPECT_EQ(a.build_stats().total_filters, b.build_stats().total_filters);
}

TEST(SkewedIndexTest, DifferentSeedsChangeFilters) {
  auto dist = UniformProbabilities(800, 0.06).value();
  Rng rng(9);
  Dataset data = GenerateDataset(dist, 100, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  SkewedPathIndex a, b;
  options.seed = 1;
  ASSERT_TRUE(a.Build(&data, &dist, options).ok());
  options.seed = 2;
  ASSERT_TRUE(b.Build(&data, &dist, options).ok());
  SparseVector q = data.GetVector(3);
  EXPECT_NE(a.ComputeFilterKeys(q.span()), b.ComputeFilterKeys(q.span()));
}

TEST(SkewedIndexTest, PairwiseHashEngineWorks) {
  auto dist = UniformProbabilities(1000, 0.05).value();
  Rng rng(10);
  Dataset data = GenerateDataset(dist, 128, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.7;
  options.hash_engine = HashEngine::kPairwise;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  int found = 0;
  for (VectorId id = 0; id < 30; ++id) {
    auto hit = index.Query(data.Get(id));
    if (hit && hit->id == id) ++found;
  }
  EXPECT_GE(found, 25);
}

TEST(SkewedIndexTest, EmptyQueryReturnsNothing) {
  auto dist = UniformProbabilities(100, 0.1).value();
  Rng rng(11);
  Dataset data = GenerateDataset(dist, 50, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  QueryStats stats;
  EXPECT_FALSE(index.Query({}, &stats).has_value());
  EXPECT_EQ(stats.candidates, 0u);
}

TEST(SkewedIndexTest, ParallelBuildIdenticalToSerial) {
  auto dist = TwoBlockProbabilities(150, 0.2, 5000, 0.01).value();
  Rng rng(20);
  Dataset data = GenerateDataset(dist, 300, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 6;
  options.seed = 777;

  SkewedPathIndex serial, parallel;
  options.build_threads = 0;
  ASSERT_TRUE(serial.Build(&data, &dist, options).ok());
  options.build_threads = 4;
  ASSERT_TRUE(parallel.Build(&data, &dist, options).ok());

  EXPECT_EQ(serial.build_stats().total_filters,
            parallel.build_stats().total_filters);
  EXPECT_EQ(serial.build_stats().distinct_keys,
            parallel.build_stats().distinct_keys);
  // Identical query behaviour.
  CorrelatedQuerySampler sampler(&dist, 0.7);
  for (int t = 0; t < 10; ++t) {
    SparseVector q = sampler.SampleCorrelated(data.Get(t), &rng);
    auto a = serial.QueryAll(q.span(), 0.0);
    auto b = parallel.QueryAll(q.span(), 0.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].similarity, b[i].similarity);
    }
  }
}

TEST(SkewedIndexTest, QueryTopKRanksAndTruncates) {
  auto dist = UniformProbabilities(2000, 0.03).value();
  Rng rng(21);
  Dataset data;
  SparseVector base = dist.Sample(&rng);
  data.Add(base);
  // Graded near-duplicates: drop 1, 3, 9 items.
  for (size_t drop : {1u, 3u, 9u}) {
    std::vector<ItemId> ids(base.ids().begin() + drop, base.ids().end());
    data.Add(SparseVector::FromSorted(std::move(ids)));
  }
  for (int i = 0; i < 100; ++i) data.Add(dist.Sample(&rng));
  ASSERT_TRUE(data.SetDimension(2000).ok());

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.8;
  options.repetition_boost = 3.0;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  auto top2 = index.QueryTopK(base.span(), 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 0u);  // exact duplicate first
  EXPECT_DOUBLE_EQ(top2[0].similarity, 1.0);
  EXPECT_GE(top2[0].similarity, top2[1].similarity);

  auto top_many = index.QueryTopK(base.span(), 1000);
  for (size_t i = 1; i < top_many.size(); ++i) {
    EXPECT_GE(top_many[i - 1].similarity, top_many[i].similarity);
  }
}

TEST(SkewedIndexTest, CollisionRateSeparatesCloseAndFar) {
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  Rng rng(22);
  Dataset data = GenerateDataset(dist, 200, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  options.repetitions = 30;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  CorrelatedQuerySampler sampler(&dist, 0.8);
  SparseVector x = data.GetVector(0);
  SparseVector close = sampler.SampleCorrelated(x.span(), &rng);
  SparseVector far = dist.Sample(&rng);
  double close_rate = index.EstimateCollisionRate(x.span(), close.span());
  double far_rate = index.EstimateCollisionRate(x.span(), far.span());
  EXPECT_GT(close_rate, 0.2);  // Lemma 5: >= 1/ln n per repetition
  EXPECT_LT(far_rate, close_rate);
  // Identity collides whenever F(x) is non-empty, so it upper-bounds every
  // other collision rate (F(x) may legitimately be empty in repetitions
  // where the near-critical branching dies out).
  double self_rate = index.EstimateCollisionRate(x.span(), x.span());
  EXPECT_GE(self_rate, close_rate);
  EXPECT_GT(self_rate, 0.5);
}

TEST(SkewedIndexTest, PredictQueryExponentAdversarial) {
  auto dist = TwoBlockProbabilities(100, 0.3, 10000, 0.002).value();
  Rng rng(23);
  Dataset data = GenerateDataset(dist, 100, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  // All-frequent query is predicted more expensive than all-rare.
  std::vector<ItemId> freq_ids, rare_ids;
  for (ItemId i = 0; i < 40; ++i) {
    freq_ids.push_back(i);
    rare_ids.push_back(100 + i);
  }
  double rho_freq = index
                        .PredictQueryExponent(
                            SparseVector::FromSorted(freq_ids).span())
                        .value();
  double rho_rare = index
                        .PredictQueryExponent(
                            SparseVector::FromSorted(rare_ids).span())
                        .value();
  EXPECT_GT(rho_freq, rho_rare);
  // Unbuilt index and out-of-universe items are rejected.
  SkewedPathIndex empty;
  EXPECT_FALSE(empty.PredictQueryExponent(SparseVector::Of({1}).span()).ok());
  EXPECT_FALSE(
      index.PredictQueryExponent(SparseVector::Of({999999}).span()).ok());
}

TEST(SkewedIndexTest, JaccardVerificationMeasure) {
  auto dist = UniformProbabilities(1000, 0.05).value();
  Rng rng(24);
  Dataset data = GenerateDataset(dist, 150, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.8;
  options.verify_measure = Measure::kJaccard;
  options.verify_threshold = 0.9;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  auto hit = index.Query(data.Get(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->similarity, 1.0);  // Jaccard of the duplicate
  EXPECT_DOUBLE_EQ(hit->similarity,
                   Jaccard(data.Get(0), data.Get(hit->id)));
}

TEST(SkewedIndexTest, ToleratesEmptyAndTinyVectors) {
  // Real datasets contain degenerate rows; the index must build and query
  // around them (empty vectors generate no filters and are never
  // candidates).
  auto dist = UniformProbabilities(500, 0.05).value();
  Rng rng(25);
  Dataset data;
  data.Add(SparseVector::Of({}));            // empty
  data.Add(SparseVector::Of({7}));           // single item
  for (int i = 0; i < 100; ++i) data.Add(dist.Sample(&rng));
  data.Add(SparseVector::Of({}));            // empty at the end too
  ASSERT_TRUE(data.SetDimension(500).ok());

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.6;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  // A normal query still finds its duplicate.
  auto hit = index.Query(data.Get(5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(hit->similarity, 0.6);
  // Querying the single-item vector is well-defined (may or may not
  // match, but must not return an empty-vector candidate).
  auto matches = index.QueryAll(data.Get(1), 0.0);
  for (const auto& m : matches) EXPECT_GT(data.SizeOf(m.id), 0u);
}

TEST(SkewedIndexTest, QueryConsistentWithQueryAll) {
  // Any match returned by Query must appear in QueryAll at the same
  // threshold with the same similarity.
  auto dist = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
  Rng rng(26);
  Dataset data = GenerateDataset(dist, 150, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.75;
  options.repetitions = 8;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  CorrelatedQuerySampler sampler(&dist, 0.75);
  for (int t = 0; t < 20; ++t) {
    SparseVector q = sampler.SampleCorrelated(data.Get(t), &rng);
    auto one = index.Query(q.span());
    auto all = index.QueryAll(q.span(), index.verify_threshold());
    if (one) {
      bool present = false;
      for (const auto& m : all) {
        present |= (m.id == one->id && m.similarity == one->similarity);
      }
      EXPECT_TRUE(present);
    } else {
      EXPECT_TRUE(all.empty());
    }
  }
}

TEST(SkewedIndexTest, StrictPaperDeltaIsLarger) {
  auto dist = UniformProbabilities(2000, 0.05).value();
  Rng rng(12);
  Dataset data = GenerateDataset(dist, 128, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.5;
  SkewedPathIndex relaxed, strict;
  ASSERT_TRUE(relaxed.Build(&data, &dist, options).ok());
  options.strict_paper_delta = true;
  ASSERT_TRUE(strict.Build(&data, &dist, options).ok());
  EXPECT_GE(strict.build_stats().delta_used,
            relaxed.build_stats().delta_used);
  // Larger delta => more filters per element.
  EXPECT_GE(strict.build_stats().avg_filters_per_element,
            relaxed.build_stats().avg_filters_per_element);
}

}  // namespace
}  // namespace skewsearch
