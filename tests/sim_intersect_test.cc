#include "sim/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/random.h"

namespace skewsearch {
namespace {

// Reference implementation for property tests.
size_t NaiveIntersect(const std::vector<ItemId>& a,
                      const std::vector<ItemId>& b) {
  std::set<ItemId> sa(a.begin(), a.end());
  size_t count = 0;
  for (ItemId x : b) count += sa.count(x);
  return count;
}

std::vector<ItemId> RandomSorted(Rng* rng, size_t max_size, ItemId universe) {
  std::set<ItemId> s;
  size_t target = rng->NextBounded(max_size + 1);
  while (s.size() < target) {
    s.insert(static_cast<ItemId>(rng->NextBounded(universe)));
  }
  return {s.begin(), s.end()};
}

TEST(IntersectTest, EmptyInputs) {
  std::vector<ItemId> a{1, 2, 3}, empty;
  EXPECT_EQ(IntersectSizeMerge(a, empty), 0u);
  EXPECT_EQ(IntersectSizeMerge(empty, a), 0u);
  EXPECT_EQ(IntersectSizeGalloping(a, empty), 0u);
  EXPECT_EQ(IntersectSize(empty, empty), 0u);
}

TEST(IntersectTest, KnownCases) {
  std::vector<ItemId> a{1, 3, 5, 7}, b{3, 4, 5, 6, 7};
  EXPECT_EQ(IntersectSizeMerge(a, b), 3u);
  EXPECT_EQ(IntersectSizeGalloping(a, b), 3u);
  EXPECT_EQ(IntersectSize(a, b), 3u);
}

TEST(IntersectTest, DisjointAndIdentical) {
  std::vector<ItemId> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(IntersectSize(a, b), 0u);
  EXPECT_EQ(IntersectSize(a, a), 3u);
  EXPECT_EQ(IntersectSizeGalloping(a, a), 3u);
}

TEST(IntersectTest, GallopingWithVeryAsymmetricSizes) {
  std::vector<ItemId> small{500, 100000, 999999};
  std::vector<ItemId> big;
  for (ItemId i = 0; i < 100000; ++i) big.push_back(i * 10);
  // 500 and 100000 are multiples of 10; 999999 is not.
  EXPECT_EQ(IntersectSizeGalloping(small, big), 2u);
  EXPECT_EQ(IntersectSize(small, big), 2u);
}

TEST(IntersectTest, PropertyAllKernelsAgreeWithNaive) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    auto a = RandomSorted(&rng, 60, 200);
    auto b = RandomSorted(&rng, 60, 200);
    size_t expect = NaiveIntersect(a, b);
    EXPECT_EQ(IntersectSizeMerge(a, b), expect);
    EXPECT_EQ(IntersectSizeGalloping(a, b), expect);
    EXPECT_EQ(IntersectSize(a, b), expect);
  }
}

TEST(IntersectTest, PropertySymmetry) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = RandomSorted(&rng, 40, 300);
    auto b = RandomSorted(&rng, 400, 3000);
    EXPECT_EQ(IntersectSize(a, b), IntersectSize(b, a));
    EXPECT_EQ(IntersectSizeGalloping(a, b), IntersectSizeGalloping(b, a));
  }
}

TEST(IntersectAtLeastTest, StopsAtBound) {
  std::vector<ItemId> a{1, 2, 3, 4, 5}, b{1, 2, 3, 4, 5};
  EXPECT_EQ(IntersectSizeAtLeast(a, b, 3), 3u);
  // Unreachable bound: the kernel exits early with some value < bound.
  EXPECT_LT(IntersectSizeAtLeast(a, b, 100), 100u);
}

TEST(IntersectAtLeastTest, EarlyExitWhenUnreachable) {
  std::vector<ItemId> a{1, 2}, b{10, 20, 30};
  EXPECT_LT(IntersectSizeAtLeast(a, b, 3), 3u);
}

TEST(IntersectAtLeastTest, PropertyConsistentWithExact) {
  Rng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = RandomSorted(&rng, 50, 150);
    auto b = RandomSorted(&rng, 50, 150);
    size_t exact = IntersectSizeMerge(a, b);
    size_t bound = rng.NextBounded(10) + 1;
    size_t got = IntersectSizeAtLeast(a, b, bound);
    if (exact >= bound) {
      EXPECT_GE(got, bound);
    } else {
      EXPECT_LT(got, bound);
    }
  }
}

}  // namespace
}  // namespace skewsearch
