// Copyright 2026 The skewsearch Authors.
// Shared temp-path helper for test fixtures.
//
// Tests that write files must not collide across concurrently running
// test processes (ctest -j) or across fixtures inside one process. The
// convention — TempDir + pid + the fixture's own address — makes a path
// unique per (process, fixture instance); every fixture that touches
// disk uses it instead of hand-rolling the pattern.

#ifndef SKEWSEARCH_TESTS_TEST_PATHS_H_
#define SKEWSEARCH_TESTS_TEST_PATHS_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <string>

namespace skewsearch {
namespace test {

/// A collision-free temp file path "<TempDir>/<stem>_<pid>_<self><suffix>".
/// Pass the fixture's `this` as \p self; \p suffix is the extension
/// (e.g. ".skidx") or empty.
inline std::string TempPath(const std::string& stem, const void* self,
                            const std::string& suffix = "") {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + suffix;
}

}  // namespace test
}  // namespace skewsearch

#endif  // SKEWSEARCH_TESTS_TEST_PATHS_H_
