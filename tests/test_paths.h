// Copyright 2026 The skewsearch Authors.
// Shared temp-path helper for test fixtures.
//
// Tests that write files must not collide across concurrently running
// test processes (ctest -j) or across fixtures inside one process. The
// convention — TempDir + pid + the fixture's own address — makes a path
// unique per (process, fixture instance); every fixture that touches
// disk uses it instead of hand-rolling the pattern.

#ifndef SKEWSEARCH_TESTS_TEST_PATHS_H_
#define SKEWSEARCH_TESTS_TEST_PATHS_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <system_error>

namespace skewsearch {
namespace test {

/// A collision-free temp file path "<TempDir>/<stem>_<pid>_<self><suffix>".
/// Pass the fixture's `this` as \p self; \p suffix is the extension
/// (e.g. ".skidx") or empty.
inline std::string TempPath(const std::string& stem, const void* self,
                            const std::string& suffix = "") {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + suffix;
}

/// A collision-free temp *directory* (same uniqueness convention as
/// TempPath, keyed on the helper's own address), created on
/// construction and removed recursively — contents included — on
/// destruction. For fixtures that need a directory of files (WAL +
/// snapshot dirs) rather than a single path.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& stem)
      : path_(TempPath(stem, this)) {
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

  /// "<dir>/<name>" convenience join.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace test
}  // namespace skewsearch

#endif  // SKEWSEARCH_TESTS_TEST_PATHS_H_
